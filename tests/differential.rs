//! Differential testing: in failure-free executions, CONGOS must produce
//! exactly the same set of (rumor, destination) deliveries as the trivial
//! direct-unicast protocol — on time, every time, for any workload — while
//! never exceeding the deadline. The protocols differ in *how* (and in what
//! a curious process can learn), never in *what* is delivered.

use std::collections::BTreeSet;

use confidential_gossip::adversary::{NoFailures, PoissonWorkload};
use confidential_gossip::baselines::DirectNode;
use confidential_gossip::congos::CongosNode;
use confidential_gossip::harness::{run, RunSpec};
use confidential_gossip::sim::Round;

fn delivery_set(
    out: &confidential_gossip::harness::RunOutcome,
) -> BTreeSet<(u64, usize)> {
    out.deliveries
        .iter()
        .map(|d| (d.wid, d.process.as_usize()))
        .collect()
}

#[test]
fn congos_and_direct_deliver_identical_sets() {
    for seed in [1u64, 2, 3, 4, 5] {
        let n = 16;
        let rounds = 160;
        let spec = RunSpec {
            n,
            seed,
            rounds,
        };
        let mk = || {
            PoissonWorkload::new(0.04, 3, 64, seed * 31).until(Round(rounds - 64))
        };
        let congos = run::<CongosNode, _, _>(spec, NoFailures, mk());
        let direct = run::<DirectNode, _, _>(spec, NoFailures, mk());
        assert!(congos.qod.perfect(), "seed {seed}: {:?}", congos.qod);
        assert!(direct.qod.perfect(), "seed {seed}");
        assert_eq!(
            congos.injections.len(),
            direct.injections.len(),
            "seed {seed}: workloads must be identical"
        );
        let a = delivery_set(&congos);
        let b = delivery_set(&direct);
        assert_eq!(a, b, "seed {seed}: delivery sets diverge");
        assert!(!a.is_empty(), "seed {seed}: empty workload");
    }
}

#[test]
fn congos_collusion_variant_is_also_delivery_equivalent() {
    use confidential_gossip::congos::CongosConfig;
    use confidential_gossip::harness::run_with_factory;

    let n = 16;
    let rounds = 160;
    let spec = RunSpec {
        n,
        seed: 77,
        rounds,
    };
    let mk = || PoissonWorkload::new(0.03, 3, 64, 99).until(Round(rounds - 64));
    let cfg = CongosConfig::collusion_tolerant(2, 5).without_degenerate_shortcut();
    let collusion = run_with_factory::<CongosNode, _, _>(
        spec,
        move |id, n, _s| CongosNode::with_config(id, n, cfg.clone()),
        NoFailures,
        mk(),
    );
    let direct = run::<DirectNode, _, _>(spec, NoFailures, mk());
    assert!(collusion.qod.perfect(), "{:?}", collusion.qod);
    assert_eq!(delivery_set(&collusion), delivery_set(&direct));
}
