//! Differential testing, along three axes:
//!
//! * **Protocol equivalence** — in failure-free executions, CONGOS must
//!   produce exactly the same set of (rumor, destination) deliveries as the
//!   trivial direct-unicast protocol. The protocols differ in *how* (and in
//!   what a curious process can learn), never in *what* is delivered.
//! * **Backend equivalence** — the parallel round engine must be
//!   bit-identical to the sequential one: same delivery sets, same
//!   per-round per-tag message counts, same audit verdicts, same trace —
//!   for every worker count, every seed, and under adaptive adversaries.
//! * **Topology equivalence** — both of the above must keep holding when
//!   the network is no longer the paper's complete graph: for every
//!   topology × adversary × seed, sequential and parallel executions must
//!   stay bit-identical, and the `complete` topology must reproduce the
//!   pinned pre-topology golden trace digest exactly (the topology layer
//!   is invisible on the default path).
//!
//! All fingerprint machinery (the runner, the FNV-1a digest, the golden
//! constant) lives in [`confidential_gossip::testkit`] so other suites
//! share the same fixtures.

use std::collections::BTreeSet;

use confidential_gossip::adversary::{NoFailures, PoissonWorkload};
use confidential_gossip::baselines::DirectNode;
use confidential_gossip::congos::CongosNode;
use confidential_gossip::harness::{run, RunSpec};
use confidential_gossip::sim::Round;

fn delivery_set(
    out: &confidential_gossip::harness::RunOutcome,
) -> BTreeSet<(u64, usize)> {
    out.deliveries
        .iter()
        .map(|d| (d.wid, d.process.as_usize()))
        .collect()
}

#[test]
fn congos_and_direct_deliver_identical_sets() {
    for seed in [1u64, 2, 3, 4, 5] {
        let n = 16;
        let rounds = 160;
        let spec = RunSpec::new(n, seed, rounds);
        let mk = || {
            PoissonWorkload::new(0.04, 3, 64, seed * 31).until(Round(rounds - 64))
        };
        let congos = run::<CongosNode, _, _>(spec, NoFailures, mk());
        let direct = run::<DirectNode, _, _>(spec, NoFailures, mk());
        assert!(congos.qod.perfect(), "seed {seed}: {:?}", congos.qod);
        assert!(direct.qod.perfect(), "seed {seed}");
        assert_eq!(
            congos.injections.len(),
            direct.injections.len(),
            "seed {seed}: workloads must be identical"
        );
        let a = delivery_set(&congos);
        let b = delivery_set(&direct);
        assert_eq!(a, b, "seed {seed}: delivery sets diverge");
        assert!(!a.is_empty(), "seed {seed}: empty workload");
    }
}

#[test]
fn congos_collusion_variant_is_also_delivery_equivalent() {
    use confidential_gossip::congos::CongosConfig;
    use confidential_gossip::harness::run_with_factory;

    let n = 16;
    let rounds = 160;
    let spec = RunSpec::new(n, 77, rounds);
    let mk = || PoissonWorkload::new(0.03, 3, 64, 99).until(Round(rounds - 64));
    let cfg = CongosConfig::collusion_tolerant(2, 5).without_degenerate_shortcut();
    let collusion = run_with_factory::<CongosNode, _, _>(
        spec,
        move |id, n, _s| CongosNode::with_config(id, n, cfg.clone()),
        NoFailures,
        mk(),
    );
    let direct = run::<DirectNode, _, _>(spec, NoFailures, mk());
    assert!(collusion.qod.perfect(), "{:?}", collusion.qod);
    assert_eq!(delivery_set(&collusion), delivery_set(&direct));
}

mod backend_equivalence {
    //! The parallel engine's determinism contract, checked end to end on
    //! CONGOS over the complete topology: for every backend the full
    //! observable execution — ordered deliveries, per-round per-tag message
    //! counts, audit verdicts, the rendered trace — must be bit-identical
    //! to the sequential engine.

    use confidential_gossip::adversary::{NoFailures, ProxyKiller, RandomChurn};
    use confidential_gossip::sim::{EngineBackend, Tag, TopologySpec};
    use confidential_gossip::testkit::{congos_fingerprint, fnv1a, GOLDEN_TRACE_DIGEST};

    const SEEDS: [u64; 3] = [11, 12, 13];
    const WORKER_COUNTS: [usize; 2] = [1, 4];

    #[test]
    fn no_failures_identical_across_backends() {
        for seed in SEEDS {
            let seq = congos_fingerprint(
                EngineBackend::Sequential,
                TopologySpec::Complete,
                seed,
                NoFailures,
            );
            assert!(!seq.outputs.is_empty(), "seed {seed}: nothing delivered");
            for workers in WORKER_COUNTS {
                let par = congos_fingerprint(
                    EngineBackend::Parallel { workers },
                    TopologySpec::Complete,
                    seed,
                    NoFailures,
                );
                assert_eq!(seq, par, "seed {seed} workers {workers}");
            }
        }
    }

    #[test]
    fn random_churn_identical_across_backends() {
        for seed in SEEDS {
            let churn = || RandomChurn::new(0.01, 0.2, seed * 7 + 1);
            let seq = congos_fingerprint(
                EngineBackend::Sequential,
                TopologySpec::Complete,
                seed,
                churn(),
            );
            for workers in WORKER_COUNTS {
                let par = congos_fingerprint(
                    EngineBackend::Parallel { workers },
                    TopologySpec::Complete,
                    seed,
                    churn(),
                );
                assert_eq!(seq, par, "seed {seed} workers {workers}");
            }
        }
    }

    #[test]
    fn adaptive_proxy_killer_identical_across_backends() {
        // ProxyKiller reacts to the round's outbox snapshot — the sharpest
        // test that the parallel engine presents the adversary the exact
        // ordered view the sequential engine would.
        for seed in SEEDS {
            let killer = || ProxyKiller::new(Tag("proxy"), 3).revive_after(24);
            let seq = congos_fingerprint(
                EngineBackend::Sequential,
                TopologySpec::Complete,
                seed,
                killer(),
            );
            for workers in WORKER_COUNTS {
                let par = congos_fingerprint(
                    EngineBackend::Parallel { workers },
                    TopologySpec::Complete,
                    seed,
                    killer(),
                );
                assert_eq!(seq, par, "seed {seed} workers {workers}");
            }
        }
    }

    #[test]
    fn seed_determinism_and_golden_trace_digests() {
        // The digest is pinned for both backends; the two values being one
        // constant *is* the determinism contract, and pinning (rather than
        // comparing) makes any semantic drift a loud failure instead of a
        // silently moved baseline.
        let seq_a = congos_fingerprint(
            EngineBackend::Sequential,
            TopologySpec::Complete,
            42,
            NoFailures,
        );
        let seq_b = congos_fingerprint(
            EngineBackend::Sequential,
            TopologySpec::Complete,
            42,
            NoFailures,
        );
        assert_eq!(seq_a.trace, seq_b.trace, "sequential run not reproducible");
        let par = congos_fingerprint(
            EngineBackend::Parallel { workers: 4 },
            TopologySpec::Complete,
            42,
            NoFailures,
        );
        assert_eq!(
            fnv1a(&seq_a.trace),
            GOLDEN_TRACE_DIGEST,
            "sequential golden trace digest moved (got {:#x})",
            fnv1a(&seq_a.trace)
        );
        assert_eq!(
            fnv1a(&par.trace),
            GOLDEN_TRACE_DIGEST,
            "parallel golden trace digest moved (got {:#x})",
            fnv1a(&par.trace)
        );
    }

    #[test]
    fn coalition_tap_preserves_golden_trace_digest() {
        // The source-prediction adversary's tap (E13) is a pure observer:
        // it gets no RNG handle and cannot perturb the engine, so a
        // tap-enabled run must reproduce the pinned golden digest
        // bit-for-bit — and the whole fingerprint must equal the untapped
        // run's — while still collecting a non-empty sighting log.
        use confidential_gossip::sim::ProcessId;
        use confidential_gossip::testkit::congos_fingerprint_tapped;

        let members: Vec<ProcessId> = [3usize, 7, 11].map(ProcessId::new).to_vec();
        for backend in [EngineBackend::Sequential, EngineBackend::Parallel { workers: 4 }] {
            let (tapped, log) = congos_fingerprint_tapped(
                backend,
                TopologySpec::Complete,
                42,
                NoFailures,
                &members,
            );
            assert_eq!(
                fnv1a(&tapped.trace),
                GOLDEN_TRACE_DIGEST,
                "tap-enabled golden trace digest moved (got {:#x})",
                fnv1a(&tapped.trace)
            );
            let plain =
                congos_fingerprint(backend, TopologySpec::Complete, 42, NoFailures);
            assert_eq!(tapped, plain, "tap perturbed the execution");
            assert!(!log.is_empty(), "coalition of 3 must see traffic");
            assert!(
                log.iter().all(|s| members.contains(&s.observer)),
                "sightings from non-members"
            );
        }
    }
}

mod topology_differential {
    //! Backend equivalence off the complete graph: for every topology ×
    //! adversary × seed the sequential and parallel engines must produce
    //! bit-identical executions. Topology filtering happens in the
    //! delivery phase both backends share, so equivalence should hold *by
    //! construction* — this suite is the regression net that keeps it so.

    use confidential_gossip::adversary::{FailurePlan, NoFailures, ProxyKiller, RandomChurn};
    use confidential_gossip::sim::{EngineBackend, Tag, TopologySpec};
    use confidential_gossip::testkit::{congos_fingerprint, Fingerprint};

    const SEEDS: [u64; 3] = [21, 22, 23];
    const WORKER_COUNTS: [usize; 2] = [1, 4];

    /// The non-complete topologies under differential test.
    fn topologies() -> Vec<TopologySpec> {
        vec![
            TopologySpec::Expander { degree: 4 },
            TopologySpec::churn(0.05),
        ]
    }

    fn assert_equivalent<F: FailurePlan, M: Fn(u64) -> F>(mk_failures: M, what: &str) {
        for topology in topologies() {
            for seed in SEEDS {
                let seq = congos_fingerprint(
                    EngineBackend::Sequential,
                    topology,
                    seed,
                    mk_failures(seed),
                );
                for workers in WORKER_COUNTS {
                    let par: Fingerprint = congos_fingerprint(
                        EngineBackend::Parallel { workers },
                        topology,
                        seed,
                        mk_failures(seed),
                    );
                    assert_eq!(
                        seq, par,
                        "{what}: topology {topology} seed {seed} workers {workers}"
                    );
                }
            }
        }
    }

    #[test]
    fn no_failures_identical_across_backends_per_topology() {
        assert_equivalent(|_| NoFailures, "no failures");
    }

    #[test]
    fn random_churn_identical_across_backends_per_topology() {
        // Process churn on top of link churn/sparseness: crashes, restarts
        // and missing links interleave in the same delivery phase.
        assert_equivalent(|seed| RandomChurn::new(0.01, 0.2, seed * 7 + 1), "random churn");
    }

    #[test]
    fn adaptive_proxy_killer_identical_across_backends_per_topology() {
        assert_equivalent(
            |_| ProxyKiller::new(Tag("proxy"), 3).revive_after(24),
            "proxy killer",
        );
    }

    #[test]
    fn total_blackout_classifies_unreachable_not_missed() {
        // Regression for the latent "everyone hears everything" assumption:
        // churn with p = 1 over a complete base flips every pair every
        // round — no link ever exists. The run must complete without
        // panicking, classify every cross-process pair as `unreachable`
        // (exempt) rather than `missed` (a QoD violation), and stay clean
        // under the confidentiality audit: severed links can only shrink
        // what anyone learns.
        use confidential_gossip::adversary::{NoFailures, PoissonWorkload};
        use confidential_gossip::congos::CongosNode;
        use confidential_gossip::harness::{run, RunSpec};
        use confidential_gossip::sim::Round;

        let rounds = 96;
        let spec = RunSpec::new(16, 5, rounds).topology(TopologySpec::churn(1.0));
        let workload = PoissonWorkload::new(0.05, 3, 48, 5 ^ 0xD1FF).until(Round(rounds - 48));
        let out = run::<CongosNode, _, _>(spec, NoFailures, workload);
        assert!(out.qod.unreachable > 0, "blackout must exempt pairs");
        assert_eq!(out.qod.missed, 0, "unreachable pairs must not count as missed");
        assert_eq!(out.qod.admissible, out.qod.on_time, "any admissible pair is local");
        assert!(out.metrics.topology_drops() > 0, "the network must eat the traffic");
        assert!(out.qod_theorem_holds(), "the theorem is vacuous off the complete graph");

        // Same blackout under the full fingerprint: the audit stays clean.
        let fp = congos_fingerprint(
            EngineBackend::Sequential,
            TopologySpec::churn(1.0),
            5,
            NoFailures,
        );
        assert!(fp.audit.violations.is_empty(), "{:?}", fp.audit.violations);
    }

    #[test]
    fn sparse_topologies_actually_filter_traffic() {
        // Guard against a silently disabled layer: the expander run must
        // observe topology drops, and its trace must differ from the
        // complete-topology trace for the same seed.
        use confidential_gossip::adversary::NoFailures;
        let complete = congos_fingerprint(
            EngineBackend::Sequential,
            TopologySpec::Complete,
            21,
            NoFailures,
        );
        let sparse = congos_fingerprint(
            EngineBackend::Sequential,
            TopologySpec::Expander { degree: 4 },
            21,
            NoFailures,
        );
        assert_ne!(
            complete.trace, sparse.trace,
            "expander:4 must change the execution"
        );
    }
}
