//! Differential testing, along two axes:
//!
//! * **Protocol equivalence** — in failure-free executions, CONGOS must
//!   produce exactly the same set of (rumor, destination) deliveries as the
//!   trivial direct-unicast protocol. The protocols differ in *how* (and in
//!   what a curious process can learn), never in *what* is delivered.
//! * **Backend equivalence** — the parallel round engine must be
//!   bit-identical to the sequential one: same delivery sets, same
//!   per-round per-tag message counts, same audit verdicts, same trace —
//!   for every worker count, every seed, and under adaptive adversaries.

use std::collections::BTreeSet;

use confidential_gossip::adversary::{NoFailures, PoissonWorkload};
use confidential_gossip::baselines::DirectNode;
use confidential_gossip::congos::CongosNode;
use confidential_gossip::harness::{run, RunSpec};
use confidential_gossip::sim::Round;

fn delivery_set(
    out: &confidential_gossip::harness::RunOutcome,
) -> BTreeSet<(u64, usize)> {
    out.deliveries
        .iter()
        .map(|d| (d.wid, d.process.as_usize()))
        .collect()
}

#[test]
fn congos_and_direct_deliver_identical_sets() {
    for seed in [1u64, 2, 3, 4, 5] {
        let n = 16;
        let rounds = 160;
        let spec = RunSpec::new(n, seed, rounds);
        let mk = || {
            PoissonWorkload::new(0.04, 3, 64, seed * 31).until(Round(rounds - 64))
        };
        let congos = run::<CongosNode, _, _>(spec, NoFailures, mk());
        let direct = run::<DirectNode, _, _>(spec, NoFailures, mk());
        assert!(congos.qod.perfect(), "seed {seed}: {:?}", congos.qod);
        assert!(direct.qod.perfect(), "seed {seed}");
        assert_eq!(
            congos.injections.len(),
            direct.injections.len(),
            "seed {seed}: workloads must be identical"
        );
        let a = delivery_set(&congos);
        let b = delivery_set(&direct);
        assert_eq!(a, b, "seed {seed}: delivery sets diverge");
        assert!(!a.is_empty(), "seed {seed}: empty workload");
    }
}

#[test]
fn congos_collusion_variant_is_also_delivery_equivalent() {
    use confidential_gossip::congos::CongosConfig;
    use confidential_gossip::harness::run_with_factory;

    let n = 16;
    let rounds = 160;
    let spec = RunSpec::new(n, 77, rounds);
    let mk = || PoissonWorkload::new(0.03, 3, 64, 99).until(Round(rounds - 64));
    let cfg = CongosConfig::collusion_tolerant(2, 5).without_degenerate_shortcut();
    let collusion = run_with_factory::<CongosNode, _, _>(
        spec,
        move |id, n, _s| CongosNode::with_config(id, n, cfg.clone()),
        NoFailures,
        mk(),
    );
    let direct = run::<DirectNode, _, _>(spec, NoFailures, mk());
    assert!(collusion.qod.perfect(), "{:?}", collusion.qod);
    assert_eq!(delivery_set(&collusion), delivery_set(&direct));
}

mod backend_equivalence {
    //! The parallel engine's determinism contract, checked end to end on
    //! CONGOS: for every backend the full observable execution — ordered
    //! deliveries, per-round per-tag message counts, audit verdicts, the
    //! rendered trace — must be bit-identical to the sequential engine.

    use confidential_gossip::adversary::{
        CrriAdversary, FailurePlan, NoFailures, PoissonWorkload, ProxyKiller, RandomChurn,
    };
    use confidential_gossip::congos::{
        AuditReport, CongosInput, CongosMsg, CongosNode, ConfidentialityAuditor, DeliveredRumor,
    };
    use confidential_gossip::sim::engine::{Observer, OutputRecord};
    use confidential_gossip::sim::trace::Tracer;
    use confidential_gossip::sim::{
        Engine, EngineBackend, EngineConfig, Envelope, ProcessId, Round, Tag,
    };

    /// Observer fan-out: audit and trace the same run.
    struct AuditAndTrace<'a> {
        audit: &'a mut ConfidentialityAuditor,
        tracer: &'a mut Tracer,
    }

    impl Observer<CongosNode> for AuditAndTrace<'_> {
        fn on_deliver(&mut self, env: &Envelope<CongosMsg>) {
            self.audit.on_deliver(env);
            Observer::<CongosNode>::on_deliver(self.tracer, env);
        }
        fn on_inject(&mut self, round: Round, process: ProcessId, input: &CongosInput) {
            self.audit.on_inject(round, process, input);
            Observer::<CongosNode>::on_inject(self.tracer, round, process, input);
        }
        fn on_output(&mut self, rec: &OutputRecord<DeliveredRumor>) {
            self.audit.on_output(rec);
            Observer::<CongosNode>::on_output(self.tracer, rec);
        }
        fn on_crash(&mut self, round: Round, process: ProcessId) {
            self.audit.on_crash(round, process);
            Observer::<CongosNode>::on_crash(self.tracer, round, process);
        }
        fn on_restart(&mut self, round: Round, process: ProcessId) {
            self.audit.on_restart(round, process);
            Observer::<CongosNode>::on_restart(self.tracer, round, process);
        }
        fn on_round_end(&mut self, round: Round) {
            self.audit.on_round_end(round);
            Observer::<CongosNode>::on_round_end(self.tracer, round);
        }
    }

    /// Everything observable about one run, for exact comparison.
    #[derive(PartialEq, Debug)]
    struct Fingerprint {
        outputs: Vec<OutputRecord<DeliveredRumor>>,
        /// `per_tag[t]` — this round's (tag, count) pairs.
        per_tag: Vec<Vec<(&'static str, u64)>>,
        audit: AuditReport,
        trace: String,
    }

    const N: usize = 16;
    const ROUNDS: u64 = 96;
    const DEADLINE: u64 = 48;

    fn congos_run<F: FailurePlan>(backend: EngineBackend, seed: u64, failures: F) -> Fingerprint {
        let workload =
            PoissonWorkload::new(0.05, 3, DEADLINE, seed ^ 0xD1FF).until(Round(ROUNDS - DEADLINE));
        let mut adv = CrriAdversary::new(failures, workload);
        let mut audit = ConfidentialityAuditor::new(N);
        let mut tracer = Tracer::new(1 << 20);
        let mut engine = Engine::<CongosNode>::new(EngineConfig::new(N).seed(seed));
        {
            let mut obs = AuditAndTrace {
                audit: &mut audit,
                tracer: &mut tracer,
            };
            engine.run_observed_backend(backend, ROUNDS, &mut adv, &mut obs);
        }
        let per_tag = (0..ROUNDS)
            .map(|t| engine.metrics().round(t).iter().collect())
            .collect();
        assert_eq!(tracer.dropped(), 0, "trace must be complete for the digest");
        Fingerprint {
            per_tag,
            audit: audit.report().clone(),
            trace: tracer.render(),
            outputs: engine.into_outputs(),
        }
    }

    const SEEDS: [u64; 5] = [11, 12, 13, 14, 15];
    const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

    #[test]
    fn no_failures_identical_across_backends() {
        for seed in SEEDS {
            let seq = congos_run(EngineBackend::Sequential, seed, NoFailures);
            assert!(!seq.outputs.is_empty(), "seed {seed}: nothing delivered");
            for workers in WORKER_COUNTS {
                let par = congos_run(EngineBackend::Parallel { workers }, seed, NoFailures);
                assert_eq!(seq, par, "seed {seed} workers {workers}");
            }
        }
    }

    #[test]
    fn random_churn_identical_across_backends() {
        for seed in SEEDS {
            let churn = || RandomChurn::new(0.01, 0.2, seed * 7 + 1);
            let seq = congos_run(EngineBackend::Sequential, seed, churn());
            for workers in WORKER_COUNTS {
                let par = congos_run(EngineBackend::Parallel { workers }, seed, churn());
                assert_eq!(seq, par, "seed {seed} workers {workers}");
            }
        }
    }

    #[test]
    fn adaptive_proxy_killer_identical_across_backends() {
        // ProxyKiller reacts to the round's outbox snapshot — the sharpest
        // test that the parallel engine presents the adversary the exact
        // ordered view the sequential engine would.
        for seed in SEEDS {
            let killer = || ProxyKiller::new(Tag("proxy"), 3).revive_after(24);
            let seq = congos_run(EngineBackend::Sequential, seed, killer());
            for workers in WORKER_COUNTS {
                let par = congos_run(EngineBackend::Parallel { workers }, seed, killer());
                assert_eq!(seq, par, "seed {seed} workers {workers}");
            }
        }
    }

    /// FNV-1a over the rendered trace: a stable digest of the execution.
    fn digest(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Pinned digests of the seed-42 NoFailures trace, one per backend. The
    /// two values are equal by the determinism contract; pinning both makes
    /// any semantic drift (in either backend) a loud failure rather than a
    /// silently moved baseline.
    const GOLDEN_TRACE_DIGEST_SEQ: u64 = 0x2507_331c_6f82_40be;
    const GOLDEN_TRACE_DIGEST_PAR: u64 = 0x2507_331c_6f82_40be;

    #[test]
    fn seed_determinism_and_golden_trace_digests() {
        let seq_a = congos_run(EngineBackend::Sequential, 42, NoFailures);
        let seq_b = congos_run(EngineBackend::Sequential, 42, NoFailures);
        assert_eq!(seq_a.trace, seq_b.trace, "sequential run not reproducible");
        let par_a = congos_run(EngineBackend::Parallel { workers: 8 }, 42, NoFailures);
        let par_b = congos_run(EngineBackend::Parallel { workers: 8 }, 42, NoFailures);
        assert_eq!(par_a.trace, par_b.trace, "parallel run not reproducible");
        assert_eq!(
            digest(&seq_a.trace),
            GOLDEN_TRACE_DIGEST_SEQ,
            "sequential golden trace digest moved (got {:#x})",
            digest(&seq_a.trace)
        );
        assert_eq!(
            digest(&par_a.trace),
            GOLDEN_TRACE_DIGEST_PAR,
            "parallel golden trace digest moved (got {:#x})",
            digest(&par_a.trace)
        );
    }
}
