//! Workspace-level integration: all five systems under one workload, the
//! facade crate's re-exports, and the threaded runtime.

use confidential_gossip::adversary::{
    CrriAdversary, NoFailures, OneShot, PoissonWorkload, RumorSpec,
};
use confidential_gossip::baselines::{
    CryptoMulticastNode, DirectNode, PlainEpidemicNode, StronglyConfidentialNode,
};
use confidential_gossip::congos::{CongosNode, ConfidentialityAuditor};
use confidential_gossip::harness::{run, Logged, RunSpec};
use confidential_gossip::sim::{Engine, EngineConfig, ProcessId, Round};

#[test]
fn all_five_systems_deliver_the_same_workload() {
    let spec = RunSpec::new(16, 0xABCD, 128);
    let mk = || PoissonWorkload::new(0.05, 3, 64, 9).until(Round(64));

    let congos = run::<CongosNode, _, _>(spec, NoFailures, mk());
    let direct = run::<DirectNode, _, _>(spec, NoFailures, mk());
    let strong = run::<StronglyConfidentialNode, _, _>(spec, NoFailures, mk());
    let crypto = run::<CryptoMulticastNode, _, _>(spec, NoFailures, mk());
    let epidemic = run::<PlainEpidemicNode, _, _>(spec, NoFailures, mk());

    for o in [&congos, &direct, &strong, &crypto, &epidemic] {
        assert!(o.qod.perfect(), "{}: {:?}", o.name, o.qod);
        assert!(o.qod.admissible > 10, "{}: workload too thin", o.name);
    }
    // Identical workloads (same seed) across systems.
    assert_eq!(congos.injections.len(), direct.injections.len());
    assert_eq!(congos.injections.len(), epidemic.injections.len());
    // Direct is the floor on total messages for unicast-style systems.
    assert!(direct.metrics.total() <= crypto.metrics.total());
}

#[test]
fn facade_reexports_compose() {
    // A complete mini-run written purely against the facade crate.
    let n = 8;
    let dest = vec![ProcessId::new(2), ProcessId::new(5)];
    let spec = RumorSpec::new(0, b"facade".to_vec(), 64, dest.clone());
    let mut adv = CrriAdversary::new(
        NoFailures,
        OneShot::new(Round(0), vec![(ProcessId::new(0), spec)]),
    );
    let mut audit = ConfidentialityAuditor::new(n);
    let mut engine = Engine::<CongosNode>::new(EngineConfig::new(n).seed(1));
    engine.run_observed(65, &mut adv, &mut audit);
    audit.assert_clean();
    assert_eq!(engine.outputs().len(), 2);
    assert_eq!(adv.workload().entries().len(), 1);
}

#[test]
fn threaded_runtime_runs_the_same_protocol_logic() {
    use confidential_gossip::sim::threaded::{run_threaded, ThreadedConfig};
    // The plain epidemic node runs unchanged on OS threads with a
    // bulk-synchronous barrier — protocol logic is runtime-agnostic.
    let report = run_threaded::<PlainEpidemicNode>(ThreadedConfig::new(6).rounds(8).seed(3));
    // No injections in the threaded harness ⇒ no outputs, and no traffic
    // because nothing is active.
    assert_eq!(report.rounds, 8);
    assert_eq!(report.outputs.len(), 0);
}
