//! Transport-differential testing: the TCP loopback cluster must deliver
//! exactly what the simulator delivers.
//!
//! Both runtimes execute the same `NodeDriver` superstep over the same
//! protocol code with the same per-`(process, generation)` forked RNGs —
//! the only difference is the [`RoundTransport`] underneath (the engine's
//! in-memory delivery path vs framed TCP sockets with per-peer threads).
//! So for any failure-free `(seed, topology, injections)` the delivery
//! *traces* — every `(wid, destination, round)` triple — must be
//! bit-identical, not merely the delivery sets.
//!
//! The harness's `--backend net` path is exercised end to end here: the
//! oblivious workload is materialized into a static schedule, the cluster
//! runs over loopback sockets, and QoD is recomputed from topology
//! reachability. Each test case gets its own disjoint port range so the
//! suite can run in parallel.

use std::collections::BTreeSet;

use confidential_gossip::adversary::{NoFailures, PoissonWorkload};
use confidential_gossip::congos::CongosNode;
use confidential_gossip::harness::{run, RunOutcome, RunSpec};
use confidential_gossip::sim::{Round, TopologySpec};

/// Full delivery trace: `(wid, destination, round)`.
fn delivery_trace(out: &RunOutcome) -> BTreeSet<(u64, usize, u64)> {
    out.deliveries
        .iter()
        .map(|d| (d.wid, d.process.as_usize(), d.round.as_u64()))
        .collect()
}

/// Runs the same spec + workload on the engine and on the TCP cluster and
/// checks the traces agree. Returns the trace so callers can assert on it.
fn engine_vs_cluster(
    n: usize,
    seed: u64,
    topology: TopologySpec,
    base_port: u16,
) -> BTreeSet<(u64, usize, u64)> {
    let rounds = 72;
    let mk = || PoissonWorkload::new(0.2, 2, 64, seed * 31).until(Round(rounds - 64));

    let sim = run::<CongosNode, _, _>(
        RunSpec::new(n, seed, rounds).topology(topology),
        NoFailures,
        mk(),
    );
    let net = run::<CongosNode, _, _>(
        RunSpec::new(n, seed, rounds).topology(topology).net(base_port),
        NoFailures,
        mk(),
    );

    assert_eq!(
        sim.injections.len(),
        net.injections.len(),
        "seed {seed} {topology:?}: materialized workload diverges from the engine's"
    );
    // Identical traces imply identical QoD — but QoD is computed by two
    // different code paths (engine liveness vs topology-only), so check it
    // explicitly too.
    assert_eq!(
        sim.qod, net.qod,
        "seed {seed} {topology:?}: QoD classifications diverge"
    );
    assert!(
        sim.qod.on_time > 0,
        "seed {seed} {topology:?}: nothing delivered on time"
    );

    let sim_trace = delivery_trace(&sim);
    let net_trace = delivery_trace(&net);
    assert_eq!(
        sim_trace, net_trace,
        "seed {seed} {topology:?}: TCP cluster and simulator delivery traces diverge"
    );
    assert!(
        !sim_trace.is_empty(),
        "seed {seed} {topology:?}: empty workload proves nothing"
    );

    let stats = net.net.expect("networked run must report socket stats");
    assert!(stats.messages > 0, "seed {seed} {topology:?}: no socket traffic");
    sim_trace
}

#[test]
fn tcp_cluster_matches_simulator_on_complete_graph() {
    for (i, seed) in [31u64, 32, 33].into_iter().enumerate() {
        engine_vs_cluster(4, seed, TopologySpec::Complete, 21000 + 20 * i as u16);
    }
}

#[test]
fn tcp_cluster_matches_simulator_on_expander() {
    // degree 4 needs n >= 5 and n·degree even.
    for (i, seed) in [31u64, 32, 33].into_iter().enumerate() {
        engine_vs_cluster(
            6,
            seed,
            TopologySpec::Expander { degree: 4 },
            21060 + 20 * i as u16,
        );
    }
}

#[test]
fn expander_topology_actually_drops_messages_over_sockets() {
    // Sanity that the sparse topology is enforced on the socket path too:
    // a 4-regular graph on 6 nodes must censor some pairs in some round.
    let rounds = 72;
    let spec = RunSpec::new(6, 31, rounds)
        .topology(TopologySpec::Expander { degree: 4 })
        .net(21120);
    let out = run::<CongosNode, _, _>(
        spec,
        NoFailures,
        PoissonWorkload::new(0.2, 2, 64, 977).until(Round(rounds - 64)),
    );
    let stats = out.net.expect("networked run must report socket stats");
    assert!(
        stats.topology_drops > 0,
        "expander cluster should drop off-topology sends, saw {stats:?}"
    );
}
