//! Workspace-level adversarial integration: the adaptive attacks from the
//! paper's introduction, run against CONGOS with the auditor attached.

use confidential_gossip::adversary::{
    CrriAdversary, GroupAnnihilator, OneShot, ProxyKiller, RumorSpec, ScheduledChurn,
};
use confidential_gossip::congos::{CongosNode, ConfidentialityAuditor, DeliveryPath};
use confidential_gossip::sim::{Engine, EngineConfig, ProcessId, Round, Tag};

#[test]
fn repeated_annihilation_of_alternating_groups() {
    // Kill group 0 of partition 0 at round 2, then restart nobody: the
    // survivors (all odd ids) must still complete deliveries among
    // themselves using partitions that split the odd ids.
    let n = 16;
    let source = ProcessId::new(1);
    let dest = vec![ProcessId::new(7), ProcessId::new(9)];
    let spec = RumorSpec::new(0, vec![0x77; 12], 64, dest.clone());
    let adv_fail = GroupAnnihilator::new(0, 0, Round(2));
    let mut adv = CrriAdversary::new(adv_fail, OneShot::new(Round(0), vec![(source, spec)]));
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = Engine::<CongosNode>::new(EngineConfig::new(n).seed(5));
    e.run_observed(66, &mut adv, &mut audit);
    audit.assert_clean();
    for d in &dest {
        assert!(
            e.outputs()
                .iter()
                .any(|o| o.process == *d && o.round.as_u64() <= 64),
            "{d} missed"
        );
    }
}

#[test]
fn sustained_proxy_killing_never_leaks_or_misses() {
    let n = 16;
    let source = ProcessId::new(0);
    let dest = vec![ProcessId::new(5), ProcessId::new(10)];
    let mut protected = dest.clone();
    protected.push(source);
    let killer = ProxyKiller::new(Tag("proxy"), 3)
        .protect(protected)
        .revive_after(24);
    let spec = RumorSpec::new(0, vec![0x42; 8], 64, dest.clone());
    let mut adv = CrriAdversary::new(killer, OneShot::new(Round(0), vec![(source, spec)]));
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = Engine::<CongosNode>::new(EngineConfig::new(n).seed(6));
    e.run_observed(66, &mut adv, &mut audit);
    audit.assert_clean();
    assert!(adv.failures().kills() > 0, "the attack must fire");
    for d in &dest {
        assert!(
            e.outputs()
                .iter()
                .any(|o| o.process == *d && o.round.as_u64() <= 64),
            "{d} missed under sustained proxy killing"
        );
    }
}

#[test]
fn total_isolation_forces_fallback_and_stays_confidential() {
    // Crash everyone but source and destination before fragments can move:
    // the only remaining path is the source's deadline "shoot" — which goes
    // only to the destination, so confidentiality trivially holds and QoD
    // is met at the wire-deadline.
    let n = 12;
    let source = ProcessId::new(0);
    let dest = ProcessId::new(7);
    let mut sched = ScheduledChurn::new();
    for i in 0..n {
        let p = ProcessId::new(i);
        if p != source && p != dest {
            sched = sched.crash_at(Round(0), p);
        }
    }
    let spec = RumorSpec::new(0, vec![9; 4], 64, vec![dest]);
    let mut adv = CrriAdversary::new(sched, OneShot::new(Round(1), vec![(source, spec)]));
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = Engine::<CongosNode>::new(EngineConfig::new(n).seed(7));
    e.run_observed(80, &mut adv, &mut audit);
    audit.assert_clean();
    let hits: Vec<_> = e.outputs().iter().filter(|o| o.process == dest).collect();
    assert_eq!(hits.len(), 1);
    assert!(hits[0].round.as_u64() <= 1 + 64);
    // Even with everyone else dead the pipeline can still succeed — some
    // partition separates source and destination (Lemma 5), the proxy
    // request lands on the destination itself, and GroupDistribution covers
    // the rest. Either way, the delivery path is one of the two legitimate
    // mechanisms and arrived on time.
    assert!(
        matches!(
            hits[0].value.via,
            DeliveryPath::Fallback | DeliveryPath::Fragments
        ),
        "unexpected path {:?}",
        hits[0].value.via
    );
}
