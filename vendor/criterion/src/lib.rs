//! Local, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this crate implements the
//! subset of the criterion API the workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], [`black_box`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model (simpler than upstream, deterministic in shape):
//! each benchmark is warmed up briefly, then timed over `sample_size`
//! samples; each sample runs enough iterations to cover a per-sample time
//! floor. Mean/min/max ns-per-iteration are printed to stdout and appended
//! to a JSON report (path from `BENCH_JSON`, default `BENCH_criterion.json`
//! in the working directory) so CI can diff results across runs.

#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::fmt::Write as _;
use std::hint;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// One benchmark's identifier inside a group: a function name plus an
/// optional parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id with an explicit function name and parameter.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Id carrying only a parameter (the group name disambiguates).
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// One timing result, kept for the JSON report.
#[derive(Clone, Debug)]
struct Record {
    name: String,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

#[derive(Default)]
struct Report {
    records: Vec<Record>,
}

/// Timer handed to benchmark closures.
pub struct Bencher<'a> {
    iters: u64,
    elapsed: &'a mut Duration,
}

impl Bencher<'_> {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        *self.elapsed = start.elapsed();
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time (accepted for API compatibility;
    /// the per-sample time floor is fixed in this stand-in).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkIdOrStr>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().0;
        let rec = run_benchmark(&self.name, &id, self.sample_size, |b| f(b));
        self.criterion.report.borrow_mut().records.push(rec);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through by reference.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkIdOrStr>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into().0;
        let rec = run_benchmark(&self.name, &id, self.sample_size, |b| f(b, input));
        self.criterion.report.borrow_mut().records.push(rec);
        self
    }

    /// Ends the group (kept for API compatibility; results are flushed by
    /// [`Criterion::final_summary`]).
    pub fn finish(self) {}
}

/// Accepts both `&str` and [`BenchmarkId`] where criterion does.
pub struct BenchmarkIdOrStr(String);

impl From<&str> for BenchmarkIdOrStr {
    fn from(s: &str) -> Self {
        BenchmarkIdOrStr(s.to_string())
    }
}
impl From<String> for BenchmarkIdOrStr {
    fn from(s: String) -> Self {
        BenchmarkIdOrStr(s)
    }
}
impl From<BenchmarkId> for BenchmarkIdOrStr {
    fn from(id: BenchmarkId) -> Self {
        BenchmarkIdOrStr(id.id)
    }
}

fn run_benchmark(
    group: &str,
    id: &str,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) -> Record {
    let full = format!("{group}/{id}");
    if let Some(filter) = filter_from_args() {
        if !full.contains(&filter) {
            return Record {
                name: full,
                mean_ns: f64::NAN,
                min_ns: f64::NAN,
                max_ns: f64::NAN,
                samples: 0,
                iters_per_sample: 0,
            };
        }
    }

    // Calibrate: time one iteration, choose an iteration count so a sample
    // lasts at least ~20ms (bounded so huge benches still run once).
    let mut probe = Duration::ZERO;
    f(&mut Bencher {
        iters: 1,
        elapsed: &mut probe,
    });
    let per_iter = probe.max(Duration::from_nanos(1));
    let target = Duration::from_millis(20);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples_ns = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut elapsed = Duration::ZERO;
        f(&mut Bencher {
            iters,
            elapsed: &mut elapsed,
        });
        samples_ns.push(elapsed.as_nanos() as f64 / iters as f64);
    }
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    let min = samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples_ns.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{full:<48} mean {:>12}  min {:>12}  max {:>12}  ({} samples x {} iters)",
        fmt_ns(mean),
        fmt_ns(min),
        fmt_ns(max),
        sample_size,
        iters
    );
    Record {
        name: full,
        mean_ns: mean,
        min_ns: min,
        max_ns: max,
        samples: sample_size,
        iters_per_sample: iters,
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn filter_from_args() -> Option<String> {
    // cargo bench passes `--bench` plus any user filter after `--`.
    std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
}

/// The benchmark harness entry point.
pub struct Criterion {
    report: Rc<RefCell<Report>>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            report: Rc::new(RefCell::new(Report::default())),
        }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 20,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let rec = run_benchmark("", id, 20, |b| f(b));
        self.report.borrow_mut().records.push(rec);
        self
    }

    /// Accepted for API compatibility (config comes from the environment).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Writes the JSON report. Called by [`criterion_main!`] after all
    /// groups have run. Path from `BENCH_JSON`, default
    /// `BENCH_criterion.json`.
    pub fn final_summary(&mut self) {
        let records = &self.report.borrow().records;
        let ran: Vec<&Record> = records.iter().filter(|r| r.samples > 0).collect();
        if ran.is_empty() {
            return;
        }
        let path =
            std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_criterion.json".to_string());
        let mut json = String::from("{\n  \"benchmarks\": [\n");
        for (i, r) in ran.iter().enumerate() {
            let comma = if i + 1 < ran.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "    {{\"name\": {:?}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}{comma}",
                r.name, r.mean_ns, r.min_ns, r.max_ns, r.samples, r.iters_per_sample
            );
        }
        json.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("wrote {path} ({} benchmarks)", ran.len());
        }
    }
}

/// Declares a group of benchmark functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}
