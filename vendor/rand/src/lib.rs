//! Local, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors the small slice of the `rand 0.8` API it actually uses:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait
//! (`gen` / `gen_bool` / `gen_range`), [`rngs::SmallRng`] and
//! [`seq::SliceRandom`]. The generator behind `SmallRng` is xoshiro256++
//! seeded via SplitMix64 — the same algorithm the real crate uses on 64-bit
//! platforms — so streams are deterministic, high-quality, and stable across
//! releases of this workspace (golden trace digests depend on that).
//!
//! Sampling algorithms (`gen_range`, `shuffle`, …) are simple and *defined
//! here*; they do not promise bit-compatibility with crates.io `rand`, only
//! with themselves. Every deterministic artifact in this repository (trace
//! digests, differential fixtures) is produced and checked against this
//! implementation.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types samplable uniformly from the full value range via `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   u64 => next_u64, i64 => next_u64, usize => next_u64,
                   isize => next_u64, u128 => next_u64, i128 => next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable via `Rng::gen_range`.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_sint!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Lemire-style unbiased uniform draw in `0..span` (`span > 0`).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Rejection sampling on the top of the range to remove modulo bias.
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Extension methods for generators (the `rand 0.8` `Rng` trait subset).
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} outside [0,1]");
        // Compare against 53 uniform bits; exact for p = 0 and p = 1.
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }

    /// Draws uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator — xoshiro256++.
    ///
    /// Matches the algorithm behind `rand 0.8`'s 64-bit `SmallRng`. Not
    /// cryptographically secure (neither is the original).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; redirect it.
            if s == [0; 4] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            SmallRng { s }
        }
    }
}

/// Random selection from slices.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random sampling extensions for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly picks one element (`None` if empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Picks `amount` distinct elements (fewer if the slice is shorter),
        /// in random order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index vector.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx.truncate(amount);
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn xoshiro_reference_vector() {
        // Reference: xoshiro256++ with state seeded by SplitMix64(0), per
        // the published algorithm. Values locked as this repo's contract.
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(0);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = SmallRng::seed_from_u64(1);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn gen_bool_extremes_are_exact() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=5u64);
            assert!(w <= 5);
        }
        // Small spans hit every value.
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_and_choose_preserve_elements() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());

        let picked: Vec<&u32> = v.choose_multiple(&mut rng, 10).collect();
        assert_eq!(picked.len(), 10);
        let mut dedup: Vec<u32> = picked.iter().map(|p| **p).collect();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "choose_multiple picks distinct elements");

        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }
}
