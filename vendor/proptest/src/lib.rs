//! Local, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this crate implements the
//! subset of the proptest API the workspace's test suites use: the
//! [`proptest!`] macro, `prop_assert*!` / [`prop_assume!`], strategies for
//! integer ranges, tuples, [`collection::vec`] / [`collection::btree_set`],
//! [`arbitrary`](prelude::any) values, [`prop_oneof!`] unions and
//! [`Strategy::prop_map`].
//!
//! Differences from crates.io proptest, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs and the
//!   case index; inputs are reproduced deterministically from the test name
//!   and case number, so a failure is always replayable by re-running the
//!   test.
//! * **Deterministic by default.** Cases are derived from a fixed per-test
//!   seed (overridable with `PROPTEST_SEED`), which suits this repository's
//!   reproducibility contract better than OS entropy.
//! * `PROPTEST_CASES` overrides the case count, as upstream.

#![forbid(unsafe_code)]

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Filters generated values, retrying until `pred` accepts one.
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }

        /// Type-erases the strategy (for [`prop_oneof!`] unions).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut SmallRng) -> V {
            self.0.generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut SmallRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
        }
    }

    /// A strategy always yielding clones of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> $t {
                    rng.gen::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut SmallRng) -> f64 {
            rng.gen::<f64>()
        }
    }

    /// The strategy returned by [`any`](crate::prelude::any).
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Any value of `T` (via [`Arbitrary`]).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// A uniform union of same-valued strategies (see [`prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut SmallRng) -> V {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Sizes for collection strategies.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn draw(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    /// Collection strategies.
    pub mod collection {
        use super::*;

        /// A `Vec` of values from `element`, with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
                let len = self.size.draw(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A `BTreeSet` of values from `element`, targeting a size drawn
        /// from `size` (duplicates are re-drawn a bounded number of times,
        /// so the result can be smaller if the value space is exhausted).
        pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`btree_set`].
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut SmallRng) -> BTreeSet<S::Value> {
                let target = self.size.draw(rng);
                let mut out = BTreeSet::new();
                let mut attempts = 0usize;
                while out.len() < target && attempts < 20 * (target + 1) {
                    out.insert(self.element.generate(rng));
                    attempts += 1;
                }
                out
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::*;

        /// Any boolean.
        #[derive(Clone, Copy, Debug)]
        pub struct AnyBool;

        impl Strategy for AnyBool {
            type Value = bool;
            fn generate(&self, rng: &mut SmallRng) -> bool {
                rng.gen::<bool>()
            }
        }

        /// Any boolean, uniformly.
        pub const ANY: AnyBool = AnyBool;
    }
}

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Runner configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case's assumptions were not met ([`prop_assume!`]); the case
        /// is skipped without counting as a failure.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Runs `case` over `config.cases` generated cases. The closure returns
    /// `Err` to reject or fail a case (with a rendering of its inputs),
    /// `Ok` on success.
    pub fn run<B>(config: &ProptestConfig, test_name: &str, mut case: B)
    where
        B: FnMut(&mut SmallRng) -> Result<(), (TestCaseError, String)>,
    {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(config.cases);
        let base_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or_else(|| name_seed(test_name));
        let mut rejected = 0u32;
        let mut ran = 0u32;
        let mut i = 0u64;
        // Allow extra iterations to compensate for rejected cases, bounded.
        let max_iters = cases as u64 * 8 + 64;
        while ran < cases && i < max_iters {
            let mut rng = SmallRng::seed_from_u64(base_seed ^ i.wrapping_mul(0x9e37_79b9));
            match case(&mut rng) {
                Ok(()) => ran += 1,
                Err((TestCaseError::Reject(_), _)) => rejected += 1,
                Err((TestCaseError::Fail(msg), inputs)) => {
                    panic!(
                        "proptest case failed: {msg}\n  test: {test_name}\n  case index: {i} (seed {base_seed})\n  inputs: {inputs}"
                    );
                }
            }
            i += 1;
        }
        assert!(
            ran == cases,
            "{test_name}: too many rejected cases ({rejected} rejections, {ran}/{cases} ran)"
        );
    }

    fn name_seed(name: &str) -> u64 {
        // FNV-1a, stable across runs and platforms.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// The macro and strategy prelude.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

pub use strategy::collection;
#[doc(inline)]
pub use strategy::bool;

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = (<$crate::test_runner::ProptestConfig as Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategies = ( $($strat,)+ );
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                let ( $($arg,)+ ) = &__strategies;
                $(let $arg = $crate::strategy::Strategy::generate($arg, __rng);)+
                let __inputs = {
                    let mut __s = String::new();
                    $(
                        __s.push_str(concat!(stringify!($arg), " = "));
                        __s.push_str(&format!("{:?}; ", &$arg));
                    )+
                    __s
                };
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                __outcome.map_err(|e| (e, __inputs))
            });
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = ($left, $right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` == `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = ($left, $right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` == `{:?}`: {}", __l, __r, format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = ($left, $right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = ($left, $right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{:?}` != `{:?}`: {}", __l, __r, format!($($fmt)*)
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// A uniform choice between strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
