#!/usr/bin/env bash
# Tier-1 CI for the confidential-gossip workspace.
#
#   scripts/ci.sh            # tier1: build + root tests + differential suite
#                            #        on both engine backends + topo + mem
#   scripts/ci.sh topo       # topology target only: topology-differential
#                            #        suite, topology proptests, and the
#                            #        exp_e14_topology quick smoke (writes
#                            #        crates/bench/BENCH_topology.json)
#   scripts/ci.sh mem        # memory target only: fragstore proptests and
#                            #        the exp_e3_mem small-n smoke sweep
#                            #        under a hard peak-RSS budget
#   scripts/ci.sh net        # network target only: TCP-vs-simulator
#                            #        loopback differential suite plus the
#                            #        congos-net package tests (codec
#                            #        corruption proptests, transport tests)
#   scripts/ci.sh loadtest   # quick congos-loadtest gate: a small loopback
#                            #        run must deliver something and emit a
#                            #        report with latency percentiles
#   scripts/ci.sh anonymity  # source-anonymity target: predict-subsystem
#                            #        proptests, the tap golden-digest
#                            #        determinism test, and the
#                            #        exp_e13_anonymity quick sweep (writes
#                            #        crates/bench/BENCH_anonymity.json and
#                            #        asserts congos < direct at coalition
#                            #        10% on expander:4)
#   scripts/ci.sh bench      # tier1 + the backend-scaling smoke bench
#                            #        (results land in BENCH_*.json)
#   scripts/ci.sh full       # tier1 + bench + the full workspace test suite
#
# The differential suite is run twice — CONGOS_BACKEND=seq and
# CONGOS_BACKEND=par:8 — so harness-level code paths are exercised on both
# backends end to end (the suite itself additionally compares backends
# pairwise from inside each test).
set -euo pipefail
cd "$(dirname "$0")/.."

target="${1:-tier1}"

run_topo() {
    echo "==> topo: topology-differential suite"
    cargo test -q --test differential topology_differential
    echo "==> topo: topology invariant proptests"
    cargo test -q -p congos-sim --test topology_prop
    echo "==> topo: exp_e14_topology smoke (quick sweep)"
    cargo run --release -q -p congos-harness --bin exp_e14_topology >/dev/null
    echo "    wrote crates/bench/BENCH_topology.json"
}

run_mem() {
    echo "==> mem: fragment-store proptests"
    cargo test -q -p congos --test fragstore_prop
    echo "==> mem: exp_e3_mem smoke sweep under a hard peak-RSS budget"
    # The quick sweep (n ≤ 1024) peaks around 450 MiB; the 1024 MiB budget
    # is a 2× regression gate, not a tight fit. The smoke row set goes to a
    # scratch path so it cannot clobber the committed full-sweep
    # crates/bench/BENCH_memory.json (regenerate that with
    # `exp_e3_mem --full`).
    cargo run --release -q -p congos-harness --bin exp_e3_mem -- \
        --json target/BENCH_memory_smoke.json --budget-mib 1024 >/dev/null
}

run_net() {
    echo "==> net: TCP-vs-simulator loopback differential suite"
    cargo test -q --test net_differential
    echo "==> net: congos-net package tests (codec proptests, transport)"
    cargo test -q -p congos-net
}

run_loadtest() {
    echo "==> loadtest: small loopback run, percentile report gate"
    # Scratch output path so the quick gate cannot clobber the committed
    # full-config crates/bench/BENCH_net_loadtest.json (regenerate that by
    # running congos-loadtest with defaults from the repo root).
    out=target/BENCH_net_loadtest_smoke.json
    cargo run --release -q -p congos-harness --bin congos-loadtest -- \
        --n 4 --base-port 20980 --rounds 40 --deadline 16 --duration 8 \
        --rate 2 --out "$out" >/dev/null
    for key in '"p50"' '"p99"' '"delivered_pairs"'; do
        grep -q "$key" "$out" || {
            echo "loadtest report $out is missing $key" >&2
            exit 1
        }
    done
    echo "    wrote $out (p50/p99 present)"
}

run_anonymity() {
    echo "==> anonymity: predict-subsystem unit tests + proptests"
    cargo test -q -p congos-adversary predict
    cargo test -q -p congos-adversary --test predict_prop
    echo "==> anonymity: coalition-tap golden-digest determinism"
    cargo test -q --test differential coalition_tap_preserves_golden_trace_digest
    echo "==> anonymity: exp_e13_anonymity quick sweep (gate: congos < direct"
    echo "    at coalition 10% on expander:4; asserted inside the binary)"
    # Scratch output path so the CI gate cannot clobber the committed
    # quick-sweep crates/bench/BENCH_anonymity.json (regenerate that by
    # running exp_e13_anonymity from the repo root; --full for the big rows).
    out=target/BENCH_anonymity_smoke.json
    cargo run --release -q -p congos-harness --bin exp_e13_anonymity -- \
        --json "$out" >/dev/null
    for key in '"suite": "anonymity"' '"p_id%"' '"eps"' '"system"'; do
        grep -q "$key" "$out" || {
            echo "anonymity report $out is missing $key" >&2
            exit 1
        }
    done
    echo "    wrote $out (schema keys present, gate passed)"
}

if [ "$target" = "topo" ]; then
    run_topo
    echo "==> ci: OK (topo)"
    exit 0
fi

if [ "$target" = "mem" ]; then
    run_mem
    echo "==> ci: OK (mem)"
    exit 0
fi

if [ "$target" = "net" ]; then
    run_net
    echo "==> ci: OK (net)"
    exit 0
fi

if [ "$target" = "loadtest" ]; then
    run_loadtest
    echo "==> ci: OK (loadtest)"
    exit 0
fi

if [ "$target" = "anonymity" ]; then
    run_anonymity
    echo "==> ci: OK (anonymity)"
    exit 0
fi

echo "==> tier1: cargo build --release"
cargo build --release

echo "==> tier1: cargo test -q (root package)"
cargo test -q

echo "==> tier1: differential suite, sequential default backend"
CONGOS_BACKEND=seq cargo test -q --test differential

echo "==> tier1: differential suite, parallel default backend"
CONGOS_BACKEND=par:8 cargo test -q --test differential

run_topo
run_mem
run_net
run_loadtest
run_anonymity

if [ "$target" = "bench" ] || [ "$target" = "full" ]; then
    echo "==> bench: backend_scaling smoke (e3_congos_poisson at n=1024)"
    BENCH_JSON="BENCH_backend_scaling.json" \
        cargo bench -p congos-bench -- backend_scaling
    echo "    wrote crates/bench/BENCH_backend_scaling.json"
fi

if [ "$target" = "full" ]; then
    echo "==> full: cargo test -q --workspace"
    cargo test -q --workspace
fi

echo "==> ci: OK ($target)"
