//! Tolerating rings of colluding, curious processes (Section 6).
//!
//! Run with:
//!
//! ```text
//! cargo run --example collusion_rings
//! ```
//!
//! Honest-but-curious processes follow the protocol but pool everything
//! they see, hoping to reassemble rumors they are not entitled to. With the
//! base algorithm (2 fragments per partition) a ring of two colluders
//! sitting in opposite groups could combine their halves. The
//! collusion-tolerant variant splits every rumor into `τ+1` fragments over
//! `Θ(τ log n)` random partitions, so no ring of ≤ τ processes ever holds a
//! complete set. The auditor pools each ring's knowledge and verifies
//! exactly that.

use congos::{CongosConfig, CongosNode, ConfidentialityAuditor};
use congos_adversary::{pick_colluders, CrriAdversary, NoFailures, PoissonWorkload};
use congos_sim::{Engine, EngineConfig, IdSet, ProcessId, Round};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let n = 32;
    let tau = 3;
    let deadline = 64u64;
    let rounds = 3 * deadline;

    println!("collusion-tolerant CONGOS: n={n}, τ={tau} (rumors split {}-ways)", tau + 1);

    // τ-sized collusion rings, pooled by the auditor.
    let mut audit = ConfidentialityAuditor::new(n);
    let mut rng = SmallRng::seed_from_u64(5);
    let mut rings = 0;
    for i in 0..12 {
        let members = pick_colluders(&mut rng, n, ProcessId::new(i % n), &[], tau);
        println!("  ring {i}: {members:?}");
        audit.add_coalition(IdSet::from_iter(n, members));
        rings += 1;
    }

    let cfg = CongosConfig::collusion_tolerant(tau, 0xC0FFEE).without_degenerate_shortcut();
    println!(
        "partitions: {} of {} groups each",
        {
            let probe = CongosNode::with_config(ProcessId::new(0), n, cfg.clone());
            probe.partitions().len()
        },
        tau + 1
    );

    let workload = PoissonWorkload::new(0.03, 4, deadline, 21).until(Round(rounds - deadline));
    let mut adversary = CrriAdversary::new(NoFailures, workload);
    let cfg2 = cfg.clone();
    let mut engine = Engine::<CongosNode>::with_factory(
        EngineConfig::new(n).seed(77),
        move |id, n, _s| CongosNode::with_config(id, n, cfg2.clone()),
    );
    engine.run_observed(rounds, &mut adversary, &mut audit);

    let injected = adversary.workload().log().len();
    println!(
        "{injected} rumors injected; {} fragment receipts circulated",
        audit.report().fragment_receipts
    );

    audit.assert_clean();
    println!("audit: none of the {rings} rings could reassemble any rumor ✓");

    // And delivery still works for the legitimate destinations.
    for entry in adversary.workload().log() {
        let end = entry.round + entry.spec.deadline;
        for d in &entry.spec.dest {
            assert!(
                engine
                    .outputs()
                    .iter()
                    .any(|o| o.process == *d && o.value.wid == entry.spec.id && o.round <= end),
                "rumor {} missed {d}",
                entry.spec.id
            );
        }
    }
    println!("all destination deliveries met their deadlines ✓");
}
