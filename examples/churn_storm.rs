//! Confidential gossip through a crash/restart storm.
//!
//! Run with:
//!
//! ```text
//! cargo run --example churn_storm
//! ```
//!
//! The CRRI adversary continuously crashes and restarts processes —
//! including the *adaptive* proxy-killer attack from the paper's
//! introduction (crash a process the instant it is asked to act as a
//! proxy). Rumors keep being injected throughout. The run demonstrates the
//! paper's robustness guarantee: every rumor whose source and destination
//! stayed continuously alive is delivered by its deadline, with
//! confidentiality intact; everything else is exempt by definition (and
//! often still delivered).

use congos::CongosNode;
use congos_adversary::{
    CrriAdversary, FailurePlan, PoissonWorkload, ProxyKiller, RandomChurn,
};
use congos_sim::{
    CrashSpec, Engine, EngineConfig, IncomingPolicy, ProcessId, Round, RoundView, Tag,
};

/// Random churn plus the adaptive proxy-killer, composed.
struct Storm {
    churn: RandomChurn,
    killer: ProxyKiller,
}

impl FailurePlan for Storm {
    fn decide_failures(
        &mut self,
        view: &RoundView<'_>,
    ) -> (Vec<CrashSpec>, Vec<(ProcessId, IncomingPolicy)>) {
        let (mut crashes, mut restarts) = self.churn.decide_failures(view);
        let (k_crashes, k_restarts) = self.killer.decide_failures(view);
        for c in k_crashes {
            if !crashes.iter().any(|x| x.process == c.process) {
                crashes.push(c);
            }
        }
        for r in k_restarts {
            if !restarts.iter().any(|x| x.0 == r.0) && !crashes.iter().any(|c| c.process == r.0)
            {
                restarts.push(r);
            }
        }
        (crashes, restarts)
    }
}

fn main() {
    let n = 24;
    let deadline = 64u64;
    let rounds = 4 * deadline;

    println!("churn storm: {n} processes, {rounds} rounds, deadline {deadline}");

    let workload = PoissonWorkload::new(0.04, 3, deadline, 11).until(Round(rounds - deadline));
    let storm = Storm {
        churn: RandomChurn::new(0.004, 0.2, 12),
        killer: ProxyKiller::new(Tag("proxy"), 1).revive_after(32),
    };
    let mut adversary = CrriAdversary::new(storm, workload);
    let mut engine = Engine::<CongosNode>::new(EngineConfig::new(n).seed(2024));
    engine.run(rounds, &mut adversary);

    let crashes = engine.liveness().crash_count();
    let kills = adversary.failures().killer.kills();
    println!("crash events: {crashes} (of which {kills} adaptive proxy-kills)");

    // Classify every (rumor, destination) pair.
    let (mut admissible, mut on_time, mut exempt, mut bonus) = (0u64, 0u64, 0u64, 0u64);
    for entry in adversary.workload().log() {
        let t = entry.round;
        let end = t + entry.spec.deadline;
        let src_ok = engine.liveness().continuously_alive(entry.source, t, end);
        for d in &entry.spec.dest {
            let delivered = engine
                .outputs()
                .iter()
                .any(|o| o.process == *d && o.value.wid == entry.spec.id && o.round <= end);
            if src_ok && engine.liveness().continuously_alive(*d, t, end) {
                admissible += 1;
                assert!(
                    delivered,
                    "QoD violated: rumor {} missed {d}",
                    entry.spec.id
                );
                on_time += 1;
            } else {
                exempt += 1;
                if delivered {
                    bonus += 1;
                }
            }
        }
    }
    println!("admissible pairs : {admissible} — all delivered on time ✓");
    println!("exempt pairs     : {exempt} (crashed source/destination), {bonus} delivered anyway");

    let mut fallbacks = 0u64;
    let mut confirmed = 0u64;
    for p in ProcessId::all(n) {
        let s = engine.protocol(p).stats();
        fallbacks += s.fallbacks;
        confirmed += s.confirmed;
    }
    println!("pipeline confirmations: {confirmed}, deadline fallbacks: {fallbacks}");
    assert_eq!(on_time, admissible);
}
