//! The paper's motivating application: social networks computing aggregate
//! statistics without leaking in-group data.
//!
//! Run with:
//!
//! ```text
//! cargo run --example private_group_stats
//! ```
//!
//! Several "social networking sites" (disjoint groups of processes) want to
//! compute their average member activity. Members continuously publish
//! their activity counters as confidential rumors destined *only to their
//! own group*; every process in the system relays fragments, but only group
//! members ever see the values. Each group then aggregates locally. The
//! example checks both the aggregate and, via the auditor, that no value
//! crossed a group boundary.

use std::collections::HashMap;

use congos::{CongosNode, ConfidentialityAuditor};
use congos_adversary::{CrriAdversary, NoFailures, StableGroupWorkload};
use congos_sim::{Engine, EngineConfig, ProcessId, Round};

fn main() {
    let n = 24;
    let group_count = 3;
    let deadline = 64u64;
    let rounds = 3 * deadline;

    // Three fixed "sites": processes 0,3,6,… / 1,4,7,… / 2,5,8,…
    let groups: Vec<Vec<ProcessId>> = (0..group_count)
        .map(|g| {
            (0..n)
                .filter(|i| i % group_count == g)
                .map(ProcessId::new)
                .collect()
        })
        .collect();
    println!("private group statistics over {group_count} sites of {} members", n / group_count);

    // Members publish activity counters (the workload payload bytes double
    // as the "value"; the first byte is the activity counter).
    let workload = StableGroupWorkload::new(groups.clone(), 0.08, deadline, 7)
        .until(Round(rounds - deadline));
    let mut adversary = CrriAdversary::new(NoFailures, workload);

    let mut engine = Engine::<CongosNode>::new(EngineConfig::new(n).seed(99));
    let mut audit = ConfidentialityAuditor::new(n);
    engine.run_observed(rounds, &mut adversary, &mut audit);
    audit.assert_clean();
    println!("confidentiality audit: clean ✓ (no value crossed a site boundary)");

    // Which group was each rumor destined to?
    let mut group_of_rumor: HashMap<u64, usize> = HashMap::new();
    for entry in adversary.workload().log() {
        let g = groups
            .iter()
            .position(|grp| *grp == entry.spec.dest)
            .expect("stable-group workload");
        group_of_rumor.insert(entry.spec.id, g);
    }

    // Each site aggregates the activity values its members received.
    let mut sums = vec![(0u64, 0u64); group_count]; // (sum, count) per site
    let mut seen: Vec<HashMap<u64, ()>> = vec![HashMap::new(); group_count];
    for out in engine.outputs() {
        let g = group_of_rumor[&out.value.wid];
        assert!(
            groups[g].contains(&out.process),
            "value delivered outside its site!"
        );
        if seen[g].insert(out.value.wid, ()).is_none() {
            sums[g].0 += out.value.data[0] as u64;
            sums[g].1 += 1;
        }
    }
    for (g, (sum, count)) in sums.iter().enumerate() {
        if *count > 0 {
            println!(
                "  site {g}: {count} activity reports, average activity {:.1}",
                *sum as f64 / *count as f64
            );
        }
    }

    // Every published value reached its whole site by its deadline.
    let mut checked = 0u64;
    for entry in adversary.workload().log() {
        let end = entry.round + entry.spec.deadline;
        for d in &entry.spec.dest {
            checked += 1;
            assert!(
                engine
                    .outputs()
                    .iter()
                    .any(|o| o.process == *d && o.value.wid == entry.spec.id && o.round <= end),
                "report {} missed {d}",
                entry.spec.id
            );
        }
    }
    println!("all {checked} (report, member) deliveries met their deadline ✓");
}
