//! Quickstart: share one confidential rumor with a chosen set of recipients.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! A 16-process system runs CONGOS; process 0 injects a secret destined for
//! three recipients with a 64-round deadline. The confidentiality auditor
//! watches every message on the wire and verifies that nobody outside the
//! destination set could ever reassemble the secret — even though *all*
//! sixteen processes collaborated in carrying its fragments.

use congos::{CongosNode, ConfidentialityAuditor};
use congos_adversary::{CrriAdversary, NoFailures, OneShot, RumorSpec};
use congos_sim::{Engine, EngineConfig, ProcessId, Round};

fn main() {
    let n = 16;
    let source = ProcessId::new(0);
    let recipients = vec![ProcessId::new(3), ProcessId::new(8), ProcessId::new(13)];
    let secret = b"meet at the old lighthouse, midnight".to_vec();

    println!("CONGOS quickstart: {n} processes, source {source}, recipients {recipients:?}");

    // A rumor is ⟨data, deadline, destination set⟩.
    let rumor = RumorSpec::new(0, secret.clone(), 64, recipients.clone());
    let mut adversary = CrriAdversary::new(
        NoFailures,
        OneShot::new(Round(0), vec![(source, rumor)]),
    );

    let mut engine = Engine::<CongosNode>::new(EngineConfig::new(n).seed(42));
    let mut audit = ConfidentialityAuditor::new(n);
    engine.run_observed(65, &mut adversary, &mut audit);

    for out in engine.outputs() {
        println!(
            "  round {:>3}: {} reassembled the secret via {:?}",
            out.round.as_u64(),
            out.process,
            out.value.via
        );
        assert_eq!(out.value.data, secret);
        assert!(recipients.contains(&out.process));
    }
    assert_eq!(engine.outputs().len(), recipients.len());

    // Everyone helped carry fragments…
    println!(
        "fragment receipts across the system: {}",
        audit.report().fragment_receipts
    );
    // …but nobody outside the destination set could reconstruct anything.
    audit.assert_clean();
    println!("confidentiality audit: clean ✓");

    let stats = engine.protocol(source).stats();
    println!(
        "source stats: injected={} confirmed={} fallbacks={} (pipeline confirmed: {})",
        stats.injected,
        stats.confirmed,
        stats.fallbacks,
        stats.fallbacks == 0
    );
}
