//! CONGOS over real localhost TCP sockets.
//!
//! Run with:
//!
//! ```text
//! cargo run --example tcp_cluster
//! ```
//!
//! Eight nodes, each an OS thread with its own TCP listener, execute the
//! protocol in bulk-synchronous rounds over a length-prefixed JSON wire
//! format. Nothing about confidentiality relies on the simulator: the same
//! node code splits, proxies, distributes and confirms over actual sockets.

use confidential_gossip::congos::CongosInput;
use confidential_gossip::net::{run_cluster, NetConfig};
use confidential_gossip::sim::ProcessId;

fn main() {
    let n = 8;
    let secret = b"wire-level secret".to_vec();
    let dest = vec![ProcessId::new(3), ProcessId::new(6)];
    println!("starting {n}-node TCP cluster on 127.0.0.1:18700..{}", 18700 + n);

    let report = run_cluster(
        NetConfig::new(n, 18700).rounds(70).seed(11),
        vec![(
            0,
            ProcessId::new(0),
            CongosInput {
                wid: 0,
                data: secret.clone(),
                deadline: 64,
                dest: dest.clone(),
            },
        )],
    )
    .expect("cluster run");

    for d in &report.deliveries {
        println!(
            "  round {:>3}: {} reassembled the secret via {:?}",
            d.round.as_u64(),
            d.process,
            d.value.via
        );
        assert!(dest.contains(&d.process));
        assert_eq!(d.value.data, secret);
    }
    assert_eq!(report.deliveries.len(), dest.len());
    println!(
        "{} protocol messages crossed real sockets; both recipients — and only \
         they — reassembled the secret ✓",
        report.messages
    );
}
