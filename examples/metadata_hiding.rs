//! The Section 7 extensions in action: hiding destination sets and rumor
//! existence — and what they buy against a source-predicting coalition.
//!
//! Run with:
//!
//! ```text
//! cargo run --example metadata_hiding
//! ```
//!
//! Base CONGOS keeps rumor *contents* confidential, but metadata — who is
//! receiving, how many rumors exist, who spoke first — still circulates.
//! This example turns on both Section 7 countermeasures and shows their
//! price and their payoff: destination hiding multiplies bytes (every
//! rumor becomes `n` same-sized singleton rumors) while message counts
//! barely move; cover traffic keeps the network humming even when nothing
//! real is being said — and that hum is exactly what stops a coalition of
//! curious processes from telling who started the rumor (the E13
//! source-identification metric, `congos_adversary::predict`).

use congos::{
    CongosConfig, CongosInput, CongosMsg, CongosNode, ConfidentialityAuditor, CoverTrafficConfig,
    DeliveredRumor,
};
use congos_adversary::predict::{first_contact_posterior, CoalitionTap, EstimatorCtx};
use congos_adversary::{CrriAdversary, NoFailures, OneShot, RumorSpec};
use congos_sim::engine::{Observer, OutputRecord};
use congos_sim::{Engine, EngineConfig, EnvelopeRef, ProcessId, Round};

/// Audit the run and let a curious coalition watch its own inboxes.
struct AuditAndTap<'a> {
    audit: &'a mut ConfidentialityAuditor,
    tap: &'a mut CoalitionTap,
}

impl Observer<CongosNode> for AuditAndTap<'_> {
    fn on_deliver(&mut self, env: EnvelopeRef<'_, CongosMsg>) {
        self.audit.on_deliver(env);
        Observer::<CongosNode>::on_deliver(self.tap, env);
    }
    fn on_inject(&mut self, round: Round, process: ProcessId, input: &CongosInput) {
        self.audit.on_inject(round, process, input);
    }
    fn on_output(&mut self, rec: &OutputRecord<DeliveredRumor>) {
        self.audit.on_output(rec);
    }
    fn on_crash(&mut self, round: Round, process: ProcessId) {
        self.audit.on_crash(round, process);
    }
    fn on_restart(&mut self, round: Round, process: ProcessId) {
        self.audit.on_restart(round, process);
    }
    fn on_round_end(&mut self, round: Round) {
        self.audit.on_round_end(round);
    }
}

/// Returns (messages, bytes, deliveries, coalition's posterior mass on the
/// true source).
fn run_variant(name: &str, cfg: CongosConfig) -> (u64, u64, usize, f64) {
    let n = 16;
    let source = ProcessId::new(0);
    let dest = vec![ProcessId::new(4), ProcessId::new(11)];
    let secret = b"quarterly numbers: up 12%".to_vec();
    let spec = RumorSpec::new(0, secret.clone(), 64, dest.clone());
    let mut adv = CrriAdversary::new(NoFailures, OneShot::new(Round(0), vec![(source, spec)]));
    let mut audit = ConfidentialityAuditor::new(n);
    // Four curious-but-honest processes pool everything their inboxes see.
    let members: Vec<ProcessId> = [2usize, 5, 9, 13].map(ProcessId::new).to_vec();
    let mut tap = CoalitionTap::new(n, &members);
    let cfg2 = cfg.clone();
    let mut e = Engine::<CongosNode>::with_factory(
        EngineConfig::new(n).seed(1234),
        move |id, n, _s| CongosNode::with_config(id, n, cfg2.clone()),
    );
    e.run_observed(
        66,
        &mut adv,
        &mut AuditAndTap {
            audit: &mut audit,
            tap: &mut tap,
        },
    );
    audit.assert_clean();

    for o in e.outputs() {
        assert!(dest.contains(&o.process));
        assert_eq!(o.value.data, secret);
    }
    // Who started it? First-contact estimation over the rumor-bearing tags.
    let log = tap.log();
    let candidates: Vec<ProcessId> = ProcessId::all(n)
        .filter(|p| !members.contains(p))
        .collect();
    let posterior = first_contact_posterior(&EstimatorCtx {
        log,
        candidates: &candidates,
        injected_at: Round(0),
        tags: &["proxy", "group_dist", "shoot"],
    });
    let source_mass = posterior[candidates.iter().position(|c| *c == source).unwrap()];
    println!(
        "{name:<20} messages {:>7}  bytes {:>9}  deliveries {}  P[source|watch] {:>5.1}%",
        e.metrics().total(),
        e.metrics().total_bytes(),
        e.outputs().len(),
        source_mass * 100.0,
    );
    (
        e.metrics().total(),
        e.metrics().total_bytes(),
        e.outputs().len(),
        source_mass,
    )
}

fn main() {
    println!("one confidential rumor, 16 processes, 2 recipients, 4 curious watchers:\n");
    let (m0, b0, d0, p0) = run_variant("base", CongosConfig::base());
    let (m1, b1, d1, _p1) = run_variant(
        "hide destinations",
        CongosConfig::base().hide_destinations(),
    );
    let (_m2, _b2, d2, p2) = run_variant(
        "plus cover traffic",
        CongosConfig::base()
            .hide_destinations()
            .cover_traffic(CoverTrafficConfig {
                rate: 0.10,
                data_len: 25,
                deadline: 64,
            }),
    );
    assert_eq!((d0, d1, d2), (2, 2, 2), "real deliveries never change");

    println!(
        "\ndestination hiding cost: ×{:.1} messages, ×{:.1} bytes \
         (the paper: message complexity preserved, message size significant)",
        m1 as f64 / m0 as f64,
        b1 as f64 / b0 as f64
    );
    println!(
        "an observer now sees 16 indistinguishable singleton rumors instead of \
         one rumor with a visible 2-process destination set"
    );
    println!(
        "source identification (first-contact estimator, blind guessing = {:.1}%): \
         base {:.1}% -> with cover traffic {:.1}% — decoys make every process \
         look like a first sender (experiment E13 quantifies this across \
         coalition sizes and topologies)",
        100.0 / 12.0,
        p0 * 100.0,
        p2 * 100.0,
    );
    assert!(
        p2 < p0,
        "cover traffic should reduce source identification ({p0:.3} -> {p2:.3})"
    );
}
