//! The Section 7 extensions in action: hiding destination sets and rumor
//! existence.
//!
//! Run with:
//!
//! ```text
//! cargo run --example metadata_hiding
//! ```
//!
//! Base CONGOS keeps rumor *contents* confidential, but metadata — who is
//! receiving, how many rumors exist — still circulates. This example turns
//! on both Section 7 countermeasures and shows their price: destination
//! hiding multiplies bytes (every rumor becomes `n` same-sized singleton
//! rumors) while message counts barely move, and cover traffic keeps the
//! network humming even when nothing real is being said.

use congos::{CongosConfig, CongosNode, ConfidentialityAuditor, CoverTrafficConfig};
use congos_adversary::{CrriAdversary, NoFailures, OneShot, RumorSpec};
use congos_sim::{Engine, EngineConfig, ProcessId, Round};

fn run_variant(name: &str, cfg: CongosConfig) -> (u64, u64, usize) {
    let n = 16;
    let dest = vec![ProcessId::new(4), ProcessId::new(11)];
    let secret = b"quarterly numbers: up 12%".to_vec();
    let spec = RumorSpec::new(0, secret.clone(), 64, dest.clone());
    let mut adv = CrriAdversary::new(
        NoFailures,
        OneShot::new(Round(0), vec![(ProcessId::new(0), spec)]),
    );
    let mut audit = ConfidentialityAuditor::new(n);
    let cfg2 = cfg.clone();
    let mut e = Engine::<CongosNode>::with_factory(
        EngineConfig::new(n).seed(1234),
        move |id, n, _s| CongosNode::with_config(id, n, cfg2.clone()),
    );
    e.run_observed(66, &mut adv, &mut audit);
    audit.assert_clean();

    for o in e.outputs() {
        assert!(dest.contains(&o.process));
        assert_eq!(o.value.data, secret);
    }
    println!(
        "{name:<20} messages {:>7}  bytes {:>9}  deliveries {}",
        e.metrics().total(),
        e.metrics().total_bytes(),
        e.outputs().len()
    );
    (
        e.metrics().total(),
        e.metrics().total_bytes(),
        e.outputs().len(),
    )
}

fn main() {
    println!("one confidential rumor, 16 processes, 2 recipients:\n");
    let (m0, b0, d0) = run_variant("base", CongosConfig::base());
    let (m1, b1, d1) = run_variant(
        "hide destinations",
        CongosConfig::base().hide_destinations(),
    );
    let (_m2, _b2, d2) = run_variant(
        "plus cover traffic",
        CongosConfig::base()
            .hide_destinations()
            .cover_traffic(CoverTrafficConfig {
                rate: 0.02,
                data_len: 25,
                deadline: 64,
            }),
    );
    assert_eq!((d0, d1, d2), (2, 2, 2), "real deliveries never change");

    println!(
        "\ndestination hiding cost: ×{:.1} messages, ×{:.1} bytes \
         (the paper: message complexity preserved, message size significant)",
        m1 as f64 / m0 as f64,
        b1 as f64 / b0 as f64
    );
    println!(
        "an observer now sees 16 indistinguishable singleton rumors instead of \
         one rumor with a visible 2-process destination set"
    );
}
