//! Shared fixtures for the repository-level differential test suites.
//!
//! The integration tests under `tests/` (and any future suite) compare
//! *complete executions*: ordered outputs, per-round per-tag message
//! counts, audit verdicts and the rendered trace. This module centralizes
//! that machinery — the [`Fingerprint`] type, the topology-parameterized
//! [`congos_fingerprint`] runner, the [`fnv1a`] trace digest and the pinned
//! [`GOLDEN_TRACE_DIGEST`] — so every suite asserts against the same
//! fixture instead of each carrying a private copy that can drift.

use congos::{
    AuditReport, CongosInput, CongosMsg, CongosNode, ConfidentialityAuditor, DeliveredRumor,
};
use congos_adversary::predict::{CoalitionTap, SightingLog};
use congos_adversary::{CrriAdversary, FailurePlan, PoissonWorkload};
use congos_sim::engine::{Observer, OutputRecord};
use congos_sim::trace::Tracer;
use congos_sim::{
    Engine, EngineBackend, EngineConfig, EnvelopeRef, ProcessId, Round, TopologySpec,
};

/// Universe size used by every fingerprint run (matches the seed suite).
pub const N: usize = 16;
/// Rounds per fingerprint run.
pub const ROUNDS: u64 = 96;
/// Rumor deadline used by the fingerprint workload.
pub const DEADLINE: u64 = 48;

/// FNV-1a over a rendered trace: a stable 64-bit digest of the execution.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Pinned [`fnv1a`] digest of the seed-42, `NoFailures`, complete-topology
/// trace at [`N`]/[`ROUNDS`]/[`DEADLINE`]. Every backend and the
/// `Complete` topology must reproduce it bit-for-bit: a moved value means
/// semantic drift in the engine, the protocol, or the topology layer's
/// supposedly invisible default path.
pub const GOLDEN_TRACE_DIGEST: u64 = 0x2507_331c_6f82_40be;

/// Everything observable about one run, for exact comparison.
#[derive(PartialEq, Debug)]
pub struct Fingerprint {
    /// Ordered output records, exactly as the engine emitted them.
    pub outputs: Vec<OutputRecord<DeliveredRumor>>,
    /// `per_tag[t]` — round `t`'s (tag, count) pairs.
    pub per_tag: Vec<Vec<(&'static str, u64)>>,
    /// The confidentiality auditor's verdict.
    pub audit: AuditReport,
    /// The rendered execution trace.
    pub trace: String,
}

impl Fingerprint {
    /// The ordered `(rumor id, destination)` delivery set.
    pub fn delivery_set(&self) -> Vec<(u64, usize)> {
        self.outputs
            .iter()
            .map(|o| (o.value.wid, o.process.as_usize()))
            .collect()
    }
}

/// Observer fan-out: audit and trace the same run.
struct AuditAndTrace<'a> {
    audit: &'a mut ConfidentialityAuditor,
    tracer: &'a mut Tracer,
}

impl Observer<CongosNode> for AuditAndTrace<'_> {
    fn on_deliver(&mut self, env: EnvelopeRef<'_, CongosMsg>) {
        self.audit.on_deliver(env);
        Observer::<CongosNode>::on_deliver(self.tracer, env);
    }
    fn on_inject(&mut self, round: Round, process: ProcessId, input: &CongosInput) {
        self.audit.on_inject(round, process, input);
        Observer::<CongosNode>::on_inject(self.tracer, round, process, input);
    }
    fn on_output(&mut self, rec: &OutputRecord<DeliveredRumor>) {
        self.audit.on_output(rec);
        Observer::<CongosNode>::on_output(self.tracer, rec);
    }
    fn on_crash(&mut self, round: Round, process: ProcessId) {
        self.audit.on_crash(round, process);
        Observer::<CongosNode>::on_crash(self.tracer, round, process);
    }
    fn on_restart(&mut self, round: Round, process: ProcessId) {
        self.audit.on_restart(round, process);
        Observer::<CongosNode>::on_restart(self.tracer, round, process);
    }
    fn on_round_end(&mut self, round: Round) {
        self.audit.on_round_end(round);
        Observer::<CongosNode>::on_round_end(self.tracer, round);
    }
}

/// Runs CONGOS on the given backend, topology, seed and failure plan and
/// returns the full [`Fingerprint`] (audited and traced throughout).
///
/// The workload is the suite's fixed Poisson stream keyed by `seed`, so two
/// calls differing only in `backend` see byte-identical inputs — any
/// fingerprint difference is the engine's fault, not the workload's.
pub fn congos_fingerprint<F: FailurePlan>(
    backend: EngineBackend,
    topology: TopologySpec,
    seed: u64,
    failures: F,
) -> Fingerprint {
    congos_fingerprint_tapped(backend, topology, seed, failures, &[]).0
}

/// [`congos_fingerprint`] with a passive observing coalition tapped into
/// the delivery phase (`members` empty = no tap, plain fingerprint).
///
/// Returns the fingerprint *and* the coalition's sighting log. Observers
/// run outside the engine's RNG streams, so the fingerprint — trace digest
/// included — must be bit-identical whether or not a tap listens; the
/// differential suite pins exactly that.
pub fn congos_fingerprint_tapped<F: FailurePlan>(
    backend: EngineBackend,
    topology: TopologySpec,
    seed: u64,
    failures: F,
    members: &[ProcessId],
) -> (Fingerprint, SightingLog) {
    let workload =
        PoissonWorkload::new(0.05, 3, DEADLINE, seed ^ 0xD1FF).until(Round(ROUNDS - DEADLINE));
    let mut adv = CrriAdversary::new(failures, workload);
    let mut audit = ConfidentialityAuditor::new(N);
    let mut tracer = Tracer::new(1 << 20);
    let mut tap = CoalitionTap::new(N, members);
    let mut engine =
        Engine::<CongosNode>::new(EngineConfig::new(N).seed(seed).topology(topology));
    {
        let mut obs = TapAuditAndTrace {
            base: AuditAndTrace {
                audit: &mut audit,
                tracer: &mut tracer,
            },
            tap: &mut tap,
        };
        engine.run_observed_backend(backend, ROUNDS, &mut adv, &mut obs);
    }
    let per_tag = (0..ROUNDS)
        .map(|t| engine.metrics().round(t).iter().collect())
        .collect();
    assert_eq!(tracer.dropped(), 0, "trace must be complete for the digest");
    let fp = Fingerprint {
        per_tag,
        audit: audit.report().clone(),
        trace: tracer.render(),
        outputs: engine.into_outputs(),
    };
    (fp, tap.into_log())
}

/// Observer fan-out: the audit + trace pair, plus the coalition tap.
struct TapAuditAndTrace<'a> {
    base: AuditAndTrace<'a>,
    tap: &'a mut CoalitionTap,
}

impl Observer<CongosNode> for TapAuditAndTrace<'_> {
    fn on_deliver(&mut self, env: EnvelopeRef<'_, CongosMsg>) {
        self.base.on_deliver(env);
        Observer::<CongosNode>::on_deliver(self.tap, env);
    }
    fn on_inject(&mut self, round: Round, process: ProcessId, input: &CongosInput) {
        self.base.on_inject(round, process, input);
    }
    fn on_output(&mut self, rec: &OutputRecord<DeliveredRumor>) {
        self.base.on_output(rec);
    }
    fn on_crash(&mut self, round: Round, process: ProcessId) {
        self.base.on_crash(round, process);
    }
    fn on_restart(&mut self, round: Round, process: ProcessId) {
        self.base.on_restart(round, process);
    }
    fn on_round_end(&mut self, round: Round) {
        self.base.on_round_end(round);
    }
}
