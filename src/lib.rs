//! # confidential-gossip
//!
//! A production-quality Rust implementation of **CONGOS** — the
//! confidential continuous-gossip algorithm of Georgiou, Gilbert & Kowalski
//! (*Confidential Gossip*, ICDCS 2011 / Distributed Computing) — together
//! with its substrate, baselines, adversaries, experiment harness and
//! deployment runtimes. This crate is the facade: it re-exports every
//! workspace crate under one roof.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `congos-sim` | synchronous-round CRRI-model engine, threaded runtime, metrics, tracing |
//! | [`adversary`] | `congos-adversary` | crash/restart strategies and rumor workloads |
//! | [`gossip`] | `congos-gossip` | the continuous-gossip substrate (randomized + expander modes) |
//! | [`congos`] | `congos` | **the paper's algorithm**: splitting, partitions, Proxy, GroupDistribution, auditor, extensions |
//! | [`baselines`] | `congos-baselines` | direct / strongly-confidential / epidemic / crypto comparators |
//! | [`harness`] | `congos-harness` | experiments E1–E12 reproducing the paper's theorems |
//! | [`net`] | `congos-net` | localhost-TCP cluster runtime and the `congos-node` process binary |
//!
//! ## Sixty seconds to a confidential rumor
//!
//! ```
//! use confidential_gossip::congos::oneshot::{share, OneshotRumor};
//! use confidential_gossip::sim::ProcessId;
//!
//! let report = share(
//!     16,   // processes
//!     7,    // seed
//!     &[OneshotRumor {
//!         data: b"for the committee only".to_vec(),
//!         source: ProcessId::new(0),
//!         dest: vec![ProcessId::new(4), ProcessId::new(9)],
//!         deadline: 64,
//!     }],
//! );
//! // Both recipients — and only they — reassembled the rumor, on time,
//! // and the built-in audit verified nobody else ever could have.
//! assert_eq!(report.deliveries.len(), 2);
//! assert!(report.deliveries.iter().all(|d| d.round <= 64));
//! ```
//!
//! See the repository's `README.md`, `DESIGN.md`, `PAPER_MAPPING.md` and
//! `EXPERIMENTS.md` for the architecture, the paper↔code index, and the
//! measured reproduction of every theorem.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod testkit;

pub use congos;
pub use congos_adversary as adversary;
pub use congos_baselines as baselines;
pub use congos_gossip as gossip;
pub use congos_harness as harness;
pub use congos_net as net;
pub use congos_sim as sim;
