//! `--backend net[:port]` flag plumbing, in an isolated process.
//!
//! The net default is a process-wide `OnceLock` (first writer wins), so
//! this lives in its own integration-test binary: nothing else here may
//! touch the backend/net defaults before the assertions run.

use congos_harness::{default_net, init_backend_from_args, RunSpec, DEFAULT_NET_PORT};
use congos_sim::EngineBackend;

#[test]
fn backend_net_flag_reroutes_every_runspec() {
    assert_eq!(DEFAULT_NET_PORT, 20700);

    let args: Vec<String> = ["--backend", "net:21400"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    // The engine backend is untouched by `net` — the returned value is
    // whatever the engine default resolves to.
    let backend = init_backend_from_args(&args);
    assert!(matches!(
        backend,
        EngineBackend::Sequential | EngineBackend::Parallel { .. } | EngineBackend::Auto
    ));

    assert_eq!(default_net(), Some(21400));
    let spec = RunSpec::new(8, 1, 10);
    assert_eq!(
        spec.net,
        Some(21400),
        "every RunSpec::new must pick up the process-wide net default"
    );
    // An explicit builder port still overrides the default.
    assert_eq!(RunSpec::new(8, 1, 10).net(21500).net, Some(21500));
}
