//! Fixed-width table rendering (stdout) and CSV export.

use std::fmt::Write as _;

/// A result table: the unit every experiment produces.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a free-form note printed under the table.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor (row-major), for assertions in tests.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Renders the fixed-width form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1))));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }

    /// Renders CSV (headers + rows; notes as trailing comments).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        for note in &self.notes {
            let _ = writeln!(out, "# {note}");
        }
        out
    }

    /// Prints the fixed-width form to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Renders the table as a JSON object (title, headers, rows, notes).
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::object([
            ("title", Json::from(self.title.clone())),
            ("headers", Json::from(self.headers.clone())),
            (
                "rows",
                Json::Array(self.rows.iter().cloned().map(Json::from).collect()),
            ),
            ("notes", Json::from(self.notes.clone())),
        ])
    }
}

/// Formats a float with 2 decimals (table convenience).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Renders a set of tables as a markdown document (used by `exp_report`).
pub fn tables_to_markdown(tables: &[Table]) -> String {
    let mut out = String::new();
    for t in tables {
        let _ = writeln!(out, "## {}
", t.title);
        let _ = writeln!(out, "| {} |", t.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            t.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        for row in &t.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        for note in &t.notes {
            let _ = writeln!(out, "
> {note}");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns_and_notes() {
        let mut t = Table::new("demo", &["n", "value"]);
        t.row(vec!["8".into(), "123".into()]);
        t.row(vec!["128".into(), "7".into()]);
        t.note("shape holds");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("note: shape holds"));
        assert_eq!(t.cell(1, 0), "128");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().next(), Some("a,b"));
        assert_eq!(csv.lines().nth(1), Some("1,2"));
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("hello");
        let md = tables_to_markdown(&[t]);
        assert!(md.contains("## demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("> hello"));
    }

    #[test]
    fn json_shape() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into()]);
        t.note("n");
        let j = t.to_json();
        assert_eq!(j["title"], "demo");
        assert_eq!(j["rows"][0][0], "1");
        assert_eq!(j["notes"][0], "n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
