//! # congos-harness — experiments reproducing the paper's claims
//!
//! *Confidential Gossip* is a theory paper: its "evaluation" is a set of
//! theorems and lemmas. This crate turns each quantitative claim into a
//! measurable experiment over the simulator, and prints the tables recorded
//! in `EXPERIMENTS.md`. Experiment ids match DESIGN.md §4:
//!
//! | id | claim |
//! |----|-------|
//! | E1 | Theorem 1 — the price of strong confidentiality |
//! | E2 | Theorem 2 — confidentiality + Quality of Delivery, always |
//! | E3 | Lemma 7 / Theorem 11 — per-round message complexity |
//! | E4 | Lemma 5 / Lemma 13 — partition goodness |
//! | E5 | Theorem 12 — collusion lower bound (border messages) |
//! | E6 | Theorem 16 — the `τ²` cost of collusion tolerance |
//! | E7 | Robustness — QoD and fallback rate under churn |
//! | E8 | Alternative approaches — CONGOS vs direct/crypto/epidemic |
//! | E9 | Ablations — partitions, fanout constants, substrate strategy |
//! | E10 | Section 7 — metadata-hiding costs |
//! | E11 | Section 7 — communication complexity in bytes |
//! | E12 | Section 7 — adaptive vs oblivious adversary power |
//! | E13 | Source anonymity — who started this rumor, and can CONGOS hide it? |
//! | E14 | Beyond the complete graph — QoD/complexity vs topology |
//!
//! Run any experiment with `cargo run --release -p congos-harness --bin
//! exp_e1` (etc.), or all of them with `exp_all`. Pass `--full` for the
//! larger sweeps, and `--backend <seq|par[:N]>` (or set `CONGOS_BACKEND`)
//! to pick the execution backend — results are bit-identical on every
//! backend; only wall-clock time changes. Pass `--topology
//! <complete|expander:d|churn:p>` (or set `CONGOS_TOPOLOGY`) to run an
//! experiment on a sparser or churning network — unlike the backend, the
//! topology *does* change measured outcomes.

// `deny`, not `forbid`: `mem` carries the one sanctioned exception — the
// counting global allocator — under a scoped `#[allow(unsafe_code)]`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod json;
pub mod mem;
pub mod netrun;
pub mod run;
pub mod stats;
pub mod system;
pub mod table;

pub use json::Json;
pub use mem::{MemSample, MemUsage};
pub use netrun::{assert_failure_free, materialize_injections, NetRunReport, NetStats};
pub use run::{
    default_backend, default_net, default_topology, init_backend_from_args,
    init_topology_from_args, run, run_with_factory, set_default_backend, set_default_net,
    set_default_topology, DeliveryRecord, Logged, QodSummary, RunOutcome, RunSpec, TapSpec,
    DEFAULT_NET_PORT,
};
pub use stats::{fit_power_law, percentile};
pub use system::GossipSystem;
pub use table::{tables_to_markdown, Table};
