//! Small statistics helpers for experiment tables.

/// Least-squares slope of `ln(y)` against `ln(x)` — the empirical exponent
/// `b` of a power law `y ≈ a·x^b`. Points with non-positive coordinates are
/// skipped; returns 0 when fewer than two usable points remain.
pub fn fit_power_law(xs: &[f64], ys: &[f64]) -> f64 {
    let pts: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter(|(x, y)| **x > 0.0 && **y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    if pts.len() < 2 {
        return 0.0;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|(x, _)| x).sum();
    let sy: f64 = pts.iter().map(|(_, y)| y).sum();
    let sxx: f64 = pts.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = pts.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        0.0
    } else {
        (n * sxy - sx * sy) / denom
    }
}

/// The `p`-th percentile (0–100) of a sample, by nearest-rank; 0 for empty
/// input.
pub fn percentile(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Arithmetic mean (0 for empty input).
pub fn mean(samples: &[u64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<u64>() as f64 / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_recovers_exponent() {
        let xs: Vec<f64> = (1..=6).map(|i| (1 << i) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(1.5)).collect();
        let b = fit_power_law(&xs, &ys);
        assert!((b - 1.5).abs() < 1e-9, "got {b}");
    }

    #[test]
    fn power_law_handles_degenerate_input() {
        assert_eq!(fit_power_law(&[], &[]), 0.0);
        assert_eq!(fit_power_law(&[1.0], &[2.0]), 0.0);
        assert_eq!(fit_power_law(&[1.0, 1.0], &[2.0, 4.0]), 0.0);
        assert_eq!(fit_power_law(&[0.0, -1.0], &[2.0, 4.0]), 0.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let s = [10u64, 20, 30, 40, 50];
        assert_eq!(percentile(&s, 0.0), 10);
        assert_eq!(percentile(&s, 50.0), 30);
        assert_eq!(percentile(&s, 100.0), 50);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn mean_works() {
        assert_eq!(mean(&[1, 2, 3]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
