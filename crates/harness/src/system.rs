//! Uniform view over the protocols under test.

use congos::{CongosNode, DeliveredRumor};
use congos_adversary::RumorSpec;
use congos_baselines::{CryptoMulticastNode, DirectNode, StronglyConfidentialNode};
use congos_gossip::standalone::Delivered;
use congos_gossip::GossipNode;
use congos_sim::Protocol;

/// A gossip protocol the harness can run generically: its input can be built
/// from a [`RumorSpec`] and its outputs expose the workload rumor id.
pub trait GossipSystem: Protocol + 'static
where
    Self::Input: From<RumorSpec>,
{
    /// Display name in tables.
    const NAME: &'static str;

    /// Workload id of a delivered output.
    fn wid_of(out: &Self::Output) -> u64;
}

impl GossipSystem for CongosNode {
    const NAME: &'static str = "congos";
    fn wid_of(out: &DeliveredRumor) -> u64 {
        out.wid
    }
}

impl GossipSystem for GossipNode {
    const NAME: &'static str = "epidemic";
    fn wid_of(out: &Delivered) -> u64 {
        out.wid
    }
}

impl GossipSystem for DirectNode {
    const NAME: &'static str = "direct";
    fn wid_of(out: &Delivered) -> u64 {
        out.wid
    }
}

impl GossipSystem for StronglyConfidentialNode {
    const NAME: &'static str = "strong";
    fn wid_of(out: &Delivered) -> u64 {
        out.wid
    }
}

impl GossipSystem for CryptoMulticastNode {
    const NAME: &'static str = "crypto";
    fn wid_of(out: &Delivered) -> u64 {
        out.wid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let names = [
            <CongosNode as GossipSystem>::NAME,
            <GossipNode as GossipSystem>::NAME,
            <DirectNode as GossipSystem>::NAME,
            <StronglyConfidentialNode as GossipSystem>::NAME,
            <CryptoMulticastNode as GossipSystem>::NAME,
        ];
        let mut dedup = names.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
