//! Uniform view over the protocols under test.

use congos::{CongosNode, DeliveredRumor};
use congos_adversary::RumorSpec;
use congos_baselines::{CryptoMulticastNode, DirectNode, StronglyConfidentialNode};
use congos_gossip::standalone::Delivered;
use congos_gossip::GossipNode;
use congos_sim::{ProcessId, Protocol, TopologySpec};

use crate::netrun::{NetRunReport, ScheduledInjection};

/// A gossip protocol the harness can run generically: its input can be built
/// from a [`RumorSpec`] and its outputs expose the workload rumor id.
pub trait GossipSystem: Protocol + 'static
where
    Self::Input: From<RumorSpec>,
{
    /// Display name in tables.
    const NAME: &'static str;

    /// Workload id of a delivered output.
    fn wid_of(out: &Self::Output) -> u64;

    /// Runs this protocol over the localhost TCP cluster runtime with a
    /// pre-materialized injection schedule (see [`crate::netrun`]), if the
    /// protocol has a networked deployment. `None` means it doesn't —
    /// the default; only protocols with a wire codec can leave the process.
    ///
    /// `watch` lists observing-coalition nodes (usually empty): each
    /// watched node records the `(round, sender, tag)` metadata of its
    /// deliveries into [`NetRunReport::sightings`] — the networked leg of
    /// the E13 source-prediction tap.
    fn net_run(
        _n: usize,
        _seed: u64,
        _rounds: u64,
        _topology: TopologySpec,
        _base_port: u16,
        _injections: Vec<ScheduledInjection>,
        _watch: Vec<ProcessId>,
    ) -> Option<std::io::Result<NetRunReport>> {
        None
    }
}

impl GossipSystem for CongosNode {
    const NAME: &'static str = "congos";
    fn wid_of(out: &DeliveredRumor) -> u64 {
        out.wid
    }

    fn net_run(
        n: usize,
        seed: u64,
        rounds: u64,
        topology: TopologySpec,
        base_port: u16,
        injections: Vec<ScheduledInjection>,
        watch: Vec<ProcessId>,
    ) -> Option<std::io::Result<NetRunReport>> {
        let cfg = congos_net::NetConfig::new(n, base_port)
            .seed(seed)
            .rounds(rounds)
            .topology(topology)
            .watch(watch);
        let injections = injections
            .into_iter()
            .map(|(round, source, spec)| (round, source, congos::CongosInput::from(spec)))
            .collect();
        Some(congos_net::run_cluster(cfg, injections).map(|report| NetRunReport {
            deliveries: report
                .deliveries
                .iter()
                .map(|o| (o.value.wid, o.process, o.round))
                .collect(),
            messages: report.messages,
            topology_drops: report.topology_drops,
            sightings: report.sightings,
        }))
    }
}

impl GossipSystem for GossipNode {
    const NAME: &'static str = "epidemic";
    fn wid_of(out: &Delivered) -> u64 {
        out.wid
    }
}

impl GossipSystem for DirectNode {
    const NAME: &'static str = "direct";
    fn wid_of(out: &Delivered) -> u64 {
        out.wid
    }
}

impl GossipSystem for StronglyConfidentialNode {
    const NAME: &'static str = "strong";
    fn wid_of(out: &Delivered) -> u64 {
        out.wid
    }
}

impl GossipSystem for CryptoMulticastNode {
    const NAME: &'static str = "crypto";
    fn wid_of(out: &Delivered) -> u64 {
        out.wid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let names = [
            <CongosNode as GossipSystem>::NAME,
            <GossipNode as GossipSystem>::NAME,
            <DirectNode as GossipSystem>::NAME,
            <StronglyConfidentialNode as GossipSystem>::NAME,
            <CryptoMulticastNode as GossipSystem>::NAME,
        ];
        let mut dedup = names.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
