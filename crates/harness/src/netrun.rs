//! Running harness workloads on the networked (TCP cluster) backend.
//!
//! The engine feeds adversary plans a live [`RoundView`] every round; a TCP
//! cluster cannot (nodes are independent processes/threads with no
//! lock-step oracle). The bridge is *materialization*: dry-run the
//! injection plan against a synthetic failure-free view — every process
//! alive, outboxes unseen — to extract a static `(round, source, spec)`
//! schedule, then hand that schedule to the cluster runtime.
//!
//! Materialization is faithful exactly for **oblivious** workloads: plans
//! that decide from `(round, rng)` alone, like the stock `OneShot` /
//! `PoissonWorkload` / `Theorem1Workload` generators. A plan that adapts to
//! `view.outbox` or to crashes would see a different trajectory; the
//! networked backend is failure-free by construction (see
//! `congos_sim::threaded` for why adaptive adversaries are definitionally
//! lock-step constructs), and [`assert_failure_free`] rejects failure plans
//! that try to schedule anything.

use congos_adversary::{FailurePlan, InjectionPlan, RumorSpec};
use congos_sim::{ProcessId, Round, RoundView};

/// One materialized injection: round, source process, and the spec.
pub type ScheduledInjection = (u64, ProcessId, RumorSpec);

/// Dry-runs `workload` for `rounds` rounds against a synthetic failure-free
/// view (all `n` processes alive, no outbox visibility) and returns the
/// static injection schedule it produces. The plan's log fills in as a side
/// effect, so QoD accounting can use `Logged::entries` afterwards exactly
/// as the engine path does.
pub fn materialize_injections<W: InjectionPlan>(
    n: usize,
    rounds: u64,
    workload: &mut W,
) -> Vec<ScheduledInjection> {
    let alive = vec![true; n];
    let mut schedule = Vec::new();
    for r in 0..rounds {
        let view = RoundView {
            round: Round(r),
            alive: &alive,
            outbox: &[],
        };
        for (source, spec) in workload.decide_injections(&view) {
            schedule.push((r, source, spec));
        }
    }
    schedule
}

/// Dry-runs `failures` against the same synthetic view and panics if the
/// plan ever schedules a crash or restart: the networked backend is
/// failure-free, and silently dropping a failure plan would misreport an
/// experiment as having survived churn it never saw.
///
/// # Panics
///
/// Panics if the plan emits any crash or restart within `rounds` rounds.
pub fn assert_failure_free<F: FailurePlan>(n: usize, rounds: u64, failures: &mut F) {
    let alive = vec![true; n];
    for r in 0..rounds {
        let view = RoundView {
            round: Round(r),
            alive: &alive,
            outbox: &[],
        };
        let (crashes, restarts) = failures.decide_failures(&view);
        assert!(
            crashes.is_empty() && restarts.is_empty(),
            "the networked backend is failure-free, but the failure plan \
             scheduled {} crash(es) and {} restart(s) at round {r}; run \
             failure experiments on the in-process engine",
            crashes.len(),
            restarts.len(),
        );
    }
}

/// What a networked protocol run reports back to the harness: deliveries in
/// the engine's output shape plus the transport's own counters.
#[derive(Clone, Debug, Default)]
pub struct NetRunReport {
    /// Deliveries as `(wid, process, round)`.
    pub deliveries: Vec<(u64, ProcessId, Round)>,
    /// Protocol messages sent over sockets (self-deliveries excluded).
    pub messages: u64,
    /// Outbound messages dropped by the topology gate.
    pub topology_drops: u64,
    /// Observing-coalition sightings `(round, observer, sender, tag)` from
    /// the watched nodes (empty when no coalition was attached).
    pub sightings: Vec<(Round, ProcessId, ProcessId, congos_sim::Tag)>,
}

/// Socket-level counters of a networked run, attached to
/// [`RunOutcome`](crate::run::RunOutcome) when the run executed over TCP.
/// The in-process engine meters per-round, per-tag instead (see
/// `RunOutcome::metrics`); sockets only see whole frames, so the networked
/// backend reports these coarser totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Protocol messages sent over sockets (self-deliveries excluded).
    pub messages: u64,
    /// Outbound messages dropped by the topology gate.
    pub topology_drops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use congos_adversary::{NoFailures, OneShot, PoissonWorkload, RandomChurn};
    use crate::run::Logged;

    #[test]
    fn materializes_oneshot_and_fills_log() {
        let spec = RumorSpec::new(7, vec![1, 2], 32, vec![ProcessId::new(2)]);
        let mut w = OneShot::new(Round(3), vec![(ProcessId::new(0), spec.clone())]);
        let schedule = materialize_injections(4, 10, &mut w);
        assert_eq!(schedule, vec![(3, ProcessId::new(0), spec)]);
        assert_eq!(w.entries().len(), 1);
        assert_eq!(w.entries()[0].round, Round(3));
    }

    #[test]
    fn materialized_poisson_matches_engine_trajectory() {
        // Poisson is oblivious (round + rng only), so materializing it must
        // produce the identical schedule a failure-free engine run sees.
        let mk = || PoissonWorkload::new(0.2, 2, 16, 5).until(Round(12));
        let mut a = mk();
        let mut b = mk();
        let sched_a = materialize_injections(6, 20, &mut a);
        let sched_b = materialize_injections(6, 20, &mut b);
        assert_eq!(sched_a, sched_b, "materialization is deterministic");
        assert!(!sched_a.is_empty(), "rate 0.2 over 6x12 should inject");
        assert_eq!(a.entries().len(), sched_a.len());
    }

    #[test]
    fn failure_free_plans_pass() {
        assert_failure_free(8, 50, &mut NoFailures);
    }

    #[test]
    #[should_panic(expected = "failure-free")]
    fn churn_plans_are_rejected() {
        // High-rate churn over plenty of rounds is certain to schedule.
        assert_failure_free(16, 200, &mut RandomChurn::new(0.5, 0.0, 1));
    }
}
