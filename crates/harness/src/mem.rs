//! Memory accounting: a peak-RSS / bytes-allocated probe.
//!
//! Two complementary signals, both cheap enough to sample around every run:
//!
//! * **Resident set** from `/proc/self/status` — `VmRSS` (current) and
//!   `VmHWM` (the process-lifetime high-water mark). The high-water mark is
//!   monotone, so sweeping points from small `n` to large `n` attributes
//!   each point's *increment* to that point.
//! * **Allocator counters** from the [`CountingAlloc`] installed as the
//!   crate's global allocator: cumulative bytes allocated, live bytes, and
//!   the live-bytes high-water mark. Unlike RSS these see every allocation,
//!   including ones the OS never had to back with new pages.
//!
//! On platforms without `/proc` the RSS fields read as 0; the allocator
//! counters always work.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative bytes ever allocated.
static ALLOCATED: AtomicU64 = AtomicU64::new(0);
/// Bytes currently live (allocated − freed).
static LIVE: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`LIVE`].
static LIVE_PEAK: AtomicU64 = AtomicU64::new(0);

/// A counting wrapper around the system allocator. Installed as this
/// crate's `#[global_allocator]`, so every binary and test that links the
/// harness gets allocation accounting for free (two relaxed atomic ops per
/// allocation).
pub struct CountingAlloc;

fn on_alloc(size: usize) {
    ALLOCATED.fetch_add(size as u64, Ordering::Relaxed);
    let live = LIVE.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    LIVE_PEAK.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size as u64, Ordering::Relaxed);
}

#[allow(unsafe_code)]
// SAFETY: defers to `System` for every operation; the counters are purely
// observational and never influence allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

#[allow(unsafe_code)]
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Reads a `kB`-denominated field from `/proc/self/status`, in bytes.
/// Returns 0 when the file or the field is unavailable (non-Linux hosts).
fn proc_status_bytes(field: &str) -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let kb = rest
                .trim_start_matches(':')
                .trim()
                .trim_end_matches("kB")
                .trim();
            return kb.parse::<u64>().unwrap_or(0) * 1024;
        }
    }
    0
}

/// Current resident set size in bytes (`VmRSS`; 0 if unavailable).
pub fn current_rss_bytes() -> u64 {
    proc_status_bytes("VmRSS")
}

/// Process-lifetime peak resident set size in bytes (`VmHWM`; 0 if
/// unavailable). Monotone non-decreasing.
pub fn peak_rss_bytes() -> u64 {
    proc_status_bytes("VmHWM")
}

/// Cumulative bytes ever allocated through the global allocator.
pub fn bytes_allocated() -> u64 {
    ALLOCATED.load(Ordering::Relaxed)
}

/// Bytes currently live (allocated − freed).
pub fn bytes_live() -> u64 {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark of live bytes. Monotone non-decreasing.
pub fn bytes_live_peak() -> u64 {
    LIVE_PEAK.load(Ordering::Relaxed)
}

/// A point-in-time snapshot of every probe signal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemSample {
    /// Current resident set (`VmRSS`), bytes; 0 if unavailable.
    pub rss: u64,
    /// Peak resident set (`VmHWM`), bytes; 0 if unavailable.
    pub peak_rss: u64,
    /// Cumulative bytes allocated so far.
    pub allocated: u64,
    /// Live heap bytes.
    pub live: u64,
    /// High-water mark of live heap bytes.
    pub live_peak: u64,
}

impl MemSample {
    /// Takes a snapshot now.
    pub fn now() -> MemSample {
        MemSample {
            rss: current_rss_bytes(),
            peak_rss: peak_rss_bytes(),
            allocated: bytes_allocated(),
            live: bytes_live(),
            live_peak: bytes_live_peak(),
        }
    }
}

/// Before/after memory accounting of one measured region (e.g. one
/// [`crate::run`] call), plus its wall-clock time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MemUsage {
    /// Snapshot at region entry.
    pub before: MemSample,
    /// Snapshot at region exit.
    pub after: MemSample,
    /// Wall-clock milliseconds spent in the region.
    pub wall_ms: f64,
}

impl MemUsage {
    /// Bytes allocated inside the region.
    pub fn allocated_delta(&self) -> u64 {
        self.after.allocated.saturating_sub(self.before.allocated)
    }

    /// Peak-RSS growth across the region (0 when the region stayed under
    /// the pre-existing high-water mark).
    pub fn peak_rss_delta(&self) -> u64 {
        self.after.peak_rss.saturating_sub(self.before.peak_rss)
    }
}

/// Formats a byte count as mebibytes with one decimal.
pub fn mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Prints a one-line process memory summary to stderr. Called by the
/// `exp_*` binaries at exit so every experiment reports its footprint.
pub fn print_process_summary(label: &str) {
    eprintln!(
        "[{label}] peak-RSS {} MiB (now {} MiB), heap: {} MiB allocated, {} MiB live-peak",
        mib(peak_rss_bytes()),
        mib(current_rss_bytes()),
        mib(bytes_allocated()),
        mib(bytes_live_peak()),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_counters_move() {
        let before = MemSample::now();
        let v: Vec<u8> = vec![0xAB; 1 << 20];
        let after = MemSample::now();
        assert!(
            after.allocated >= before.allocated + (1 << 20),
            "cumulative allocation must include the 1 MiB buffer"
        );
        assert!(after.live_peak >= before.live_peak);
        drop(v);
        assert!(bytes_live() < after.live);
    }

    #[test]
    fn rss_probe_reads_proc_when_present() {
        let rss = current_rss_bytes();
        let peak = peak_rss_bytes();
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(rss > 0, "VmRSS should be non-zero on Linux");
            assert!(peak >= rss, "high-water mark below current RSS");
        } else {
            assert_eq!(rss, 0);
        }
    }

    #[test]
    fn mem_usage_deltas_saturate() {
        let usage = MemUsage {
            before: MemSample {
                allocated: 10,
                peak_rss: 100,
                ..MemSample::default()
            },
            after: MemSample::default(),
            wall_ms: 0.0,
        };
        assert_eq!(usage.allocated_delta(), 0);
        assert_eq!(usage.peak_rss_delta(), 0);
        assert_eq!(mib(1024 * 1024 * 3 / 2), "1.5");
    }
}
