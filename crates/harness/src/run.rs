//! Generic experiment runner with Quality-of-Delivery accounting.

use congos_adversary::predict::{CoalitionSpec, CoalitionTap, Sighting, SightingLog};
use congos_adversary::{
    CrriAdversary, FailurePlan, InjectionLogEntry, InjectionPlan, OneShot, PoissonWorkload,
    RumorSpec, StableGroupWorkload, Theorem1Workload,
};
use congos_sim::{Engine, EngineBackend, EngineConfig, Metrics, ProcessId, Round, TopologySpec};

use crate::system::GossipSystem;

/// Access to the injections a workload has emitted (for QoD accounting).
pub trait Logged {
    /// Entries emitted so far.
    fn entries(&self) -> &[InjectionLogEntry];
}

impl Logged for OneShot {
    fn entries(&self) -> &[InjectionLogEntry] {
        self.log()
    }
}

impl Logged for PoissonWorkload {
    fn entries(&self) -> &[InjectionLogEntry] {
        self.log()
    }
}

impl Logged for Theorem1Workload {
    fn entries(&self) -> &[InjectionLogEntry] {
        self.log()
    }
}

impl Logged for StableGroupWorkload {
    fn entries(&self) -> &[InjectionLogEntry] {
        self.log()
    }
}

/// Parameters of one run.
#[derive(Clone, Copy, Debug)]
pub struct RunSpec {
    /// Number of processes.
    pub n: usize,
    /// Master seed.
    pub seed: u64,
    /// Rounds to execute.
    pub rounds: u64,
    /// Execution backend (outcome-invariant; affects wall clock only).
    pub backend: EngineBackend,
    /// Communication topology (changes the measured outcome, unlike the
    /// backend: sparser topologies drop undeliverable links).
    pub topology: TopologySpec,
    /// Whether to sample the memory probe (peak-RSS + allocator counters)
    /// around the engine run. Cheap (two `/proc` reads and a handful of
    /// atomic loads); on by default. When off, [`RunOutcome::mem`] is
    /// zeroed.
    pub probe_mem: bool,
    /// When `Some(base_port)`, the run executes on the networked backend: a
    /// localhost TCP cluster on ports `base_port..base_port+n` instead of
    /// the in-process engine. Networked runs are failure-free and require
    /// an oblivious workload (see [`crate::netrun`]); only protocols with a
    /// wire codec support it ([`GossipSystem::net_run`]).
    pub net: Option<u16>,
    /// When `Some`, an observing coalition (the E13 source-prediction
    /// adversary) is attached to the run: its members record delivery
    /// metadata into [`RunOutcome::tap`]. The tap is an RNG-neutral
    /// observer on the engine path and an inbox-metadata recorder on the
    /// networked path; either way the measured execution is bit-identical
    /// to an untapped run.
    pub tap: Option<TapSpec>,
}

/// An observing coalition attached to a run (see [`RunSpec::tap`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TapSpec {
    /// Who observes: the deterministic coalition draw.
    pub coalition: CoalitionSpec,
    /// A process the coalition must not contain — normally the trial's
    /// rumor source (the adversary is *looking for* the source, so the
    /// source is not one of its observers).
    pub exclude: Option<ProcessId>,
}

impl TapSpec {
    /// The coalition members this spec resolves to for `n` processes.
    pub fn members(&self, n: usize) -> Vec<ProcessId> {
        self.coalition.members(n, self.exclude)
    }
}

impl RunSpec {
    /// Spec for `n` processes, `rounds` rounds, on the process-wide default
    /// backend (see [`default_backend`]) and default topology (see
    /// [`default_topology`]).
    pub fn new(n: usize, seed: u64, rounds: u64) -> Self {
        RunSpec {
            n,
            seed,
            rounds,
            backend: default_backend(),
            topology: default_topology(),
            probe_mem: true,
            net: default_net(),
            tap: None,
        }
    }

    /// Selects the execution backend (the measured outcome is identical on
    /// every backend; only wall-clock time changes).
    pub fn backend(mut self, backend: EngineBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the communication topology.
    pub fn topology(mut self, topology: TopologySpec) -> Self {
        self.topology = topology;
        self
    }

    /// Enables or disables the memory probe (see [`RunSpec::probe_mem`]).
    pub fn probe_mem(mut self, enabled: bool) -> Self {
        self.probe_mem = enabled;
        self
    }

    /// Selects the networked backend on ports `base_port..base_port+n`
    /// (see [`RunSpec::net`]).
    pub fn net(mut self, base_port: u16) -> Self {
        self.net = Some(base_port);
        self
    }

    /// Attaches an observing coalition (see [`RunSpec::tap`]).
    pub fn tap(mut self, tap: TapSpec) -> Self {
        self.tap = Some(tap);
        self
    }
}

static DEFAULT_BACKEND: std::sync::OnceLock<EngineBackend> = std::sync::OnceLock::new();

/// Installs the process-wide default backend used by [`RunSpec::new`].
/// First writer wins; call before any run. Returns `false` if the default
/// had already been resolved (set or read).
pub fn set_default_backend(backend: EngineBackend) -> bool {
    DEFAULT_BACKEND.set(backend).is_ok()
}

/// The process-wide default backend: whatever [`set_default_backend`]
/// installed, else the `CONGOS_BACKEND` env var (`seq` or `par[:N]`), else
/// [`EngineBackend::Sequential`]. Every experiment outcome is identical on
/// every backend — this only selects wall-clock behavior.
pub fn default_backend() -> EngineBackend {
    *DEFAULT_BACKEND.get_or_init(|| {
        std::env::var("CONGOS_BACKEND")
            .ok()
            .and_then(|s| match s.parse() {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("ignoring CONGOS_BACKEND: {e}");
                    None
                }
            })
            .unwrap_or_default()
    })
}

/// Applies a `--backend <seq|par[:N]|net[:PORT]>` CLI flag (if present) as
/// the process-wide default backend and returns the active default.
/// Intended for the `exp_*` binaries.
///
/// `net` (optionally `net:<base_port>`, default port
/// [`DEFAULT_NET_PORT`]) selects the networked backend: runs execute on a
/// localhost TCP cluster instead of the in-process engine. The returned
/// [`EngineBackend`] is unchanged in that case — the net default is
/// consumed by [`RunSpec::new`] via [`default_net`].
///
/// # Panics
///
/// Panics on a malformed or missing flag value.
pub fn init_backend_from_args(args: &[String]) -> EngineBackend {
    if let Some(i) = args.iter().position(|a| a == "--backend") {
        let value = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("--backend needs a value: seq, par[:N] or net[:PORT]"));
        if value == "net" || value.starts_with("net:") {
            let port = match value.strip_prefix("net:") {
                Some(p) => p
                    .parse()
                    .unwrap_or_else(|_| panic!("bad port in --backend {value}")),
                None => DEFAULT_NET_PORT,
            };
            set_default_net(port);
        } else {
            let backend: EngineBackend = value.parse().unwrap_or_else(|e| panic!("{e}"));
            set_default_backend(backend);
        }
    }
    default_backend()
}

/// Base port used by `--backend net` when no explicit port is given.
pub const DEFAULT_NET_PORT: u16 = 20700;

static DEFAULT_NET: std::sync::OnceLock<Option<u16>> = std::sync::OnceLock::new();

/// Installs a process-wide default net base port: every subsequent
/// [`RunSpec::new`] runs on the networked backend. First writer wins;
/// returns `false` if the default had already been resolved.
pub fn set_default_net(base_port: u16) -> bool {
    DEFAULT_NET.set(Some(base_port)).is_ok()
}

/// The process-wide default net base port: whatever [`set_default_net`]
/// installed, else the `CONGOS_NET_PORT` env var, else `None` (in-process
/// engine — the default).
pub fn default_net() -> Option<u16> {
    *DEFAULT_NET.get_or_init(|| {
        std::env::var("CONGOS_NET_PORT")
            .ok()
            .and_then(|s| match s.parse() {
                Ok(p) => Some(p),
                Err(e) => {
                    eprintln!("ignoring CONGOS_NET_PORT: {e}");
                    None
                }
            })
    })
}

static DEFAULT_TOPOLOGY: std::sync::OnceLock<TopologySpec> = std::sync::OnceLock::new();

/// Installs the process-wide default topology used by [`RunSpec::new`].
/// First writer wins; call before any run. Returns `false` if the default
/// had already been resolved (set or read).
pub fn set_default_topology(topology: TopologySpec) -> bool {
    DEFAULT_TOPOLOGY.set(topology).is_ok()
}

/// The process-wide default topology: whatever [`set_default_topology`]
/// installed, else the `CONGOS_TOPOLOGY` env var
/// (`complete`, `expander:<d>` or `churn:<p>[@expander:<d>]`), else
/// [`TopologySpec::Complete`] — the paper's model. Unlike the backend, the
/// topology *does* change measured outcomes.
pub fn default_topology() -> TopologySpec {
    *DEFAULT_TOPOLOGY.get_or_init(|| {
        std::env::var("CONGOS_TOPOLOGY")
            .ok()
            .and_then(|s| match s.parse() {
                Ok(t) => Some(t),
                Err(e) => {
                    eprintln!("ignoring CONGOS_TOPOLOGY: {e}");
                    None
                }
            })
            .unwrap_or_default()
    })
}

/// Applies a `--topology <complete|expander:d|churn:p[@base]>` CLI flag (if
/// present) as the process-wide default topology and returns the active
/// default. Intended for the `exp_*` binaries.
///
/// # Panics
///
/// Panics on a malformed or missing flag value.
pub fn init_topology_from_args(args: &[String]) -> TopologySpec {
    if let Some(i) = args.iter().position(|a| a == "--topology") {
        let value = args.get(i + 1).unwrap_or_else(|| {
            panic!("--topology needs a value: complete, expander:<d> or churn:<p>")
        });
        let topology: TopologySpec = value.parse().unwrap_or_else(|e| panic!("{e}"));
        set_default_topology(topology);
    }
    default_topology()
}

/// A delivery, correlated by workload id.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Workload rumor id.
    pub wid: u64,
    /// Receiving process.
    pub process: ProcessId,
    /// Round of delivery.
    pub round: Round,
}

/// Quality-of-Delivery classification of (rumor, destination) pairs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QodSummary {
    /// Pairs where source and destination were continuously alive.
    pub admissible: usize,
    /// Admissible pairs delivered by the deadline.
    pub on_time: usize,
    /// Admissible pairs delivered after the deadline (a QoD violation!).
    pub late: usize,
    /// Admissible pairs never delivered (a QoD violation!).
    pub missed: usize,
    /// Pairs exempted by crashes (not admissible).
    pub inadmissible: usize,
    /// Pairs exempted by the topology: source and destination were
    /// continuously alive but no temporal path connected them within the
    /// deadline window, so no protocol could have delivered (only non-zero
    /// on non-complete topologies; the reachability check floods one hop
    /// per round ignoring crashes, so it never exempts a pair a protocol
    /// could actually have served).
    pub unreachable: usize,
}

impl QodSummary {
    /// `true` when every admissible pair was delivered on time.
    pub fn perfect(&self) -> bool {
        self.late == 0 && self.missed == 0
    }

    /// On-time fraction over admissible pairs (1.0 when none).
    pub fn on_time_rate(&self) -> f64 {
        if self.admissible == 0 {
            1.0
        } else {
            self.on_time as f64 / self.admissible as f64
        }
    }
}

/// Everything measured in one run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Protocol display name.
    pub name: &'static str,
    /// The topology this run executed on.
    pub topology: TopologySpec,
    /// Per-round, per-tag message metrics.
    pub metrics: Metrics,
    /// All deliveries.
    pub deliveries: Vec<DeliveryRecord>,
    /// All injections the workload emitted.
    pub injections: Vec<InjectionLogEntry>,
    /// QoD classification.
    pub qod: QodSummary,
    /// Crash events that occurred.
    pub crashes: usize,
    /// Delivery latencies (rounds from injection to first delivery) of the
    /// admissible pairs that were delivered.
    pub latencies: Vec<u64>,
    /// Memory accounting around the engine run (zeroed when
    /// [`RunSpec::probe_mem`] was off).
    pub mem: crate::mem::MemUsage,
    /// Socket-level counters when the run executed on the networked
    /// backend (`None` for in-process engine runs, whose per-round,
    /// per-tag accounting lives in [`RunOutcome::metrics`] instead).
    pub net: Option<crate::netrun::NetStats>,
    /// The observing coalition's sighting log when [`RunSpec::tap`] was
    /// set (`None` otherwise).
    pub tap: Option<SightingLog>,
}

impl RunOutcome {
    /// The `p`-th latency percentile in rounds (0 when nothing delivered).
    pub fn latency_percentile(&self, p: f64) -> u64 {
        crate::stats::percentile(&self.latencies, p)
    }

    /// Whether the paper's Quality-of-Delivery theorem held for this run.
    ///
    /// The theorem (Definition 1 / Theorem 12) is proved on the reliable
    /// complete network: there, every admissible pair must be served on
    /// time and this method requires [`QodSummary::perfect`]. On sparse or
    /// churning topologies no such theorem exists — degradation is a
    /// *measurement*, not a failure — so the check is vacuously true.
    /// Experiments that assert QoD use this instead of hard-coding the
    /// everyone-hears-everything assumption.
    pub fn qod_theorem_holds(&self) -> bool {
        !self.topology.is_complete() || self.qod.perfect()
    }
}

/// Runs protocol `P` (default construction) under the given failure and
/// injection plans.
pub fn run<P, F, W>(spec: RunSpec, failures: F, workload: W) -> RunOutcome
where
    P: GossipSystem + Send,
    P::Msg: Send + Sync,
    P::Input: From<RumorSpec> + Send,
    P::Output: Send,
    F: FailurePlan,
    W: InjectionPlan + Logged,
{
    run_with_factory(spec, P::new, failures, workload)
}

/// Runs protocol `P` built by `factory` (for configured deployments).
pub fn run_with_factory<P, F, W>(
    spec: RunSpec,
    factory: impl Fn(ProcessId, usize, u64) -> P + 'static,
    failures: F,
    workload: W,
) -> RunOutcome
where
    P: GossipSystem + Send,
    P::Msg: Send + Sync,
    P::Input: From<RumorSpec> + Send,
    P::Output: Send,
    F: FailurePlan,
    W: InjectionPlan + Logged,
{
    if let Some(base_port) = spec.net {
        return run_networked::<P, F, W>(spec, base_port, failures, workload);
    }
    let mut engine = Engine::<P>::with_factory(
        EngineConfig::new(spec.n)
            .seed(spec.seed)
            .topology(spec.topology),
        factory,
    );
    let mut adv = CrriAdversary::new(failures, workload);
    let mut tap = spec
        .tap
        .map(|t| CoalitionTap::new(spec.n, &t.members(spec.n)));
    let mem_before = if spec.probe_mem {
        crate::mem::MemSample::now()
    } else {
        crate::mem::MemSample::default()
    };
    let t0 = std::time::Instant::now();
    match &mut tap {
        Some(tap) => engine.run_observed_backend(spec.backend, spec.rounds, &mut adv, tap),
        None => engine.run_backend(spec.backend, spec.rounds, &mut adv),
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mem = crate::mem::MemUsage {
        before: mem_before,
        after: if spec.probe_mem {
            crate::mem::MemSample::now()
        } else {
            crate::mem::MemSample::default()
        },
        wall_ms,
    };

    let deliveries: Vec<DeliveryRecord> = engine
        .outputs()
        .iter()
        .map(|o| DeliveryRecord {
            wid: P::wid_of(&o.value),
            process: o.process,
            round: o.round,
        })
        .collect();
    let injections = adv.workload().entries().to_vec();

    let mut qod = QodSummary::default();
    let mut latencies = Vec::new();
    for entry in &injections {
        let t = entry.round;
        let end = t + entry.spec.deadline;
        let src_ok = engine.liveness().continuously_alive(entry.source, t, end);
        for d in &entry.spec.dest {
            if !src_ok || !engine.liveness().continuously_alive(*d, t, end) {
                qod.inadmissible += 1;
                continue;
            }
            if !engine.topology().reachable_within(entry.source, *d, t, end) {
                qod.unreachable += 1;
                continue;
            }
            qod.admissible += 1;
            let best = deliveries
                .iter()
                .filter(|r| r.wid == entry.spec.id && r.process == *d)
                .map(|r| r.round)
                .min();
            match best {
                Some(r) if r <= end => {
                    qod.on_time += 1;
                    latencies.push(r - t);
                }
                Some(_) => qod.late += 1,
                None => qod.missed += 1,
            }
        }
    }

    RunOutcome {
        name: P::NAME,
        topology: spec.topology,
        metrics: engine.metrics().clone(),
        deliveries,
        injections,
        qod,
        crashes: engine.liveness().crash_count(),
        latencies,
        mem,
        net: None,
        tap: tap.map(CoalitionTap::into_log),
    }
}

/// The networked path of [`run_with_factory`]: materializes the workload
/// into a static schedule (rejecting failure plans — the TCP cluster is
/// failure-free), runs the protocol's TCP deployment, and rebuilds the
/// same QoD accounting the engine path produces. The `factory` is not used
/// here: a networked deployment constructs its own nodes from
/// `(id, n, seed)` on the far side of the socket boundary.
fn run_networked<P, F, W>(spec: RunSpec, base_port: u16, mut failures: F, mut workload: W) -> RunOutcome
where
    P: GossipSystem,
    P::Input: From<RumorSpec>,
    F: FailurePlan,
    W: InjectionPlan + Logged,
{
    crate::netrun::assert_failure_free(spec.n, spec.rounds, &mut failures);
    let schedule = crate::netrun::materialize_injections(spec.n, spec.rounds, &mut workload);

    let mem_before = if spec.probe_mem {
        crate::mem::MemSample::now()
    } else {
        crate::mem::MemSample::default()
    };
    let watch: Vec<ProcessId> = spec
        .tap
        .map(|t| t.members(spec.n))
        .unwrap_or_default();
    let t0 = std::time::Instant::now();
    let report = P::net_run(
        spec.n,
        spec.seed,
        spec.rounds,
        spec.topology,
        base_port,
        schedule,
        watch,
    )
    .unwrap_or_else(|| {
        panic!(
            "protocol {:?} has no networked runtime; --backend net currently \
             supports the CONGOS protocol only",
            P::NAME
        )
    })
    .unwrap_or_else(|e| panic!("networked run failed: {e}"));
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mem = crate::mem::MemUsage {
        before: mem_before,
        after: if spec.probe_mem {
            crate::mem::MemSample::now()
        } else {
            crate::mem::MemSample::default()
        },
        wall_ms,
    };

    let deliveries: Vec<DeliveryRecord> = report
        .deliveries
        .iter()
        .map(|&(wid, process, round)| DeliveryRecord {
            wid,
            process,
            round,
        })
        .collect();
    let injections = workload.entries().to_vec();

    // QoD over a failure-free cluster: every pair is admissible unless the
    // topology never connects it within the deadline window (same
    // reachability bound the engine path applies).
    let topology = congos_sim::Topology::build(spec.topology, spec.n, spec.seed);
    let mut qod = QodSummary::default();
    let mut latencies = Vec::new();
    for entry in &injections {
        let t = entry.round;
        let end = t + entry.spec.deadline;
        for d in &entry.spec.dest {
            if !topology.reachable_within(entry.source, *d, t, end) {
                qod.unreachable += 1;
                continue;
            }
            qod.admissible += 1;
            let best = deliveries
                .iter()
                .filter(|r| r.wid == entry.spec.id && r.process == *d)
                .map(|r| r.round)
                .min();
            match best {
                Some(r) if r <= end => {
                    qod.on_time += 1;
                    latencies.push(r - t);
                }
                Some(_) => qod.late += 1,
                None => qod.missed += 1,
            }
        }
    }

    RunOutcome {
        name: P::NAME,
        topology: spec.topology,
        metrics: Metrics::new(),
        deliveries,
        injections,
        qod,
        crashes: 0,
        latencies,
        mem,
        net: Some(crate::netrun::NetStats {
            messages: report.messages,
            topology_drops: report.topology_drops,
        }),
        tap: spec.tap.map(|_| {
            let mut log = SightingLog::new(spec.n);
            for &(round, observer, sender, tag) in &report.sightings {
                log.record(Sighting {
                    round,
                    observer,
                    sender,
                    tag,
                });
            }
            log
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congos_adversary::{NoFailures, RandomChurn};
    use congos_baselines::DirectNode;
    use congos_gossip::GossipNode;

    #[test]
    fn direct_run_is_perfect() {
        let spec = RunSpec::new(8, 1, 40);
        let w = PoissonWorkload::new(0.1, 3, 16, 2).until(Round(20));
        let out = run::<DirectNode, _, _>(spec, NoFailures, w);
        assert!(out.qod.perfect());
        assert!(out.qod.admissible > 0);
        assert_eq!(out.crashes, 0);
        assert_eq!(out.name, "direct");
    }

    #[test]
    fn networked_backend_runs_congos_with_qod() {
        use congos::CongosNode;
        let spec = RunSpec::new(4, 11, 80).net(20740);
        let rumor = RumorSpec::new(
            0,
            b"over sockets".to_vec(),
            64,
            vec![ProcessId::new(1), ProcessId::new(3)],
        );
        let w = OneShot::new(Round(0), vec![(ProcessId::new(0), rumor)]);
        let out = run::<CongosNode, _, _>(spec, NoFailures, w);
        assert_eq!(out.qod.admissible, 2);
        assert!(out.qod.perfect(), "failure-free TCP run must be on time: {:?}", out.qod);
        assert_eq!(out.deliveries.len(), 2);
        let net = out.net.expect("networked runs carry socket stats");
        assert!(net.messages > 0);
        assert_eq!(net.topology_drops, 0);
        assert!(out.metrics.is_empty(), "sockets don't meter per-tag rounds");
    }

    #[test]
    #[should_panic(expected = "no networked runtime")]
    fn networked_backend_rejects_protocols_without_a_codec() {
        let spec = RunSpec::new(3, 0, 4).net(20760);
        let w = OneShot::new(
            Round(0),
            vec![(
                ProcessId::new(0),
                RumorSpec::new(0, vec![1], 16, vec![ProcessId::new(1)]),
            )],
        );
        let _ = run::<DirectNode, _, _>(spec, NoFailures, w);
    }

    #[test]
    fn qod_accounts_churn_exemptions() {
        let spec = RunSpec::new(12, 3, 96);
        let w = PoissonWorkload::new(0.05, 3, 32, 4).until(Round(60));
        let churn = RandomChurn::new(0.01, 0.2, 5);
        let out = run::<GossipNode, _, _>(spec, churn, w);
        assert!(out.crashes > 0);
        assert!(out.qod.perfect(), "substrate QoD must hold: {:?}", out.qod);
        assert!(out.qod.inadmissible > 0, "churn should exempt some pairs");
    }
}
