//! Generic experiment runner with Quality-of-Delivery accounting.

use congos_adversary::{
    CrriAdversary, FailurePlan, InjectionLogEntry, InjectionPlan, OneShot, PoissonWorkload,
    RumorSpec, StableGroupWorkload, Theorem1Workload,
};
use congos_sim::{Engine, EngineBackend, EngineConfig, Metrics, ProcessId, Round, TopologySpec};

use crate::system::GossipSystem;

/// Access to the injections a workload has emitted (for QoD accounting).
pub trait Logged {
    /// Entries emitted so far.
    fn entries(&self) -> &[InjectionLogEntry];
}

impl Logged for OneShot {
    fn entries(&self) -> &[InjectionLogEntry] {
        self.log()
    }
}

impl Logged for PoissonWorkload {
    fn entries(&self) -> &[InjectionLogEntry] {
        self.log()
    }
}

impl Logged for Theorem1Workload {
    fn entries(&self) -> &[InjectionLogEntry] {
        self.log()
    }
}

impl Logged for StableGroupWorkload {
    fn entries(&self) -> &[InjectionLogEntry] {
        self.log()
    }
}

/// Parameters of one run.
#[derive(Clone, Copy, Debug)]
pub struct RunSpec {
    /// Number of processes.
    pub n: usize,
    /// Master seed.
    pub seed: u64,
    /// Rounds to execute.
    pub rounds: u64,
    /// Execution backend (outcome-invariant; affects wall clock only).
    pub backend: EngineBackend,
    /// Communication topology (changes the measured outcome, unlike the
    /// backend: sparser topologies drop undeliverable links).
    pub topology: TopologySpec,
    /// Whether to sample the memory probe (peak-RSS + allocator counters)
    /// around the engine run. Cheap (two `/proc` reads and a handful of
    /// atomic loads); on by default. When off, [`RunOutcome::mem`] is
    /// zeroed.
    pub probe_mem: bool,
}

impl RunSpec {
    /// Spec for `n` processes, `rounds` rounds, on the process-wide default
    /// backend (see [`default_backend`]) and default topology (see
    /// [`default_topology`]).
    pub fn new(n: usize, seed: u64, rounds: u64) -> Self {
        RunSpec {
            n,
            seed,
            rounds,
            backend: default_backend(),
            topology: default_topology(),
            probe_mem: true,
        }
    }

    /// Selects the execution backend (the measured outcome is identical on
    /// every backend; only wall-clock time changes).
    pub fn backend(mut self, backend: EngineBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the communication topology.
    pub fn topology(mut self, topology: TopologySpec) -> Self {
        self.topology = topology;
        self
    }

    /// Enables or disables the memory probe (see [`RunSpec::probe_mem`]).
    pub fn probe_mem(mut self, enabled: bool) -> Self {
        self.probe_mem = enabled;
        self
    }
}

static DEFAULT_BACKEND: std::sync::OnceLock<EngineBackend> = std::sync::OnceLock::new();

/// Installs the process-wide default backend used by [`RunSpec::new`].
/// First writer wins; call before any run. Returns `false` if the default
/// had already been resolved (set or read).
pub fn set_default_backend(backend: EngineBackend) -> bool {
    DEFAULT_BACKEND.set(backend).is_ok()
}

/// The process-wide default backend: whatever [`set_default_backend`]
/// installed, else the `CONGOS_BACKEND` env var (`seq` or `par[:N]`), else
/// [`EngineBackend::Sequential`]. Every experiment outcome is identical on
/// every backend — this only selects wall-clock behavior.
pub fn default_backend() -> EngineBackend {
    *DEFAULT_BACKEND.get_or_init(|| {
        std::env::var("CONGOS_BACKEND")
            .ok()
            .and_then(|s| match s.parse() {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("ignoring CONGOS_BACKEND: {e}");
                    None
                }
            })
            .unwrap_or_default()
    })
}

/// Applies a `--backend <seq|par[:N]>` CLI flag (if present) as the
/// process-wide default backend and returns the active default. Intended
/// for the `exp_*` binaries.
///
/// # Panics
///
/// Panics on a malformed or missing flag value.
pub fn init_backend_from_args(args: &[String]) -> EngineBackend {
    if let Some(i) = args.iter().position(|a| a == "--backend") {
        let value = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("--backend needs a value: seq or par[:N]"));
        let backend: EngineBackend = value.parse().unwrap_or_else(|e| panic!("{e}"));
        set_default_backend(backend);
    }
    default_backend()
}

static DEFAULT_TOPOLOGY: std::sync::OnceLock<TopologySpec> = std::sync::OnceLock::new();

/// Installs the process-wide default topology used by [`RunSpec::new`].
/// First writer wins; call before any run. Returns `false` if the default
/// had already been resolved (set or read).
pub fn set_default_topology(topology: TopologySpec) -> bool {
    DEFAULT_TOPOLOGY.set(topology).is_ok()
}

/// The process-wide default topology: whatever [`set_default_topology`]
/// installed, else the `CONGOS_TOPOLOGY` env var
/// (`complete`, `expander:<d>` or `churn:<p>[@expander:<d>]`), else
/// [`TopologySpec::Complete`] — the paper's model. Unlike the backend, the
/// topology *does* change measured outcomes.
pub fn default_topology() -> TopologySpec {
    *DEFAULT_TOPOLOGY.get_or_init(|| {
        std::env::var("CONGOS_TOPOLOGY")
            .ok()
            .and_then(|s| match s.parse() {
                Ok(t) => Some(t),
                Err(e) => {
                    eprintln!("ignoring CONGOS_TOPOLOGY: {e}");
                    None
                }
            })
            .unwrap_or_default()
    })
}

/// Applies a `--topology <complete|expander:d|churn:p[@base]>` CLI flag (if
/// present) as the process-wide default topology and returns the active
/// default. Intended for the `exp_*` binaries.
///
/// # Panics
///
/// Panics on a malformed or missing flag value.
pub fn init_topology_from_args(args: &[String]) -> TopologySpec {
    if let Some(i) = args.iter().position(|a| a == "--topology") {
        let value = args.get(i + 1).unwrap_or_else(|| {
            panic!("--topology needs a value: complete, expander:<d> or churn:<p>")
        });
        let topology: TopologySpec = value.parse().unwrap_or_else(|e| panic!("{e}"));
        set_default_topology(topology);
    }
    default_topology()
}

/// A delivery, correlated by workload id.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Workload rumor id.
    pub wid: u64,
    /// Receiving process.
    pub process: ProcessId,
    /// Round of delivery.
    pub round: Round,
}

/// Quality-of-Delivery classification of (rumor, destination) pairs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QodSummary {
    /// Pairs where source and destination were continuously alive.
    pub admissible: usize,
    /// Admissible pairs delivered by the deadline.
    pub on_time: usize,
    /// Admissible pairs delivered after the deadline (a QoD violation!).
    pub late: usize,
    /// Admissible pairs never delivered (a QoD violation!).
    pub missed: usize,
    /// Pairs exempted by crashes (not admissible).
    pub inadmissible: usize,
    /// Pairs exempted by the topology: source and destination were
    /// continuously alive but no temporal path connected them within the
    /// deadline window, so no protocol could have delivered (only non-zero
    /// on non-complete topologies; the reachability check floods one hop
    /// per round ignoring crashes, so it never exempts a pair a protocol
    /// could actually have served).
    pub unreachable: usize,
}

impl QodSummary {
    /// `true` when every admissible pair was delivered on time.
    pub fn perfect(&self) -> bool {
        self.late == 0 && self.missed == 0
    }

    /// On-time fraction over admissible pairs (1.0 when none).
    pub fn on_time_rate(&self) -> f64 {
        if self.admissible == 0 {
            1.0
        } else {
            self.on_time as f64 / self.admissible as f64
        }
    }
}

/// Everything measured in one run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Protocol display name.
    pub name: &'static str,
    /// The topology this run executed on.
    pub topology: TopologySpec,
    /// Per-round, per-tag message metrics.
    pub metrics: Metrics,
    /// All deliveries.
    pub deliveries: Vec<DeliveryRecord>,
    /// All injections the workload emitted.
    pub injections: Vec<InjectionLogEntry>,
    /// QoD classification.
    pub qod: QodSummary,
    /// Crash events that occurred.
    pub crashes: usize,
    /// Delivery latencies (rounds from injection to first delivery) of the
    /// admissible pairs that were delivered.
    pub latencies: Vec<u64>,
    /// Memory accounting around the engine run (zeroed when
    /// [`RunSpec::probe_mem`] was off).
    pub mem: crate::mem::MemUsage,
}

impl RunOutcome {
    /// The `p`-th latency percentile in rounds (0 when nothing delivered).
    pub fn latency_percentile(&self, p: f64) -> u64 {
        crate::stats::percentile(&self.latencies, p)
    }

    /// Whether the paper's Quality-of-Delivery theorem held for this run.
    ///
    /// The theorem (Definition 1 / Theorem 12) is proved on the reliable
    /// complete network: there, every admissible pair must be served on
    /// time and this method requires [`QodSummary::perfect`]. On sparse or
    /// churning topologies no such theorem exists — degradation is a
    /// *measurement*, not a failure — so the check is vacuously true.
    /// Experiments that assert QoD use this instead of hard-coding the
    /// everyone-hears-everything assumption.
    pub fn qod_theorem_holds(&self) -> bool {
        !self.topology.is_complete() || self.qod.perfect()
    }
}

/// Runs protocol `P` (default construction) under the given failure and
/// injection plans.
pub fn run<P, F, W>(spec: RunSpec, failures: F, workload: W) -> RunOutcome
where
    P: GossipSystem + Send,
    P::Msg: Send + Sync,
    P::Input: From<RumorSpec> + Send,
    P::Output: Send,
    F: FailurePlan,
    W: InjectionPlan + Logged,
{
    run_with_factory(spec, P::new, failures, workload)
}

/// Runs protocol `P` built by `factory` (for configured deployments).
pub fn run_with_factory<P, F, W>(
    spec: RunSpec,
    factory: impl Fn(ProcessId, usize, u64) -> P + 'static,
    failures: F,
    workload: W,
) -> RunOutcome
where
    P: GossipSystem + Send,
    P::Msg: Send + Sync,
    P::Input: From<RumorSpec> + Send,
    P::Output: Send,
    F: FailurePlan,
    W: InjectionPlan + Logged,
{
    let mut engine = Engine::<P>::with_factory(
        EngineConfig::new(spec.n)
            .seed(spec.seed)
            .topology(spec.topology),
        factory,
    );
    let mut adv = CrriAdversary::new(failures, workload);
    let mem_before = if spec.probe_mem {
        crate::mem::MemSample::now()
    } else {
        crate::mem::MemSample::default()
    };
    let t0 = std::time::Instant::now();
    engine.run_backend(spec.backend, spec.rounds, &mut adv);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mem = crate::mem::MemUsage {
        before: mem_before,
        after: if spec.probe_mem {
            crate::mem::MemSample::now()
        } else {
            crate::mem::MemSample::default()
        },
        wall_ms,
    };

    let deliveries: Vec<DeliveryRecord> = engine
        .outputs()
        .iter()
        .map(|o| DeliveryRecord {
            wid: P::wid_of(&o.value),
            process: o.process,
            round: o.round,
        })
        .collect();
    let injections = adv.workload().entries().to_vec();

    let mut qod = QodSummary::default();
    let mut latencies = Vec::new();
    for entry in &injections {
        let t = entry.round;
        let end = t + entry.spec.deadline;
        let src_ok = engine.liveness().continuously_alive(entry.source, t, end);
        for d in &entry.spec.dest {
            if !src_ok || !engine.liveness().continuously_alive(*d, t, end) {
                qod.inadmissible += 1;
                continue;
            }
            if !engine.topology().reachable_within(entry.source, *d, t, end) {
                qod.unreachable += 1;
                continue;
            }
            qod.admissible += 1;
            let best = deliveries
                .iter()
                .filter(|r| r.wid == entry.spec.id && r.process == *d)
                .map(|r| r.round)
                .min();
            match best {
                Some(r) if r <= end => {
                    qod.on_time += 1;
                    latencies.push(r - t);
                }
                Some(_) => qod.late += 1,
                None => qod.missed += 1,
            }
        }
    }

    RunOutcome {
        name: P::NAME,
        topology: spec.topology,
        metrics: engine.metrics().clone(),
        deliveries,
        injections,
        qod,
        crashes: engine.liveness().crash_count(),
        latencies,
        mem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congos_adversary::{NoFailures, RandomChurn};
    use congos_baselines::DirectNode;
    use congos_gossip::GossipNode;

    #[test]
    fn direct_run_is_perfect() {
        let spec = RunSpec::new(8, 1, 40);
        let w = PoissonWorkload::new(0.1, 3, 16, 2).until(Round(20));
        let out = run::<DirectNode, _, _>(spec, NoFailures, w);
        assert!(out.qod.perfect());
        assert!(out.qod.admissible > 0);
        assert_eq!(out.crashes, 0);
        assert_eq!(out.name, "direct");
    }

    #[test]
    fn qod_accounts_churn_exemptions() {
        let spec = RunSpec::new(12, 3, 96);
        let w = PoissonWorkload::new(0.05, 3, 32, 4).until(Round(60));
        let churn = RandomChurn::new(0.01, 0.2, 5);
        let out = run::<GossipNode, _, _>(spec, churn, w);
        assert!(out.crashes > 0);
        assert!(out.qod.perfect(), "substrate QoD must hold: {:?}", out.qod);
        assert!(out.qod.inadmissible > 0, "churn should exempt some pairs");
    }
}
