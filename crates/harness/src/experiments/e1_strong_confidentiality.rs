//! **E1 — Theorem 1: the price of strong confidentiality.**
//!
//! Workload from the proof: every process injects one rumor at round 0 whose
//! destination set contains each process independently with probability
//! `x/n`, `x = n^{1/2−2/c}` (here `c = 8`, i.e. `ε = 1/4`). Under strong
//! confidentiality, almost no two rumors share two destinations, so rumors
//! cannot be batched into common messages and the total message count is
//! `Ω(n·x) = Ω(n^{3/2−ε})`. CONGOS escapes the bound by letting *everyone*
//! carry (fragments of) every rumor: its gossip envelopes batch arbitrarily
//! many fragments, so its *envelope* count grows near-linearly while the
//! strongly confidential protocol's grows like `n^{1.25}`.
//!
//! The table reports, per `n`: the rumor copies the workload demands
//! (`Σ|D|`), each protocol's total envelopes and max per-round envelopes
//! over the deadline window, and the fitted power-law exponents as notes.

use congos::CongosNode;
use congos_adversary::{NoFailures, Theorem1Workload};
use congos_baselines::{DirectNode, StronglyConfidentialNode};

use crate::run::{run as run_system, RunSpec};
use crate::stats::fit_power_law;
use crate::table::Table;

const C: f64 = 8.0; // ε = 2/c = 1/4 ⇒ bound Ω(n^{1.25})
const DMAX: u64 = 64;

/// Runs E1 and returns its table.
pub fn run(full: bool) -> Vec<Table> {
    let ns: &[usize] = if full {
        &[32, 64, 128, 256]
    } else {
        &[32, 64, 128]
    };
    let mut t = Table::new(
        "E1: price of strong confidentiality (Theorem 1)",
        &[
            "n",
            "x",
            "copies",
            "strong_total",
            "strong_max/rnd",
            "congos_total",
            "congos_max/rnd",
            "direct_total",
        ],
    );
    let mut xs = Vec::new();
    let mut strong_tot = Vec::new();
    let mut congos_tot = Vec::new();
    let mut strong_max = Vec::new();
    let mut congos_max = Vec::new();

    for &n in ns {
        let spec = RunSpec::new(n, 0xE1, DMAX + 1);
        let w = || Theorem1Workload::new(C, DMAX, 0xE1);
        let strong = run_system::<StronglyConfidentialNode, _, _>(spec, NoFailures, w());
        let congos = run_system::<CongosNode, _, _>(spec, NoFailures, w());
        let direct = run_system::<DirectNode, _, _>(spec, NoFailures, w());
        assert!(strong.qod_theorem_holds(), "strong QoD: {:?}", strong.qod);
        assert!(congos.qod_theorem_holds(), "congos QoD: {:?}", congos.qod);

        let copies: usize = strong
            .injections
            .iter()
            .map(|e| e.spec.dest.len())
            .sum();
        let x = (n as f64).powf(0.5 - 2.0 / C);
        t.row(vec![
            n.to_string(),
            format!("{x:.2}"),
            copies.to_string(),
            strong.metrics.total().to_string(),
            strong.metrics.max_per_round().to_string(),
            congos.metrics.total().to_string(),
            congos.metrics.max_per_round().to_string(),
            direct.metrics.total().to_string(),
        ]);
        xs.push(n as f64);
        strong_tot.push(strong.metrics.total() as f64);
        congos_tot.push(congos.metrics.total() as f64);
        strong_max.push(strong.metrics.max_per_round() as f64);
        congos_max.push(congos.metrics.max_per_round() as f64);
    }

    let b_strong = fit_power_law(&xs, &strong_tot);
    let b_congos = fit_power_law(&xs, &congos_tot);
    let bm_strong = fit_power_law(&xs, &strong_max);
    let bm_congos = fit_power_law(&xs, &congos_max);
    let bound = 1.5 - 2.0 / C;
    t.note(format!(
        "strong confidentiality total messages grow as n^{b_strong:.2} — matching \
         Theorem 1's Ω(n^{bound:.2}) lower bound: no batching is possible, so the \
         cost tracks the rumor-copy count n·x"
    ));
    t.note(format!(
        "congos exponents (total n^{b_congos:.2}, max/round n^{bm_congos:.2}) reflect \
         the saturated short-deadline burst regime — Theorem 11's bound is itself \
         super-quadratic at dmax=64 and tightens with the deadline (see E3a); \
         strong max/round grows as n^{bm_strong:.2}"
    ));
    t.note(
        "the theorem's point is the *lower bound*: strong confidentiality can never \
         beat per-copy unicast, while CONGOS's envelopes batch arbitrarily many \
         fragments and its cost is deadline-driven, not copy-driven",
    );
    // Theorem 1's shape: the strong protocol's total cost is pinned to the
    // copy count (exponent ≈ 1 + (1/2 − 2/c)), well above linear.
    assert!(
        b_strong > 1.05,
        "strong-confidentiality cost must be super-linear, got n^{b_strong:.2}"
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e1_runs_and_shows_the_gap() {
        let tables = super::run(false);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 3);
    }
}
