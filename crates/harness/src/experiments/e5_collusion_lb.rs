//! **E5 — Theorem 12: the collusion lower bound, observed.**
//!
//! Theorem 12 argues that any τ-collusion-tolerant, partition-based
//! algorithm must push at least `τ+1` *border messages* per rumor — rumor
//! fragments crossing from the rumor's entitled set (`ρ.D ∪ {source}`) to
//! outside processes — or else some rumor interval stays inside the
//! destination set and the Theorem-1 bound applies. We instrument
//! collusion-tolerant CONGOS with a wiretap that counts fragment-carrying
//! envelopes crossing that border and check the per-rumor count indeed
//! grows at least linearly in `τ` (CONGOS sends each of the `τ+1` fragments
//! into a different group, so the bound is met with room to spare).

use std::collections::{HashMap, HashSet};
use std::collections::BTreeSet;

use congos::{
    CongosConfig, CongosMsg, CongosNode, CongosRumorId, GossipPayload,
};
use congos_adversary::{CrriAdversary, NoFailures, PoissonWorkload};
use congos_gossip::GossipWire;
use congos_sim::{Engine, EngineConfig, EnvelopeRef, IdSet, Observer, ProcessId, Round};

use crate::table::Table;

/// Counts fragment-carrying envelopes whose sender is entitled
/// (`dest ∪ {source}`) and whose receiver is not, and tracks which distinct
/// fragments (group labels, per partition) cross the border — Theorem 12's
/// "border fragments".
struct BorderMeter {
    border: u64,
    rumors: HashSet<CongosRumorId>,
    per_rumor_receivers: HashMap<CongosRumorId, IdSet>,
    /// Distinct `(partition, group)` fragment labels received outside the
    /// entitled set, per rumor.
    border_fragments: HashMap<CongosRumorId, BTreeSet<(u16, u8)>>,
    n: usize,
}

impl BorderMeter {
    fn new(n: usize) -> Self {
        BorderMeter {
            border: 0,
            rumors: HashSet::new(),
            per_rumor_receivers: HashMap::new(),
            border_fragments: HashMap::new(),
            n,
        }
    }

    fn record(&mut self, env_src: ProcessId, env_dst: ProcessId, frags: &[congos::Fragment]) {
        let mut crossed = false;
        for f in frags {
            self.rumors.insert(f.rid);
            let entitled_src = f.dest.contains(env_src) || f.rid.source == env_src;
            let entitled_dst = f.dest.contains(env_dst) || f.rid.source == env_dst;
            if entitled_src && !entitled_dst {
                crossed = true;
                self.per_rumor_receivers
                    .entry(f.rid)
                    .or_insert_with(|| IdSet::empty(self.n))
                    .insert(env_dst);
                self.border_fragments
                    .entry(f.rid)
                    .or_default()
                    .insert((f.partition, f.group));
            }
        }
        if crossed {
            self.border += 1;
        }
    }

    /// Mean, over rumors and partitions carrying border traffic, of the
    /// number of distinct fragment labels that crossed the border — the
    /// per-partition count Theorem 12 lower-bounds by `τ+1`.
    fn mean_border_fragments_per_partition(&self) -> f64 {
        let (mut sum, mut cnt) = (0usize, 0usize);
        for labels in self.border_fragments.values() {
            let mut per_partition: HashMap<u16, usize> = HashMap::new();
            for (ell, _) in labels {
                *per_partition.entry(*ell).or_insert(0) += 1;
            }
            for c in per_partition.values() {
                sum += *c;
                cnt += 1;
            }
        }
        if cnt == 0 {
            0.0
        } else {
            sum as f64 / cnt as f64
        }
    }
}

impl Observer<CongosNode> for BorderMeter {
    fn on_deliver(&mut self, env: EnvelopeRef<'_, CongosMsg>) {
        match env.payload {
            CongosMsg::Gossip { wire, .. } => {
                if let GossipWire::Push(rumors) = wire.as_ref() {
                    for r in rumors.iter() {
                        if let GossipPayload::Fragments(frags) = r.payload.as_ref() {
                            self.record(env.src, env.dst, frags);
                        }
                    }
                }
            }
            CongosMsg::ProxyRequest { fragments, .. }
            | CongosMsg::Partials { fragments, .. } => {
                self.record(env.src, env.dst, fragments);
            }
            _ => {}
        }
    }
}

/// Runs E5 and returns its table.
pub fn run(full: bool) -> Vec<Table> {
    let n = if full { 64 } else { 32 };
    let taus: &[usize] = if full { &[1, 2, 3, 4, 6] } else { &[1, 2, 3] };
    let mut t = Table::new(
        "E5: border traffic vs tau (Theorem 12)",
        &[
            "tau",
            "rumors",
            "border_msgs",
            "border_frags/partition",
            "outside_receivers/rumor",
            "bound(tau+1)",
        ],
    );
    for &tau in taus {
        let cfg = CongosConfig::collusion_tolerant(tau, 0xE5).without_degenerate_shortcut();
        let deadline = 64u64;
        let rounds = 3 * deadline;
        let workload =
            PoissonWorkload::new(0.02, 3, deadline, 0xE5).until(Round(rounds - deadline));
        let mut adv = CrriAdversary::new(NoFailures, workload);
        let mut meter = BorderMeter::new(n);
        let cfg2 = cfg.clone();
        let mut engine = Engine::<CongosNode>::with_factory(
            EngineConfig::new(n).seed(0xE5 + tau as u64),
            move |id, n, _s| CongosNode::with_config(id, n, cfg2.clone()),
        );
        engine.run_observed(rounds, &mut adv, &mut meter);

        let rumor_count = meter.rumors.len().max(1);
        let mean_outside: f64 = meter
            .per_rumor_receivers
            .values()
            .map(|s| s.len() as f64)
            .sum::<f64>()
            / rumor_count as f64;
        let frags_per_partition = meter.mean_border_fragments_per_partition();
        // Theorem 12: a partition-based pipeline must push all τ+1
        // fragments of a partition across the border (and more than τ
        // outside receivers exist), or τ colluders could reconstruct.
        assert!(
            mean_outside >= (tau + 1) as f64,
            "tau={tau}: only {mean_outside:.1} outside receivers per rumor"
        );
        // ≈ τ+1 in expectation; a partition can fall slightly short when a
        // random group happens to lie inside the entitled set.
        assert!(
            frags_per_partition > tau as f64 + 0.5,
            "tau={tau}: only {frags_per_partition:.2} border fragments per partition"
        );
        t.row(vec![
            tau.to_string(),
            meter.rumors.len().to_string(),
            meter.border.to_string(),
            format!("{frags_per_partition:.2}"),
            format!("{mean_outside:.1}"),
            (tau + 1).to_string(),
        ]);
    }
    t.note("border_frags/partition = τ+1: every fragment crosses the border (Theorem 12)");
    t.note("border_msgs grows with τ — the Ω(nτ/dmax) per-round cost made visible");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e5_border_traffic_grows_with_tau() {
        let tables = super::run(false);
        let t = &tables[0];
        assert!(t.len() >= 2);
        // The per-partition fragment count tracks τ+1 exactly…
        let first_frags: f64 = t.cell(0, 3).parse().unwrap();
        let last_frags: f64 = t.cell(t.len() - 1, 3).parse().unwrap();
        assert!(last_frags > first_frags + 0.9, "fragment labels must grow");
        // …and the raw border-message volume grows with τ as well.
        let first_msgs: f64 = t.cell(0, 2).parse().unwrap();
        let last_msgs: f64 = t.cell(t.len() - 1, 2).parse().unwrap();
        assert!(last_msgs > 1.5 * first_msgs, "border volume must grow");
    }
}
