//! One module per experiment (ids match DESIGN.md §4 and EXPERIMENTS.md).

pub mod e10_metadata_hiding;
pub mod e11_communication;
pub mod e12_adaptivity;
pub mod e13_anonymity;
pub mod e14_topology;
pub mod e1_strong_confidentiality;
pub mod e2_correctness;
pub mod e3_complexity;
pub mod e3_memory;
pub mod e4_partitions;
pub mod e5_collusion_lb;
pub mod e6_collusion_cost;
pub mod e7_churn;
pub mod e8_baselines;
pub mod e9_ablation;

use crate::table::Table;

/// Runs every experiment at the given scale and returns all tables.
///
/// Experiments are deterministic and independent, so they execute on
/// parallel threads; the returned tables keep the E1..E11 order.
pub fn run_all(full: bool) -> Vec<Table> {
    let jobs: Vec<fn(bool) -> Vec<Table>> = vec![
        e1_strong_confidentiality::run,
        e2_correctness::run,
        e3_complexity::run,
        e4_partitions::run,
        e5_collusion_lb::run,
        e6_collusion_cost::run,
        e7_churn::run,
        e8_baselines::run,
        e9_ablation::run,
        e10_metadata_hiding::run,
        e11_communication::run,
        e12_adaptivity::run,
        e13_anonymity::run,
        e14_topology::run,
    ];
    let mut results: Vec<Vec<Table>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|job| scope.spawn(move || job(full)))
            .collect();
        for h in handles {
            results.push(h.join().expect("experiment thread"));
        }
    });
    results.into_iter().flatten().collect()
}
