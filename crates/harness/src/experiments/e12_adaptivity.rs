//! **E12 — adaptive vs oblivious adversaries (Section 7's open question).**
//!
//! The paper closes asking whether weaker (oblivious) adversaries would
//! allow stronger guarantees. This experiment quantifies the *power gap*
//! the adaptivity actually buys the adversary against CONGOS: an adaptive
//! proxy-killer (crashes processes the instant the round's coin flips pick
//! them as proxies) versus an oblivious killer with the *same crash budget
//! on the same rounds* but with targets fixed in advance. The adaptive
//! attack lands every crash on a just-sampled proxy; the oblivious one
//! spends the same budget blind. The table reports the resulting pipeline
//! confirmations and fallback rates side by side (at laptop scale the gap
//! turns out modest — the `log n` partitions blunt targeted kills). QoD
//! holds for both, by Theorem 2.

use congos::CongosNode;
use congos_adversary::{
    CrriAdversary, FailurePlan, PoissonWorkload, ProxyKiller, ScheduledChurn,
};
use congos_sim::{Engine, EngineConfig, ProcessId, Round, Tag};

use crate::table::Table;

struct Outcome {
    crashes: usize,
    confirmed: u64,
    fallbacks: u64,
    admissible: u64,
    on_time: u64,
}

fn run_against<F: FailurePlan>(n: usize, rounds: u64, seed: u64, failures: F) -> Outcome {
    let deadline = 64u64;
    let workload = PoissonWorkload::new(0.03, 3, deadline, seed).until(Round(rounds - deadline));
    let mut adv = CrriAdversary::new(failures, workload);
    let mut engine = Engine::<CongosNode>::new(EngineConfig::new(n).seed(seed));
    engine.run(rounds, &mut adv);

    let (mut confirmed, mut fallbacks) = (0u64, 0u64);
    for p in ProcessId::all(n) {
        let s = engine.protocol(p).stats();
        confirmed += s.confirmed;
        fallbacks += s.fallbacks;
    }
    let (mut admissible, mut on_time) = (0u64, 0u64);
    for entry in adv.workload().log() {
        let t = entry.round;
        let end = t + entry.spec.deadline;
        if !engine.liveness().continuously_alive(entry.source, t, end) {
            continue;
        }
        for d in &entry.spec.dest {
            if !engine.liveness().continuously_alive(*d, t, end) {
                continue;
            }
            admissible += 1;
            if engine
                .outputs()
                .iter()
                .any(|o| o.process == *d && o.value.wid == entry.spec.id && o.round <= end)
            {
                on_time += 1;
            }
        }
    }
    assert_eq!(on_time, admissible, "QoD must hold regardless of adaptivity");
    Outcome {
        crashes: engine.liveness().crash_count(),
        confirmed,
        fallbacks,
        admissible,
        on_time,
    }
}

/// Runs E12 and returns its table.
pub fn run(full: bool) -> Vec<Table> {
    let n = if full { 24 } else { 16 };
    let rounds = if full { 384u64 } else { 256 };

    // Phase 1: the adaptive attack, recording when it struck.
    let deadline = 64u64;
    let workload =
        PoissonWorkload::new(0.03, 3, deadline, 0xE12).until(Round(rounds - deadline));
    let killer = ProxyKiller::new(Tag("proxy"), 1).revive_after(40);
    let mut adaptive_adv = CrriAdversary::new(killer, workload);
    let mut engine = Engine::<CongosNode>::new(EngineConfig::new(n).seed(0xE12));
    engine.run(rounds, &mut adaptive_adv);
    // Extract the adaptive run's crash/restart schedule.
    let mut schedule = ScheduledChurn::new();
    let mut crash_count = 0usize;
    for p in ProcessId::all(n) {
        for ev in engine.liveness().events(p) {
            match ev {
                congos_sim::liveness::LivenessEvent::Crash(r) => {
                    crash_count += 1;
                    // Oblivious twin: same rounds, same *number* of crashes,
                    // but targets rotated by one — fixed before the run, so
                    // they cannot track the sampled proxies.
                    let twin = ProcessId::new((p.as_usize() + 1) % n);
                    schedule = schedule.crash_at(*r, twin);
                }
                congos_sim::liveness::LivenessEvent::Restart(r) => {
                    let twin = ProcessId::new((p.as_usize() + 1) % n);
                    schedule = schedule.restart_at(*r, twin);
                }
            }
        }
    }
    let _ = crash_count;

    let mut t = Table::new(
        "E12: adaptive vs oblivious adversary (Section 7 open question)",
        &[
            "adversary",
            "crashes",
            "confirmed",
            "fallbacks",
            "fallback%",
            "on_time%",
        ],
    );
    let adaptive = run_against(
        n,
        rounds,
        0xE12,
        ProxyKiller::new(Tag("proxy"), 1).revive_after(40),
    );
    let oblivious = run_against(n, rounds, 0xE12, schedule);
    for (name, o) in [("adaptive", adaptive), ("oblivious twin", oblivious)] {
        let total = (o.confirmed + o.fallbacks).max(1);
        t.row(vec![
            name.to_string(),
            o.crashes.to_string(),
            o.confirmed.to_string(),
            o.fallbacks.to_string(),
            format!("{:.1}", 100.0 * o.fallbacks as f64 / total as f64),
            format!(
                "{:.1}",
                if o.admissible == 0 {
                    100.0
                } else {
                    100.0 * o.on_time as f64 / o.admissible as f64
                }
            ),
        ]);
    }
    t.note(
        "same crash budget on the same rounds; neither adversary ever gains a QoD or \
         confidentiality violation (Theorem 2)",
    );
    t.note(
        "at laptop scale the adaptive/oblivious fallback gap is modest: the log n \
         partitions already blunt targeted kills — consistent with the paper's \
         conjecture that oblivious adversaries admit stronger guarantees only at \
         higher collusion levels",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e12_qod_holds_for_both_adversaries() {
        let tables = super::run(false);
        let t = &tables[0];
        assert_eq!(t.len(), 2);
        for r in 0..2 {
            assert_eq!(t.cell(r, 5), "100.0");
        }
    }
}
