//! **E4 — Lemma 5 / Lemma 13: partition goodness.**
//!
//! * Bit partitions: for every pair of distinct processes, some partition
//!   separates them (Lemma 5 — checked exhaustively).
//! * Random `(τ+1)`-group partitions: Partition-Property 1 holds by
//!   construction; Partition-Property 2 is measured empirically — the
//!   fraction of random survivor sets of size `s` for which some partition
//!   has a survivor in every group, as `s` shrinks through the
//!   `2c'τ log n` threshold of Lemma 13.

use congos::PartitionSet;
use congos_sim::{IdSet, ProcessId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::table::Table;

/// Runs E4 and returns its two tables.
pub fn run(full: bool) -> Vec<Table> {
    let mut out = Vec::new();

    // ---- Lemma 5: exhaustive pair separation. ----------------------
    let ns: &[usize] = if full {
        &[8, 16, 64, 128, 256]
    } else {
        &[8, 16, 64]
    };
    let mut t = Table::new(
        "E4a: bit partitions separate every pair (Lemma 5)",
        &["n", "partitions", "pairs", "separated"],
    );
    for &n in ns {
        let ps = PartitionSet::bits(n);
        let mut pairs = 0u64;
        let mut separated = 0u64;
        for a in 0..n {
            for b in (a + 1)..n {
                pairs += 1;
                if ps
                    .separating(ProcessId::new(a), ProcessId::new(b))
                    .is_some()
                {
                    separated += 1;
                }
            }
        }
        assert_eq!(pairs, separated, "Lemma 5 must hold exhaustively");
        t.row(vec![
            n.to_string(),
            ps.len().to_string(),
            pairs.to_string(),
            separated.to_string(),
        ]);
    }
    t.note("separated == pairs in every row (Lemma 5, checked exhaustively)");
    out.push(t);

    // ---- Lemma 13: random-partition coverage vs survivor-set size. --
    let n = if full { 128 } else { 64 };
    let trials = if full { 400 } else { 200 };
    let mut t = Table::new(
        "E4b: random-partition coverage vs survivors (Lemma 13)",
        &["tau", "partitions", "survivors", "threshold", "covered%"],
    );
    let mut rng = SmallRng::seed_from_u64(0xE4);
    for tau in [2usize, 3] {
        let ps = PartitionSet::random(n, tau, 4.0, 0xE4);
        let threshold = (2.0 * tau as f64 * (n as f64).log2()).ceil() as usize;
        for frac in [2.0, 1.0, 0.5, 0.25] {
            let s = ((threshold as f64 * frac) as usize).clamp(tau + 1, n);
            let mut covered = 0usize;
            for _ in 0..trials {
                let mut survivors = IdSet::empty(n);
                while survivors.len() < s {
                    survivors.insert(ProcessId::new(rng.gen_range(0..n)));
                }
                if ps.covering(&survivors).is_some() {
                    covered += 1;
                }
            }
            t.row(vec![
                tau.to_string(),
                ps.len().to_string(),
                s.to_string(),
                threshold.to_string(),
                format!("{:.1}", 100.0 * covered as f64 / trials as f64),
            ]);
        }
    }
    t.note(
        "coverage is 100% at/above the 2c'τ·log n threshold (Lemma 13); it stays \
         high below it too at these sizes — the threshold is sufficient, not \
         necessary, and the c=4 partition count leaves slack (property tests probe \
         the breaking point near |S| → τ+1)",
    );
    out.push(t);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e4_coverage_above_threshold_is_total() {
        let tables = super::run(false);
        let t = &tables[1];
        // Rows with survivors ≥ threshold must be 100%.
        for r in 0..t.len() {
            let s: usize = t.cell(r, 2).parse().unwrap();
            let thr: usize = t.cell(r, 3).parse().unwrap();
            if s >= thr {
                assert_eq!(t.cell(r, 4), "100.0", "row {r}");
            }
        }
    }
}
