//! **E3m — memory accounting of the high-`n` complexity sweeps.**
//!
//! The complexity experiment (E3) measures messages; this companion
//! measures the *resident footprint* of the simulator at the same
//! operating point — continuous injection in the pipeline regime
//! (deadline ≥ 32) — as `n` grows to 8192. Each sweep point records the
//! process peak-RSS before and after the run (the high-water mark is
//! monotone, so the per-point increment is attributable to that point),
//! cumulative heap bytes allocated inside the run, and wall-clock time.
//!
//! The memory-lean hot state (interned fragment store, bounded hit-set
//! history, reused columnar outboxes) is what keeps the large-`n` points
//! inside a fixed budget; `scripts/ci.sh mem` replays the small-`n` sweep
//! under a hard RSS ceiling as a regression gate.

use congos::{CongosConfig, CongosNode};
use congos_adversary::{NoFailures, PoissonWorkload};
use congos_gossip::FanoutParams;
use congos_sim::Round;

use crate::json::Json;
use crate::mem;
use crate::run::{run_with_factory, RunSpec};
use crate::table::Table;

/// Deadline of every sweep point: the smallest pipelined class (the direct
/// threshold itself — `dline ≥ 32` routes through the full split/proxy/
/// gossip pipeline rather than the direct-send shortcut).
pub const DEADLINE: u64 = 32;

/// Expected rumors injected per round across the whole system (the
/// per-process Poisson rate is this divided by `n`, so load per round is
/// `n`-independent and growth in footprint isolates the per-process
/// state). With deadline 32 this keeps ~32 rumors concurrently in flight —
/// a steady pipeline.
pub const RUMORS_PER_ROUND: f64 = 1.0;

/// The sweep's protocol configuration: the default deployment with two
/// deviations that keep large-`n` points tractable without touching the
/// hot-state machinery under measurement.
///
/// * **Sub-saturation fanout.** The default (laptop-scale) constants
///   saturate the fanout clamp whenever any rumor is active, which makes
///   every round an everyone-to-everyone exchange — `Θ(n²)` envelopes per
///   round and days of wall-clock at `n = 8192`. The sweep instead pins
///   the epidemic fanout to its clamp floor (`α = 0.05`, `γ = 0.25`), the
///   same kind of knob the fanout ablation (E9b) sweeps. Quality of
///   Delivery still holds — the deadline fallback is deterministic.
/// * **Best-effort metadata.** Collaborator beacons and hit-set shares are
///   injected every iteration by every process; with guaranteed delivery
///   each such rumor charges `Θ(|group|)` acks/fallbacks, an `n²` steady-
///   state term. The sweep sends them best-effort (`lean_metadata`).
///
/// Fragments (the rumors themselves) keep full QoD guarantees; the
/// interned fragment store, bounded hit-set history and columnar outboxes
/// are exercised identically. The differential suites pin golden digests
/// on the *default* configuration, which is unaffected.
pub fn sweep_config() -> CongosConfig {
    CongosConfig::default()
        .service_fanout(FanoutParams {
            alpha: 0.05,
            gamma: 0.25,
            root: 2,
        })
        .gossip_fanout(FanoutParams {
            alpha: 0.05,
            gamma: 0.25,
            root: 3,
        })
        .lean_metadata(true)
}

/// The sweep sizes: quick (CI smoke) vs full (the EXPERIMENTS.md rows).
pub fn sweep_sizes(full: bool) -> &'static [usize] {
    if full {
        &[1024, 2048, 4096, 8192]
    } else {
        &[256, 512, 1024]
    }
}

/// Runs the memory sweep over the given sizes and returns its table.
pub fn sweep(ns: &[usize]) -> Table {
    let mut t = Table::new(
        "E3m: memory accounting vs n (pipeline regime)",
        &[
            "n",
            "dline",
            "rounds",
            "rumors",
            "msgs",
            "rss_before_mib",
            "rss_after_mib",
            "rss_delta_mib",
            "alloc_mib",
            "live_peak_mib",
            "wall_ms",
        ],
    );
    for &n in ns {
        // Inject for two deadline windows, then drain one.
        let rounds = 3 * DEADLINE;
        let spec = RunSpec::new(n, 0xE3_4E4, rounds);
        let rate = (RUMORS_PER_ROUND / n as f64).min(1.0);
        let w = PoissonWorkload::new(rate, 3, DEADLINE, 0xE3_4E4).until(Round(rounds - DEADLINE));
        let cfg = sweep_config();
        let o = run_with_factory::<CongosNode, _, _>(
            spec,
            move |id, nn, _s| CongosNode::with_config(id, nn, cfg.clone()),
            NoFailures,
            w,
        );
        assert!(o.qod_theorem_holds(), "n={n}: {:?}", o.qod);
        t.row(vec![
            n.to_string(),
            DEADLINE.to_string(),
            rounds.to_string(),
            o.injections.len().to_string(),
            o.metrics.total().to_string(),
            mem::mib(o.mem.before.peak_rss),
            mem::mib(o.mem.after.peak_rss),
            mem::mib(o.mem.peak_rss_delta()),
            mem::mib(o.mem.allocated_delta()),
            mem::mib(o.mem.after.live_peak),
            format!("{:.1}", o.mem.wall_ms),
        ]);
    }
    t.note(format!(
        "continuous injection at ~{RUMORS_PER_ROUND} rumors/round system-wide, deadline {DEADLINE} (pipeline regime)"
    ));
    t.note(
        "sweep config: clamp-floor fanout (alpha 0.05, gamma 0.25) and best-effort service \
         metadata — see e3_memory::sweep_config; defaults saturate the fanout clamp into \
         Theta(n^2) envelopes/round, infeasible at n = 8192",
    );
    t.note(
        "rss_before/after = process peak-RSS (VmHWM) at point entry/exit; the monotone \
         high-water mark attributes each point's delta to that point (sweep runs small→large n)",
    );
    t
}

/// Runs E3m at the given scale.
pub fn run(full: bool) -> Vec<Table> {
    vec![sweep(sweep_sizes(full))]
}

/// Renders E3m tables as the `BENCH_memory.json` row set (one JSON object
/// per table row, keyed by column name).
pub fn bench_json(tables: &[Table]) -> Json {
    let mut rows = Vec::new();
    for table in tables {
        for r in 0..table.len() {
            rows.push(Json::Object(
                table
                    .headers()
                    .iter()
                    .enumerate()
                    .map(|(c, h)| (h.clone(), Json::from(table.cell(r, c))))
                    .collect(),
            ));
        }
    }
    Json::object([
        ("suite", Json::from("memory")),
        ("deadline", Json::Number(DEADLINE as f64)),
        ("rows", Json::Array(rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3m_micro_sweep_accounts_memory() {
        let t = sweep(&[32, 64]);
        assert_eq!(t.len(), 2);
        for r in 0..t.len() {
            // Wall clock and allocation deltas must be non-trivial.
            assert!(t.cell(r, 10).parse::<f64>().unwrap() > 0.0);
            assert!(t.cell(r, 8).parse::<f64>().unwrap() > 0.0);
            // RSS columns parse; on Linux the high-water mark is monotone.
            let before: f64 = t.cell(r, 5).parse().unwrap();
            let after: f64 = t.cell(r, 6).parse().unwrap();
            assert!(after >= before);
        }
        let doc = bench_json(&[t]);
        let rows = doc["rows"].as_array().expect("rows array");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0]["n"].as_str(), Some("32"));
    }
}
