//! **E3 — Lemma 7 / Theorem 11: per-round message complexity.**
//!
//! Two sweeps under continuous injection:
//!
//! * **vs `n`** at two fixed deadlines: Theorem 11's bound
//!   `O(n^{1+γ/⁶√dmin} polylog n)` is *loose at short deadlines* (at
//!   `dmin = 64` even the paper's own exponent exceeds 2) and tightens
//!   toward near-linear only as `dmin` grows toward `log⁶n`. The sweep
//!   fits the empirical exponent at a short and a long deadline and checks
//!   the fitted exponent is (a) within the configured bound and (b) smaller
//!   at the longer deadline;
//! * **vs `dmin`** at fixed `n`: the service cost (Proxy +
//!   GroupDistribution tags, metered exactly as Lemma 7 counts them —
//!   excluding the gossip substrate) should *fall* as deadlines grow,
//!   the `n^{48/√dmin}`-flavored decay;
//! * **vs backend** at large `n`: wall-clock of the sequential vs the
//!   parallel engine on an identical spec, asserting the outcomes are
//!   bit-identical (the determinism contract of
//!   `congos_sim::EngineBackend`).

use congos::{CongosNode, TAG_GD, TAG_PROXY};
use congos_adversary::{NoFailures, PoissonWorkload};
use congos_sim::{EngineBackend, Round};

use crate::run::{run as run_system, RunSpec};
use crate::stats::fit_power_law;
use crate::table::Table;

/// Runs E3 and returns its two tables.
pub fn run(full: bool) -> Vec<Table> {
    let mut out = Vec::new();

    // ---- Sweep n at a short and a long deadline. -------------------
    let ns: &[usize] = if full {
        &[16, 32, 64, 128]
    } else {
        &[16, 32, 64]
    };
    let mut t = Table::new(
        "E3a: per-round complexity vs n (Theorem 11)",
        &[
            "dline", "n", "max/rnd", "mean/rnd", "svc_max/rnd", "rumors", "lat_p50", "lat_p95",
        ],
    );
    let mut exponents = Vec::new();
    for &deadline in &[64u64, 1024] {
        let mut xs = Vec::new();
        let mut mean_pr = Vec::new();
        for &n in ns {
            let rounds = 3 * deadline.min(512) + deadline;
            let spec = RunSpec::new(n, 0xE3, rounds);
            let w =
                PoissonWorkload::new(0.05, 3, deadline, 0xE3).until(Round(rounds - deadline));
            let o = run_system::<CongosNode, _, _>(spec, NoFailures, w);
            assert!(o.qod_theorem_holds(), "n={n}: {:?}", o.qod);
            let svc = o
                .metrics
                .max_per_round_of(TAG_PROXY)
                .max(o.metrics.max_per_round_of(TAG_GD));
            t.row(vec![
                deadline.to_string(),
                n.to_string(),
                o.metrics.max_per_round().to_string(),
                format!("{:.1}", o.metrics.mean_per_round()),
                svc.to_string(),
                o.injections.len().to_string(),
                o.latency_percentile(50.0).to_string(),
                o.latency_percentile(95.0).to_string(),
            ]);
            xs.push(n as f64);
            mean_pr.push(o.metrics.mean_per_round());
        }
        exponents.push((deadline, fit_power_law(&xs, &mean_pr)));
    }
    let (d0, b0) = exponents[0];
    let (d1, b1) = exponents[1];
    t.note(format!(
        "mean-per-round exponents: n^{b0:.2} at dline={d0}, n^{b1:.2} at dline={d1} —          the bound n^(1+γ/⁶√dmin)·polylog tightens with the deadline (Theorem 11),          and the fitted exponent falls accordingly"
    ));
    assert!(
        b1 < b0,
        "longer deadlines must be cheaper per Theorem 11: {b1:.2} !< {b0:.2}"
    );
    out.push(t);

    // ---- Sweep deadline at fixed n. --------------------------------
    let n = if full { 64 } else { 32 };
    let deadlines: &[u64] = if full {
        &[64, 128, 256, 512, 1024]
    } else {
        &[64, 128, 256, 512]
    };
    let mut t = Table::new(
        "E3b: service cost vs deadline (Lemma 7 decay)",
        &["dline", "svc_max/rnd", "svc_total", "max/rnd", "rumors"],
    );
    let mut ds = Vec::new();
    let mut svc_max = Vec::new();
    for &d in deadlines {
        let rounds = 3 * d;
        let spec = RunSpec::new(n, 0xE3B, rounds);
        // Fix the *number* of rumors per round so only the deadline varies.
        let w = PoissonWorkload::new(0.05, 3, d, 0xE3B).until(Round(rounds - d));
        let o = run_system::<CongosNode, _, _>(spec, NoFailures, w);
        assert!(o.qod_theorem_holds(), "d={d}: {:?}", o.qod);
        let svc = o
            .metrics
            .max_per_round_of(TAG_PROXY)
            .max(o.metrics.max_per_round_of(TAG_GD));
        let svc_total = o.metrics.total_of(TAG_PROXY) + o.metrics.total_of(TAG_GD);
        t.row(vec![
            d.to_string(),
            svc.to_string(),
            svc_total.to_string(),
            o.metrics.max_per_round().to_string(),
            o.injections.len().to_string(),
        ]);
        ds.push(d as f64);
        svc_max.push(svc.max(1) as f64);
    }
    let b = fit_power_law(&ds, &svc_max);
    t.note(format!(
        "service max-per-round scales as dline^{b:.2} (negative = the Lemma 7 decay)"
    ));
    out.push(t);

    // ---- Sweep backends at large n (engine scaling). ---------------
    // The workload stays light (≈2 rumors/round, direct path) so the
    // engine's per-round fan-out over the processes dominates — that is
    // the part EngineBackend::Parallel shards. Outcomes must be
    // bit-identical; only wall clock may differ, and the speedup is
    // bounded by the host's physical core count.
    let ns: &[usize] = if full { &[512, 1024, 2048] } else { &[256, 1024] };
    let mut t = Table::new(
        "E3c: engine wall-clock vs backend at large n",
        &["n", "seq_ms", "par8_ms", "speedup", "msgs"],
    );
    for &n in ns {
        let rounds = 48u64;
        let mk = || PoissonWorkload::new(2.0 / n as f64, 3, 16, 0xE3C).until(Round(32));
        let run_on = |backend| {
            let spec = RunSpec::new(n, 0xE3C, rounds).backend(backend);
            let t0 = std::time::Instant::now();
            let o = run_system::<CongosNode, _, _>(spec, NoFailures, mk());
            (t0.elapsed().as_secs_f64() * 1e3, o)
        };
        let (ms_seq, o_seq) = run_on(EngineBackend::Sequential);
        let (ms_par, o_par) = run_on(EngineBackend::Parallel { workers: 8 });
        assert_eq!(
            o_seq.deliveries, o_par.deliveries,
            "n={n}: backends must be bit-identical"
        );
        assert_eq!(o_seq.metrics.total(), o_par.metrics.total());
        t.row(vec![
            n.to_string(),
            format!("{ms_seq:.1}"),
            format!("{ms_par:.1}"),
            format!("{:.2}x", ms_seq / ms_par.max(1e-9)),
            o_seq.metrics.total().to_string(),
        ]);
    }
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    t.note(format!(
        "host exposes {cores} core(s); speedup is bounded by physical cores         and ~1x on a single-core host — outcomes are bit-identical on every backend"
    ));
    out.push(t);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e3_produces_all_sweeps() {
        let tables = super::run(false);
        assert_eq!(tables.len(), 3);
        assert!(tables.iter().all(|t| !t.is_empty()));
    }
}
