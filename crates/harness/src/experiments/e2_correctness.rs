//! **E2 — Theorem 2: confidentiality and Quality of Delivery, always.**
//!
//! Runs CONGOS against a matrix of adversaries — benign, random churn,
//! the adaptive proxy-killer, group annihilation — with the
//! confidentiality auditor attached. Every cell must read: 0 violations,
//! 100% of admissible (rumor, destination) pairs delivered on time. These
//! are the probability-1 guarantees of Lemmas 3 and 4.

use congos::{CongosNode, ConfidentialityAuditor};
use congos_adversary::{
    CrriAdversary, Eclipse, FailurePlan, GroupAnnihilator, NoFailures, PoissonWorkload,
    ProxyKiller, RandomChurn, RollingWaves,
};
use congos_sim::{Engine, EngineConfig, Round, Tag};

use crate::run::QodSummary;
use crate::table::Table;

fn run_audited<F: FailurePlan>(
    n: usize,
    seed: u64,
    rounds: u64,
    failures: F,
) -> (QodSummary, usize, usize) {
    let deadline = 64u64;
    let workload = PoissonWorkload::new(0.03, 3, deadline, seed).until(Round(rounds - deadline));
    let mut adv = CrriAdversary::new(failures, workload);
    let mut audit = ConfidentialityAuditor::new(n);
    // Theorem replication pins the paper's complete network (the default
    // EngineConfig topology); the sparse/churn sweep lives in E14.
    let mut engine = Engine::<CongosNode>::new(EngineConfig::new(n).seed(seed));
    engine.run_observed(rounds, &mut adv, &mut audit);

    let mut qod = QodSummary::default();
    for entry in adv.workload().log() {
        let t = entry.round;
        let end = t + entry.spec.deadline;
        let src_ok = engine.liveness().continuously_alive(entry.source, t, end);
        for d in &entry.spec.dest {
            if !src_ok || !engine.liveness().continuously_alive(*d, t, end) {
                qod.inadmissible += 1;
                continue;
            }
            qod.admissible += 1;
            let best = engine
                .outputs()
                .iter()
                .filter(|o| o.process == *d && o.value.wid == entry.spec.id)
                .map(|o| o.round)
                .min();
            match best {
                Some(r) if r <= end => qod.on_time += 1,
                Some(_) => qod.late += 1,
                None => qod.missed += 1,
            }
        }
    }
    (
        qod,
        audit.report().violations.len(),
        engine.liveness().crash_count(),
    )
}

type Scenario = (&'static str, Box<dyn FnOnce() -> (QodSummary, usize, usize)>);

/// Runs E2 and returns its table.
pub fn run(full: bool) -> Vec<Table> {
    let n = if full { 32 } else { 16 };
    let rounds = if full { 384 } else { 256 };
    let mut t = Table::new(
        "E2: correctness matrix (Theorem 2 / Lemmas 3-4)",
        &[
            "adversary",
            "crashes",
            "admissible",
            "on_time",
            "late",
            "missed",
            "violations",
        ],
    );

    let scenarios: Vec<Scenario> = vec![
        (
            "none",
            Box::new(move || run_audited(n, 0xE2_01, rounds, NoFailures)),
        ),
        (
            "random churn",
            Box::new(move || {
                run_audited(n, 0xE2_02, rounds, RandomChurn::new(0.004, 0.15, 0xE2))
            }),
        ),
        (
            "proxy killer",
            Box::new(move || {
                run_audited(
                    n,
                    0xE2_03,
                    rounds,
                    ProxyKiller::new(Tag("proxy"), 1).revive_after(48),
                )
            }),
        ),
        (
            "group annihilation",
            Box::new(move || {
                run_audited(n, 0xE2_04, rounds, GroupAnnihilator::new(0, 0, Round(8)))
            }),
        ),
        (
            "eclipse",
            Box::new(move || {
                run_audited(
                    n,
                    0xE2_05,
                    rounds,
                    Eclipse::new(congos_sim::ProcessId::new(3), Round(rounds / 2), 1),
                )
            }),
        ),
        (
            "rolling waves",
            Box::new(move || run_audited(n, 0xE2_06, rounds, RollingWaves::new(2, 48))),
        ),
    ];

    for (name, f) in scenarios {
        let (qod, violations, crashes) = f();
        assert_eq!(violations, 0, "{name}: confidentiality violated");
        assert!(qod.perfect(), "{name}: QoD violated: {qod:?}");
        t.row(vec![
            name.to_string(),
            crashes.to_string(),
            qod.admissible.to_string(),
            qod.on_time.to_string(),
            qod.late.to_string(),
            qod.missed.to_string(),
            violations.to_string(),
        ]);
    }
    t.note("every row must read late=0 missed=0 violations=0 (probability-1 guarantees)");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e2_matrix_is_clean() {
        let tables = super::run(false);
        for r in 0..tables[0].len() {
            assert_eq!(tables[0].cell(r, 4), "0", "late");
            assert_eq!(tables[0].cell(r, 5), "0", "missed");
            assert_eq!(tables[0].cell(r, 6), "0", "violations");
        }
    }
}
