//! **E8 — alternative approaches: CONGOS vs direct / crypto / epidemic.**
//!
//! The paper's discussion section in numbers. Two regimes:
//!
//! * **dynamic groups** — every rumor draws a fresh destination set: the
//!   crypto comparator re-keys for every rumor, the strongly confidential
//!   protocol cannot batch, the plain epidemic is cheap but leaks
//!   everything, and CONGOS pays its pipeline overhead but keeps per-round
//!   complexity flat and confidentiality intact;
//! * **stable groups** — rumors reuse a few fixed groups: re-keying
//!   amortizes away and crypto multicast becomes the cheapest confidential
//!   option, exactly as the paper concedes.

use congos::CongosNode;
use congos_adversary::{NoFailures, PoissonWorkload, StableGroupWorkload};
use congos_baselines::{
    CryptoMulticastNode, DirectNode, StronglyConfidentialNode, TAG_REKEY,
};
use congos_gossip::GossipNode;
use congos_sim::{ProcessId, Round};

use crate::run::{run as run_system, RunOutcome, RunSpec};
use crate::table::Table;

const DEADLINE: u64 = 64;

fn push_row(t: &mut Table, o: &RunOutcome, rekeys: u64) {
    assert!(o.qod_theorem_holds(), "{}: {:?}", o.name, o.qod);
    let copies: usize = o.injections.iter().map(|e| e.spec.dest.len()).sum();
    t.row(vec![
        o.name.to_string(),
        o.metrics.total().to_string(),
        o.metrics.max_per_round().to_string(),
        format!("{:.1}", o.metrics.mean_per_round()),
        rekeys.to_string(),
        format!("{:.2}", rekeys as f64 / copies.max(1) as f64),
        format!("{:.1}", 100.0 * o.qod.on_time_rate()),
    ]);
}

fn regime(
    title: &str,
    n: usize,
    rounds: u64,
    fresh: bool,
    stable_groups: usize,
) -> Table {
    let mut t = Table::new(
        title,
        &["system", "total", "max/rnd", "mean/rnd", "rekey_msgs", "rekey/copy", "on_time%"],
    );
    let spec = RunSpec::new(n, 0xE8, rounds);
    macro_rules! go {
        ($P:ty) => {{
            if fresh {
                let w = PoissonWorkload::new(0.05, 4, DEADLINE, 0xE8)
                    .until(Round(rounds - DEADLINE));
                run_system::<$P, _, _>(spec, NoFailures, w)
            } else {
                let groups: Vec<Vec<ProcessId>> = (0..stable_groups)
                    .map(|g| {
                        (0..n)
                            .filter(|i| i % stable_groups == g)
                            .map(ProcessId::new)
                            .collect()
                    })
                    .collect();
                let w = StableGroupWorkload::new(groups, 0.05, DEADLINE, 0xE8)
                    .until(Round(rounds - DEADLINE));
                run_system::<$P, _, _>(spec, NoFailures, w)
            }
        }};
    }
    let o = go!(CongosNode);
    push_row(&mut t, &o, 0);
    let o = go!(DirectNode);
    push_row(&mut t, &o, 0);
    let o = go!(StronglyConfidentialNode);
    push_row(&mut t, &o, 0);
    let o = go!(CryptoMulticastNode);
    let rekeys = o.metrics.total_of(TAG_REKEY);
    push_row(&mut t, &o, rekeys);
    let o = go!(GossipNode);
    push_row(&mut t, &o, 0);
    t
}

/// Runs E8 and returns its two tables.
pub fn run(full: bool) -> Vec<Table> {
    let n = if full { 64 } else { 32 };
    let rounds = if full { 6 * DEADLINE } else { 4 * DEADLINE };
    let mut dynamic = regime(
        "E8a: dynamic groups (fresh destination set per rumor)",
        n,
        rounds,
        true,
        0,
    );
    dynamic.note("crypto pays a fresh re-key for every rumor (rekey/copy stays high); epidemic leaks everything; congos stays confidential");
    let mut stable = regime("E8b: stable groups (2 fixed groups)", n, rounds, false, 2);
    stable.note("re-keying amortizes toward 0 per delivered copy: the crypto comparator wins, as the paper concedes");
    vec![dynamic, stable]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e8_crypto_rekeys_more_under_dynamic_groups() {
        let tables = super::run(false);
        // Normalized per delivered rumor copy, dynamic groups re-key far
        // more than stable groups (where the cost amortizes away).
        let per_copy_dyn: f64 = tables[0].cell(3, 5).parse().unwrap();
        let per_copy_stable: f64 = tables[1].cell(3, 5).parse().unwrap();
        assert!(
            per_copy_dyn > 2.0 * per_copy_stable.max(0.01),
            "dynamic {per_copy_dyn} vs stable {per_copy_stable} per copy"
        );
    }
}
