//! **E14 — beyond the complete graph: QoD and message complexity vs
//! topology.**
//!
//! The paper's guarantees are proved on a reliable complete network. This
//! experiment measures what survives on sparser and churning topologies:
//! CONGOS and the baselines run unchanged while the engine's delivery
//! phase drops every envelope whose link is absent that round
//! (`sim::topology`). Three regimes are swept:
//!
//! * `complete` — the paper's model; every protocol must keep perfect QoD
//!   (this row doubles as a regression check that the topology layer adds
//!   no behavioral change on the default path);
//! * `expander:d` — static random d-regular graphs: degree buys
//!   reachability, and protocols that spray point-to-point messages across
//!   the whole id space (direct unicast, CONGOS proxies) degrade fastest;
//! * `churn:p` — per-round seeded edge flips over the complete graph: the
//!   *dynamic gossip* regime, where links vanish and reappear every round.
//!
//! Pairs with no temporal path inside the deadline window are exempted as
//! `unreach` (see [`QodSummary::unreachable`](crate::QodSummary)); `missed`
//! therefore counts only pairs some protocol *could* have served — an
//! honest measure of each protocol's topology sensitivity.

use congos::CongosNode;
use congos_adversary::{NoFailures, PoissonWorkload};
use congos_baselines::DirectNode;
use congos_gossip::GossipNode;
use congos_sim::{Round, TopologySpec};

use crate::json::Json;
use crate::run::{run as run_system, RunOutcome, RunSpec};
use crate::system::GossipSystem;
use crate::table::Table;

/// The topology sweep for one scale.
fn sweep(full: bool) -> Vec<TopologySpec> {
    let mut t = vec![
        TopologySpec::Complete,
        TopologySpec::Expander { degree: 4 },
        TopologySpec::Expander { degree: 8 },
        TopologySpec::churn(0.01),
        TopologySpec::churn(0.05),
        TopologySpec::churn(0.10),
    ];
    if full {
        t.push(TopologySpec::Expander { degree: 12 });
        t.push(TopologySpec::Churn {
            base_degree: Some(8),
            flip_ppm: 50_000,
        });
        t.push(TopologySpec::churn(0.25));
    }
    t
}

fn run_one<P>(spec: RunSpec, rounds: u64, deadline: u64) -> Vec<String>
where
    P: GossipSystem + Send,
    P::Msg: Send + Sync,
    P::Input: From<congos_adversary::RumorSpec> + Send,
    P::Output: Send,
{
    // Failure-free: E14 isolates the topology axis — the only exemptions in
    // these rows are topological (`unreach`), never crash-inadmissibility.
    let workload =
        PoissonWorkload::new(0.04, 3, deadline, spec.seed ^ 0xE14).until(Round(rounds - deadline));
    let out = run_system::<P, _, _>(spec, NoFailures, workload);
    row_of(spec.topology, &out)
}

fn row_of(topology: TopologySpec, out: &RunOutcome) -> Vec<String> {
    vec![
        topology.to_string(),
        out.name.to_string(),
        out.qod.admissible.to_string(),
        format!("{:.1}", 100.0 * out.qod.on_time_rate()),
        out.qod.late.to_string(),
        out.qod.missed.to_string(),
        out.qod.unreachable.to_string(),
        out.metrics.topology_drops().to_string(),
        out.metrics.max_per_round().to_string(),
        format!("{:.1}", out.metrics.mean_per_round()),
    ]
}

/// Runs E14 and returns its table.
///
/// The `complete` rows are asserted perfect — the topology layer must be
/// invisible on the paper's network. Sparse/churn rows are *measured*, not
/// asserted: degraded QoD off the complete graph is the finding, not a bug.
pub fn run(full: bool) -> Vec<Table> {
    let n = if full { 32 } else { 16 };
    let rounds = if full { 384u64 } else { 192 };
    let deadline = 48u64;
    let seed = 0xE14;

    let mut t = Table::new(
        "E14: QoD and message complexity vs topology",
        &[
            "topology",
            "system",
            "admissible",
            "on_time%",
            "late",
            "missed",
            "unreach",
            "drops",
            "max_msgs/rd",
            "mean_msgs/rd",
        ],
    );
    for topology in sweep(full) {
        let spec = RunSpec::new(n, seed, rounds).topology(topology);
        for row in [
            run_one::<CongosNode>(spec, rounds, deadline),
            run_one::<DirectNode>(spec, rounds, deadline),
            run_one::<GossipNode>(spec, rounds, deadline),
        ] {
            if topology.is_complete() {
                assert_eq!(row[4], "0", "complete/{}: late deliveries", row[1]);
                assert_eq!(row[5], "0", "complete/{}: missed deliveries", row[1]);
                assert_eq!(row[6], "0", "complete: unreachable pairs are impossible");
                assert_eq!(row[7], "0", "complete: the topology never drops");
            }
            t.row(row);
        }
    }
    t.note("complete rows are asserted perfect: the topology layer is invisible on the paper's network");
    t.note("unreach = alive pairs with no temporal path in the deadline window (exempt, like crash-inadmissible)");
    t.note("missed counts only pairs a protocol could have served; off-complete degradation is the measurement");
    vec![t]
}

/// Renders E14 tables as the `BENCH_topology.json` row set (one JSON object
/// per table row, keyed by column name).
pub fn bench_json(tables: &[Table]) -> Json {
    let mut rows = Vec::new();
    for table in tables {
        for r in 0..table.len() {
            rows.push(Json::Object(
                table
                    .headers()
                    .iter()
                    .enumerate()
                    .map(|(c, h)| (h.clone(), Json::from(table.cell(r, c))))
                    .collect(),
            ));
        }
    }
    Json::object([
        ("suite", Json::from("topology")),
        ("rows", Json::Array(rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_complete_rows_are_perfect_and_sparse_rows_drop() {
        let tables = run(false);
        let t = &tables[0];
        // 6 topologies × 3 systems in the quick sweep.
        assert_eq!(t.len(), 18);
        // Row 0: complete/congos — perfect, no drops (asserted in run() too).
        assert_eq!(t.cell(0, 0), "complete");
        assert_eq!(t.cell(0, 3), "100.0");
        // Some sparse topology must actually drop messages, else the sweep
        // tests nothing.
        let total_drops: u64 = (0..t.len())
            .map(|r| t.cell(r, 7).parse::<u64>().unwrap())
            .sum();
        assert!(total_drops > 0, "no topology ever dropped a message");
        for r in 0..t.len() {
            let unreach: u64 = t.cell(r, 6).parse().unwrap();
            if t.cell(r, 0) == "complete" {
                assert_eq!(unreach, 0, "complete cannot have unreachable pairs");
            }
        }
    }

    #[test]
    fn e14_bench_json_row_set() {
        let tables = run(false);
        let doc = bench_json(&tables);
        let rows = doc["rows"].as_array().expect("rows array");
        assert_eq!(rows.len(), 18);
        assert_eq!(rows[0]["topology"].as_str(), Some("complete"));
        assert!(rows.iter().any(|r| r["system"].as_str() == Some("congos")));
    }
}
