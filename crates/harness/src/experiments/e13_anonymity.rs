//! **E13 — source anonymity: who started this rumor, and can CONGOS hide
//! it?**
//!
//! The paper proves *payload* confidentiality; this experiment measures
//! *metadata* leakage. A passive observing coalition (a seeded fraction of
//! the processes, never containing the source) records the
//! `(observer, sender, tag, round)` metadata of every message delivered to
//! it — via the RNG-neutral tap of `congos_adversary::predict` — and then
//! tries to identify the rumor's source with two estimators from the
//! gossip-privacy literature:
//!
//! * **first-contact** (Bellet/Guerraoui/Hendrikx): the earliest candidate
//!   the coalition hears from on a rumor-bearing tag is the suspect;
//! * **ML** (after Jin/Huang/Dai): a posterior over candidates scored by
//!   how well each candidate's BFS distances on the *known* topology
//!   explain the observed first-sighting latencies.
//!
//! Each cell of the sweep — protocol × topology × coalition fraction —
//! aggregates many independent one-rumor trials (fresh seed, fresh uniform
//! source, fresh coalition) into an identification probability `p_id`, a
//! top-3 accuracy, and the DP-style `ε̂` of the papers
//! (`ε = ln(p·(m−1)/(1−p))`, Laplace-smoothed; 0 = the attack is no better
//! than uniform guessing over the `m` candidates).
//!
//! The adversary is given every honest advantage: it knows the topology,
//! the injection round, and the per-protocol set of rumor-correlated
//! service tags. What it cannot do is decrypt payloads or see links it is
//! not an endpoint of.
//!
//! **CONGOS is measured in its Section 7 metadata-hiding deployment**:
//! cover traffic on (`congos` rows), so every process continually injects
//! content-free decoys that exercise the *same* proxy/group machinery as
//! real rumors. The `congos-nocover` ablation rows run the base protocol
//! and document the honest negative result: without cover traffic the
//! network is quiescent until the rumor arrives, the first thing any
//! coalition member can hear is the source's own proxy handshake, and the
//! source is identified essentially whenever the coalition contains a
//! proxy — *worse* than direct unicast, whose exposure is capped by the
//! `|D|` destinations. Confidentiality of payloads (the paper's
//! theorems) buys no source anonymity on its own; the cover-traffic
//! extension is what hides the source.

use congos::{CongosConfig, CongosNode, CoverTrafficConfig};
use congos_adversary::predict::{first_contact_posterior, AttackScore, CoalitionSpec, EstimatorCtx, MlEstimator};
use congos_adversary::{NoFailures, OneShot, RumorSpec};
use congos_baselines::{DirectNode, StronglyConfidentialNode};
use congos_sim::{ProcessId, Protocol, Round, Topology, TopologySpec};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::json::Json;
use crate::run::{run_with_factory, RunSpec, TapSpec};
use crate::system::GossipSystem;
use crate::table::Table;

/// The round the rumor is injected (publicly known to the adversary; a
/// couple of warm-up rounds keep injection clear of round-0 startup).
const INJECT_AT: u64 = 2;
/// Rumor deadline (rounds). Must be generous enough that CONGOS engages
/// its proxy/group machinery: below ~2·n/BlockClock granularity the node
/// trims the deadline and falls back to shooting the rumor straight at its
/// destinations, which is exactly as identifying as direct unicast. 48 is
/// the smallest sweep-friendly value where the proxy, group-distribution
/// and gossip lanes all carry traffic at n ≤ 128.
const DEADLINE: u64 = 48;
/// Rounds past the deadline the tap keeps listening.
const TAIL: u64 = 8;
/// Destination-set size per rumor. Deliberately generous (a multicast-style
/// set): every destination is one more chance for the coalition to catch a
/// leaky protocol red-handed, which keeps the sweep's baseline separation
/// statistically solid on sparse topologies where most unicasts drop.
const DEST_SIZE: usize = 8;
/// Top-k rank threshold reported as `top3`.
const TOP_K: usize = 3;
/// Extra trials for the cheap baselines (direct/strong runs cost
/// microseconds of traffic next to a CONGOS substrate run, so their cells
/// can afford tight confidence intervals).
const CHEAP_MULT: u64 = 8;
/// Extra trials for the CONGOS rows of the asserted gate cell
/// (expander:4 at coalition 10%).
const GATE_MULT: u64 = 3;
/// Per-process per-round decoy-injection probability for the `congos`
/// (cover-traffic) rows. Decoys carry the same payload length and the same
/// deadline class as the real rumor, so their service traffic is
/// metadata-identical to it. 0.10 was picked by probing the gate cell
/// (expander:4, coalition 10%): rate 0.05 leaves first-contact
/// identification at ~12% (within 1σ of direct unicast's ~15%), 0.10
/// drops it to ~6%, and 0.20 only closes the last ~2.5 points to the
/// uniform floor while doubling the sweep's CONGOS traffic again.
const COVER_RATE: f64 = 0.10;

/// The per-protocol rumor-bearing tag sets the adversary filters on — its
/// best shot at separating rumor traffic from background. For CONGOS these
/// are the services a rumor *must* transit on its way out of the source
/// (proxy requests, group distribution, the shoot fallback). Under cover
/// traffic the very same tags fire for every decoy at every process, which
/// is exactly the defense being measured — the filter stays the
/// adversary's best choice, it just stops being discriminative.
fn rumor_tags(system: &str) -> &'static [&'static str] {
    match system {
        "congos" | "congos-nocover" => &["proxy", "group_dist", "shoot"],
        "direct" => &["direct"],
        "strong" => &["strong"],
        _ => &[],
    }
}

/// CONGOS in its Section 7 metadata-hiding deployment: cover traffic with
/// decoys that are metadata-identical to the experiment's real rumor.
fn cover_config() -> CongosConfig {
    CongosConfig::base().cover_traffic(CoverTrafficConfig {
        rate: COVER_RATE,
        data_len: 2,
        deadline: DEADLINE,
    })
}

/// SplitMix64 — decorrelates per-trial seeds from the sweep indices.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One cell's aggregated scores: (first-contact, ML, candidate count).
///
/// `system` names the row (and picks the adversary's tag filter);
/// `factory` builds the node, so configured CONGOS variants and plain
/// baselines share one code path.
fn run_cell<P>(
    system: &str,
    factory: impl Fn(ProcessId, usize, u64) -> P + Clone + 'static,
    n: usize,
    trials: u64,
    fraction_ppm: u32,
    topology: TopologySpec,
    base_seed: u64,
) -> (AttackScore, AttackScore, usize)
where
    P: GossipSystem + Send,
    P::Msg: Send + Sync,
    P::Input: From<RumorSpec> + Send,
    P::Output: Send,
{
    let rounds = INJECT_AT + DEADLINE + TAIL;
    let mut fc = AttackScore::new(TOP_K);
    let mut ml = AttackScore::new(TOP_K);
    let mut m_candidates = 0;
    for trial in 0..trials {
        let seed = mix(base_seed ^ mix(trial.wrapping_add(1)));
        // Fresh uniform source and destination set per trial, drawn from a
        // dedicated RNG (the engine's stream is untouched).
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x50BC_E5EED);
        let mut ids: Vec<ProcessId> = ProcessId::all(n).collect();
        ids.shuffle(&mut rng);
        let source = ids[0];
        let mut dest: Vec<ProcessId> = ids[1..1 + DEST_SIZE].to_vec();
        dest.sort_unstable();

        let tap = TapSpec {
            coalition: CoalitionSpec {
                fraction_ppm,
                seed: seed ^ 0x0B5E_11E5,
            },
            exclude: Some(source),
        };
        let members = tap.members(n);
        let spec = RunSpec::new(n, seed, rounds)
            .topology(topology)
            .probe_mem(false)
            .tap(tap);
        let workload = OneShot::new(
            Round(INJECT_AT),
            vec![(source, RumorSpec::new(0, vec![0xE1, 0x3A], DEADLINE, dest))],
        );
        let out = run_with_factory::<P, _, _>(spec, factory.clone(), NoFailures, workload);
        let log = out.tap.expect("tapped run returns a sighting log");

        let candidates: Vec<ProcessId> = ProcessId::all(n)
            .filter(|p| !members.contains(p))
            .collect();
        m_candidates = candidates.len();
        let ctx = EstimatorCtx {
            log: &log,
            candidates: &candidates,
            injected_at: Round(INJECT_AT),
            tags: rumor_tags(system),
        };
        fc.observe(&first_contact_posterior(&ctx), &candidates, source);
        let topo = Topology::build(topology, n, seed);
        ml.observe(
            &MlEstimator::default().posterior(&ctx, &topo),
            &candidates,
            source,
        );
    }
    (fc, ml, m_candidates)
}

fn cells(full: bool) -> (usize, u64, Vec<TopologySpec>, Vec<u32>) {
    // Sized for a single-core CI box: one cover-traffic CONGOS trial costs
    // ~0.35 s at n = 32 and ~3 s at n = 64 (the substrate moves ~10⁵–10⁶
    // messages per run), so the quick sweep stays at n = 32.
    let n = if full { 64 } else { 32 };
    let trials = if full { 40 } else { 24 };
    let topologies = vec![
        TopologySpec::Complete,
        TopologySpec::Expander { degree: 4 },
        TopologySpec::churn(0.05),
    ];
    let fractions: Vec<u32> = if full {
        vec![20_000, 50_000, 100_000, 200_000, 350_000]
    } else {
        vec![50_000, 100_000, 200_000]
    };
    (n, trials, topologies, fractions)
}

/// The headline identification probability of a cell: the adversary runs
/// both estimators and keeps the better one.
fn best_p_id(fc: &AttackScore, ml: &AttackScore) -> f64 {
    fc.p_id().max(ml.p_id())
}

/// Runs E13 and returns its table.
///
/// Asserts the experiment's headline claim: at coalition fraction 10% on
/// `expander:4`, CONGOS's source-identification probability is strictly
/// below direct unicast's (whichever estimator each adversary prefers) —
/// and direct unicast on the complete graph leaks well above the uniform
/// baseline, so the apparatus demonstrably *can* identify sources when a
/// protocol leaks them.
pub fn run(full: bool) -> Vec<Table> {
    let (n, trials, topologies, fractions) = cells(full);
    let base_seed = 0xE13_0001;

    let mut t = Table::new(
        "E13: source-identification probability vs coalition size",
        &[
            "topology",
            "system",
            "coalition%",
            "estimator",
            "trials",
            "m",
            "p_id%",
            "top3%",
            "eps",
            "uniform%",
        ],
    );

    // The acceptance-gate cells, captured while sweeping.
    let mut gate_congos: Option<f64> = None;
    let mut gate_direct: Option<f64> = None;
    let mut complete_direct: Option<(f64, usize)> = None;
    let mut complete_cover: Option<f64> = None;
    let mut complete_nocover: Option<f64> = None;

    for &topology in &topologies {
        for &fraction_ppm in &fractions {
            let gate_cell =
                topology == TopologySpec::Expander { degree: 4 } && fraction_ppm == 100_000;
            let congos_trials = if gate_cell { trials * GATE_MULT } else { trials };
            let mut sys_rows: Vec<(&'static str, AttackScore, AttackScore, usize)> = Vec::new();
            let (fc, ml, m) = run_cell(
                "congos",
                |id, n, _s| CongosNode::with_config(id, n, cover_config()),
                n,
                congos_trials,
                fraction_ppm,
                topology,
                base_seed,
            );
            sys_rows.push(("congos", fc, ml, m));
            let (fc, ml, m) = run_cell(
                "congos-nocover",
                CongosNode::new,
                n,
                congos_trials,
                fraction_ppm,
                topology,
                base_seed,
            );
            sys_rows.push(("congos-nocover", fc, ml, m));
            let (fc, ml, m) = run_cell(
                "direct",
                DirectNode::new,
                n,
                trials * CHEAP_MULT,
                fraction_ppm,
                topology,
                base_seed,
            );
            sys_rows.push(("direct", fc, ml, m));
            let (fc, ml, m) = run_cell(
                "strong",
                StronglyConfidentialNode::new,
                n,
                trials * CHEAP_MULT,
                fraction_ppm,
                topology,
                base_seed,
            );
            sys_rows.push(("strong", fc, ml, m));

            for (name, fc, ml, m) in &sys_rows {
                if gate_cell && *name == "congos" {
                    gate_congos = Some(best_p_id(fc, ml));
                }
                if gate_cell && *name == "direct" {
                    gate_direct = Some(best_p_id(fc, ml));
                }
                if topology.is_complete() && fraction_ppm == 100_000 {
                    match *name {
                        "direct" => complete_direct = Some((best_p_id(fc, ml), *m)),
                        "congos" => complete_cover = Some(best_p_id(fc, ml)),
                        "congos-nocover" => complete_nocover = Some(best_p_id(fc, ml)),
                        _ => {}
                    }
                }
                for (est, score) in [("first-contact", fc), ("ml", ml)] {
                    t.row(vec![
                        topology.to_string(),
                        name.to_string(),
                        format!("{:.1}", fraction_ppm as f64 / 10_000.0),
                        est.to_string(),
                        score.trials().to_string(),
                        m.to_string(),
                        format!("{:.2}", 100.0 * score.p_id()),
                        format!("{:.2}", 100.0 * score.top_k()),
                        format!("{:.3}", score.epsilon(*m)),
                        format!("{:.2}", 100.0 / *m as f64),
                    ]);
                }
            }
        }
    }

    let (gc, gd) = (
        gate_congos.expect("sweep covers the gate cell"),
        gate_direct.expect("sweep covers the gate cell"),
    );
    assert!(
        gc < gd,
        "E13 gate: CONGOS p_id ({gc:.4}) must be strictly below direct \
         unicast's ({gd:.4}) at coalition 10% on expander:4"
    );
    if let Some((p, m)) = complete_direct {
        assert!(
            p > 2.0 / m as f64,
            "sanity: direct unicast on the complete graph must leak the \
             source well above uniform (p_id {p:.4}, uniform {:.4})",
            1.0 / m as f64
        );
    }
    if let (Some(cover), Some(nocover)) = (complete_cover, complete_nocover) {
        assert!(
            cover < nocover,
            "cover traffic must reduce identification on the complete graph \
             at coalition 10% (with {cover:.4}, without {nocover:.4})"
        );
    }

    t.note("p_id = probability the adversary's (tie-randomized) argmax is the true source; uniform% = blind guessing");
    t.note("eps = ln(p(m-1)/(1-p)), Laplace-smoothed — the papers' DP-style leakage bound; 0 = no leakage");
    t.note("each cell aggregates independent one-rumor trials: fresh seed, uniform source, fresh coalition excluding the source");
    t.note("congos = Section 7 cover-traffic deployment; congos-nocover = base protocol (quiescent net: the proxy handshake identifies the source)");
    t.note("gate (asserted): congos < direct at coalition 10% on expander:4, best estimator per system");
    vec![t]
}

/// Renders E13 tables as the `BENCH_anonymity.json` row set (one JSON
/// object per table row, keyed by column name).
pub fn bench_json(tables: &[Table]) -> Json {
    let mut rows = Vec::new();
    for table in tables {
        for r in 0..table.len() {
            rows.push(Json::Object(
                table
                    .headers()
                    .iter()
                    .enumerate()
                    .map(|(c, h)| (h.clone(), Json::from(table.cell(r, c))))
                    .collect(),
            ));
        }
    }
    Json::object([
        ("suite", Json::from("anonymity")),
        ("rows", Json::Array(rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature sweep cell (not the full quick sweep — that is the CI
    /// binary's job): direct unicast on the complete graph with a large
    /// coalition must leak more than cover-traffic CONGOS in the same
    /// setting, while base (no-cover) CONGOS leaks *at least as much* as
    /// the cover-traffic deployment — the E13 headline in miniature.
    #[test]
    fn e13_direct_leaks_more_than_congos_on_complete() {
        let (fc_d, ml_d, m) = run_cell(
            "direct",
            DirectNode::new,
            16,
            12,
            250_000,
            TopologySpec::Complete,
            0xA11CE,
        );
        let (fc_c, ml_c, m2) = run_cell(
            "congos",
            |id, n, _s| CongosNode::with_config(id, n, cover_config()),
            16,
            12,
            250_000,
            TopologySpec::Complete,
            0xA11CE,
        );
        assert_eq!(m, m2);
        let d = best_p_id(&fc_d, &ml_d);
        let c = best_p_id(&fc_c, &ml_c);
        assert!(
            d > c,
            "direct ({d:.3}) should leak more than congos ({c:.3}) with a 25% coalition"
        );
        assert!(d > 1.5 / m as f64, "direct must beat uniform ({m} candidates)");
        let (fc_nc, ml_nc, _) = run_cell(
            "congos-nocover",
            CongosNode::new,
            16,
            12,
            250_000,
            TopologySpec::Complete,
            0xA11CE,
        );
        let nc = best_p_id(&fc_nc, &ml_nc);
        assert!(
            nc >= c,
            "base congos ({nc:.3}) should leak at least as much as the \
             cover-traffic deployment ({c:.3})"
        );
    }

    #[test]
    fn e13_bench_json_schema() {
        // Schema check on a synthetic table — the JSON writer must key rows
        // by the E13 column names and carry the anonymity suite marker.
        let mut t = Table::new("E13: source-identification probability vs coalition size",
            &["topology", "system", "coalition%", "estimator", "trials", "m",
              "p_id%", "top3%", "eps", "uniform%"]);
        t.row(vec![
            "complete".into(), "congos".into(), "10.0".into(), "ml".into(),
            "40".into(), "58".into(), "1.72".into(), "5.17".into(),
            "0.000".into(), "1.72".into(),
        ]);
        let doc = bench_json(&[t]);
        assert_eq!(doc["suite"].as_str(), Some("anonymity"));
        let rows = doc["rows"].as_array().expect("rows");
        assert_eq!(rows.len(), 1);
        for key in ["topology", "system", "coalition%", "estimator", "p_id%", "top3%", "eps"] {
            assert!(rows[0][key].as_str().is_some(), "row missing key {key}");
        }
    }
}
