//! **E9 — ablations of the design choices DESIGN.md calls out.**
//!
//! * **Partitions** (Lemma 5's role): with all `log n` partitions, a
//!   group-annihilating adversary cannot stop the pipeline; capped to a
//!   single partition, killing one of its sides forces the deadline
//!   fallback — correctness survives (QoD is fallback-backed) but the
//!   pipeline's confirmations collapse.
//! * **Service fanout constant γ**: sweeping the `n^{γ/√dline}` coefficient
//!   from starvation to the paper's asymptotic 48 shows the
//!   cost-vs-confirmation trade and the saturation cap.

use congos::{CongosConfig, CongosNode};
use congos_adversary::{
    CrriAdversary, GroupAnnihilator, NoFailures, OneShot, PoissonWorkload, RumorSpec,
};
use congos_gossip::{FanoutParams, GossipStrategy};
use congos_sim::{Engine, EngineConfig, ProcessId, Round};

use crate::run::{run_with_factory, RunSpec};
use crate::table::Table;

fn annihilation_run(n: usize, cap: Option<usize>, seed: u64) -> (u64, u64, bool) {
    let mut cfg = CongosConfig::base();
    if let Some(c) = cap {
        cfg = cfg.max_partitions(c);
    }
    let deadline = 64u64;
    let source = ProcessId::new(1);
    let dest = vec![ProcessId::new(3)];
    let spec = RumorSpec::new(0, vec![5; 8], deadline, dest.clone());
    // Kill group 0 of partition 0 right as fragments spread.
    let ann = GroupAnnihilator::new(0, 0, Round(2)).protect([source, dest[0]]);
    let mut adv = CrriAdversary::new(ann, OneShot::new(Round(0), vec![(source, spec)]));
    let cfg2 = cfg.clone();
    let mut engine = Engine::<CongosNode>::with_factory(
        EngineConfig::new(n).seed(seed),
        move |id, n, _s| CongosNode::with_config(id, n, cfg2.clone()),
    );
    engine.run(deadline + 2, &mut adv);
    let delivered = engine
        .outputs()
        .iter()
        .any(|o| o.process == dest[0] && o.round.as_u64() <= deadline);
    let (mut confirmed, mut fallbacks) = (0u64, 0u64);
    for pid in ProcessId::all(n) {
        let s = engine.protocol(pid).stats();
        confirmed += s.confirmed;
        fallbacks += s.fallbacks;
    }
    (confirmed, fallbacks, delivered)
}

/// Runs E9 and returns its two tables.
pub fn run(full: bool) -> Vec<Table> {
    let mut out = Vec::new();
    let n = if full { 32 } else { 16 };

    // ---- Partition-count ablation. ---------------------------------
    let mut t = Table::new(
        "E9a: partition ablation under group annihilation",
        &["partitions", "confirmed", "fallbacks", "delivered"],
    );
    // Average over several seeds: the single-partition run survives only
    // via the fallback, the full set keeps confirming.
    for (label, cap) in [("1", Some(1)), ("log n", None)] {
        let seeds: &[u64] = if full { &[1, 2, 3, 4, 5] } else { &[1, 2, 3] };
        let mut confirmed = 0u64;
        let mut fallbacks = 0u64;
        let mut delivered_all = true;
        for &s in seeds {
            let (c, f, d) = annihilation_run(n, cap, 0xE9 + s);
            confirmed += c;
            fallbacks += f;
            delivered_all &= d;
        }
        assert!(delivered_all, "{label}: QoD must survive via the fallback");
        t.row(vec![
            label.to_string(),
            confirmed.to_string(),
            fallbacks.to_string(),
            delivered_all.to_string(),
        ]);
    }
    t.note("a single partition leans on the deadline fallback; log n partitions keep confirming");
    out.push(t);

    // ---- Fanout-coefficient ablation. ------------------------------
    let gammas: &[f64] = if full {
        &[1.0, 2.0, 4.0, 8.0, 48.0]
    } else {
        &[1.0, 4.0, 48.0]
    };
    let deadline = 64u64;
    let rounds = 3 * deadline;
    let mut t = Table::new(
        "E9b: service fanout coefficient sweep (saturation at gamma=48)",
        &["gamma", "max/rnd", "mean/rnd", "on_time%"],
    );
    for &gamma in gammas {
        let cfg = CongosConfig::base().service_fanout(FanoutParams {
            alpha: 1.0,
            gamma,
            root: 2,
        });
        let spec = RunSpec::new(n, 0xE9B, rounds);
        let w = PoissonWorkload::new(0.03, 3, deadline, 0xE9B).until(Round(rounds - deadline));
        let cfg2 = cfg.clone();
        let o = run_with_factory::<CongosNode, _, _>(
            spec,
            move |id, n, _s| CongosNode::with_config(id, n, cfg2.clone()),
            NoFailures,
            w,
        );
        assert!(o.qod_theorem_holds(), "gamma={gamma}: {:?}", o.qod);
        t.row(vec![
            format!("{gamma}"),
            o.metrics.max_per_round().to_string(),
            format!("{:.1}", o.metrics.mean_per_round()),
            format!("{:.1}", 100.0 * o.qod.on_time_rate()),
        ]);
    }
    t.note("gamma=48 (the paper's constant) saturates the per-group cap at laptop scale");
    out.push(t);

    // ---- Substrate strategy: randomized vs de-randomized ([13]). ----
    let mut t = Table::new(
        "E9c: substrate strategy — randomized epidemic vs deterministic expander",
        &["strategy", "max/rnd", "mean/rnd", "confirmed", "fallbacks", "on_time%"],
    );
    for (label, strategy) in [
        ("random", GossipStrategy::Random),
        ("expander", GossipStrategy::Expander),
    ] {
        let cfg = CongosConfig::base().gossip_strategy(strategy);
        let spec = RunSpec::new(n, 0xE9C, rounds);
        let w = PoissonWorkload::new(0.03, 3, deadline, 0xE9C).until(Round(rounds - deadline));
        let cfg_engine = cfg.clone();
        let mut adv = CrriAdversary::new(NoFailures, w);
        let mut engine = Engine::<CongosNode>::with_factory(
            EngineConfig::new(spec.n).seed(spec.seed),
            move |id, n, _s| CongosNode::with_config(id, n, cfg_engine.clone()),
        );
        engine.run(spec.rounds, &mut adv);
        let (mut confirmed, mut fallbacks) = (0u64, 0u64);
        for p in ProcessId::all(n) {
            let s = engine.protocol(p).stats();
            confirmed += s.confirmed;
            fallbacks += s.fallbacks;
        }
        // QoD check.
        let (mut admissible, mut on_time) = (0u64, 0u64);
        for entry in adv.workload().log() {
            let end = entry.round + entry.spec.deadline;
            for d in &entry.spec.dest {
                admissible += 1;
                if engine.outputs().iter().any(|o| {
                    o.process == *d && o.value.wid == entry.spec.id && o.round <= end
                }) {
                    on_time += 1;
                }
            }
        }
        assert_eq!(on_time, admissible, "{label}: QoD violated");
        t.row(vec![
            label.to_string(),
            engine.metrics().max_per_round().to_string(),
            format!("{:.1}", engine.metrics().mean_per_round()),
            confirmed.to_string(),
            fallbacks.to_string(),
            "100.0".to_string(),
        ]);
    }
    t.note("the de-randomized schedule matches the randomized epidemic's guarantees             (the [13] substrate is deterministic; DESIGN.md §2.3)");
    out.push(t);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e9_single_partition_relies_on_fallback() {
        let tables = super::run(false);
        let t = &tables[0];
        let fb_single: u64 = t.cell(0, 2).parse().unwrap();
        let fb_full: u64 = t.cell(1, 2).parse().unwrap();
        assert!(
            fb_single > fb_full,
            "single partition must fall back more: {fb_single} vs {fb_full}"
        );
    }
}
