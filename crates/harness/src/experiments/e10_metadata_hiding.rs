//! **E10 — Section 7 extensions: the cost of hiding metadata.**
//!
//! The paper sketches two extensions and prices them qualitatively:
//!
//! * *destination hiding* — expand each rumor into `n` same-sized
//!   singleton-destination rumors (noise for non-destinations): "without
//!   increasing the overall message complexity, but at the cost of
//!   increasing the message size (significantly)";
//! * *cover traffic* — continual injection of content-free decoys "at the
//!   cost of wasted messages".
//!
//! This experiment measures both: message counts should stay within a small
//! factor under destination hiding while payload bytes blow up by ≈ n/|D|;
//! cover traffic adds a steady message floor even with no real rumors.

use congos::{CongosConfig, CongosNode, CoverTrafficConfig};
use congos_adversary::{NoFailures, PoissonWorkload};
use congos_sim::Round;

use crate::run::{run_with_factory, RunSpec};
use crate::table::Table;

/// Runs E10 and returns its table.
pub fn run(full: bool) -> Vec<Table> {
    let n = if full { 24 } else { 16 };
    let deadline = 64u64;
    let rounds = 3 * deadline;
    let dest_size = 3usize;

    let mut t = Table::new(
        "E10: metadata hiding costs (Section 7 extensions)",
        &[
            "variant",
            "msgs_max/rnd",
            "msgs_total",
            "bytes_max/rnd",
            "bytes_total",
            "on_time%",
        ],
    );

    let variants: Vec<(&str, CongosConfig)> = vec![
        ("base", CongosConfig::base()),
        ("hide destinations", CongosConfig::base().hide_destinations()),
        (
            "cover traffic",
            CongosConfig::base().cover_traffic(CoverTrafficConfig {
                rate: 0.05,
                data_len: 16,
                deadline,
            }),
        ),
    ];

    let mut rows: Vec<(u64, u64)> = Vec::new(); // (msgs_total, bytes_total)
    for (name, cfg) in variants {
        let spec = RunSpec::new(n, 0xE10, rounds);
        let w = PoissonWorkload::new(0.02, dest_size, deadline, 0xE10)
            .until(Round(rounds - deadline))
            .data_len(16);
        let cfg2 = cfg.clone();
        let o = run_with_factory::<CongosNode, _, _>(
            spec,
            move |id, n, _s| CongosNode::with_config(id, n, cfg2.clone()),
            NoFailures,
            w,
        );
        assert!(o.qod_theorem_holds(), "{name}: {:?}", o.qod);
        rows.push((o.metrics.total(), o.metrics.total_bytes()));
        t.row(vec![
            name.to_string(),
            o.metrics.max_per_round().to_string(),
            o.metrics.total().to_string(),
            o.metrics.max_bytes_per_round().to_string(),
            o.metrics.total_bytes().to_string(),
            format!("{:.1}", 100.0 * o.qod.on_time_rate()),
        ]);
    }

    let msg_blowup = rows[1].0 as f64 / rows[0].0.max(1) as f64;
    let byte_blowup = rows[1].1 as f64 / rows[0].1.max(1) as f64;
    t.note(format!(
        "destination hiding: ×{msg_blowup:.1} messages vs ×{byte_blowup:.1} bytes \
         (paper: message complexity preserved, message size significantly larger; \
         n/|D| = {:.1})",
        n as f64 / dest_size as f64
    ));
    t.note("cover traffic adds a steady decoy floor with zero user-visible deliveries");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e10_bytes_blow_up_more_than_messages() {
        let tables = super::run(false);
        let t = &tables[0];
        let base_msgs: f64 = t.cell(0, 2).parse().unwrap();
        let hide_msgs: f64 = t.cell(1, 2).parse().unwrap();
        let base_bytes: f64 = t.cell(0, 4).parse().unwrap();
        let hide_bytes: f64 = t.cell(1, 4).parse().unwrap();
        let msg_blowup = hide_msgs / base_msgs;
        let byte_blowup = hide_bytes / base_bytes;
        assert!(
            byte_blowup > 1.5 * msg_blowup,
            "bytes must grow faster than messages: ×{byte_blowup:.2} vs ×{msg_blowup:.2}"
        );
    }
}
