//! **E7 — robustness: QoD and fallback rarity under churn (Lemma 10).**
//!
//! Sweeps the per-round crash probability. Two things must hold:
//! admissible rumors are *always* delivered on time (probability-1 QoD),
//! and the deadline fallback stays rare while the pipeline can still
//! function — Lemma 10 says sources normally receive confirmation before
//! the deadline, so "shoot" messages are the exception, not the mechanism.

use congos::CongosNode;
use congos_adversary::{CrriAdversary, PoissonWorkload, RandomChurn};
use congos_sim::{Engine, EngineConfig, ProcessId, Round};

use crate::table::Table;

/// Runs E7 and returns its table.
pub fn run(full: bool) -> Vec<Table> {
    let n = if full { 32 } else { 16 };
    let rounds = if full { 512u64 } else { 256 };
    let deadline = 64u64;
    let crash_ps: &[f64] = if full {
        &[0.0, 0.001, 0.002, 0.005, 0.01, 0.02]
    } else {
        &[0.0, 0.002, 0.01]
    };

    let mut t = Table::new(
        "E7: robustness under churn (Lemma 10)",
        &[
            "p_crash",
            "crashes",
            "admissible",
            "on_time%",
            "late",
            "missed",
            "confirmed",
            "fallbacks",
        ],
    );
    for &p in crash_ps {
        let workload =
            PoissonWorkload::new(0.03, 3, deadline, 0xE7).until(Round(rounds - deadline));
        let churn = RandomChurn::new(p, 0.15, 0xE7);
        let mut adv = CrriAdversary::new(churn, workload);
        // Pins the paper's complete network: E7 isolates process churn,
        // E14 isolates link churn.
        let mut engine = Engine::<CongosNode>::new(EngineConfig::new(n).seed(0xE7));
        engine.run(rounds, &mut adv);

        let (mut admissible, mut on_time, mut late, mut missed) = (0u64, 0u64, 0u64, 0u64);
        for entry in adv.workload().log() {
            let t0 = entry.round;
            let end = t0 + entry.spec.deadline;
            if !engine.liveness().continuously_alive(entry.source, t0, end) {
                continue;
            }
            for d in &entry.spec.dest {
                if !engine.liveness().continuously_alive(*d, t0, end) {
                    continue;
                }
                admissible += 1;
                let best = engine
                    .outputs()
                    .iter()
                    .filter(|o| o.process == *d && o.value.wid == entry.spec.id)
                    .map(|o| o.round)
                    .min();
                match best {
                    Some(r) if r <= end => on_time += 1,
                    Some(_) => late += 1,
                    None => missed += 1,
                }
            }
        }
        assert_eq!(late + missed, 0, "p={p}: QoD violated");

        let (mut confirmed, mut fallbacks) = (0u64, 0u64);
        for pid in ProcessId::all(n) {
            let s = engine.protocol(pid).stats();
            confirmed += s.confirmed;
            fallbacks += s.fallbacks;
        }
        t.row(vec![
            format!("{p:.3}"),
            engine.liveness().crash_count().to_string(),
            admissible.to_string(),
            format!(
                "{:.1}",
                if admissible == 0 {
                    100.0
                } else {
                    100.0 * on_time as f64 / admissible as f64
                }
            ),
            late.to_string(),
            missed.to_string(),
            confirmed.to_string(),
            fallbacks.to_string(),
        ]);
    }
    t.note("on_time% = 100 in every row (probability-1 QoD for admissible rumors)");
    t.note("fallbacks stay a small fraction of confirmed while the system is mostly alive");
    // (The benign row's fallback rate is a Lemma 10 "w.h.p." residual.)
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e7_benign_fallbacks_are_rare() {
        let tables = super::run(false);
        let t = &tables[0];
        assert_eq!(t.cell(0, 0), "0.000");
        let confirmed: f64 = t.cell(0, 6).parse().unwrap();
        let fallbacks: f64 = t.cell(0, 7).parse().unwrap();
        // Lemma 10 is a w.h.p. statement: at n=16 a sub-2% residual rate is
        // consistent; the benign pipeline must confirm the overwhelming
        // majority without the fallback.
        assert!(
            fallbacks <= 0.02 * (confirmed + fallbacks).max(1.0),
            "benign fallback rate too high: {fallbacks} of {}",
            confirmed + fallbacks
        );
        assert_eq!(t.cell(0, 3), "100.0");
    }
}
