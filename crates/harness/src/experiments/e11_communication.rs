//! **E11 — Section 7: communication complexity (bits, not just messages).**
//!
//! The paper's discussion: gossip's merging advantage shows up in *message*
//! complexity; in *bits*, CONGOS pays `(#partitions × #fragments)` copies of
//! every rumor plus "a fairly large number of control bits", so its byte
//! overhead per delivered copy is a constant factor that matters for small
//! rumors and amortizes for large ones. This sweep measures bytes per
//! delivered rumor copy as the payload grows, for CONGOS vs the direct
//! unicast floor.

use congos::CongosNode;
use congos_adversary::{NoFailures, PoissonWorkload};
use congos_baselines::DirectNode;
use congos_sim::Round;

use crate::run::{run as run_system, RunSpec};
use crate::table::Table;

/// Runs E11 and returns its table.
pub fn run(full: bool) -> Vec<Table> {
    let n = if full { 24 } else { 16 };
    let deadline = 64u64;
    let rounds = 3 * deadline;
    let sizes: &[usize] = if full {
        &[16, 256, 4096, 65536]
    } else {
        &[16, 1024, 16384]
    };

    let mut t = Table::new(
        "E11: bytes per delivered copy vs rumor size (Section 7)",
        &[
            "|z| bytes",
            "congos_bytes",
            "direct_bytes",
            "congos_bytes/copy",
            "direct_bytes/copy",
            "overhead×",
        ],
    );
    for &size in sizes {
        let spec = RunSpec::new(n, 0xE11, rounds);
        let w = || {
            PoissonWorkload::new(0.02, 3, deadline, 0xE11)
                .until(Round(rounds - deadline))
                .data_len(size)
        };
        let congos = run_system::<CongosNode, _, _>(spec, NoFailures, w());
        let direct = run_system::<DirectNode, _, _>(spec, NoFailures, w());
        assert!(congos.qod_theorem_holds());
        assert!(direct.qod_theorem_holds());
        let copies: usize = congos.injections.iter().map(|e| e.spec.dest.len()).sum();
        let cb = congos.metrics.total_bytes() as f64 / copies.max(1) as f64;
        let db = direct.metrics.total_bytes() as f64 / copies.max(1) as f64;
        t.row(vec![
            size.to_string(),
            congos.metrics.total_bytes().to_string(),
            direct.metrics.total_bytes().to_string(),
            format!("{cb:.0}"),
            format!("{db:.0}"),
            format!("{:.1}", cb / db.max(1.0)),
        ]);
    }
    t.note("the overhead factor shrinks as |z| grows: control bits amortize, \
            fragment copies remain (paper: reasonable for large rumors, \
            significant for small ones)");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e11_overhead_amortizes_with_rumor_size() {
        let tables = super::run(false);
        let t = &tables[0];
        let first: f64 = t.cell(0, 5).parse().unwrap();
        let last: f64 = t.cell(t.len() - 1, 5).parse().unwrap();
        assert!(
            last < first,
            "per-copy overhead must shrink as rumors grow: {first} → {last}"
        );
        assert!(last >= 1.0, "direct unicast is the floor");
    }
}
