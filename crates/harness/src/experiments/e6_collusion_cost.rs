//! **E6 — Theorem 16: the `τ²` cost of collusion tolerance.**
//!
//! Collusion-tolerant CONGOS uses `Θ(τ log n)` partitions of `τ+1` groups —
//! a `τ²` blow-up in fragment traffic relative to the base algorithm.
//! Fixed `n` and workload, sweeping `τ`: per-round message complexity
//! should grow roughly quadratically (the fitted `τ`-exponent lands near
//! 2, modulo saturation at small group sizes).

use congos::{CongosConfig, CongosNode};
use congos_adversary::{NoFailures, PoissonWorkload};
use congos_sim::Round;

use crate::run::{run_with_factory, RunSpec};
use crate::stats::fit_power_law;
use crate::table::Table;

/// Runs E6 and returns its table.
pub fn run(full: bool) -> Vec<Table> {
    let n = if full { 64 } else { 32 };
    let taus: &[usize] = if full { &[1, 2, 3, 4, 6] } else { &[1, 2, 3, 4] };
    let deadline = 64u64;
    let rounds = 3 * deadline;

    let mut t = Table::new(
        "E6: collusion-tolerance cost vs tau (Theorem 16)",
        &["tau", "partitions", "groups", "max/rnd", "mean/rnd", "total"],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &tau in taus {
        let cfg = CongosConfig::collusion_tolerant(tau, 0xE6).without_degenerate_shortcut();
        let spec = RunSpec::new(n, 0xE6 + tau as u64, rounds);
        let workload =
            PoissonWorkload::new(0.02, 3, deadline, 0xE6).until(Round(rounds - deadline));
        let cfg2 = cfg.clone();
        let o = run_with_factory::<CongosNode, _, _>(
            spec,
            move |id, n, _s| CongosNode::with_config(id, n, cfg2.clone()),
            NoFailures,
            workload,
        );
        assert!(o.qod_theorem_holds(), "tau={tau}: {:?}", o.qod);
        let lg = (n as f64).log2();
        let partitions = (2.0 * tau as f64 * lg).ceil() as usize;
        t.row(vec![
            tau.to_string(),
            partitions.to_string(),
            (tau + 1).to_string(),
            o.metrics.max_per_round().to_string(),
            format!("{:.1}", o.metrics.mean_per_round()),
            o.metrics.total().to_string(),
        ]);
        xs.push(tau as f64);
        ys.push(o.metrics.mean_per_round());
    }
    let b = fit_power_law(&xs, &ys);
    t.note(format!(
        "mean-per-round grows as tau^{b:.2} (Theorem 16 predicts a tau² factor)"
    ));
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e6_cost_increases_with_tau() {
        let tables = super::run(false);
        let t = &tables[0];
        let first: f64 = t.cell(0, 4).parse().unwrap();
        let last: f64 = t.cell(t.len() - 1, 4).parse().unwrap();
        assert!(last > 1.5 * first, "tau must cost: {first} → {last}");
    }
}
