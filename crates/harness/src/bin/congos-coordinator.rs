//! Spawns and monitors a multi-process CONGOS cluster.
//!
//! Launches `n` `congos-node` processes on localhost, routes each `--inject`
//! to its source node (with disjoint `--wid-base` ranges so workload ids
//! stay unique cluster-wide), waits for every node, parses the per-node
//! JSON reports, and prints an aggregated cluster report.
//!
//! ```text
//! congos-coordinator --n 4 --rounds 70 --seed 7 \
//!     --inject 0:0:2,3:68656c6c6f      # round 0, source 0, dests {2,3}
//! ```
//!
//! The node binary is found next to this executable (both live in cargo's
//! target dir), or wherever `CONGOS_NODE_BIN` / `--node-bin` points.
//!
//! Failure behavior: nodes never hang on a dead peer (the transport's
//! barrier errors out), so the coordinator simply waits for every child;
//! if any exits nonzero it reports which and exits nonzero itself.

use std::process::{exit, Command, Stdio};

use congos_harness::Json;

const USAGE: &str = "usage: congos-coordinator --n <n> [options]

Spawns an n-process CONGOS cluster on localhost and aggregates its reports.

required:
  --n <n>                  cluster size

options:
  --base-port <p>          first port of the cluster range (default 19000)
  --rounds <r>             rounds to execute (default 70)
  --seed <s>               master seed (default 0)
  --topology <spec>        complete | expander:<d> | churn:<spec>
                           (default complete)
  --deadline <r>           deadline class of injected rumors (default 64)
  --inject <round>:<src>:<d1,d2,..>:<hex>
                           inject at <round> from node <src> for
                           destinations <d1,d2,..> with hex payload;
                           repeatable
  --node-bin <path>        the congos-node executable (default: sibling of
                           this binary, or $CONGOS_NODE_BIN)
  --json                   print the aggregate as one JSON line
  --help                   show this help";

fn usage_error(msg: &str) -> ! {
    eprintln!("congos-coordinator: {msg}");
    eprintln!("{USAGE}");
    exit(2)
}

/// Locates the node binary: `--node-bin`, else `CONGOS_NODE_BIN`, else a
/// `congos-node` next to the running executable.
fn node_bin(explicit: Option<String>) -> std::path::PathBuf {
    if let Some(p) = explicit {
        return p.into();
    }
    if let Ok(p) = std::env::var("CONGOS_NODE_BIN") {
        return p.into();
    }
    let sibling = std::env::current_exe()
        .ok()
        .and_then(|exe| exe.parent().map(|d| d.join("congos-node")));
    match sibling {
        Some(p) if p.exists() => p,
        _ => usage_error(
            "cannot find the congos-node binary; build it (cargo build -p congos-net) \
             and/or pass --node-bin or set CONGOS_NODE_BIN",
        ),
    }
}

struct Injection {
    round: u64,
    src: usize,
    dests: String,
    hex: String,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut n: Option<usize> = None;
    let mut base_port: u16 = 19000;
    let mut rounds: u64 = 70;
    let mut seed: u64 = 0;
    let mut deadline: u64 = 64;
    let mut topology = String::from("complete");
    let mut json = false;
    let mut bin: Option<String> = None;
    let mut injections: Vec<Injection> = Vec::new();

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            println!("{USAGE}");
            return;
        }
        if flag == "--json" {
            json = true;
            continue;
        }
        let val = it
            .next()
            .unwrap_or_else(|| usage_error(&format!("flag {flag} needs a value")));
        let parse_fail = || -> ! { usage_error(&format!("bad value {val:?} for {flag}")) };
        match flag.as_str() {
            "--n" => n = Some(val.parse().unwrap_or_else(|_| parse_fail())),
            "--base-port" => base_port = val.parse().unwrap_or_else(|_| parse_fail()),
            "--rounds" => rounds = val.parse().unwrap_or_else(|_| parse_fail()),
            "--seed" => seed = val.parse().unwrap_or_else(|_| parse_fail()),
            "--deadline" => deadline = val.parse().unwrap_or_else(|_| parse_fail()),
            "--topology" => topology = val.clone(),
            "--node-bin" => bin = Some(val.clone()),
            "--inject" => {
                let parts: Vec<&str> = val.splitn(4, ':').collect();
                if parts.len() != 4 {
                    usage_error(&format!(
                        "--inject wants <round>:<src>:<d1,d2,..>:<hex>, got {val:?}"
                    ));
                }
                injections.push(Injection {
                    round: parts[0].parse().unwrap_or_else(|_| parse_fail()),
                    src: parts[1].parse().unwrap_or_else(|_| parse_fail()),
                    dests: parts[2].to_string(),
                    hex: parts[3].to_string(),
                });
            }
            other => usage_error(&format!("unknown flag {other:?}")),
        }
    }
    let Some(n) = n else { usage_error("--n is required") };
    if n == 0 {
        usage_error("--n must be positive");
    }
    for inj in &injections {
        if inj.src >= n {
            usage_error(&format!("--inject source {} out of range for --n {n}", inj.src));
        }
    }
    let bin = node_bin(bin);

    // Spawn every node; node i's injections get wid base i * per_node_cap
    // so ids are disjoint across sources.
    let per_node_cap = injections.len() as u64 + 1;
    let mut children = Vec::with_capacity(n);
    for id in 0..n {
        let mut cmd = Command::new(&bin);
        cmd.arg("--id")
            .arg(id.to_string())
            .arg("--n")
            .arg(n.to_string())
            .arg("--base-port")
            .arg(base_port.to_string())
            .arg("--rounds")
            .arg(rounds.to_string())
            .arg("--seed")
            .arg(seed.to_string())
            .arg("--topology")
            .arg(&topology)
            .arg("--deadline")
            .arg(deadline.to_string())
            .arg("--wid-base")
            .arg((id as u64 * per_node_cap).to_string())
            .arg("--json");
        for inj in injections.iter().filter(|i| i.src == id) {
            cmd.arg("--inject")
                .arg(format!("{}:{}:{}", inj.round, inj.dests, inj.hex));
        }
        cmd.stdout(Stdio::piped()).stderr(Stdio::piped());
        match cmd.spawn() {
            Ok(child) => children.push(child),
            Err(e) => {
                eprintln!("congos-coordinator: failed to spawn node {id}: {e}");
                // Already-spawned nodes will error out at the connect
                // deadline on their own; don't leave them running longer.
                for mut c in children {
                    let _ = c.kill();
                }
                exit(1);
            }
        }
    }

    // Nodes never hang on peer loss (transport barriers error out), so a
    // plain wait per child terminates. Collect reports; remember failures.
    let mut failures = Vec::new();
    let mut reports = Vec::new();
    for (id, child) in children.into_iter().enumerate() {
        let out = child
            .wait_with_output()
            .unwrap_or_else(|e| panic!("waiting for node {id}: {e}"));
        if !out.status.success() {
            let stderr = String::from_utf8_lossy(&out.stderr);
            failures.push((id, out.status, stderr.trim().to_string()));
            continue;
        }
        let stdout = String::from_utf8_lossy(&out.stdout);
        // The report is the last line that parses as a JSON object.
        let report = stdout
            .lines()
            .rev()
            .find_map(|l| Json::parse(l.trim()).ok());
        match report {
            Some(r) => reports.push(r),
            None => failures.push((
                id,
                out.status,
                "exited 0 but printed no JSON report".to_string(),
            )),
        }
    }

    if !failures.is_empty() {
        for (id, status, stderr) in &failures {
            eprintln!("congos-coordinator: node {id} failed ({status}): {stderr}");
        }
        exit(1);
    }

    // Aggregate: counters sum, rounds max, deliveries pool sorted by
    // (round, process) — the same shape NetReport::aggregate produces.
    let mut messages = 0.0;
    let mut topology_drops = 0.0;
    let mut max_rounds = 0.0f64;
    let mut deliveries: Vec<(f64, f64, f64, f64)> = Vec::new(); // (round, process, wid, bytes)
    for r in &reports {
        messages += r["messages"].as_f64().unwrap_or(0.0);
        topology_drops += r["topology_drops"].as_f64().unwrap_or(0.0);
        max_rounds = max_rounds.max(r["rounds"].as_f64().unwrap_or(0.0));
        if let Some(ds) = r["deliveries"].as_array() {
            for d in ds {
                deliveries.push((
                    d["round"].as_f64().unwrap_or(0.0),
                    d["process"].as_f64().unwrap_or(0.0),
                    d["wid"].as_f64().unwrap_or(0.0),
                    d["bytes"].as_f64().unwrap_or(0.0),
                ));
            }
        }
    }
    deliveries.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    if json {
        let rows: Vec<Json> = deliveries
            .iter()
            .map(|&(round, process, wid, bytes)| {
                Json::object([
                    ("round", Json::Number(round)),
                    ("process", Json::Number(process)),
                    ("wid", Json::Number(wid)),
                    ("bytes", Json::Number(bytes)),
                ])
            })
            .collect();
        let doc = Json::object([
            ("n", Json::from(n)),
            ("rounds", Json::Number(max_rounds)),
            ("messages", Json::Number(messages)),
            ("topology_drops", Json::Number(topology_drops)),
            ("deliveries", Json::Array(rows)),
        ]);
        println!("{}", doc.to_string_compact());
    } else {
        println!(
            "cluster of {n} nodes ran {max_rounds} rounds: {} deliveries, \
             {messages} messages over sockets, {topology_drops} topology drops",
            deliveries.len()
        );
        for (round, process, wid, bytes) in &deliveries {
            println!("round {round} process p{process} delivered wid={wid} ({bytes} bytes)");
        }
    }
}
