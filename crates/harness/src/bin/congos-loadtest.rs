//! Load-tests the TCP cluster runtime: sustained rumor injection at a
//! configurable rate, reporting delivery-latency percentiles and
//! throughput.
//!
//! Runs an in-process cluster (one OS thread + socket pair per node — the
//! same transport the multi-process deployment uses) for `--rounds` rounds,
//! injecting `--rate` rumors per round (deterministically spread over
//! sources, each to a fresh random destination set) during the first
//! `--duration` rounds. Afterwards it classifies every (rumor, destination)
//! pair, prints a human summary and writes the full report to
//! `crates/bench/BENCH_net_loadtest.json` (see `--out`).
//!
//! Exit status: nonzero if the cluster errored, or if nothing was
//! delivered — a load test that delivers zero rumors is a broken setup,
//! not a measurement.

use std::process::exit;

use congos::CongosInput;
use congos_harness::stats::{mean, percentile};
use congos_harness::Json;
use congos_net::{run_cluster, NetConfig};
use congos_sim::rng::fork_rng;
use congos_sim::{ProcessId, TopologySpec};
use rand::Rng;

const USAGE: &str = "usage: congos-loadtest [options]

Load-tests the CONGOS TCP cluster runtime and reports latency/throughput.

options:
  --n <n>                  cluster size (default 4)
  --base-port <p>          first port of the cluster range (default 20860)
  --rounds <r>             rounds to execute (default 90)
  --duration <r>           rounds during which rumors are injected
                           (default: rounds - deadline)
  --rate <k>               rumors injected per round (default 2)
  --payload <bytes>        payload size in bytes (default 48)
  --deadline <r>           rumor deadline class (default 64)
  --dests <k>              destinations per rumor (default 2)
  --seed <s>               master seed (default 0)
  --topology <spec>        complete | expander:<d> (default complete)
  --out <path>             report path (default
                           crates/bench/BENCH_net_loadtest.json)
  --help                   show this help";

fn usage_error(msg: &str) -> ! {
    eprintln!("congos-loadtest: {msg}");
    eprintln!("{USAGE}");
    exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut n: usize = 4;
    let mut base_port: u16 = 20860;
    let mut rounds: u64 = 90;
    let mut duration: Option<u64> = None;
    let mut rate: u64 = 2;
    let mut payload: usize = 48;
    let mut deadline: u64 = 64;
    let mut dests: usize = 2;
    let mut seed: u64 = 0;
    let mut topology = TopologySpec::Complete;
    let mut out_path = String::from("crates/bench/BENCH_net_loadtest.json");

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            println!("{USAGE}");
            return;
        }
        let val = it
            .next()
            .unwrap_or_else(|| usage_error(&format!("flag {flag} needs a value")));
        let parse_fail = || -> ! { usage_error(&format!("bad value {val:?} for {flag}")) };
        match flag.as_str() {
            "--n" => n = val.parse().unwrap_or_else(|_| parse_fail()),
            "--base-port" => base_port = val.parse().unwrap_or_else(|_| parse_fail()),
            "--rounds" => rounds = val.parse().unwrap_or_else(|_| parse_fail()),
            "--duration" => duration = Some(val.parse().unwrap_or_else(|_| parse_fail())),
            "--rate" => rate = val.parse().unwrap_or_else(|_| parse_fail()),
            "--payload" => payload = val.parse().unwrap_or_else(|_| parse_fail()),
            "--deadline" => deadline = val.parse().unwrap_or_else(|_| parse_fail()),
            "--dests" => dests = val.parse().unwrap_or_else(|_| parse_fail()),
            "--seed" => seed = val.parse().unwrap_or_else(|_| parse_fail()),
            "--topology" => topology = val.parse().unwrap_or_else(|_| parse_fail()),
            "--out" => out_path = val.clone(),
            other => usage_error(&format!("unknown flag {other:?}")),
        }
    }
    if n == 0 {
        usage_error("--n must be positive");
    }
    if dests == 0 || dests > n {
        usage_error(&format!("--dests must be in 1..={n}"));
    }
    // Leave the tail of the run free of new injections so in-flight rumors
    // can finish within their deadline.
    let duration = duration.unwrap_or(rounds.saturating_sub(deadline).max(1));

    // Deterministic injection schedule: `rate` rumors per round, sources
    // round-robin, destination sets drawn from a forked generator-RNG.
    // At most one injection per (process, round) — the model's rule — so
    // rate is capped at n.
    if rate as usize > n {
        usage_error(&format!("--rate must be at most --n (one injection per process per round), got {rate} > {n}"));
    }
    let mut rng = fork_rng(seed, ProcessId::new(0), u64::MAX);
    let mut injections = Vec::new();
    let mut wid = 0u64;
    for r in 0..duration {
        for s in 0..rate as usize {
            let source = ProcessId::new((r as usize * rate as usize + s) % n);
            let mut dest = Vec::with_capacity(dests);
            while dest.len() < dests {
                let d = ProcessId::new(rng.gen_range(0..n));
                if !dest.contains(&d) {
                    dest.push(d);
                }
            }
            dest.sort_unstable();
            injections.push((
                r,
                source,
                CongosInput {
                    wid,
                    data: vec![(wid % 251) as u8; payload],
                    deadline,
                    dest,
                },
            ));
            wid += 1;
        }
    }
    let injected = injections.len() as u64;
    let pairs: u64 = injections.iter().map(|(_, _, i)| i.dest.len() as u64).sum();
    let schedule: Vec<(u64, u64, Vec<ProcessId>)> = injections
        .iter()
        .map(|(r, _, i)| (i.wid, *r, i.dest.clone()))
        .collect();

    println!(
        "congos-loadtest: {n} nodes, {rounds} rounds, {rate} rumors/round for \
         {duration} rounds ({injected} rumors, {pairs} pairs), payload {payload}B, \
         topology {topology}"
    );

    let t0 = std::time::Instant::now();
    let report = match run_cluster(
        NetConfig::new(n, base_port)
            .rounds(rounds)
            .seed(seed)
            .topology(topology),
        injections,
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("congos-loadtest: cluster failed: {e}");
            exit(1);
        }
    };
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Latency per delivered (rumor, destination) pair: rounds from
    // injection to that destination's first delivery.
    let mut latencies: Vec<u64> = Vec::new();
    let mut delivered_pairs = 0u64;
    for (wid, inject_round, dest) in &schedule {
        for d in dest {
            let first = report
                .deliveries
                .iter()
                .filter(|o| o.value.wid == *wid && o.process == *d)
                .map(|o| o.round.as_u64())
                .min();
            if let Some(r) = first {
                delivered_pairs += 1;
                latencies.push(r - inject_round);
            }
        }
    }

    if delivered_pairs == 0 {
        eprintln!("congos-loadtest: nothing was delivered — broken setup, not a measurement");
        exit(1);
    }

    let p50 = percentile(&latencies, 50.0);
    let p90 = percentile(&latencies, 90.0);
    let p99 = percentile(&latencies, 99.0);
    let max = percentile(&latencies, 100.0);
    let lat_mean = mean(&latencies);
    let delivery_rate = delivered_pairs as f64 / pairs as f64;
    let rounds_per_sec = rounds as f64 / (wall_ms / 1e3);
    let deliveries_per_sec = delivered_pairs as f64 / (wall_ms / 1e3);

    println!(
        "  delivered {delivered_pairs}/{pairs} pairs ({:.1}%), \
         latency p50/p90/p99/max = {p50}/{p90}/{p99}/{max} rounds (mean {lat_mean:.2})",
        delivery_rate * 100.0
    );
    println!(
        "  {wall_ms:.0} ms wall ({rounds_per_sec:.1} rounds/s, \
         {deliveries_per_sec:.0} deliveries/s), {} messages over sockets",
        report.messages
    );

    let doc = Json::object([
        (
            "config",
            Json::object([
                ("n", Json::from(n)),
                ("base_port", Json::from(base_port as u64)),
                ("rounds", Json::from(rounds)),
                ("duration", Json::from(duration)),
                ("rate", Json::from(rate)),
                ("payload", Json::from(payload)),
                ("deadline", Json::from(deadline)),
                ("dests", Json::from(dests)),
                ("seed", Json::from(seed)),
                ("topology", Json::from(topology.to_string())),
            ]),
        ),
        ("injected", Json::from(injected)),
        ("pairs", Json::from(pairs)),
        ("delivered_pairs", Json::from(delivered_pairs)),
        ("delivery_rate", Json::from(delivery_rate)),
        (
            "latency_rounds",
            Json::object([
                ("p50", Json::from(p50)),
                ("p90", Json::from(p90)),
                ("p99", Json::from(p99)),
                ("max", Json::from(max)),
                ("mean", Json::from(lat_mean)),
            ]),
        ),
        (
            "throughput",
            Json::object([
                ("wall_ms", Json::from(wall_ms)),
                ("rounds_per_sec", Json::from(rounds_per_sec)),
                ("deliveries_per_sec", Json::from(deliveries_per_sec)),
            ]),
        ),
        ("messages", Json::from(report.messages)),
        ("topology_drops", Json::from(report.topology_drops)),
    ]);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    match std::fs::write(&out_path, doc.to_string_pretty() + "\n") {
        Ok(()) => println!("  report written to {out_path}"),
        Err(e) => {
            eprintln!("congos-loadtest: cannot write {out_path}: {e}");
            exit(1);
        }
    }
}
