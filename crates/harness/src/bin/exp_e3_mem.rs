//! Regenerates the E3 memory-accounting sweep (see EXPERIMENTS.md): peak
//! RSS, heap allocation and wall clock vs `n` in the pipeline regime.
//!
//! Flags: `--full` for the n ∈ {1024, 2048, 4096, 8192} sweep (the quick
//! CI sweep stops at 1024), `--csv` for machine-readable output,
//! `--backend <seq|par[:N]|auto>` for the execution backend, `--json
//! <path>` to override where the `BENCH_memory.json` row set is written
//! (default `crates/bench/BENCH_memory.json`, skipped if the directory is
//! absent), and `--budget-mib <x>` to enforce a hard peak-RSS ceiling —
//! the process exits non-zero if its high-water mark exceeds the budget
//! (the `scripts/ci.sh mem` regression gate).
fn main() {
    let args: Vec<String> = std::env::args().collect();
    congos_harness::init_backend_from_args(&args);
    congos_harness::init_topology_from_args(&args);
    let full = args.iter().any(|a| a == "--full");
    let csv = args.iter().any(|a| a == "--csv");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let json_path = flag_value("--json");
    let budget_mib: Option<f64> = flag_value("--budget-mib").map(|v| {
        v.parse()
            .unwrap_or_else(|e| panic!("--budget-mib needs a number: {e}"))
    });

    let tables = congos_harness::experiments::e3_memory::run(full);
    for table in &tables {
        if csv {
            println!("# {}", table.title());
            print!("{}", table.to_csv());
        } else {
            table.print();
        }
    }

    let doc = congos_harness::experiments::e3_memory::bench_json(&tables);
    let path = json_path.unwrap_or_else(|| "crates/bench/BENCH_memory.json".to_string());
    let parent_exists = std::path::Path::new(&path)
        .parent()
        .map(|p| p.as_os_str().is_empty() || p.is_dir())
        .unwrap_or(true);
    if parent_exists {
        match std::fs::write(&path, doc.to_string_pretty() + "\n") {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    } else {
        eprintln!("skipping {path}: parent directory missing (run from the repo root to emit it)");
    }

    congos_harness::mem::print_process_summary("exp_e3_mem");
    if let Some(budget) = budget_mib {
        let peak = congos_harness::mem::peak_rss_bytes() as f64 / (1024.0 * 1024.0);
        if peak > budget {
            eprintln!("FAIL: peak-RSS {peak:.1} MiB exceeds the {budget:.1} MiB budget");
            std::process::exit(1);
        }
        eprintln!("peak-RSS {peak:.1} MiB within the {budget:.1} MiB budget");
    }
}
