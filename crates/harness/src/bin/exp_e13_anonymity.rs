//! Regenerates experiment E13 (see EXPERIMENTS.md): source-identification
//! probability, top-k accuracy and DP-style ε vs coalition size, topology
//! and protocol — the "who started this rumor?" adversary.
//!
//! Flags: `--full` for the larger sweep (`--quick` is the accepted default),
//! `--csv` for machine-readable output, `--backend <seq|par[:N]>` for the
//! execution backend, `--json <path>` to override where the
//! `BENCH_anonymity.json` row set is written (default
//! `crates/bench/BENCH_anonymity.json`, skipped if the directory is absent).
//!
//! Like E14 there is no `--topology` flag: the topology is a swept axis
//! (complete, expander:4, churn). The run asserts the headline gate —
//! CONGOS strictly below direct unicast at coalition fraction 10% on
//! expander:4 — so a leak regression fails the binary, not just a table.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    congos_harness::init_backend_from_args(&args);
    let full = args.iter().any(|a| a == "--full");
    let csv = args.iter().any(|a| a == "--csv");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let tables = congos_harness::experiments::e13_anonymity::run(full);
    for table in &tables {
        if csv {
            println!("# {}", table.title());
            print!("{}", table.to_csv());
        } else {
            table.print();
        }
    }

    let doc = congos_harness::experiments::e13_anonymity::bench_json(&tables);
    let path = json_path.unwrap_or_else(|| "crates/bench/BENCH_anonymity.json".to_string());
    let parent_exists = std::path::Path::new(&path)
        .parent()
        .map(|p| p.as_os_str().is_empty() || p.is_dir())
        .unwrap_or(true);
    if parent_exists {
        match std::fs::write(&path, doc.to_string_pretty() + "\n") {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    } else {
        eprintln!("skipping {path}: parent directory missing (run from the repo root to emit it)");
    }

    congos_harness::mem::print_process_summary("exp_e13_anonymity");
}
