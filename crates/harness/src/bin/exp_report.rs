//! Renders an experiments JSON document (produced by `exp_all --json`) as a
//! markdown report — the generator behind EXPERIMENTS.md's measured
//! sections.
//!
//! ```text
//! cargo run -p congos-harness --bin exp_all -- --full --json results/full.json
//! cargo run -p congos-harness --bin exp_report -- results/full.json > report.md
//! ```

use std::fmt::Write as _;

fn main() {
    let path = std::env::args()
        .nth(1)
        .expect("usage: exp_report <results.json>");
    let doc: congos_harness::Json =
        congos_harness::Json::parse(&std::fs::read_to_string(&path).expect("read results json"))
            .expect("parse results json");

    let mut out = String::new();
    let _ = writeln!(out, "# Experiment report");
    let _ = writeln!(
        out,
        "\nGenerated from `{path}` (full sweeps: {}).\n",
        doc["full"].as_bool().unwrap_or(false)
    );
    for table in doc["tables"].as_array().expect("tables array") {
        let title = table["title"].as_str().unwrap_or("?");
        let _ = writeln!(out, "## {title}\n");
        let headers: Vec<&str> = table["headers"]
            .as_array()
            .expect("headers")
            .iter()
            .map(|h| h.as_str().unwrap_or("?"))
            .collect();
        let _ = writeln!(out, "| {} |", headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        for row in table["rows"].as_array().expect("rows") {
            let cells: Vec<&str> = row
                .as_array()
                .expect("row")
                .iter()
                .map(|c| c.as_str().unwrap_or("?"))
                .collect();
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        }
        if let Some(notes) = table["notes"].as_array() {
            for note in notes {
                let _ = writeln!(out, "\n> {}", note.as_str().unwrap_or(""));
            }
        }
        let _ = writeln!(out);
    }
    print!("{out}");
}
