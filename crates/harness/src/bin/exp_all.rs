//! Regenerates every experiment table (EXPERIMENTS.md).
//!
//! Flags: `--full` for the larger sweeps, `--csv` for machine-readable
//! output, `--json <path>` to also write all tables as a JSON document.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let csv = args.iter().any(|a| a == "--csv");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let tables = congos_harness::experiments::run_all(full);
    for table in &tables {
        if csv {
            println!("# {}", table.title());
            print!("{}", table.to_csv());
        } else {
            table.print();
        }
    }
    if let Some(path) = json_path {
        let doc = serde_json::json!({
            "suite": "confidential-gossip experiments",
            "full": full,
            "tables": tables.iter().map(|t| t.to_json()).collect::<Vec<_>>(),
        });
        std::fs::write(&path, serde_json::to_string_pretty(&doc).expect("serialize"))
            .expect("write json");
        eprintln!("wrote {path}");
    }
}
