//! Regenerates every experiment table (EXPERIMENTS.md).
//!
//! Flags: `--full` for the larger sweeps, `--csv` for machine-readable
//! output, `--json <path>` to also write all tables as a JSON document,
//! `--backend <seq|par[:N]>` for the execution backend,
//! `--topology <complete|expander:d|churn:p>` for the communication topology.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    congos_harness::init_backend_from_args(&args);
    congos_harness::init_topology_from_args(&args);
    let full = args.iter().any(|a| a == "--full");
    let csv = args.iter().any(|a| a == "--csv");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let tables = congos_harness::experiments::run_all(full);
    for table in &tables {
        if csv {
            println!("# {}", table.title());
            print!("{}", table.to_csv());
        } else {
            table.print();
        }
    }
    if let Some(path) = json_path {
        use congos_harness::Json;
        let doc = Json::object([
            ("suite", Json::from("confidential-gossip experiments")),
            ("full", Json::from(full)),
            (
                "tables",
                Json::Array(tables.iter().map(|t| t.to_json()).collect()),
            ),
        ]);
        std::fs::write(&path, doc.to_string_pretty()).expect("write json");
        eprintln!("wrote {path}");
    }

    congos_harness::mem::print_process_summary("exp_all");
}
