//! Regenerates experiment E3 (see EXPERIMENTS.md). Pass --full for the
//! larger sweep, --csv for machine-readable output, --backend <seq|par[:N]>
//! for the execution backend, --topology <complete|expander:d|churn:p> for the
//! communication topology.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    congos_harness::init_backend_from_args(&args);
    congos_harness::init_topology_from_args(&args);
    let full = args.iter().any(|a| a == "--full");
    let csv = args.iter().any(|a| a == "--csv");
    for table in congos_harness::experiments::e3_complexity::run(full) {
        if csv {
            println!("# {}", table.title());
            print!("{}", table.to_csv());
        } else {
            table.print();
        }
    }

    congos_harness::mem::print_process_summary("exp_e3");
}
