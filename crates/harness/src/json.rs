//! A minimal JSON value, writer and parser.
//!
//! The experiment binaries exchange result tables as JSON documents
//! (`exp_all --json` → `exp_report`). The build environment has no registry
//! access, so instead of `serde_json` this module provides the small value
//! model those tools need: construction, pretty printing, parsing, and
//! `value["key"][idx]`-style access.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also returned when indexing misses).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`, like `serde_json`'s arbitrary numbers).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with stable (sorted) key order.
    Object(BTreeMap<String, Json>),
}

static NULL: Json = Json::Null;

impl Json {
    /// Object constructor from `(key, value)` pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out
    }

    /// Serializes compactly.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    fn write(&self, out: &mut String, depth: usize, pretty: bool) {
        let nl = |out: &mut String, d: usize| {
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(d));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(x) => {
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    nl(out, depth + 1);
                    item.write(out, depth + 1, pretty);
                }
                if !items.is_empty() {
                    nl(out, depth);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    nl(out, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, depth + 1, pretty);
                }
                if !map.is_empty() {
                    nl(out, depth);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first syntax error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::ops::Index<&str> for Json {
    type Output = Json;
    fn index(&self, key: &str) -> &Json {
        match self {
            Json::Object(map) => map.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Json {
    type Output = Json;
    fn index(&self, idx: usize) -> &Json {
        match self {
            Json::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Json {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::String(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::String(s)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Number(x)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Number(x as f64)
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Number(x as f64)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Clone + Into<Json>> From<&[T]> for Json {
    fn from(v: &[T]) -> Json {
        Json::Array(v.iter().cloned().map(Into::into).collect())
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = self
                .peek()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for this
                            // repository's ASCII table output.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    let slice = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| "truncated utf-8".to_string())?;
                    let s = std::str::from_utf8(slice).map_err(|_| "bad utf-8")?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_pretty_and_compact() {
        let doc = Json::object([
            ("title", Json::from("demo")),
            ("full", Json::from(true)),
            ("count", Json::from(42u64)),
            (
                "rows",
                Json::Array(vec![Json::from(vec!["a", "b"]), Json::from(vec!["1", "2"])]),
            ),
        ]);
        for rendered in [doc.to_string_pretty(), doc.to_string_compact()] {
            let back = Json::parse(&rendered).expect("parse");
            assert_eq!(back, doc);
        }
    }

    #[test]
    fn indexing_misses_return_null() {
        let doc = Json::object([("a", Json::from(1u64))]);
        assert_eq!(doc["missing"], Json::Null);
        assert_eq!(doc["a"][3], Json::Null);
        assert_eq!(doc["a"].as_f64(), Some(1.0));
    }

    #[test]
    fn string_escapes_survive() {
        let doc = Json::from("line\none \"two\"\t\\");
        let back = Json::parse(&doc.to_string_compact()).expect("parse");
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_negative_and_fractional_numbers() {
        let v = Json::parse("[-1, 2.5, 1e3]").expect("parse");
        let a = v.as_array().expect("array");
        assert_eq!(a[0].as_f64(), Some(-1.0));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(1000.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }
}
