use congos::CongosNode;
use congos_adversary::{NoFailures, PoissonWorkload};
use congos_harness::run::{run, RunSpec};
use congos_sim::{Round, Tag};

fn main() {
    for n in [16usize, 32, 64] {
        let deadline = 64u64;
        let rounds = 4 * deadline;
        let spec = RunSpec::new(n, 0xE3, rounds);
        let w = PoissonWorkload::new(0.05, 3, deadline, 0xE3).until(Round(rounds - deadline));
        let o = run::<CongosNode, _, _>(spec, NoFailures, w);
        println!("n={n} max/rnd={}", o.metrics.max_per_round());
        for tag in ["proxy", "group_dist", "group_gossip", "all_gossip", "shoot"] {
            println!(
                "  {tag:>12}: total {:>9} max/rnd {:>7}",
                o.metrics.total_of(Tag(tag)),
                o.metrics.max_per_round_of(Tag(tag))
            );
        }
    }
}
