//! Direct unicast: the trivial confidential baseline.

use congos_gossip::standalone::{Delivered, GossipInput};
use congos_sim::{Context, Inbox, ProcessId, Protocol, Tag};

/// Tag for direct-unicast traffic.
pub const TAG_DIRECT: Tag = Tag("direct");

/// A rumor in flight: workload id plus bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirectMsg {
    /// Workload rumor id.
    pub wid: u64,
    /// Rumor bytes.
    pub data: Vec<u8>,
}

/// Each source unicasts every rumor straight to its destination set in the
/// round after injection. No collaboration, no relays — confidential by
/// construction and trivially timely (any deadline ≥ 1 is met), but the
/// per-round message complexity is the full `Σ|D|` of the injected rumors:
/// nothing is ever batched across sources.
pub struct DirectNode;

impl Protocol for DirectNode {
    type Msg = DirectMsg;
    type Input = GossipInput;
    type Output = Delivered;

    fn new(_id: ProcessId, _n: usize, _seed: u64) -> Self {
        DirectNode
    }

    fn msg_size(msg: &Self::Msg) -> u64 {
        msg.data.len() as u64 + 16
    }

    fn send(&mut self, _ctx: &mut Context<'_, Self>) {}

    fn receive(
        &mut self,
        ctx: &mut Context<'_, Self>,
        inbox: Inbox<'_, Self::Msg>,
        input: Option<Self::Input>,
    ) {
        for env in inbox {
            let payload = env.payload.clone();
            ctx.output(Delivered {
                wid: payload.wid,
                data: payload.data,
            });
        }
        if let Some(inj) = input {
            let me = ctx.id();
            if inj.dest.contains(&me) {
                ctx.output(Delivered {
                    wid: inj.wid,
                    data: inj.data.clone(),
                });
            }
            for dst in inj.dest {
                if dst != me {
                    ctx.send(
                        dst,
                        DirectMsg {
                            wid: inj.wid,
                            data: inj.data.clone(),
                        },
                        TAG_DIRECT,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congos_adversary::{CrriAdversary, NoFailures, OneShot, RumorSpec};
    use congos_sim::{Engine, EngineConfig, Round};

    #[test]
    fn delivers_to_every_destination_next_round() {
        let n = 8;
        let dest: Vec<ProcessId> = vec![1, 2, 3].into_iter().map(ProcessId::new).collect();
        let spec = RumorSpec::new(0, vec![7], 4, dest.clone());
        let mut adv = CrriAdversary::new(
            NoFailures,
            OneShot::new(Round(0), vec![(ProcessId::new(0), spec)]),
        );
        let mut e = Engine::<DirectNode>::new(EngineConfig::new(n));
        e.run(2, &mut adv);
        assert_eq!(e.outputs().len(), 3);
        assert!(e.outputs().iter().all(|o| o.round == Round(1)));
        assert_eq!(e.metrics().total_of(TAG_DIRECT), 3);
    }

    #[test]
    fn source_in_dest_delivers_locally_without_a_message() {
        let n = 4;
        let src = ProcessId::new(0);
        let spec = RumorSpec::new(0, vec![7], 4, vec![src]);
        let mut adv =
            CrriAdversary::new(NoFailures, OneShot::new(Round(0), vec![(src, spec)]));
        let mut e = Engine::<DirectNode>::new(EngineConfig::new(n));
        e.run(2, &mut adv);
        assert_eq!(e.outputs().len(), 1);
        assert_eq!(e.metrics().total(), 0);
    }
}
