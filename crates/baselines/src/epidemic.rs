//! Plain epidemic continuous gossip — the non-confidential reference.
//!
//! This is the substrate run bare: rumors transit arbitrary relays in the
//! clear, so *every* process may learn *every* rumor — the total loss of
//! confidentiality that motivates the paper. It is the efficiency yardstick:
//! CONGOS aims for the same collaborative complexity while leaking nothing.

/// The plain epidemic node (an alias for the substrate's standalone node —
/// the protocol is literally the black box without filters).
pub type PlainEpidemicNode = congos_gossip::GossipNode;

#[cfg(test)]
mod tests {
    use super::*;
    use congos_adversary::{CrriAdversary, NoFailures, OneShot, RumorSpec};
    use congos_gossip::GossipWire;
    use congos_sim::{
        Engine, EngineConfig, EnvelopeRef, Observer, ProcessId, Round,
    };

    #[test]
    fn plain_epidemic_leaks_rumors_to_relays() {
        // The motivating failure: some process outside the destination set
        // receives the cleartext rumor.
        let n = 16;
        let dest = vec![ProcessId::new(9)];
        let spec = RumorSpec::new(0, vec![0xAA; 8], 32, dest.clone());
        let mut adv = CrriAdversary::new(
            NoFailures,
            OneShot::new(Round(0), vec![(ProcessId::new(0), spec)]),
        );
        let mut e = Engine::<PlainEpidemicNode>::new(EngineConfig::new(n).seed(5));

        struct LeakMeter {
            dest: Vec<ProcessId>,
            leaks: u64,
        }
        impl Observer<PlainEpidemicNode> for LeakMeter {
            fn on_deliver(
                &mut self,
                env: EnvelopeRef<'_, GossipWire<congos_gossip::standalone::StandalonePayload>>,
            ) {
                if let GossipWire::Push(rumors) = &env.payload {
                    for r in rumors.iter() {
                        if !self.dest.contains(&env.dst) && r.id.origin != env.dst {
                            self.leaks += 1;
                        }
                    }
                }
            }
        }
        let mut meter = LeakMeter {
            dest: dest.clone(),
            leaks: 0,
        };
        e.run_observed(33, &mut adv, &mut meter);
        assert!(
            meter.leaks > 0,
            "plain epidemic must leak rumor content to relays"
        );
        // ...and still deliver correctly, of course.
        assert!(e.outputs().iter().any(|o| o.process == dest[0]));
    }
}
