//! # congos-baselines — comparator protocols
//!
//! The protocols CONGOS is measured against in the paper's analysis and
//! discussion sections:
//!
//! * [`DirectNode`] — the trivial confidential protocol: the source unicasts
//!   the rumor to each destination. Always correct, always confidential,
//!   per-round cost `Θ(Σ|D|)` of the rumors injected that round — the
//!   comparator the paper's Section 5 invokes for short deadlines.
//! * [`StronglyConfidentialNode`] — the subject of **Theorem 1**: epidemic
//!   gossip where messages causally dependent on a rumor may only travel
//!   between members of `ρ.D ∪ {source}`. The theorem shows this costs
//!   `Ω(n^{3/2−ε}/dmax)` per round under the random-destination workload,
//!   because distinct rumors can almost never share a message.
//! * [`PlainEpidemicNode`] — non-confidential continuous gossip (the
//!   substrate run bare): the efficiency reference, and the total loss of
//!   confidentiality that motivates the paper.
//! * [`CryptoMulticastNode`] — the cryptographic alternative sketched in
//!   the paper's "Alternative approaches": per-group keys, re-keying when a
//!   group is first used (or changes), encrypted delivery to each member.
//!   Efficient for stable groups, expensive when every rumor has a fresh
//!   destination set. *Simulated*: no real cryptography — the comparison is
//!   purely about message complexity, which is what the paper compares (see
//!   DESIGN.md §2.5 for the substitution note).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crypto_multicast;
pub mod direct;
pub mod epidemic;
pub mod strongly_confidential;

pub use crypto_multicast::{CryptoMsg, CryptoMulticastNode, TAG_MCAST, TAG_REKEY};
pub use direct::{DirectNode, TAG_DIRECT};
pub use epidemic::PlainEpidemicNode;
pub use strongly_confidential::{StrongMsg, StronglyConfidentialNode, TAG_STRONG};
