//! Strongly confidential gossip — the subject of Theorem 1.
//!
//! *Strong* confidentiality forbids any message causally dependent on a
//! rumor from ever reaching a process outside `ρ.D ∪ {source}`. Under that
//! restriction only destination-set members can collaborate: each process
//! forwards the rumors it knows, but a message to `q` may carry only rumors
//! with `q` in their destination set. Theorem 1 shows that under the
//! random-destination-set workload, almost no pair of rumors shares two
//! common members, so rumors cannot be batched and the total message count
//! is `Ω(n^{3/2−ε})` — the "price of strong confidentiality" that motivates
//! fragment-based CONGOS.
//!
//! The implementation mirrors the continuous-gossip substrate (epidemic
//! push + ack + deadline fallback) with the causal restriction enforced at
//! every send: targets are sampled from the rumor's own destination set.

use std::collections::{BTreeMap, HashMap};

use rand::seq::SliceRandom;

use congos_gossip::standalone::{Delivered, GossipInput};
use congos_sim::{Context, IdSet, Inbox, ProcessId, Protocol, Round, Tag};

/// Tag for strongly-confidential gossip traffic.
pub const TAG_STRONG: Tag = Tag("strong");

/// Identity of a rumor (restart-safe, as in the substrate).
pub(crate) type Rid = (ProcessId, Round, u32);

/// One rumor as carried by the strongly confidential protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StrongRumor {
    rid: Rid,
    wid: u64,
    data: Vec<u8>,
    deadline: Round,
    dest: IdSet,
}

/// Wire messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StrongMsg {
    /// A batch of rumors — every one of them has the receiver in its
    /// destination set (the strong-confidentiality constraint; checked in
    /// tests and by construction).
    Push(Vec<StrongRumor>),
    /// Acknowledgment of received rumors.
    Ack(Vec<Rid>),
}

struct OwnRumor {
    rumor: StrongRumor,
    unacked: IdSet,
}

/// A process running strongly confidential epidemic gossip.
pub struct StronglyConfidentialNode {
    n: usize,
    /// Rumors this process knows and may still forward.
    active: BTreeMap<Rid, StrongRumor>,
    seen: HashMap<Rid, Round>,
    own: BTreeMap<Rid, OwnRumor>,
    pending_acks: BTreeMap<ProcessId, Vec<Rid>>,
    next_seq: u32,
    last_inject: Round,
    /// Per-round forwarding fanout within a rumor's destination set.
    fanout: usize,
}

impl Protocol for StronglyConfidentialNode {
    type Msg = StrongMsg;
    type Input = GossipInput;
    type Output = Delivered;

    fn new(_id: ProcessId, n: usize, _seed: u64) -> Self {
        StronglyConfidentialNode {
            n,
            active: BTreeMap::new(),
            seen: HashMap::new(),
            own: BTreeMap::new(),
            pending_acks: BTreeMap::new(),
            next_seq: 0,
            last_inject: Round::ZERO,
            fanout: 3,
        }
    }

    fn msg_size(msg: &Self::Msg) -> u64 {
        match msg {
            StrongMsg::Push(rumors) => rumors
                .iter()
                .map(|r| r.data.len() as u64 + r.dest.universe().div_ceil(8) as u64 + 32)
                .sum(),
            StrongMsg::Ack(ids) => 16 * ids.len() as u64,
        }
    }

    fn send(&mut self, ctx: &mut Context<'_, Self>) {
        let now = ctx.round();
        let me = ctx.id();
        self.active.retain(|_, r| r.deadline >= now);
        if self.seen.len() > 4096 {
            self.seen.retain(|_, dl| *dl + 2 >= now);
        }

        for (dst, ids) in std::mem::take(&mut self.pending_acks) {
            ctx.send(dst, StrongMsg::Ack(ids), TAG_STRONG);
        }

        // Deadline fallback by the source, to unacked destinations.
        let expiring: Vec<Rid> = self
            .own
            .iter()
            .filter(|(_, o)| o.rumor.deadline == now)
            .map(|(rid, _)| *rid)
            .collect();
        for rid in expiring {
            let o = self.own.remove(&rid).expect("present");
            for dst in o.unacked.iter() {
                ctx.send(dst, StrongMsg::Push(vec![o.rumor.clone()]), TAG_STRONG);
            }
        }
        self.own.retain(|_, o| o.rumor.deadline > now);

        // Epidemic forwarding: per rumor, to random members of *its own
        // destination set* — the strong-confidentiality constraint. Batches
        // per target: a target receives one envelope with every applicable
        // rumor (merging is allowed exactly when destination sets overlap,
        // which is what Theorem 1's workload makes rare).
        let mut per_target: BTreeMap<ProcessId, Vec<StrongRumor>> = BTreeMap::new();
        for rumor in self.active.values() {
            let members: Vec<ProcessId> =
                rumor.dest.iter().filter(|p| *p != me).collect();
            let k = self.fanout.min(members.len());
            for dst in members.choose_multiple(ctx.rng(), k) {
                per_target.entry(*dst).or_default().push(rumor.clone());
            }
        }
        for (dst, batch) in per_target {
            ctx.send(dst, StrongMsg::Push(batch), TAG_STRONG);
        }
    }

    fn receive(
        &mut self,
        ctx: &mut Context<'_, Self>,
        inbox: Inbox<'_, Self::Msg>,
        input: Option<Self::Input>,
    ) {
        let now = ctx.round();
        let me = ctx.id();
        for env in inbox {
            match env.payload.clone() {
                StrongMsg::Push(rumors) => {
                    for rumor in rumors {
                        debug_assert!(
                            rumor.dest.contains(me),
                            "strong confidentiality violated on the wire"
                        );
                        if self.seen.contains_key(&rumor.rid) {
                            continue;
                        }
                        self.seen.insert(rumor.rid, rumor.deadline);
                        ctx.output(Delivered {
                            wid: rumor.wid,
                            data: rumor.data.clone(),
                        });
                        if rumor.rid.0 != me {
                            self.pending_acks
                                .entry(rumor.rid.0)
                                .or_default()
                                .push(rumor.rid);
                        }
                        if rumor.deadline >= now {
                            self.active.insert(rumor.rid, rumor);
                        }
                    }
                }
                StrongMsg::Ack(ids) => {
                    for rid in ids {
                        if let Some(o) = self.own.get_mut(&rid) {
                            o.unacked.remove(env.src);
                        }
                    }
                }
            }
        }
        if let Some(inj) = input {
            if now != self.last_inject {
                self.last_inject = now;
                self.next_seq = 0;
            }
            let rid: Rid = (me, now, self.next_seq);
            self.next_seq += 1;
            let dest = IdSet::from_iter(self.n, inj.dest.iter().copied());
            let rumor = StrongRumor {
                rid,
                wid: inj.wid,
                data: inj.data,
                deadline: now + inj.deadline,
                dest,
            };
            self.seen.insert(rid, rumor.deadline);
            if rumor.dest.contains(me) {
                ctx.output(Delivered {
                    wid: rumor.wid,
                    data: rumor.data.clone(),
                });
            }
            let mut unacked = rumor.dest.clone();
            unacked.remove(me);
            self.own.insert(
                rid,
                OwnRumor {
                    rumor: rumor.clone(),
                    unacked,
                },
            );
            self.active.insert(rid, rumor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congos_adversary::{CrriAdversary, NoFailures, OneShot, RumorSpec, Theorem1Workload};
    use congos_sim::{Engine, EngineConfig, EnvelopeRef, NullObserver, Observer};

    #[test]
    fn delivers_within_destination_set_only() {
        let n = 16;
        let dest: Vec<ProcessId> = vec![2, 5, 9].into_iter().map(ProcessId::new).collect();
        let spec = RumorSpec::new(0, vec![1; 8], 32, dest.clone());
        let mut adv = CrriAdversary::new(
            NoFailures,
            OneShot::new(Round(0), vec![(ProcessId::new(0), spec)]),
        );
        let mut e = Engine::<StronglyConfidentialNode>::new(EngineConfig::new(n).seed(3));

        // Observer asserting no envelope ever reaches a non-member.
        struct Wiretap {
            dest: Vec<ProcessId>,
        }
        impl Observer<StronglyConfidentialNode> for Wiretap {
            fn on_deliver(&mut self, env: EnvelopeRef<'_, StrongMsg>) {
                if let StrongMsg::Push(rumors) = &env.payload {
                    for r in rumors {
                        assert!(
                            r.dest.contains(env.dst) || r.rid.0 == env.dst,
                            "rumor leaked to {}",
                            env.dst
                        );
                    }
                }
            }
        }
        let mut tap = Wiretap { dest: dest.clone() };
        let _ = &mut tap.dest;
        e.run_observed(33, &mut adv, &mut tap);
        let receivers: Vec<ProcessId> = e.outputs().iter().map(|o| o.process).collect();
        for d in &dest {
            assert!(receivers.contains(d));
        }
        assert!(receivers.iter().all(|r| dest.contains(r)));
    }

    #[test]
    fn theorem1_workload_prevents_batching() {
        // Under the Theorem-1 workload, messages should carry few rumors:
        // count envelopes vs rumor-copies to estimate the batching factor.
        let n = 128;
        let mut adv = CrriAdversary::new(NoFailures, Theorem1Workload::new(4.0, 32, 7));
        let mut e = Engine::<StronglyConfidentialNode>::new(EngineConfig::new(n).seed(4));

        struct BatchMeter {
            envelopes: u64,
            copies: u64,
        }
        impl Observer<StronglyConfidentialNode> for BatchMeter {
            fn on_deliver(&mut self, env: EnvelopeRef<'_, StrongMsg>) {
                if let StrongMsg::Push(rumors) = &env.payload {
                    self.envelopes += 1;
                    self.copies += rumors.len() as u64;
                }
            }
        }
        let mut meter = BatchMeter {
            envelopes: 0,
            copies: 0,
        };
        e.run_observed(33, &mut adv, &mut meter);
        assert!(meter.envelopes > 0);
        let factor = meter.copies as f64 / meter.envelopes as f64;
        assert!(
            factor < 2.0,
            "strong confidentiality should prevent batching; got {factor:.2}"
        );
        let _ = NullObserver;
    }
}
