//! Simulated cryptographic multicast — the paper's "alternative approach".
//!
//! The paper's discussion of cryptographic solutions (Section 1,
//! "Alternative approaches"): give each destination group a shared key;
//! establishing or changing a key costs messages to every member, after
//! which rumors are encrypted once and delivered per member. *"The
//! cryptographic solutions will be more efficient when the groupings are
//! stable … we are not aware of any sub-quadratic cryptographic approach
//! when the groups are changing rapidly."*
//!
//! This comparator makes that accounting measurable, with **no real
//! cryptography** (what the paper used: a hypothetical PKI/group-key
//! scheme; what we build: a message-count-faithful model; why the
//! substitution is sound: only per-round message complexity is compared,
//! never cryptographic strength — see DESIGN.md §2.5):
//!
//! * the first rumor a source sends to a given destination set pays a
//!   **re-key**: one `KeyOffer` to each member, one `KeyAck` back;
//! * once keyed, each rumor costs one `Cipher` unicast per member
//!   (point-to-point networks have no free multicast);
//! * every *distinct* destination set needs its own key — a fresh group per
//!   rumor re-keys every time, which is exactly the dynamic-group regime
//!   where the paper argues cryptography struggles (experiment E8).
//!
//! The model is failure-free (re-keying under crash/restart would only add
//! cost to this baseline, making the comparison conservative in its favor).

use std::collections::HashMap;

use congos_gossip::standalone::{Delivered, GossipInput};
use congos_sim::{Context, Inbox, ProcessId, Protocol, Tag};

/// Tag for key-establishment traffic.
pub const TAG_REKEY: Tag = Tag("rekey");
/// Tag for encrypted rumor deliveries.
pub const TAG_MCAST: Tag = Tag("mcast");

/// Wire messages of the simulated crypto multicast.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CryptoMsg {
    /// "Here is the new group key" (content abstracted away).
    KeyOffer {
        /// Identifier of the group being keyed.
        gid: u64,
    },
    /// "Key installed."
    KeyAck {
        /// Identifier of the keyed group.
        gid: u64,
    },
    /// An encrypted rumor (content modeled in the clear; only counts
    /// matter).
    Cipher {
        /// Workload rumor id.
        wid: u64,
        /// Rumor bytes.
        data: Vec<u8>,
    },
}

struct GroupKey {
    members: Vec<ProcessId>,
    acks_missing: usize,
    queued: Vec<(u64, Vec<u8>)>,
}

/// A process running the simulated group-key multicast.
pub struct CryptoMulticastNode {
    /// Keys this source has established (or is establishing), by group id.
    keys: HashMap<u64, GroupKey>,
    /// Deterministic group-id assignment for destination sets seen here.
    gids: HashMap<Vec<ProcessId>, u64>,
    next_gid: u64,
    /// Total re-keys performed (for experiment tables).
    rekeys: u64,
}

impl CryptoMulticastNode {
    /// Number of key establishments this source performed.
    pub fn rekeys(&self) -> u64 {
        self.rekeys
    }
}

impl Protocol for CryptoMulticastNode {
    type Msg = CryptoMsg;
    type Input = GossipInput;
    type Output = Delivered;

    fn new(id: ProcessId, _n: usize, _seed: u64) -> Self {
        CryptoMulticastNode {
            keys: HashMap::new(),
            gids: HashMap::new(),
            next_gid: (id.as_usize() as u64) << 32,
            rekeys: 0,
        }
    }

    fn msg_size(msg: &Self::Msg) -> u64 {
        match msg {
            CryptoMsg::KeyOffer { .. } => 64, // key material
            CryptoMsg::KeyAck { .. } => 16,
            CryptoMsg::Cipher { data, .. } => data.len() as u64 + 24,
        }
    }

    fn send(&mut self, _ctx: &mut Context<'_, Self>) {}

    fn receive(
        &mut self,
        ctx: &mut Context<'_, Self>,
        inbox: Inbox<'_, Self::Msg>,
        input: Option<Self::Input>,
    ) {
        let me = ctx.id();
        for env in inbox {
            match env.payload.clone() {
                CryptoMsg::KeyOffer { gid } => {
                    ctx.send(env.src, CryptoMsg::KeyAck { gid }, TAG_REKEY);
                }
                CryptoMsg::KeyAck { gid } => {
                    let mut ready: Vec<(Vec<ProcessId>, u64, Vec<u8>)> = Vec::new();
                    if let Some(k) = self.keys.get_mut(&gid) {
                        k.acks_missing = k.acks_missing.saturating_sub(1);
                        if k.acks_missing == 0 {
                            for (wid, data) in k.queued.drain(..) {
                                ready.push((k.members.clone(), wid, data));
                            }
                        }
                    }
                    for (members, wid, data) in ready {
                        multicast(ctx, me, &members, wid, data);
                    }
                }
                CryptoMsg::Cipher { wid, data } => {
                    ctx.output(Delivered { wid, data });
                }
            }
        }
        if let Some(inj) = input {
            let mut members = inj.dest.clone();
            members.sort_unstable();
            members.dedup();
            if members.contains(&me) {
                ctx.output(Delivered {
                    wid: inj.wid,
                    data: inj.data.clone(),
                });
            }
            let gid = *self.gids.entry(members.clone()).or_insert_with(|| {
                self.next_gid += 1;
                self.next_gid
            });
            let others: Vec<ProcessId> =
                members.iter().copied().filter(|p| *p != me).collect();
            if others.is_empty() {
                return;
            }
            match self.keys.get_mut(&gid) {
                Some(k) if k.acks_missing == 0 => {
                    // Key established: one encrypted unicast per member.
                    multicast(ctx, me, &others, inj.wid, inj.data);
                }
                Some(k) => {
                    // Key establishment in flight: queue behind it.
                    k.queued.push((inj.wid, inj.data));
                }
                None => {
                    // Re-key: offer to each member; queue the rumor.
                    self.rekeys += 1;
                    for dst in &others {
                        ctx.send(*dst, CryptoMsg::KeyOffer { gid }, TAG_REKEY);
                    }
                    self.keys.insert(
                        gid,
                        GroupKey {
                            members: others.clone(),
                            acks_missing: others.len(),
                            queued: vec![(inj.wid, inj.data)],
                        },
                    );
                }
            }
        }
    }
}

fn multicast(
    ctx: &mut Context<'_, CryptoMulticastNode>,
    me: ProcessId,
    members: &[ProcessId],
    wid: u64,
    data: Vec<u8>,
) {
    for dst in members {
        if *dst != me {
            ctx.send(
                *dst,
                CryptoMsg::Cipher {
                    wid,
                    data: data.clone(),
                },
                TAG_MCAST,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congos_adversary::{CrriAdversary, NoFailures, OneShot, RumorSpec};
    use congos_sim::{Engine, EngineConfig, Round};

    fn run_rumors(rumors: Vec<(u64, Vec<ProcessId>)>) -> Engine<CryptoMulticastNode> {
        let n = 8;
        let batch: Vec<_> = rumors
            .into_iter()
            .map(|(wid, dest)| {
                (
                    ProcessId::new(0),
                    RumorSpec::new(wid, vec![1], 16, dest),
                )
            })
            .collect();
        // One rumor per round per process: spread the batch over rounds.
        let mut e = Engine::<CryptoMulticastNode>::new(EngineConfig::new(n));
        for (i, item) in batch.into_iter().enumerate() {
            let mut adv = CrriAdversary::new(
                NoFailures,
                OneShot::new(Round(i as u64), vec![item]),
            );
            e.step(&mut adv);
        }
        let mut adv = CrriAdversary::new(NoFailures, congos_adversary::NoInjections);
        e.run(8, &mut adv);
        e
    }

    #[test]
    fn first_use_pays_rekey_then_multicast() {
        let dest: Vec<ProcessId> = vec![1, 2, 3].into_iter().map(ProcessId::new).collect();
        let e = run_rumors(vec![(0, dest.clone())]);
        assert_eq!(e.metrics().total_of(TAG_REKEY), 6, "3 offers + 3 acks");
        assert_eq!(e.metrics().total_of(TAG_MCAST), 3);
        assert_eq!(e.outputs().len(), 3);
    }

    #[test]
    fn stable_group_amortizes_rekey() {
        let dest: Vec<ProcessId> = vec![1, 2, 3].into_iter().map(ProcessId::new).collect();
        let e = run_rumors(vec![(0, dest.clone()), (1, dest.clone()), (2, dest)]);
        // One re-key for three rumors.
        assert_eq!(e.metrics().total_of(TAG_REKEY), 6);
        assert_eq!(e.metrics().total_of(TAG_MCAST), 9);
        assert_eq!(e.outputs().len(), 9);
    }

    #[test]
    fn fresh_groups_rekey_every_time() {
        let mk = |ids: &[usize]| ids.iter().map(|i| ProcessId::new(*i)).collect::<Vec<_>>();
        let e = run_rumors(vec![
            (0, mk(&[1, 2])),
            (1, mk(&[3, 4])),
            (2, mk(&[5, 6])),
        ]);
        assert_eq!(e.metrics().total_of(TAG_REKEY), 12, "every rumor re-keys");
        assert_eq!(e.outputs().len(), 6);
    }
}
