//! # congos-gossip — the Continuous Gossip substrate
//!
//! CONGOS (the confidential-gossip algorithm) consumes a non-confidential
//! *Continuous Gossip service* as a black box — the protocol of Georgiou,
//! Gilbert & Kowalski, *"Meeting the Deadline: On the Complexity of
//! Fault-Tolerant Continuous Gossip"* (reference [13] of the paper). The
//! black box guarantees exactly two things:
//!
//! 1. **Quality of Delivery with probability 1** — every admissible rumor
//!    (source continuously alive) reaches every continuously-alive member of
//!    its destination set by its deadline;
//! 2. **bounded per-round message complexity** —
//!    `O(n^{1+6/∛dmin} · polylog n)` where `dmin` is the shortest deadline
//!    of any active rumor.
//!
//! This crate provides a faithful randomized implementation of that
//! contract: epidemic push with a collaborator-scaled fanout
//! (`Θ(n^{γ/∛dmin} · log n / |collaborators|)` per collaborator per round),
//! acknowledgment tracking, and a deterministic direct-send fallback at the
//! deadline — which fires only when the epidemic phase failed to confirm
//! delivery, preserving property 1 deterministically while property 2 holds
//! with high probability. (The original [13] de-randomizes the epidemic
//! choices with explicit expander graphs; building those is outside the
//! scope of the confidential-gossip paper, which treats this service as a
//! black box. See DESIGN.md §2.3.)
//!
//! The service is an *embeddable component*: CONGOS instantiates `log n`
//! filtered copies (`GroupGossip[ℓ]`, one per partition side it belongs to)
//! plus one unfiltered copy (`AllGossip`) inside each process, multiplexing
//! their wire messages over the host protocol's message type. The *filter*
//! of the paper (Figure 11) is the [`membership`](GossipConfig) set: a
//! filtered instance never addresses — and never accepts — a process outside
//! its group, which is what makes the fragment-confinement argument of
//! Lemma 3 hold by construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expander;
pub mod fanout;
pub mod rumor;
pub mod service;
pub mod standalone;

pub use expander::{expander_targets, GossipStrategy};
pub use fanout::{fanout, FanoutParams};
pub use rumor::{GossipRumor, RumorId};
pub use service::{ContinuousGossip, GossipConfig, GossipWire};
pub use standalone::GossipNode;
