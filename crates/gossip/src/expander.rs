//! Deterministic target schedules over expander-like graphs.
//!
//! The original continuous-gossip substrate [13] *de-randomizes* the
//! epidemic: random per-round choices are replaced by edges of explicit
//! expander graphs, so the protocol's behavior — and its guarantees — hold
//! against an adversary that knows every future "choice". This module
//! provides that mode using a classic constructive expander family on the
//! group's member list: the **hypercube/Chord offsets** `±2^j` (plus the
//! unit cycle), which give logarithmic diameter and good vertex expansion
//! on any group size, rotated by round so that over any window of rounds a
//! member contacts a spread of distinct peers.
//!
//! Whether a gossip instance uses random sampling or the deterministic
//! schedule is a [`GossipStrategy`] choice; both satisfy the black-box
//! contract the CONGOS layer needs (probability-1 QoD via the deadline
//! fallback, bounded per-round complexity).

use congos_sim::topology::Topology;
use congos_sim::{IdSet, ProcessId, Round};

/// How a gossip endpoint chooses its epidemic push targets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GossipStrategy {
    /// Uniform random members (the analysis-friendly randomized epidemic).
    #[default]
    Random,
    /// Deterministic expander schedule (the de-randomized [13] mode): the
    /// adversary gains nothing from seeing the process's coin flips,
    /// because there are none.
    Expander,
}

/// The deterministic neighbor schedule for one member of a group.
///
/// Members are ranked by id within the (sorted) membership; the `j`-th
/// target of rank `i` in round `t` is
/// `rank (i + d_{(t+j) mod D}) mod m`, where the offset family
/// `d_0.. = 1, 2, 4, …, 2^⌈log₂ m⌉⁻¹, m−1, m−2, m−4, …` walks the
/// hypercube offsets forwards and backwards.
///
/// Properties used by the substrate:
/// * every offset is non-zero mod `m` (no self-sends);
/// * over `D = Θ(log m)` consecutive rounds a member contacts targets whose
///   offsets span all binary scales — the union graph has logarithmic
///   diameter, so a rumor injected anywhere floods the group in
///   `O(log² m)` rounds even if a constant fraction of members crash.
pub fn expander_targets(
    membership: &IdSet,
    me: ProcessId,
    now: Round,
    fanout: usize,
) -> Vec<ProcessId> {
    let members: Vec<ProcessId> = membership.iter().collect();
    let m = members.len();
    if m <= 1 {
        return Vec::new();
    }
    let my_rank = members
        .binary_search(&me)
        .expect("caller is a member of the group");

    // Offset family: powers of two and their negations (mod m).
    let bits = usize::BITS - (m - 1).leading_zeros(); // ⌈log2 m⌉
    let mut offsets: Vec<usize> = Vec::with_capacity(2 * bits as usize);
    for j in 0..bits {
        offsets.push((1usize << j) % m);
    }
    for j in 0..bits {
        offsets.push(m - ((1usize << j) % m));
    }
    offsets.retain(|o| *o != 0 && *o != m);
    offsets.dedup();
    if offsets.is_empty() {
        offsets.push(1);
    }

    let d = offsets.len();
    let t = now.as_u64() as usize;
    let mut out = Vec::with_capacity(fanout.min(m - 1));
    let mut seen = vec![false; m];
    for j in 0..fanout.min(m - 1) + d {
        if out.len() >= fanout.min(m - 1) {
            break;
        }
        let off = offsets[(t + j) % d];
        let rank = (my_rank + off) % m;
        if rank != my_rank && !seen[rank] {
            seen[rank] = true;
            out.push(members[rank]);
        }
    }
    out
}

/// The deterministic neighbor schedule for one member of a group, restricted
/// to a communication [`Topology`](congos_sim::topology::Topology) — the
/// bridge between the gossip substrate's de-randomized mode and the
/// engine-level topology layer (`sim::topology`).
///
/// On [`TopologySpec::Complete`](congos_sim::TopologySpec::Complete) this is
/// exactly [`expander_targets`] (every pair is linked, so the schedule is
/// unrestricted). On sparser topologies it rotates round-by-round through
/// the member's *actual* round-`now` neighbors inside the group, so the
/// substrate never wastes a send on a link the delivery phase would drop.
pub fn topology_targets(
    topo: &Topology,
    membership: &IdSet,
    me: ProcessId,
    now: Round,
    fanout: usize,
) -> Vec<ProcessId> {
    if topo.is_complete() {
        return expander_targets(membership, me, now, fanout);
    }
    let mut reachable = topo.neighbors(now, me);
    reachable.intersect_with(membership);
    let candidates: Vec<ProcessId> = reachable.iter().collect();
    if candidates.is_empty() {
        return Vec::new();
    }
    // Rotate the (sorted) candidate list by round so repeated rounds spread
    // contacts across the whole neighborhood, mirroring expander_targets.
    let k = fanout.min(candidates.len());
    let start = (now.as_u64() as usize) % candidates.len();
    (0..k)
        .map(|j| candidates[(start + j) % candidates.len()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use congos_sim::TopologySpec;

    fn group(ids: &[usize], n: usize) -> IdSet {
        IdSet::from_iter(n, ids.iter().map(|i| ProcessId::new(*i)))
    }

    #[test]
    fn no_self_sends_and_distinct_targets() {
        let g = group(&[0, 3, 5, 8, 9, 12, 17, 20], 24);
        for t in 0..40u64 {
            for me in g.iter() {
                let targets = expander_targets(&g, me, Round(t), 3);
                assert!(!targets.contains(&me), "self-send at t={t}");
                let mut d = targets.clone();
                d.sort_unstable();
                d.dedup();
                assert_eq!(d.len(), targets.len(), "duplicate targets");
                assert!(targets.iter().all(|p| g.contains(*p)));
            }
        }
    }

    #[test]
    fn schedule_is_deterministic() {
        let g = group(&[1, 2, 4, 7], 8);
        let a = expander_targets(&g, ProcessId::new(2), Round(9), 2);
        let b = expander_targets(&g, ProcessId::new(2), Round(9), 2);
        assert_eq!(a, b);
    }

    #[test]
    fn rotation_covers_all_scales() {
        // Over enough rounds with fanout 1, a member contacts peers at
        // every binary distance — the union neighborhood is large.
        let n = 32;
        let g = IdSet::full(n);
        let me = ProcessId::new(5);
        let mut contacted: Vec<ProcessId> = Vec::new();
        for t in 0..64u64 {
            contacted.extend(expander_targets(&g, me, Round(t), 1));
        }
        contacted.sort_unstable();
        contacted.dedup();
        assert!(
            contacted.len() >= 2 * (n as f64).log2() as usize - 2,
            "union neighborhood too small: {}",
            contacted.len()
        );
    }

    #[test]
    fn flood_reaches_whole_group_quickly() {
        // Simulate a pure flood over the deterministic schedule: informed
        // members push to their round targets; everyone must be informed
        // within O(log² m) rounds.
        let m = 64;
        let g = IdSet::full(m);
        let mut informed = vec![false; m];
        informed[7] = true;
        let fanout = 2;
        let mut rounds_needed = None;
        for t in 0..200u64 {
            let snapshot = informed.clone();
            for (i, is) in snapshot.iter().enumerate() {
                if *is {
                    for tgt in expander_targets(&g, ProcessId::new(i), Round(t), fanout) {
                        informed[tgt.as_usize()] = true;
                    }
                }
            }
            if informed.iter().all(|b| *b) {
                rounds_needed = Some(t + 1);
                break;
            }
        }
        let needed = rounds_needed.expect("flood must complete");
        assert!(needed <= 40, "flood took {needed} rounds");
    }

    #[test]
    fn topology_targets_on_complete_equals_expander_schedule() {
        let topo = Topology::build(TopologySpec::Complete, 24, 7);
        let g = group(&[0, 3, 5, 8, 9, 12, 17, 20], 24);
        for t in 0..16u64 {
            for me in g.iter() {
                assert_eq!(
                    topology_targets(&topo, &g, me, Round(t), 3),
                    expander_targets(&g, me, Round(t), 3)
                );
            }
        }
    }

    #[test]
    fn topology_targets_stay_on_live_links() {
        let topo = Topology::build(TopologySpec::Expander { degree: 4 }, 24, 7);
        let g = IdSet::full(24);
        for t in 0..32u64 {
            for me in g.iter() {
                let targets = topology_targets(&topo, &g, me, Round(t), 3);
                assert!(!targets.contains(&me), "self-send at t={t}");
                for tgt in &targets {
                    assert!(
                        topo.connected(Round(t), me, *tgt),
                        "t={t}: {me}→{tgt} is not a live link"
                    );
                }
                let mut d = targets.clone();
                d.sort_unstable();
                d.dedup();
                assert_eq!(d.len(), targets.len(), "duplicate targets");
            }
        }
    }

    #[test]
    fn topology_targets_rotate_across_rounds() {
        // With fanout 1 on a 4-regular graph, successive rounds must not be
        // stuck on a single neighbor.
        let topo = Topology::build(TopologySpec::Expander { degree: 4 }, 16, 3);
        let g = IdSet::full(16);
        let me = ProcessId::new(5);
        let mut contacted: Vec<ProcessId> = (0..8u64)
            .flat_map(|t| topology_targets(&topo, &g, me, Round(t), 1))
            .collect();
        contacted.sort_unstable();
        contacted.dedup();
        assert!(contacted.len() >= 3, "schedule barely rotates: {contacted:?}");
    }

    #[test]
    fn tiny_groups_are_handled() {
        let g = group(&[4], 8);
        assert!(expander_targets(&g, ProcessId::new(4), Round(0), 3).is_empty());
        let g = group(&[2, 6], 8);
        let t = expander_targets(&g, ProcessId::new(2), Round(5), 3);
        assert_eq!(t, vec![ProcessId::new(6)]);
    }
}
