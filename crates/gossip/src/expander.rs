//! Deterministic target schedules over expander-like graphs.
//!
//! The original continuous-gossip substrate [13] *de-randomizes* the
//! epidemic: random per-round choices are replaced by edges of explicit
//! expander graphs, so the protocol's behavior — and its guarantees — hold
//! against an adversary that knows every future "choice". This module
//! provides that mode using a classic constructive expander family on the
//! group's member list: the **hypercube/Chord offsets** `±2^j` (plus the
//! unit cycle), which give logarithmic diameter and good vertex expansion
//! on any group size, rotated by round so that over any window of rounds a
//! member contacts a spread of distinct peers.
//!
//! Whether a gossip instance uses random sampling or the deterministic
//! schedule is a [`GossipStrategy`] choice; both satisfy the black-box
//! contract the CONGOS layer needs (probability-1 QoD via the deadline
//! fallback, bounded per-round complexity).

use congos_sim::{IdSet, ProcessId, Round};

/// How a gossip endpoint chooses its epidemic push targets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GossipStrategy {
    /// Uniform random members (the analysis-friendly randomized epidemic).
    #[default]
    Random,
    /// Deterministic expander schedule (the de-randomized [13] mode): the
    /// adversary gains nothing from seeing the process's coin flips,
    /// because there are none.
    Expander,
}

/// The deterministic neighbor schedule for one member of a group.
///
/// Members are ranked by id within the (sorted) membership; the `j`-th
/// target of rank `i` in round `t` is
/// `rank (i + d_{(t+j) mod D}) mod m`, where the offset family
/// `d_0.. = 1, 2, 4, …, 2^⌈log₂ m⌉⁻¹, m−1, m−2, m−4, …` walks the
/// hypercube offsets forwards and backwards.
///
/// Properties used by the substrate:
/// * every offset is non-zero mod `m` (no self-sends);
/// * over `D = Θ(log m)` consecutive rounds a member contacts targets whose
///   offsets span all binary scales — the union graph has logarithmic
///   diameter, so a rumor injected anywhere floods the group in
///   `O(log² m)` rounds even if a constant fraction of members crash.
pub fn expander_targets(
    membership: &IdSet,
    me: ProcessId,
    now: Round,
    fanout: usize,
) -> Vec<ProcessId> {
    let members: Vec<ProcessId> = membership.iter().collect();
    let m = members.len();
    if m <= 1 {
        return Vec::new();
    }
    let my_rank = members
        .binary_search(&me)
        .expect("caller is a member of the group");

    // Offset family: powers of two and their negations (mod m).
    let bits = usize::BITS - (m - 1).leading_zeros(); // ⌈log2 m⌉
    let mut offsets: Vec<usize> = Vec::with_capacity(2 * bits as usize);
    for j in 0..bits {
        offsets.push((1usize << j) % m);
    }
    for j in 0..bits {
        offsets.push(m - ((1usize << j) % m));
    }
    offsets.retain(|o| *o != 0 && *o != m);
    offsets.dedup();
    if offsets.is_empty() {
        offsets.push(1);
    }

    let d = offsets.len();
    let t = now.as_u64() as usize;
    let mut out = Vec::with_capacity(fanout.min(m - 1));
    let mut seen = vec![false; m];
    for j in 0..fanout.min(m - 1) + d {
        if out.len() >= fanout.min(m - 1) {
            break;
        }
        let off = offsets[(t + j) % d];
        let rank = (my_rank + off) % m;
        if rank != my_rank && !seen[rank] {
            seen[rank] = true;
            out.push(members[rank]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(ids: &[usize], n: usize) -> IdSet {
        IdSet::from_iter(n, ids.iter().map(|i| ProcessId::new(*i)))
    }

    #[test]
    fn no_self_sends_and_distinct_targets() {
        let g = group(&[0, 3, 5, 8, 9, 12, 17, 20], 24);
        for t in 0..40u64 {
            for me in g.iter() {
                let targets = expander_targets(&g, me, Round(t), 3);
                assert!(!targets.contains(&me), "self-send at t={t}");
                let mut d = targets.clone();
                d.sort_unstable();
                d.dedup();
                assert_eq!(d.len(), targets.len(), "duplicate targets");
                assert!(targets.iter().all(|p| g.contains(*p)));
            }
        }
    }

    #[test]
    fn schedule_is_deterministic() {
        let g = group(&[1, 2, 4, 7], 8);
        let a = expander_targets(&g, ProcessId::new(2), Round(9), 2);
        let b = expander_targets(&g, ProcessId::new(2), Round(9), 2);
        assert_eq!(a, b);
    }

    #[test]
    fn rotation_covers_all_scales() {
        // Over enough rounds with fanout 1, a member contacts peers at
        // every binary distance — the union neighborhood is large.
        let n = 32;
        let g = IdSet::full(n);
        let me = ProcessId::new(5);
        let mut contacted: Vec<ProcessId> = Vec::new();
        for t in 0..64u64 {
            contacted.extend(expander_targets(&g, me, Round(t), 1));
        }
        contacted.sort_unstable();
        contacted.dedup();
        assert!(
            contacted.len() >= 2 * (n as f64).log2() as usize - 2,
            "union neighborhood too small: {}",
            contacted.len()
        );
    }

    #[test]
    fn flood_reaches_whole_group_quickly() {
        // Simulate a pure flood over the deterministic schedule: informed
        // members push to their round targets; everyone must be informed
        // within O(log² m) rounds.
        let m = 64;
        let g = IdSet::full(m);
        let mut informed = vec![false; m];
        informed[7] = true;
        let fanout = 2;
        let mut rounds_needed = None;
        for t in 0..200u64 {
            let snapshot = informed.clone();
            for (i, is) in snapshot.iter().enumerate() {
                if *is {
                    for tgt in expander_targets(&g, ProcessId::new(i), Round(t), fanout) {
                        informed[tgt.as_usize()] = true;
                    }
                }
            }
            if informed.iter().all(|b| *b) {
                rounds_needed = Some(t + 1);
                break;
            }
        }
        let needed = rounds_needed.expect("flood must complete");
        assert!(needed <= 40, "flood took {needed} rounds");
    }

    #[test]
    fn tiny_groups_are_handled() {
        let g = group(&[4], 8);
        assert!(expander_targets(&g, ProcessId::new(4), Round(0), 3).is_empty());
        let g = group(&[2, 6], 8);
        let t = expander_targets(&g, ProcessId::new(2), Round(5), 3);
        assert_eq!(t, vec![ProcessId::new(6)]);
    }
}
