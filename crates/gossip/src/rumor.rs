//! Gossip-level rumors: identity, payload, deadline and destination set.

use congos_sim::{IdSet, ProcessId, Round};
use std::fmt;
use std::sync::Arc;

/// Globally unique rumor identity: the injecting process, the injection
/// round, and a round-local sequence number.
///
/// The injection round is part of the identity because processes have **no
/// durable storage**: a restarted process restarts its sequence counter, and
/// without the round component its fresh rumors would collide with — and be
/// deduplicated against — the ids of its pre-crash rumors still remembered
/// by the rest of the system. A crash and a restart cannot occur in the same
/// round, so two incarnations of a process never inject in the same round.
/// (The paper notes the sequence number can be replaced by a pseudorandom
/// identifier to leak less metadata; identity semantics are unchanged.)
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RumorId {
    /// Process that injected the rumor into this gossip instance.
    pub origin: ProcessId,
    /// Round in which the rumor was injected.
    pub birth: Round,
    /// Sequence number among this origin's injections in `birth`.
    pub seq: u32,
}

impl fmt::Debug for RumorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}#{}", self.origin, self.birth, self.seq)
    }
}

/// A rumor as carried by the continuous gossip service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GossipRumor<T> {
    /// Unique identity.
    pub id: RumorId,
    /// Opaque payload (for CONGOS: a rumor fragment or sanitized metadata).
    pub payload: T,
    /// Deadline *duration* in rounds, as injected (`ρ.d`). Used by the
    /// fanout formula, which depends on `dmin` of the active rumors.
    pub duration: u64,
    /// Absolute deadline round: injection round + duration.
    pub deadline: Round,
    /// Destination set within this instance's membership. `Arc`-shared:
    /// a rumor is cloned into the forwarding set of every process the
    /// epidemic reaches, and at large `n` the per-copy destination bitmap
    /// (`n` bits each) dominates the resident footprint — sharing one
    /// allocation per rumor makes each copy a refcount bump.
    pub dest: Arc<IdSet>,
    /// Best-effort rumors are delivered when the epidemic reaches a
    /// destination but carry **no** Quality-of-Delivery obligation: the
    /// origin does not track acknowledgments and does not fire the
    /// deadline fallback, and receivers do not acknowledge. Used for
    /// metadata whose consumers need only eventual (not guaranteed)
    /// delivery — per-member ack/fallback traffic for such rumors would
    /// add an `n²`-per-iteration term the paper's bound does not have.
    pub best_effort: bool,
}

impl<T> GossipRumor<T> {
    /// `true` if the rumor is still active (its deadline has not passed) at
    /// the start of round `now`.
    pub fn active_at(&self, now: Round) -> bool {
        self.deadline >= now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rumor_id_debug_is_compact() {
        let id = RumorId {
            origin: ProcessId::new(3),
            birth: Round(4),
            seq: 9,
        };
        assert_eq!(format!("{id:?}"), "p3@r4#9");
    }

    #[test]
    fn activity_window_is_inclusive() {
        let r = GossipRumor {
            id: RumorId {
                origin: ProcessId::new(0),
                birth: Round(0),
                seq: 0,
            },
            payload: (),
            duration: 8,
            deadline: Round(10),
            dest: Arc::new(IdSet::empty(4)),
            best_effort: false,
        };
        assert!(r.active_at(Round(10)));
        assert!(!r.active_at(Round(11)));
    }
}
