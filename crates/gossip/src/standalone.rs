//! The substrate as a standalone protocol.
//!
//! [`GossipNode`] wraps a single unfiltered [`ContinuousGossip`] instance as
//! a full [`congos_sim::Protocol`], so the substrate can be exercised
//! end-to-end against the engine and the CRRI adversaries. It is also the
//! "plain epidemic continuous gossip" comparator: efficient, deadline-
//! meeting — and completely non-confidential, since rumors transit arbitrary
//! relays in the clear.

use congos_adversary::RumorSpec;
use congos_sim::{Context, IdSet, Inbox, ProcessId, Protocol, Tag};

use crate::rumor::GossipRumor;
use crate::service::{ContinuousGossip, GossipConfig, GossipWire};

/// Payload carried for standalone runs: the workload rumor id plus bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StandalonePayload {
    /// Workload-assigned rumor id (for correlating deliveries).
    pub wid: u64,
    /// Rumor bytes.
    pub data: Vec<u8>,
}

/// Input to a [`GossipNode`]: a rumor to gossip.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GossipInput {
    /// Workload rumor id.
    pub wid: u64,
    /// Rumor bytes.
    pub data: Vec<u8>,
    /// Deadline duration in rounds.
    pub deadline: u64,
    /// Destination processes.
    pub dest: Vec<ProcessId>,
}

impl From<RumorSpec> for GossipInput {
    fn from(spec: RumorSpec) -> Self {
        GossipInput {
            wid: spec.id,
            data: spec.data,
            deadline: spec.deadline,
            dest: spec.dest,
        }
    }
}

/// A delivered rumor, as reported by a [`GossipNode`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivered {
    /// Workload rumor id.
    pub wid: u64,
    /// Rumor bytes.
    pub data: Vec<u8>,
}

/// Tag used by standalone gossip traffic.
pub const GOSSIP_TAG: Tag = Tag("gossip");

/// One process running plain (non-confidential) continuous gossip.
pub struct GossipNode {
    svc: ContinuousGossip<StandalonePayload>,
    n: usize,
}

impl GossipNode {
    /// Creates a node with an explicit gossip configuration (strategy,
    /// fanout, membership) — pair with
    /// [`congos_sim::Engine::with_factory`].
    pub fn with_config(id: ProcessId, n: usize, cfg: GossipConfig) -> Self {
        GossipNode {
            svc: ContinuousGossip::new(id, n, cfg),
            n,
        }
    }

    /// Fallback count for this node (see Lemma 10-style experiments).
    pub fn fallbacks(&self) -> u64 {
        self.svc.fallbacks()
    }
}

impl Protocol for GossipNode {
    type Msg = GossipWire<StandalonePayload>;
    type Input = GossipInput;
    type Output = Delivered;

    fn new(id: ProcessId, n: usize, _seed: u64) -> Self {
        GossipNode {
            svc: ContinuousGossip::new(id, n, GossipConfig::all(n, GOSSIP_TAG)),
            n,
        }
    }

    fn msg_size(msg: &Self::Msg) -> u64 {
        match msg {
            GossipWire::Push(rumors) => rumors
                .iter()
                .map(|r| {
                    r.payload.data.len() as u64
                        + r.dest.universe().div_ceil(8) as u64
                        + 40
                })
                .sum(),
            GossipWire::Ack(ids) => 16 * ids.len() as u64,
        }
    }

    fn send(&mut self, ctx: &mut Context<'_, Self>) {
        let now = ctx.round();
        let out = self.svc.step(now, ctx.rng());
        for (dst, wire) in out {
            ctx.send(dst, wire, GOSSIP_TAG);
        }
    }

    fn receive(
        &mut self,
        ctx: &mut Context<'_, Self>,
        inbox: Inbox<'_, Self::Msg>,
        input: Option<Self::Input>,
    ) {
        let now = ctx.round();
        for env in inbox {
            self.svc.on_receive(now, env.src, env.payload.clone());
        }
        if let Some(inj) = input {
            let dest = IdSet::from_iter(self.n, inj.dest.iter().copied());
            self.svc.inject(
                now,
                StandalonePayload {
                    wid: inj.wid,
                    data: inj.data,
                },
                inj.deadline,
                dest,
            );
        }
        for r in self.svc.take_delivered() {
            deliver(ctx, r);
        }
    }
}

fn deliver(ctx: &mut Context<'_, GossipNode>, r: GossipRumor<StandalonePayload>) {
    ctx.output(Delivered {
        wid: r.payload.wid,
        data: r.payload.data,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use congos_adversary::{
        CrriAdversary, NoFailures, OneShot, PoissonWorkload, RandomChurn, RumorSpec,
    };
    use congos_sim::{Engine, EngineConfig, Round};

    mod congos_gossip_expander_reexport {
        pub use crate::expander::GossipStrategy;
    }

    #[test]
    fn rumor_reaches_all_destinations_by_deadline() {
        let n = 32;
        let dest: Vec<ProcessId> = (1..=5).map(ProcessId::new).collect();
        let spec = RumorSpec::new(0, vec![0xAB; 8], 24, dest.clone());
        let mut adv = CrriAdversary::new(
            NoFailures,
            OneShot::new(Round(0), vec![(ProcessId::new(0), spec)]),
        );
        let mut e = Engine::<GossipNode>::new(EngineConfig::new(n).seed(17));
        e.run(25, &mut adv);
        let receivers: Vec<ProcessId> = e
            .outputs()
            .iter()
            .filter(|o| o.value.wid == 0)
            .map(|o| o.process)
            .collect();
        for d in dest {
            assert!(receivers.contains(&d), "{d} missed the rumor");
        }
        assert!(e
            .outputs()
            .iter()
            .all(|o| o.round.as_u64() <= 24, ), "all deliveries within deadline");
    }

    #[test]
    fn continuous_injection_under_churn_meets_qod_for_admissible() {
        let n = 24;
        let deadline = 32u64;
        let rounds = 128u64;
        let workload = PoissonWorkload::new(0.05, 4, deadline, 5).until(Round(rounds - deadline));
        let churn = RandomChurn::new(0.01, 0.2, 6);
        let mut adv = CrriAdversary::new(churn, workload);
        let mut e = Engine::<GossipNode>::new(EngineConfig::new(n).seed(18));
        e.run(rounds, &mut adv);

        // Check QoD: every admissible (source continuously alive, dest
        // continuously alive) injection is delivered by its deadline.
        let log: Vec<_> = adv.workload().log().to_vec();
        let mut checked = 0;
        for entry in &log {
            let t = entry.round;
            let end = t + entry.spec.deadline;
            if !e.liveness().continuously_alive(entry.source, t, end) {
                continue; // not admissible
            }
            for d in &entry.spec.dest {
                if !e.liveness().continuously_alive(*d, t, end) {
                    continue;
                }
                checked += 1;
                let got = e.outputs().iter().any(|o| {
                    o.process == *d && o.value.wid == entry.spec.id && o.round <= end
                });
                assert!(
                    got,
                    "admissible rumor {} (inj {t}) missed {d} by {end}",
                    entry.spec.id
                );
            }
        }
        assert!(checked > 10, "workload too thin to be meaningful: {checked}");
    }

    #[test]
    fn expander_strategy_delivers_standalone() {
        use congos_gossip_expander_reexport::*;
        let n = 16;
        let dest: Vec<ProcessId> = (1..=4).map(ProcessId::new).collect();
        let spec = RumorSpec::new(0, vec![5; 8], 32, dest.clone());
        let mut adv = CrriAdversary::new(
            NoFailures,
            OneShot::new(Round(0), vec![(ProcessId::new(0), spec)]),
        );
        let mut e = Engine::<GossipNode>::with_factory(
            EngineConfig::new(n).seed(23),
            move |id, n, _s| {
                GossipNode::with_config(
                    id,
                    n,
                    GossipConfig::all(n, GOSSIP_TAG).strategy(GossipStrategy::Expander),
                )
            },
        );
        e.run(33, &mut adv);
        for d in dest {
            assert!(
                e.outputs().iter().any(|o| o.process == d),
                "{d} missed over expander schedule"
            );
        }
    }

    #[test]
    fn per_round_complexity_is_bounded() {
        let n = 64;
        let spec = |i: u64| {
            RumorSpec::new(
                i,
                vec![1],
                48,
                vec![ProcessId::new(((i + 1) % n as u64) as usize)],
            )
        };
        let batch: Vec<_> = (0..n as u64)
            .map(|i| (ProcessId::new(i as usize), spec(i)))
            .collect();
        let mut adv = CrriAdversary::new(NoFailures, OneShot::new(Round(0), batch));
        let mut e = Engine::<GossipNode>::new(EngineConfig::new(n).seed(19));
        e.run(49, &mut adv);
        // With the cap, per-round traffic can never exceed n(n-1) and in a
        // benign run acks keep the fallback at zero.
        let max = e.metrics().max_per_round();
        assert!(max <= 2 * (n * n) as u64, "cap: pushes + acks bounded, got {max}");
        assert!(max > 0);
    }
}
