//! The per-collaborator fanout formula.
//!
//! The paper's services send, per collaborator per round,
//! `Θ(n^{1+c/ᵏ√dline} · log n / |collaborators|)` messages — `c = 6, k = 3`
//! for the continuous-gossip substrate, `c = 48, k = 2` for the Proxy and
//! GroupDistribution services. Dividing by the collaborator count is what
//! keeps the *collective* per-round complexity bounded (Lemma 7): however
//! many processes participate, together they send `O(n^{1+c/ᵏ√dline} log n)`.
//!
//! The constants are asymptotic: at laptop scale (`n ≤ 2¹⁰`) the paper's
//! `c = 48` makes `n^{c/√dline}` exceed `n` and the formula saturates at the
//! trivial cap of "message everyone". [`FanoutParams`] therefore exposes the
//! coefficient so experiments can both (a) run the protocol in the regime
//! where the decay with `dline` is visible and (b) sweep the coefficient to
//! exhibit the saturation crossover (experiment E9).


/// Parameters of the fanout formula
/// `α · n^{γ/ᵏ√dline} · ln n / collaborators`, clamped to
/// `[1, group_size − 1]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FanoutParams {
    /// Multiplicative constant `α` (the paper's hidden Θ-constant).
    pub alpha: f64,
    /// Exponent coefficient `γ` (paper: 6 for continuous gossip, 48 for
    /// Proxy/GroupDistribution).
    pub gamma: f64,
    /// Root degree `k` applied to `dline` (paper: 3 for continuous gossip —
    /// Theorem 11 also cites a 6th-root variant — and 2 for
    /// Proxy/GroupDistribution).
    pub root: u32,
}

impl FanoutParams {
    /// The substrate's parameters: `Θ(n^{6/∛dline} log n)` per collaborator.
    pub fn continuous_gossip() -> Self {
        FanoutParams {
            alpha: 1.0,
            gamma: 6.0,
            root: 3,
        }
    }

    /// The Proxy/GroupDistribution parameters: `Θ(n^{48/√dline} log n)`.
    pub fn proxy() -> Self {
        FanoutParams {
            alpha: 1.0,
            gamma: 48.0,
            root: 2,
        }
    }

    /// A laptop-scale variant with coefficient `gamma` (used by experiments
    /// so the decay-with-deadline shape is visible below the saturation
    /// cap).
    pub fn scaled(gamma: f64) -> Self {
        FanoutParams {
            alpha: 1.0,
            gamma,
            root: 3,
        }
    }

    /// Sets `α`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }
}

impl Default for FanoutParams {
    fn default() -> Self {
        Self::continuous_gossip()
    }
}

/// Computes the per-collaborator fanout for system size `n`, deadline class
/// `dline`, an estimate of the number of collaborators, and the size of the
/// group being addressed. Result is clamped to `[1, group_size − 1]` (a
/// process never needs more distinct targets than the rest of its group),
/// and is 0 when the group has no other member.
pub fn fanout(
    params: FanoutParams,
    n: usize,
    dline: u64,
    collaborators: usize,
    group_size: usize,
) -> usize {
    if group_size <= 1 {
        return 0;
    }
    let n_f = n.max(2) as f64;
    let dline_f = dline.max(1) as f64;
    let exponent = params.gamma / dline_f.powf(1.0 / params.root as f64);
    let raw = params.alpha * n_f.powf(exponent) * n_f.ln() / collaborators.max(1) as f64;
    (raw.ceil() as usize).clamp(1, group_size - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_decays_with_deadline() {
        let p = FanoutParams::scaled(6.0);
        let short = fanout(p, 1024, 16, 1, 1024);
        let long = fanout(p, 1024, 4096, 1, 1024);
        assert!(
            short > long,
            "short deadlines must cost more: {short} vs {long}"
        );
    }

    #[test]
    fn fanout_shares_work_among_collaborators() {
        let p = FanoutParams::scaled(2.0);
        let solo = fanout(p, 256, 256, 1, 256);
        let crowd = fanout(p, 256, 256, 64, 256);
        assert!(solo >= crowd * 8, "64 collaborators split the load");
    }

    #[test]
    fn fanout_saturates_at_group_size() {
        // The paper's γ=48 exceeds the cap at laptop scale.
        let p = FanoutParams::proxy();
        assert_eq!(fanout(p, 256, 64, 1, 128), 127);
    }

    #[test]
    fn fanout_floors_at_one_and_handles_tiny_groups() {
        let p = FanoutParams::scaled(0.0).alpha(1e-9);
        assert_eq!(fanout(p, 256, 64, 1000, 16), 1);
        assert_eq!(fanout(p, 256, 64, 1, 1), 0);
        assert_eq!(fanout(p, 256, 64, 1, 0), 0);
    }

    #[test]
    fn presets_match_paper_constants() {
        let cg = FanoutParams::continuous_gossip();
        assert_eq!((cg.gamma, cg.root), (6.0, 3));
        let px = FanoutParams::proxy();
        assert_eq!((px.gamma, px.root), (48.0, 2));
    }
}
