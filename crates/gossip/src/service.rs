//! The embeddable continuous-gossip service.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

use congos_sim::{IdSet, ProcessId, Round, Tag};

use crate::expander::{expander_targets, GossipStrategy};
use crate::fanout::{fanout, FanoutParams};
use crate::rumor::{GossipRumor, RumorId};

/// Wire messages of one gossip instance.
///
/// The push batch is `Arc`-shared: one round's batch is identical across
/// all of a process's push targets, so the envelope clone is a refcount
/// bump rather than a deep copy (at `n` processes × fanout targets × many
/// active rumors, deep copies dominate memory otherwise).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GossipWire<T> {
    /// Epidemic push of a batch of active rumors (one envelope, arbitrarily
    /// many rumors — the model allows unbounded message size and gossip
    /// protocols gain their efficiency from exactly this merging).
    Push(Arc<Vec<GossipRumor<T>>>),
    /// Acknowledgment of delivered rumors, sent to each rumor's origin.
    Ack(Vec<RumorId>),
}

/// Configuration of one gossip instance.
#[derive(Clone, Debug)]
pub struct GossipConfig {
    /// The instance's *filter*: only members may be addressed, and traffic
    /// from non-members is ignored. `IdSet::full(n)` yields the unfiltered
    /// `AllGossip` instance.
    pub membership: IdSet,
    /// Fanout formula parameters.
    pub fanout: FanoutParams,
    /// Target selection: randomized epidemic or the deterministic
    /// expander schedule (the de-randomized [13] mode).
    pub strategy: GossipStrategy,
    /// Tag under which this instance's traffic is metered.
    pub tag: Tag,
}

impl GossipConfig {
    /// An unfiltered instance over all `n` processes (the paper's
    /// `AllGossip`).
    pub fn all(n: usize, tag: Tag) -> Self {
        GossipConfig {
            membership: IdSet::full(n),
            fanout: FanoutParams::continuous_gossip(),
            strategy: GossipStrategy::Random,
            tag,
        }
    }

    /// A filtered instance restricted to `membership` (the paper's
    /// `GroupGossip[ℓ]` behind `Filter[ℓ]`).
    pub fn group(membership: IdSet, tag: Tag) -> Self {
        GossipConfig {
            membership,
            fanout: FanoutParams::continuous_gossip(),
            strategy: GossipStrategy::Random,
            tag,
        }
    }

    /// Overrides the fanout parameters.
    pub fn fanout(mut self, params: FanoutParams) -> Self {
        self.fanout = params;
        self
    }

    /// Selects the target-selection strategy.
    pub fn strategy(mut self, strategy: GossipStrategy) -> Self {
        self.strategy = strategy;
        self
    }
}

struct OwnRumor<T> {
    rumor: GossipRumor<T>,
    unacked: IdSet,
}

/// One process's endpoint of a continuous-gossip instance.
///
/// Embed one per partition side (plus `AllGossip`); call
/// [`inject`](ContinuousGossip::inject) to gossip a rumor,
/// [`step`](ContinuousGossip::step) once per round in the host's send phase,
/// [`on_receive`](ContinuousGossip::on_receive) for every incoming wire
/// message, and [`take_delivered`](ContinuousGossip::take_delivered) in the
/// compute phase.
pub struct ContinuousGossip<T> {
    me: ProcessId,
    n: usize,
    cfg: GossipConfig,
    last_inject_round: Round,
    next_seq: u32,
    /// Rumors this process actively forwards.
    active: BTreeMap<RumorId, GossipRumor<T>>,
    /// Dedup set with the round after which each entry may be dropped.
    seen: HashMap<RumorId, Round>,
    /// Rumors this process injected and still tracks for acknowledgment.
    own: BTreeMap<RumorId, OwnRumor<T>>,
    /// Acks queued for the next send phase, grouped by destination.
    pending_acks: BTreeMap<ProcessId, Vec<RumorId>>,
    /// Rumors delivered to this process, awaiting pickup by the host.
    delivered: Vec<GossipRumor<T>>,
    /// Collaborators heard from in the previous round (plus self).
    collab_est: usize,
    collab_this_round: IdSet,
    /// Count of fallback direct-sends performed (observable for Lemma 10
    /// style "fallback is rare" experiments).
    fallbacks: u64,
}

impl<T: Clone> ContinuousGossip<T> {
    /// Creates the endpoint for process `me` in a system of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `me` is not a member of the instance (a filtered instance
    /// only runs on its members).
    pub fn new(me: ProcessId, n: usize, cfg: GossipConfig) -> Self {
        assert!(
            cfg.membership.contains(me),
            "{me} is not a member of this gossip instance"
        );
        ContinuousGossip {
            me,
            n,
            cfg,
            last_inject_round: Round::ZERO,
            next_seq: 0,
            active: BTreeMap::new(),
            seen: HashMap::new(),
            own: BTreeMap::new(),
            pending_acks: BTreeMap::new(),
            delivered: Vec::new(),
            collab_est: 1,
            collab_this_round: IdSet::empty(n),
            fallbacks: 0,
        }
    }

    /// The instance's membership (its filter).
    pub fn membership(&self) -> &IdSet {
        &self.cfg.membership
    }

    /// Number of deadline-fallback direct sends performed so far.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// Injects a rumor at round `now` with deadline duration `duration` and
    /// destination set `dest`. Destinations outside the membership are
    /// unreachable through this instance (the filter drops such traffic) and
    /// are not tracked for acknowledgment.
    ///
    /// If the injector itself is in `dest`, the rumor is delivered locally
    /// immediately.
    pub fn inject(&mut self, now: Round, payload: T, duration: u64, dest: IdSet) -> RumorId {
        self.inject_opts(now, payload, duration, dest, false)
    }

    /// Injects a best-effort rumor: epidemic forwarding and delivery as
    /// usual, but no acknowledgment tracking and no deadline fallback —
    /// see [`GossipRumor::best_effort`].
    pub fn inject_best_effort(
        &mut self,
        now: Round,
        payload: T,
        duration: u64,
        dest: IdSet,
    ) -> RumorId {
        self.inject_opts(now, payload, duration, dest, true)
    }

    fn inject_opts(
        &mut self,
        now: Round,
        payload: T,
        duration: u64,
        dest: IdSet,
        best_effort: bool,
    ) -> RumorId {
        if now != self.last_inject_round {
            self.last_inject_round = now;
            self.next_seq = 0;
        }
        let id = RumorId {
            origin: self.me,
            birth: now,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        let rumor = GossipRumor {
            id,
            payload,
            duration,
            deadline: now + duration,
            dest: Arc::new(dest),
            best_effort,
        };
        self.seen.insert(id, rumor.deadline);
        if rumor.dest.contains(self.me) {
            self.delivered.push(rumor.clone());
        }
        if !best_effort {
            let mut unacked = IdSet::clone(&rumor.dest);
            unacked.intersect_with(&self.cfg.membership);
            unacked.remove(self.me);
            self.own.insert(
                id,
                OwnRumor {
                    rumor: rumor.clone(),
                    unacked,
                },
            );
        }
        self.active.insert(id, rumor);
        id
    }

    /// Send phase: returns this round's outgoing wire messages. Every
    /// destination is a member of the instance — the filter by construction.
    pub fn step(&mut self, now: Round, rng: &mut SmallRng) -> Vec<(ProcessId, GossipWire<T>)> {
        let mut out: Vec<(ProcessId, GossipWire<T>)> = Vec::new();

        // Drop expired rumors from the forwarding set.
        self.active.retain(|_, r| r.active_at(now));
        // Prune the dedup map once it outgrows a small bound. The retain
        // predicate is the receive horizon (a rumor can arrive no later
        // than its deadline-fallback round `dl + 1`, processed at
        // `now = dl + 1 < dl + 2`), so pruning earlier or more often is
        // behavior-neutral — it only caps the map near the live window
        // instead of letting every instance hold thousands of dead ids.
        if self.seen.len() > 256 {
            self.seen.retain(|_, dl| *dl + 2 >= now);
        }

        // Acks queued from last round's deliveries.
        for (dst, ids) in std::mem::take(&mut self.pending_acks) {
            out.push((dst, GossipWire::Ack(ids)));
        }

        // Deadline fallback: for own rumors whose deadline is this round,
        // send directly to every unacknowledged destination. This is what
        // makes Quality of Delivery hold with probability 1.
        let expiring: Vec<RumorId> = self
            .own
            .iter()
            .filter(|(_, o)| o.rumor.deadline == now)
            .map(|(id, _)| *id)
            .collect();
        for id in expiring {
            let o = self.own.remove(&id).expect("present");
            let single = Arc::new(vec![o.rumor.clone()]);
            for dst in o.unacked.iter() {
                self.fallbacks += 1;
                out.push((dst, GossipWire::Push(Arc::clone(&single))));
            }
        }
        self.own.retain(|_, o| o.rumor.deadline > now);

        // Epidemic push of all active rumors, to random members or along
        // the deterministic expander schedule.
        if !self.active.is_empty() {
            let dmin = self
                .active
                .values()
                .map(|r| r.duration)
                .min()
                .unwrap_or(1)
                .max(1);
            let k = fanout(
                self.cfg.fanout,
                self.n,
                dmin,
                self.collab_est,
                self.cfg.membership.len(),
            );
            let targets: Vec<ProcessId> = match self.cfg.strategy {
                GossipStrategy::Random => {
                    let members: Vec<ProcessId> = self
                        .cfg
                        .membership
                        .iter()
                        .filter(|p| *p != self.me)
                        .collect();
                    let k = k.min(members.len());
                    members.choose_multiple(rng, k).copied().collect()
                }
                GossipStrategy::Expander => {
                    expander_targets(&self.cfg.membership, self.me, now, k)
                }
            };
            let batch = Arc::new(self.active.values().cloned().collect::<Vec<_>>());
            for dst in targets {
                out.push((dst, GossipWire::Push(Arc::clone(&batch))));
            }
        }

        // Roll the collaborator estimate: peers heard from last round + us,
        // smoothed with slow exponential decay. A raw per-round estimate
        // oscillates (a low-fanout round means few peers are heard, which
        // collapses the estimate and re-saturates the fanout next round);
        // decaying halvings keep it near the true collaborator count while
        // still shrinking quickly when collaborators actually crash.
        let heard = self.collab_this_round.len() + 1;
        self.collab_est = heard.max(self.collab_est.div_ceil(2));
        self.collab_this_round = IdSet::empty(self.n);

        debug_assert!(
            out.iter().all(|(dst, _)| self.cfg.membership.contains(*dst)),
            "filter violation: gossip instance addressed a non-member"
        );
        out
    }

    /// Handles an incoming wire message. Traffic from outside the membership
    /// is ignored (filtered).
    pub fn on_receive(&mut self, now: Round, src: ProcessId, wire: GossipWire<T>) {
        if !self.cfg.membership.contains(src) {
            return;
        }
        self.collab_this_round.insert(src);
        match wire {
            GossipWire::Push(rumors) => {
                for rumor in rumors.iter() {
                    if self.seen.contains_key(&rumor.id) {
                        continue;
                    }
                    self.seen.insert(rumor.id, rumor.deadline);
                    if rumor.dest.contains(self.me) {
                        self.delivered.push(rumor.clone());
                        if rumor.id.origin != self.me && !rumor.best_effort {
                            self.pending_acks
                                .entry(rumor.id.origin)
                                .or_default()
                                .push(rumor.id);
                        }
                    }
                    if rumor.active_at(now) {
                        self.active.insert(rumor.id, rumor.clone());
                    }
                }
            }
            GossipWire::Ack(ids) => {
                for id in ids {
                    if let Some(o) = self.own.get_mut(&id) {
                        o.unacked.remove(src);
                    }
                }
            }
        }
    }

    /// Returns (and clears) the rumors delivered to this process.
    pub fn take_delivered(&mut self) -> Vec<GossipRumor<T>> {
        std::mem::take(&mut self.delivered)
    }

    /// The tag under which this instance's messages should be sent.
    pub fn tag(&self) -> Tag {
        self.cfg.tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn mk(me: usize, n: usize) -> ContinuousGossip<u32> {
        ContinuousGossip::new(
            ProcessId::new(me),
            n,
            GossipConfig::all(n, Tag("gg")),
        )
    }

    #[test]
    fn inject_delivers_locally_when_self_is_destination() {
        let mut g = mk(0, 4);
        let dest = IdSet::from_iter(4, [ProcessId::new(0), ProcessId::new(2)]);
        g.inject(Round(0), 7, 16, dest);
        let d = g.take_delivered();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].payload, 7);
        assert!(g.take_delivered().is_empty(), "pickup clears the queue");
    }

    #[test]
    fn push_delivers_and_queues_ack() {
        let mut a = mk(0, 4);
        let mut b = mk(1, 4);
        let dest = IdSet::from_iter(4, [ProcessId::new(1)]);
        a.inject(Round(0), 9, 16, dest);
        let mut rng = SmallRng::seed_from_u64(1);
        let out = a.step(Round(0), &mut rng);
        assert!(!out.is_empty());
        // Deliver every push addressed to p1.
        for (dst, wire) in out {
            if dst == ProcessId::new(1) {
                b.on_receive(Round(0), ProcessId::new(0), wire);
            }
        }
        let d = b.take_delivered();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].payload, 9);
        // Next round, b acks to the origin.
        let acks = b.step(Round(1), &mut rng);
        assert!(acks
            .iter()
            .any(|(dst, w)| *dst == ProcessId::new(0) && matches!(w, GossipWire::Ack(_))));
    }

    #[test]
    fn duplicate_pushes_deliver_once() {
        let mut b = mk(1, 4);
        let rumor = GossipRumor {
            id: RumorId {
                origin: ProcessId::new(0),
                birth: Round(0),
                seq: 0,
            },
            payload: 5u32,
            duration: 16,
            deadline: Round(16),
            dest: Arc::new(IdSet::from_iter(4, [ProcessId::new(1)])),
            best_effort: false,
        };
        b.on_receive(Round(0), ProcessId::new(0), GossipWire::Push(Arc::new(vec![rumor.clone()])));
        b.on_receive(Round(0), ProcessId::new(2), GossipWire::Push(Arc::new(vec![rumor])));
        assert_eq!(b.take_delivered().len(), 1);
    }

    #[test]
    fn filter_ignores_non_members_in_and_out() {
        let members = IdSet::from_iter(4, [ProcessId::new(0), ProcessId::new(1)]);
        let mut g: ContinuousGossip<u32> = ContinuousGossip::new(
            ProcessId::new(0),
            4,
            GossipConfig::group(members, Tag("gg")),
        );
        // Inject a rumor destined (partly) outside the membership.
        let dest = IdSet::from_iter(4, [ProcessId::new(1), ProcessId::new(3)]);
        g.inject(Round(0), 1, 16, dest);
        let mut rng = SmallRng::seed_from_u64(2);
        for r in 0..20 {
            for (dst, _) in g.step(Round(r), &mut rng) {
                assert_ne!(dst, ProcessId::new(3), "filter must block non-members");
                assert_ne!(dst, ProcessId::new(2));
            }
        }
        // Traffic *from* a non-member is dropped.
        let rumor = GossipRumor {
            id: RumorId {
                origin: ProcessId::new(2),
                birth: Round(0),
                seq: 0,
            },
            payload: 9u32,
            duration: 16,
            deadline: Round(16),
            dest: Arc::new(IdSet::from_iter(4, [ProcessId::new(0)])),
            best_effort: false,
        };
        g.on_receive(Round(0), ProcessId::new(2), GossipWire::Push(Arc::new(vec![rumor])));
        assert!(g.take_delivered().is_empty());
    }

    #[test]
    fn fallback_fires_at_deadline_for_unacked_destinations() {
        let mut a = mk(0, 8);
        let dest = IdSet::from_iter(8, [ProcessId::new(5)]);
        a.inject(Round(0), 3, 4, dest);
        let mut rng = SmallRng::seed_from_u64(3);
        // Never deliver any ack; at round 4 (the deadline) a direct push to
        // p5 must appear.
        let mut saw_direct = false;
        for r in 0..=4u64 {
            let out = a.step(Round(r), &mut rng);
            if r == 4 {
                saw_direct = out.iter().any(|(dst, w)| {
                    *dst == ProcessId::new(5) && matches!(w, GossipWire::Push(b) if b.len() == 1)
                });
            }
        }
        assert!(saw_direct, "deadline fallback must fire");
        assert!(a.fallbacks() >= 1);
    }

    #[test]
    fn acks_suppress_fallback() {
        let mut a = mk(0, 8);
        let dest = IdSet::from_iter(8, [ProcessId::new(5)]);
        let id = a.inject(Round(0), 3, 4, dest);
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = a.step(Round(0), &mut rng);
        a.on_receive(Round(1), ProcessId::new(5), GossipWire::Ack(vec![id]));
        for r in 1..=4u64 {
            let _ = a.step(Round(r), &mut rng);
        }
        assert_eq!(a.fallbacks(), 0, "acked destinations are not re-sent");
    }

    #[test]
    fn expired_rumors_stop_being_forwarded() {
        let mut a = mk(0, 8);
        let dest = IdSet::from_iter(8, [ProcessId::new(5)]);
        a.inject(Round(0), 3, 4, dest);
        let mut rng = SmallRng::seed_from_u64(4);
        for r in 0..=4u64 {
            let _ = a.step(Round(r), &mut rng);
        }
        // Past the deadline nothing is active; no pushes go out.
        let out = a.step(Round(5), &mut rng);
        assert!(out.is_empty(), "no traffic after expiry, got {out:?}");
    }

    #[test]
    fn collaborator_estimate_tracks_peers() {
        let mut g = mk(0, 16);
        // Hear pushes from 3 peers this round.
        for s in 1..=3usize {
            let rumor = GossipRumor {
                id: RumorId {
                    origin: ProcessId::new(s),
                    birth: Round(0),
                    seq: 0,
                },
                payload: 0u32,
                duration: 64,
                deadline: Round(64),
                dest: Arc::new(IdSet::empty(16)),
                best_effort: false,
            };
            g.on_receive(Round(0), ProcessId::new(s), GossipWire::Push(Arc::new(vec![rumor])));
        }
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = g.step(Round(1), &mut rng);
        assert_eq!(g.collab_est, 4, "3 peers + self");
    }

    #[test]
    #[should_panic(expected = "not a member")]
    fn endpoint_requires_membership() {
        let members = IdSet::from_iter(4, [ProcessId::new(1)]);
        let _g: ContinuousGossip<u32> = ContinuousGossip::new(
            ProcessId::new(0),
            4,
            GossipConfig::group(members, Tag("gg")),
        );
    }
}
