//! Global round numbering and block arithmetic.
//!
//! CONGOS divides time into *blocks* of `dline/4` rounds, each block into
//! *iterations* of `⌊√dline⌋ + 2` rounds (Section 4.2 of the paper). Blocks
//! are aligned to the global clock (`t mod dline`), so all processes agree on
//! block boundaries even after a restart — the only state a restarted process
//! retains is the global round number.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A globally numbered synchronous round.
#[derive(
    Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub struct Round(pub u64);

impl Round {
    /// The first round of an execution.
    pub const ZERO: Round = Round(0);

    /// Returns the raw round number.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the next round.
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// Rounds elapsed since `earlier` (saturating).
    pub fn since(self, earlier: Round) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Debug for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl Add<u64> for Round {
    type Output = Round;
    fn add(self, rhs: u64) -> Round {
        Round(self.0 + rhs)
    }
}

impl AddAssign<u64> for Round {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Round> for Round {
    type Output = u64;
    fn sub(self, rhs: Round) -> u64 {
        self.0 - rhs.0
    }
}

/// Block/iteration arithmetic for one protocol instance with deadline class
/// `dline`.
///
/// * block length = `dline / 4` rounds;
/// * iteration length = `⌊√dline⌋ + 2` rounds;
/// * each block holds at least `√dline / 8` iterations when `dline > 4`
///   (Lemma 6), a property checked by `iterations_per_block` tests.
/// ```
/// use congos_sim::{BlockClock, Round};
///
/// let clock = BlockClock::new(64);
/// assert_eq!(clock.block_len(), 16);
/// assert!(clock.is_block_start(Round(32)));
/// assert_eq!(clock.iteration_of(Round(3)), Some(0));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockClock {
    dline: u64,
    block_len: u64,
    iter_len: u64,
}

impl BlockClock {
    /// Creates the clock for deadline class `dline`.
    ///
    /// # Panics
    ///
    /// Panics if `dline < 4` — such short deadlines bypass the block pipeline
    /// entirely (the protocol sends those rumors directly; Section 5 assumes
    /// `dline > 48`).
    pub fn new(dline: u64) -> Self {
        assert!(dline >= 4, "block clock requires dline >= 4, got {dline}");
        let block_len = dline / 4;
        let iter_len = dline.isqrt() + 2;
        BlockClock {
            dline,
            block_len,
            iter_len,
        }
    }

    /// The deadline class this clock manages.
    pub fn dline(self) -> u64 {
        self.dline
    }

    /// Rounds per block (`dline/4`).
    pub fn block_len(self) -> u64 {
        self.block_len
    }

    /// Rounds per iteration (`⌊√dline⌋ + 2`).
    pub fn iter_len(self) -> u64 {
        self.iter_len
    }

    /// Number of whole iterations that fit in a block.
    pub fn iterations_per_block(self) -> u64 {
        self.block_len / self.iter_len
    }

    /// Index of the block containing round `t` (blocks aligned to the global
    /// clock, i.e. block `b` spans rounds `[b·block_len, (b+1)·block_len)`).
    pub fn block_of(self, t: Round) -> u64 {
        t.0 / self.block_len
    }

    /// Offset of round `t` within its block, in `0..block_len`.
    pub fn offset_in_block(self, t: Round) -> u64 {
        t.0 % self.block_len
    }

    /// `true` iff round `t` is the first round of a block.
    pub fn is_block_start(self, t: Round) -> bool {
        self.offset_in_block(t) == 0
    }

    /// `true` iff round `t` is the last round of a block.
    pub fn is_block_end(self, t: Round) -> bool {
        self.offset_in_block(t) == self.block_len - 1
    }

    /// First round of block `b`.
    pub fn block_start(self, b: u64) -> Round {
        Round(b * self.block_len)
    }

    /// Index of the iteration within the block containing round `t`, or
    /// `None` if `t` falls in the slack after the last whole iteration.
    pub fn iteration_of(self, t: Round) -> Option<u64> {
        let off = self.offset_in_block(t);
        let it = off / self.iter_len;
        (it < self.iterations_per_block()).then_some(it)
    }

    /// Offset of round `t` within its iteration (`0` = the sending round),
    /// or `None` in the end-of-block slack.
    pub fn offset_in_iteration(self, t: Round) -> Option<u64> {
        self.iteration_of(t)?;
        Some(self.offset_in_block(t) % self.iter_len)
    }

    /// `true` iff `t` lies in the slack after the final whole iteration of
    /// its block (these rounds carry only block-finalization work).
    pub fn in_block_slack(self, t: Round) -> bool {
        self.iteration_of(t).is_none()
    }
}

/// Truncates a rumor deadline exactly as Section 4.2 prescribes:
/// cap at `cap_rounds` (the paper's `c·log⁶ n`), then round down to a power
/// of two. Returns the deadline class.
pub fn trim_deadline(d: u64, cap_rounds: u64) -> u64 {
    let d = d.min(cap_rounds).max(1);
    // Largest power of two ≤ d.
    1u64 << (63 - d.leading_zeros() as u64)
}

/// The paper's deadline cap `c·log⁶ n` for a system of `n` processes.
///
/// `c` is configurable by callers; this helper computes `⌈c · (log₂ n)⁶⌉`,
/// with a floor of 64 so the block pipeline is meaningful at small `n`.
pub fn deadline_cap(n: usize, c: f64) -> u64 {
    let lg = (n.max(2) as f64).log2();
    (c * lg.powi(6)).ceil().max(64.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_arithmetic() {
        let r = Round(10);
        assert_eq!(r.next(), Round(11));
        assert_eq!(r + 5, Round(15));
        assert_eq!(Round(15) - r, 5);
        assert_eq!(r.since(Round(3)), 7);
        assert_eq!(Round(3).since(r), 0, "since is saturating");
    }

    #[test]
    fn block_lengths_match_paper() {
        let c = BlockClock::new(64);
        assert_eq!(c.block_len(), 16);
        assert_eq!(c.iter_len(), 8 + 2);
        assert_eq!(c.iterations_per_block(), 1);

        let c = BlockClock::new(1024);
        assert_eq!(c.block_len(), 256);
        assert_eq!(c.iter_len(), 32 + 2);
        assert_eq!(c.iterations_per_block(), 7);
    }

    #[test]
    fn lemma6_iterations_per_block_lower_bound() {
        // Lemma 6: at least √dline/8 iterations per block, for dline > 4.
        // (The paper's proof uses iter_len ≤ 2√dline, which needs √dline ≥ 2.)
        for dline in [16u64, 48, 64, 100, 256, 333, 1024, 4096, 1 << 20] {
            let c = BlockClock::new(dline);
            let bound = (dline.isqrt()) / 8;
            assert!(
                c.iterations_per_block() >= bound,
                "dline={dline}: {} iterations < bound {bound}",
                c.iterations_per_block()
            );
        }
    }

    #[test]
    fn block_and_iteration_indexing() {
        let c = BlockClock::new(64); // block 16, iter 10
        assert_eq!(c.block_of(Round(0)), 0);
        assert_eq!(c.block_of(Round(15)), 0);
        assert_eq!(c.block_of(Round(16)), 1);
        assert!(c.is_block_start(Round(16)));
        assert!(c.is_block_end(Round(15)));
        assert_eq!(c.block_start(2), Round(32));

        assert_eq!(c.iteration_of(Round(0)), Some(0));
        assert_eq!(c.offset_in_iteration(Round(3)), Some(3));
        // Rounds 10..16 fall in the slack (only one 10-round iteration fits).
        assert_eq!(c.iteration_of(Round(10)), None);
        assert!(c.in_block_slack(Round(12)));
        assert!(!c.in_block_slack(Round(9)));
    }

    #[test]
    fn blocks_are_globally_aligned() {
        let c = BlockClock::new(256); // block 64
        // Same offsets regardless of absolute time — restart-safe.
        assert_eq!(c.offset_in_block(Round(1000)), 1000 % 64);
        assert_eq!(c.block_of(Round(1000)), 1000 / 64);
    }

    #[test]
    fn trim_deadline_caps_then_rounds_down() {
        assert_eq!(trim_deadline(100, 1 << 20), 64);
        assert_eq!(trim_deadline(64, 1 << 20), 64);
        assert_eq!(trim_deadline(63, 1 << 20), 32);
        assert_eq!(trim_deadline(1 << 30, 4096), 4096);
        assert_eq!(trim_deadline(5000, 4096), 4096);
        assert_eq!(trim_deadline(0, 4096), 1);
    }

    #[test]
    fn deadline_cap_grows_polylog() {
        let c16 = deadline_cap(16, 1.0);
        let c256 = deadline_cap(256, 1.0);
        assert!(c256 > c16);
        assert_eq!(deadline_cap(2, 1.0), 64, "floor applies at tiny n");
    }

    #[test]
    #[should_panic(expected = "dline >= 4")]
    fn block_clock_rejects_tiny_deadlines() {
        let _ = BlockClock::new(3);
    }
}
