//! Pluggable communication topologies for the round engine.
//!
//! The paper assumes a reliable, fully connected network; production gossip
//! rarely gets one. This module factors "who can deliver to whom in round
//! `r`" out of the engine's delivery phase into a [`Topology`] value built
//! from a compact, copyable [`TopologySpec`]:
//!
//! * [`TopologySpec::Complete`] — every pair connected every round (the
//!   paper's model, and the default). The engine's delivery phase is
//!   bit-identical to the pre-topology engine under this spec.
//! * [`TopologySpec::Expander`] — a static random `d`-regular simple
//!   connected graph, constructed deterministically from the master seed
//!   (a randomly relabeled circulant randomized by degree-preserving
//!   double-edge swaps; construction succeeds for every valid `(n, d)`).
//! * [`TopologySpec::Churn`] — per-round seeded edge perturbation over a
//!   base topology: each unordered pair independently *flips* its base
//!   state in round `r` with probability `p` (dropping base edges and
//!   adding non-edges), à la the *dynamic gossip* literature.
//!
//! # Determinism contract
//!
//! A topology is a pure function of `(spec, n, seed)`; edge queries are pure
//! functions of `(topology, round, pair)`. No engine RNG stream is consumed
//! — per-process protocol RNG streams are untouched, so enabling a topology
//! cannot reorder any random choice, and the sequential and parallel
//! backends remain bit-identical under every topology (delivery filtering
//! happens in the engine's sequential delivery phase, shared by both
//! backends).
//!
//! Messages a process sends to itself are always delivered: self-delivery
//! is local computation, not network traffic.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::clock::Round;
use crate::idset::IdSet;
use crate::process::ProcessId;

/// A compact, copyable description of a topology — the form that travels
/// through configs, CLI flags (`--topology complete|expander:d|churn:p`)
/// and environment variables.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TopologySpec {
    /// Every pair of processes is connected in every round (the paper's
    /// reliable complete network; the default).
    #[default]
    Complete,
    /// A static random `degree`-regular simple connected graph, seeded from
    /// the engine's master seed.
    Expander {
        /// Vertex degree. Valid when `2 <= degree < n` and `n·degree` is
        /// even (`degree == 1` is allowed only for `n == 2`).
        degree: usize,
    },
    /// Per-round seeded edge churn over a base topology: each unordered
    /// pair flips its base connectivity in a given round with probability
    /// `flip_ppm / 1_000_000`, independently per round.
    Churn {
        /// Degree of the expander base, or `None` for a complete base.
        base_degree: Option<usize>,
        /// Flip probability in parts per million (so the spec stays `Eq` +
        /// `Hash` and hashing is exact).
        flip_ppm: u32,
    },
}

impl TopologySpec {
    /// Churn over a complete base with flip probability `p` (clamped to
    /// `[0, 1]`).
    pub fn churn(p: f64) -> Self {
        TopologySpec::Churn {
            base_degree: None,
            flip_ppm: ppm_of(p),
        }
    }

    /// The churn flip probability, if this is a churn spec.
    pub fn flip_probability(&self) -> Option<f64> {
        match self {
            TopologySpec::Churn { flip_ppm, .. } => Some(*flip_ppm as f64 / 1e6),
            _ => None,
        }
    }

    /// `true` for the complete topology (the engine's zero-overhead path).
    pub fn is_complete(&self) -> bool {
        matches!(self, TopologySpec::Complete)
    }

    /// Checks that this spec can be instantiated over `n` processes.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        let check_degree = |d: usize| -> Result<(), String> {
            if n == 2 && d == 1 {
                return Ok(());
            }
            if d < 2 {
                return Err(format!(
                    "expander degree {d} cannot form a connected graph over n={n}"
                ));
            }
            if d >= n {
                return Err(format!("expander degree {d} needs at least {} processes", d + 1));
            }
            if n * d % 2 != 0 {
                return Err(format!("no {d}-regular graph on {n} vertices (n·d is odd)"));
            }
            Ok(())
        };
        match self {
            TopologySpec::Complete => Ok(()),
            TopologySpec::Expander { degree } => check_degree(*degree),
            TopologySpec::Churn { base_degree, flip_ppm } => {
                if *flip_ppm > 1_000_000 {
                    return Err(format!("churn probability {flip_ppm}ppm exceeds 1.0"));
                }
                match base_degree {
                    Some(d) => check_degree(*d),
                    None => Ok(()),
                }
            }
        }
    }
}

fn ppm_of(p: f64) -> u32 {
    (p.clamp(0.0, 1.0) * 1e6).round() as u32
}

fn fmt_ppm(ppm: u32) -> String {
    let p = ppm as f64 / 1e6;
    // Shortest representation that round-trips through ppm.
    let s = format!("{p}");
    if ppm_of(s.parse().unwrap_or(0.0)) == ppm {
        s
    } else {
        format!("{p:.6}")
    }
}

impl std::fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologySpec::Complete => write!(f, "complete"),
            TopologySpec::Expander { degree } => write!(f, "expander:{degree}"),
            TopologySpec::Churn { base_degree: None, flip_ppm } => {
                write!(f, "churn:{}", fmt_ppm(*flip_ppm))
            }
            TopologySpec::Churn { base_degree: Some(d), flip_ppm } => {
                write!(f, "churn:{}@expander:{d}", fmt_ppm(*flip_ppm))
            }
        }
    }
}

impl std::str::FromStr for TopologySpec {
    type Err = String;

    /// Parses `complete`, `expander:<d>`, `churn:<p>` (churn over a
    /// complete base) or `churn:<p>@expander:<d>` / `churn:<p>@complete`.
    fn from_str(s: &str) -> Result<Self, String> {
        match s.split_once(':') {
            None => match s {
                "complete" | "full" => Ok(TopologySpec::Complete),
                _ => Err(format!(
                    "unknown topology {s:?} (expected complete, expander:<d> or churn:<p>)"
                )),
            },
            Some(("expander", d)) => {
                let degree = d
                    .parse::<usize>()
                    .ok()
                    .filter(|&d| d >= 1)
                    .ok_or_else(|| format!("bad expander degree in {s:?}"))?;
                Ok(TopologySpec::Expander { degree })
            }
            Some(("churn", rest)) => {
                let (p, base) = match rest.split_once('@') {
                    None => (rest, None),
                    Some((p, base)) => (p, Some(base)),
                };
                let p: f64 = p
                    .parse()
                    .ok()
                    .filter(|p| (0.0..=1.0).contains(p))
                    .ok_or_else(|| format!("bad churn probability in {s:?} (need 0..=1)"))?;
                let base_degree = match base {
                    None | Some("complete") => None,
                    Some(b) => match b.strip_prefix("expander:") {
                        Some(d) => Some(
                            d.parse::<usize>()
                                .ok()
                                .filter(|&d| d >= 1)
                                .ok_or_else(|| format!("bad churn base degree in {s:?}"))?,
                        ),
                        None => return Err(format!("bad churn base in {s:?}")),
                    },
                };
                Ok(TopologySpec::Churn {
                    base_degree,
                    flip_ppm: ppm_of(p),
                })
            }
            Some(_) => Err(format!(
                "unknown topology {s:?} (expected complete, expander:<d> or churn:<p>)"
            )),
        }
    }
}

/// The static part of a built topology.
#[derive(Clone, Debug)]
enum BaseGraph {
    /// Complete graph — no adjacency storage needed.
    Complete,
    /// Static adjacency bitsets, `adj[p] = neighbors of p`.
    Static(Vec<IdSet>),
}

impl BaseGraph {
    fn connected(&self, a: usize, b: usize) -> bool {
        match self {
            BaseGraph::Complete => true,
            BaseGraph::Static(adj) => adj[a].contains(ProcessId::new(b)),
        }
    }
}

/// A topology instantiated over `n` processes with a master seed: answers
/// "can a message from `src` reach `dst` in round `r`?" in O(1), without
/// consuming any engine RNG stream (see the module docs for the
/// determinism contract).
#[derive(Clone, Debug)]
pub struct Topology {
    spec: TopologySpec,
    n: usize,
    /// Seed for the per-round churn hash (unused for static topologies).
    churn_seed: u64,
    /// Flip probability as a 64-bit threshold: pair flips iff
    /// `hash < flip_threshold`. 0 for static topologies.
    flip_threshold: u64,
    base: BaseGraph,
}

impl Topology {
    /// Builds the topology described by `spec` over `n` processes, keyed by
    /// `seed` (the engine's master seed; the derivation is collision-free
    /// with the per-process protocol RNG streams).
    ///
    /// # Panics
    ///
    /// Panics if `spec.validate(n)` fails.
    pub fn build(spec: TopologySpec, n: usize, seed: u64) -> Self {
        if let Err(e) = spec.validate(n) {
            panic!("invalid topology {spec} for n={n}: {e}");
        }
        let graph_seed = crate::rng::named_seed(seed, "topology.graph");
        let churn_seed = crate::rng::named_seed(seed, "topology.churn");
        let (base, flip_threshold) = match spec {
            TopologySpec::Complete => (BaseGraph::Complete, 0),
            TopologySpec::Expander { degree } => {
                (BaseGraph::Static(build_regular(n, degree, graph_seed)), 0)
            }
            TopologySpec::Churn { base_degree, flip_ppm } => {
                let base = match base_degree {
                    None => BaseGraph::Complete,
                    Some(d) => BaseGraph::Static(build_regular(n, d, graph_seed)),
                };
                // ppm → probability threshold over the full u64 range.
                let threshold = ((flip_ppm as u128 * (u128::from(u64::MAX) + 1)) / 1_000_000)
                    .min(u128::from(u64::MAX) + 1);
                (base, threshold.try_into().unwrap_or(u64::MAX))
            }
        };
        Topology {
            spec,
            n,
            churn_seed,
            flip_threshold,
            base,
        }
    }

    /// The spec this topology was built from.
    pub fn spec(&self) -> TopologySpec {
        self.spec
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `true` for the complete topology — the engine skips per-envelope
    /// checks entirely on this path.
    pub fn is_complete(&self) -> bool {
        self.spec.is_complete()
    }

    /// Whether a message from `a` can be delivered to `b` in round `round`.
    /// Symmetric in `a`/`b`; self-pairs are always connected.
    pub fn connected(&self, round: Round, a: ProcessId, b: ProcessId) -> bool {
        let (i, j) = (a.as_usize(), b.as_usize());
        debug_assert!(i < self.n && j < self.n, "pair outside universe");
        if i == j {
            return true;
        }
        let base = self.base.connected(i, j);
        if self.flip_threshold == 0 {
            return base;
        }
        base ^ self.pair_flips(round, i.min(j), i.max(j))
    }

    /// The neighbors of `p` in round `round` (excluding `p` itself).
    pub fn neighbors(&self, round: Round, p: ProcessId) -> IdSet {
        let mut out = IdSet::empty(self.n);
        for q in ProcessId::all(self.n) {
            if q != p && self.connected(round, p, q) {
                out.insert(q);
            }
        }
        out
    }

    /// Whether a rumor starting at `src` can topologically reach `dst` by
    /// flooding over rounds `start..=end` (one hop per round, ignoring
    /// crashes) — the reachability bound that gates Quality-of-Delivery
    /// admissibility on sparse or churning topologies.
    pub fn reachable_within(&self, src: ProcessId, dst: ProcessId, start: Round, end: Round) -> bool {
        if src == dst || self.is_complete() {
            return src == dst || start <= end;
        }
        let mut informed = IdSet::empty(self.n);
        informed.insert(src);
        let mut r = start;
        while r <= end {
            let mut next = informed.clone();
            for p in informed.iter() {
                for q in ProcessId::all(self.n) {
                    if !next.contains(q) && self.connected(r, p, q) {
                        next.insert(q);
                    }
                }
            }
            if next.contains(dst) {
                return true;
            }
            if next == informed {
                // Static topology fixpoint: no new process can ever be
                // reached (churn topologies keep resampling, so only bail
                // out early when the graph cannot change).
                if self.flip_threshold == 0 {
                    return false;
                }
            }
            informed = next;
            r = r.next();
        }
        false
    }

    /// The undirected edge set of round `round`, as `(i, j)` pairs with
    /// `i < j` — for tests and graph diagnostics.
    pub fn edges(&self, round: Round) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for j in i + 1..self.n {
                if self.connected(round, ProcessId::new(i), ProcessId::new(j)) {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Seeded, symmetric per-(round, pair) coin: `true` with probability
    /// `flip_threshold / 2^64`.
    fn pair_flips(&self, round: Round, lo: usize, hi: usize) -> bool {
        debug_assert!(lo < hi);
        let h = mix(
            mix(mix(self.churn_seed, round.as_u64()), lo as u64),
            hi as u64,
        );
        h < self.flip_threshold
    }
}

/// SplitMix64-style finalizer (same family as `crate::rng`), used for the
/// per-round churn coins so edge queries stay O(1) and allocation-free.
fn mix(state: u64, input: u64) -> u64 {
    let mut z = state
        .wrapping_add(input)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Builds a random simple connected `d`-regular graph on `n` vertices as
/// adjacency bitsets, deterministically from `seed`.
///
/// Construction: a randomly relabeled circulant graph `C_n(1..=d/2)` (plus
/// the antipodal perfect matching when `d` is odd — `n` is even then) is
/// simple, exactly `d`-regular and connected for every valid `(n, d)`;
/// seeded degree-preserving double-edge swaps then randomize its structure.
/// Swaps preserve regularity and simplicity unconditionally, so only
/// connectivity needs rechecking: a disconnected result re-randomizes from
/// the base, and after bounded retries the relabeled circulant itself —
/// connected by construction — is returned. No `(n, d, seed)` corner can
/// fail.
fn build_regular(n: usize, d: usize, seed: u64) -> Vec<IdSet> {
    let mut rng = SmallRng::seed_from_u64(seed);

    // Relabeled circulant base. Validation gives d < n, hence every offset
    // k in 1..=d/2 satisfies 2k < n: each layer contributes n distinct
    // edges and exactly 2 to every degree, and offset 1 (present whenever
    // d >= 2) makes the base connected. n == 2, d == 1 has no layers and
    // falls through to the antipodal matching, i.e. the single K2 edge.
    let mut label: Vec<usize> = (0..n).collect();
    label.shuffle(&mut rng);
    let mut base_adj: Vec<IdSet> = (0..n).map(|_| IdSet::empty(n)).collect();
    let mut base_edges: Vec<(usize, usize)> = Vec::with_capacity(n * d / 2);
    let mut add_edge = |a: usize, b: usize| {
        base_adj[a].insert(ProcessId::new(b));
        base_adj[b].insert(ProcessId::new(a));
        base_edges.push((a, b));
    };
    for k in 1..=d / 2 {
        for i in 0..n {
            add_edge(label[i], label[(i + k) % n]);
        }
    }
    if d % 2 == 1 {
        for i in 0..n / 2 {
            add_edge(label[i], label[i + n / 2]);
        }
    }
    debug_assert!(base_adj.iter().all(|s| s.len() == d), "base must be d-regular");

    let m = base_edges.len();
    for _restart in 0..8 {
        let mut adj = base_adj.clone();
        let mut edges = base_edges.clone();
        if m >= 2 {
            for _ in 0..4 * n * d {
                let e1 = rng.gen_range(0..m);
                let e2 = rng.gen_range(0..m);
                if e1 == e2 {
                    continue;
                }
                let (a, b) = edges[e1];
                let (mut c, mut dd) = edges[e2];
                if rng.gen_bool(0.5) {
                    std::mem::swap(&mut c, &mut dd);
                }
                // (a,b) + (c,dd) → (a,c) + (b,dd), rejected unless it keeps
                // the graph simple.
                if a == c || a == dd || b == c || b == dd {
                    continue;
                }
                if adj[a].contains(ProcessId::new(c)) || adj[b].contains(ProcessId::new(dd)) {
                    continue;
                }
                adj[a].remove(ProcessId::new(b));
                adj[b].remove(ProcessId::new(a));
                adj[c].remove(ProcessId::new(dd));
                adj[dd].remove(ProcessId::new(c));
                adj[a].insert(ProcessId::new(c));
                adj[c].insert(ProcessId::new(a));
                adj[b].insert(ProcessId::new(dd));
                adj[dd].insert(ProcessId::new(b));
                edges[e1] = (a, c);
                edges[e2] = (b, dd);
            }
        }
        if is_connected(&adj) {
            return adj;
        }
    }
    base_adj
}

/// Depth-first connectivity over adjacency bitsets.
fn is_connected(adj: &[IdSet]) -> bool {
    let n = adj.len();
    let mut seen = IdSet::empty(n);
    seen.insert(ProcessId::new(0));
    let mut stack = vec![0usize];
    while let Some(v) = stack.pop() {
        for w in adj[v].iter() {
            if seen.insert(w) {
                stack.push(w.as_usize());
            }
        }
    }
    seen.len() == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn spec_parses_and_displays() {
        assert_eq!(
            TopologySpec::from_str("complete").unwrap(),
            TopologySpec::Complete
        );
        assert_eq!(
            TopologySpec::from_str("expander:8").unwrap(),
            TopologySpec::Expander { degree: 8 }
        );
        assert_eq!(
            TopologySpec::from_str("churn:0.05").unwrap(),
            TopologySpec::Churn {
                base_degree: None,
                flip_ppm: 50_000
            }
        );
        assert_eq!(
            TopologySpec::from_str("churn:0.1@expander:6").unwrap(),
            TopologySpec::Churn {
                base_degree: Some(6),
                flip_ppm: 100_000
            }
        );
        assert_eq!(
            TopologySpec::from_str("churn:0.2@complete").unwrap(),
            TopologySpec::churn(0.2)
        );
        for s in ["complete", "expander:8", "churn:0.05", "churn:0.1@expander:6"] {
            let spec = TopologySpec::from_str(s).unwrap();
            assert_eq!(spec.to_string(), s, "display must round-trip");
            assert_eq!(
                TopologySpec::from_str(&spec.to_string()).unwrap(),
                spec,
                "parse(display) must round-trip"
            );
        }
        assert!(TopologySpec::from_str("expander:0").is_err());
        assert!(TopologySpec::from_str("churn:1.5").is_err());
        assert!(TopologySpec::from_str("churn:x").is_err());
        assert!(TopologySpec::from_str("ring").is_err());
        assert_eq!(TopologySpec::default(), TopologySpec::Complete);
    }

    #[test]
    fn validation_rejects_impossible_graphs() {
        assert!(TopologySpec::Complete.validate(1).is_ok());
        assert!(TopologySpec::Expander { degree: 3 }.validate(8).is_ok());
        assert!(TopologySpec::Expander { degree: 3 }.validate(7).is_err()); // n·d odd
        assert!(TopologySpec::Expander { degree: 8 }.validate(8).is_err()); // d >= n
        assert!(TopologySpec::Expander { degree: 1 }.validate(8).is_err()); // disconnected
        assert!(TopologySpec::Expander { degree: 1 }.validate(2).is_ok()); // K2
        assert!(TopologySpec::churn(0.5).validate(8).is_ok());
        assert!(TopologySpec::Churn {
            base_degree: Some(4),
            flip_ppm: 10_000
        }
        .validate(10)
        .is_ok());
    }

    #[test]
    fn complete_connects_everyone() {
        let t = Topology::build(TopologySpec::Complete, 8, 7);
        assert!(t.is_complete());
        for r in [0u64, 5, 100] {
            for i in 0..8 {
                for j in 0..8 {
                    assert!(t.connected(Round(r), p(i), p(j)));
                }
            }
        }
        assert!(t.reachable_within(p(0), p(7), Round(3), Round(3)));
    }

    #[test]
    fn expander_is_d_regular_static_and_symmetric() {
        for (n, d) in [(8, 3), (9, 4), (16, 4), (24, 5), (32, 6)] {
            let t = Topology::build(TopologySpec::Expander { degree: d }, n, 0xE);
            for i in 0..n {
                let nb = t.neighbors(Round(0), p(i));
                assert_eq!(nb.len(), d, "n={n} d={d} vertex {i}");
                assert!(!nb.contains(p(i)), "self-loop at {i}");
                for q in nb.iter() {
                    assert!(t.connected(Round(9), q, p(i)), "asymmetric edge");
                }
            }
            // Static: edges don't change over rounds.
            assert_eq!(t.edges(Round(0)), t.edges(Round(77)));
        }
    }

    #[test]
    fn expander_is_connected() {
        for seed in 0..8u64 {
            let t = Topology::build(TopologySpec::Expander { degree: 4 }, 21, seed);
            for dst in 1..21 {
                assert!(
                    t.reachable_within(p(0), p(dst), Round(0), Round(64)),
                    "seed {seed}: vertex {dst} unreachable"
                );
            }
        }
    }

    #[test]
    fn same_seed_same_graph_different_seed_different_graph() {
        let a = Topology::build(TopologySpec::Expander { degree: 4 }, 16, 1);
        let b = Topology::build(TopologySpec::Expander { degree: 4 }, 16, 1);
        let c = Topology::build(TopologySpec::Expander { degree: 4 }, 16, 2);
        assert_eq!(a.edges(Round(0)), b.edges(Round(0)));
        assert_ne!(a.edges(Round(0)), c.edges(Round(0)));
    }

    #[test]
    fn churn_flips_edges_per_round_deterministically() {
        let t = Topology::build(TopologySpec::churn(0.3), 12, 9);
        let e0 = t.edges(Round(0));
        let e1 = t.edges(Round(1));
        assert_ne!(e0, e1, "churn must resample per round");
        let t2 = Topology::build(TopologySpec::churn(0.3), 12, 9);
        assert_eq!(e0, t2.edges(Round(0)), "same seed ⇒ same per-round edges");
        let complete_edges = 12 * 11 / 2;
        assert!(e0.len() < complete_edges, "p=0.3 must drop some edges");
        assert!(e0.len() > complete_edges / 2, "p=0.3 drops ≈30%, not most");
    }

    #[test]
    fn churn_zero_is_the_base_and_one_is_its_complement() {
        let base = Topology::build(TopologySpec::Expander { degree: 4 }, 10, 3);
        let frozen = Topology::build(
            TopologySpec::Churn {
                base_degree: Some(4),
                flip_ppm: 0,
            },
            10,
            3,
        );
        assert_eq!(base.edges(Round(5)), frozen.edges(Round(5)));
        let inverted = Topology::build(
            TopologySpec::Churn {
                base_degree: None,
                flip_ppm: 1_000_000,
            },
            10,
            3,
        );
        assert!(inverted.edges(Round(0)).is_empty(), "p=1 over complete = empty");
        assert!(!inverted.connected(Round(0), p(0), p(1)));
        assert!(inverted.connected(Round(0), p(3), p(3)), "self stays local");
    }

    #[test]
    fn reachability_respects_disconnection() {
        // p=1 over complete: nothing is ever connected.
        let none = Topology::build(TopologySpec::churn(1.0), 6, 1);
        assert!(!none.reachable_within(p(0), p(5), Round(0), Round(100)));
        assert!(none.reachable_within(p(2), p(2), Round(0), Round(0)));
        // Expander: distance-limited reachability — a 4-regular graph on 21
        // vertices cannot reach everyone in a single hop.
        let t = Topology::build(TopologySpec::Expander { degree: 4 }, 21, 5);
        let far = (1..21)
            .map(ProcessId::new)
            .find(|q| !t.connected(Round(0), p(0), *q))
            .expect("some non-neighbor exists");
        assert!(!t.reachable_within(p(0), far, Round(0), Round(0)));
        assert!(t.reachable_within(p(0), far, Round(0), Round(32)));
    }

    #[test]
    #[should_panic(expected = "invalid topology")]
    fn build_rejects_invalid_spec() {
        let _ = Topology::build(TopologySpec::Expander { degree: 9 }, 8, 0);
    }

    #[test]
    fn k2_matching_and_tiny_complete_graphs() {
        let t = Topology::build(TopologySpec::Expander { degree: 1 }, 2, 0);
        assert!(t.connected(Round(0), p(0), p(1)));
        // K4 as a 3-regular "expander": cycles + matching must tile it.
        let t = Topology::build(TopologySpec::Expander { degree: 3 }, 4, 11);
        for i in 0..4 {
            assert_eq!(t.neighbors(Round(0), p(i)).len(), 3);
        }
    }
}
