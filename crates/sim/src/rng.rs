//! Deterministic randomness.
//!
//! Every process owns an independent RNG stream forked from a single master
//! seed; a restarted process gets a *fresh* stream (keyed by its restart
//! generation) because the paper's processes keep no state across restarts —
//! in particular no RNG state the adversary could have learned.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::process::ProcessId;

/// Derives a per-process RNG from `(master, pid, generation)`.
///
/// Uses SplitMix64-style mixing so nearby inputs yield unrelated streams.
pub fn fork_rng(master: u64, pid: ProcessId, generation: u64) -> SmallRng {
    let seed = mix(
        mix(mix(master, 0x9e37_79b9_7f4a_7c15), pid.as_usize() as u64),
        generation.wrapping_mul(2),
    );
    SmallRng::seed_from_u64(seed)
}

/// The raw seed underlying [`fork_rng`], offset so a protocol seeding its own
/// sub-RNGs from it never collides with the engine-held stream.
pub fn fork_seed(master: u64, pid: ProcessId, generation: u64) -> u64 {
    mix(
        mix(mix(master, 0x9e37_79b9_7f4a_7c15), pid.as_usize() as u64),
        generation.wrapping_mul(2).wrapping_add(1),
    )
}

/// Derives a named auxiliary RNG (e.g. for workload generation).
pub fn named_rng(master: u64, name: &str) -> SmallRng {
    SmallRng::seed_from_u64(named_seed(master, name))
}

/// The raw seed underlying [`named_rng`] — for components (e.g. topologies)
/// that hash it further rather than drawing from a stream. Disjoint from
/// every [`fork_rng`]/[`fork_seed`] stream by the name-dependent tweak.
pub fn named_seed(master: u64, name: &str) -> u64 {
    let mut h = master ^ 0x51_7c_c1_b7_27_22_0a_95;
    for b in name.bytes() {
        h = mix(h, b as u64);
    }
    h
}

fn mix(state: u64, input: u64) -> u64 {
    let mut z = state
        .wrapping_add(input)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn forked_streams_are_deterministic() {
        let mut a = fork_rng(7, ProcessId::new(3), 0);
        let mut b = fork_rng(7, ProcessId::new(3), 0);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn forked_streams_differ_by_pid_and_generation() {
        let mut a = fork_rng(7, ProcessId::new(3), 0);
        let mut b = fork_rng(7, ProcessId::new(4), 0);
        let mut c = fork_rng(7, ProcessId::new(3), 1);
        let x: u64 = a.gen();
        assert_ne!(x, b.gen());
        assert_ne!(x, c.gen());
    }

    #[test]
    fn named_rng_depends_on_name() {
        let mut a = named_rng(7, "workload");
        let mut b = named_rng(7, "adversary");
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
