//! A compact set of process ids (fixed-capacity bitset).
//!
//! Destination sets, group memberships and hit-sets are manipulated on every
//! message; a `u64`-word bitset keeps them cheap to clone, intersect and
//! test.

use crate::process::ProcessId;
use std::fmt;

/// A set of process ids over a universe `0..n`.
///
/// ```
/// use congos_sim::{IdSet, ProcessId};
///
/// let mut evens = IdSet::from_iter(8, (0..8).step_by(2).map(ProcessId::new));
/// assert!(evens.contains(ProcessId::new(4)));
/// evens.remove(ProcessId::new(0));
/// assert_eq!(evens.len(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IdSet {
    n: usize,
    words: Vec<u64>,
}

impl IdSet {
    /// The empty set over universe `0..n`.
    pub fn empty(n: usize) -> Self {
        IdSet {
            n,
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// The full set `{0, …, n−1}`.
    pub fn full(n: usize) -> Self {
        let mut s = Self::empty(n);
        for i in 0..n {
            s.insert(ProcessId::new(i));
        }
        s
    }

    /// Builds a set from an iterator of ids.
    pub fn from_iter<I: IntoIterator<Item = ProcessId>>(n: usize, ids: I) -> Self {
        let mut s = Self::empty(n);
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Inserts `p`; returns `true` if it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the universe.
    pub fn insert(&mut self, p: ProcessId) -> bool {
        let i = p.as_usize();
        assert!(i < self.n, "{p} outside universe 0..{}", self.n);
        let (w, b) = (i / 64, i % 64);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Removes `p`; returns `true` if it was present.
    pub fn remove(&mut self, p: ProcessId) -> bool {
        let i = p.as_usize();
        if i >= self.n {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Membership test (ids outside the universe are never members).
    pub fn contains(&self, p: ProcessId) -> bool {
        let i = p.as_usize();
        i < self.n && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Iterates members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut w = *w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(ProcessId::new(wi * 64 + b))
                }
            })
        })
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &IdSet) {
        assert_eq!(self.n, other.n, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersect_with(&mut self, other: &IdSet) {
        assert_eq!(self.n, other.n, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn subtract(&mut self, other: &IdSet) {
        assert_eq!(self.n, other.n, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `true` if every member of `self` is in `other`.
    pub fn is_subset_of(&self, other: &IdSet) -> bool {
        assert_eq!(self.n, other.n, "universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// `true` if the sets share no member.
    pub fn is_disjoint_from(&self, other: &IdSet) -> bool {
        assert_eq!(self.n, other.n, "universe mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Members as a sorted vector.
    pub fn to_vec(&self) -> Vec<ProcessId> {
        self.iter().collect()
    }
}

impl fmt::Debug for IdSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<ProcessId> for IdSet {
    /// Collects ids into a set whose universe is the smallest power-of-two
    /// -free bound: the max id + 1. Prefer [`IdSet::from_iter`] with an
    /// explicit universe when interoperating with other sets.
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let ids: Vec<ProcessId> = iter.into_iter().collect();
        let n = ids.iter().map(|p| p.as_usize() + 1).max().unwrap_or(0);
        IdSet::from_iter(n, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = IdSet::empty(130);
        assert!(s.insert(p(0)));
        assert!(s.insert(p(64)));
        assert!(s.insert(p(129)));
        assert!(!s.insert(p(129)), "second insert is a no-op");
        assert!(s.contains(p(64)));
        assert!(!s.contains(p(63)));
        assert_eq!(s.len(), 3);
        assert!(s.remove(p(64)));
        assert!(!s.remove(p(64)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iteration_is_sorted() {
        let s = IdSet::from_iter(200, [p(150), p(3), p(64), p(65)]);
        assert_eq!(s.to_vec(), vec![p(3), p(64), p(65), p(150)]);
    }

    #[test]
    fn set_algebra() {
        let a = IdSet::from_iter(10, [p(1), p(2), p(3)]);
        let b = IdSet::from_iter(10, [p(3), p(4)]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 4);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![p(3)]);
        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d.to_vec(), vec![p(1), p(2)]);
        assert!(i.is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        let c = IdSet::from_iter(10, [p(7)]);
        assert!(a.is_disjoint_from(&c));
        assert!(!a.is_disjoint_from(&b));
    }

    #[test]
    fn full_and_empty() {
        let f = IdSet::full(70);
        assert_eq!(f.len(), 70);
        assert!(!f.is_empty());
        assert!(IdSet::empty(70).is_empty());
        assert!(IdSet::empty(0).is_empty());
        assert_eq!(IdSet::full(0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_universe_panics() {
        IdSet::empty(4).insert(p(4));
    }

    #[test]
    fn collect_from_iterator() {
        let s: IdSet = [p(2), p(5)].into_iter().collect();
        assert_eq!(s.universe(), 6);
        assert!(s.contains(p(5)));
    }
}
