//! The round-transport layer: one drive loop, pluggable delivery substrates.
//!
//! The lock-step engine and the networked runtime execute the *same*
//! superstep — send this round's messages, announce the round is over, block
//! until every peer's announcement has arrived, compute on the received
//! inbox — but they used to own two divergent copies of that loop. This
//! module extracts the loop behind [`RoundTransport`]:
//!
//! * [`MemTransport`] is the in-memory columnar-outbox substrate. The
//!   [`Engine`](crate::Engine) drives it through inherent zero-copy methods
//!   (append per-process send columns in pid order, route index lists); the
//!   trait implementation layers barrier bookkeeping on top so the same
//!   instance can also back an in-process cluster of [`NodeDriver`]s.
//! * `TcpTransport` (in the `congos-net` crate) ships the messages over real
//!   sockets; end-of-round markers are wire frames and the barrier blocks on
//!   the peers' reader threads.
//!
//! [`NodeDriver`] owns ONE process — protocol instance, forked RNG stream,
//! pending sends, outputs — and runs the per-node superstep generically over
//! any transport. Determinism survives the substrate because every input to
//! a node's state machine is transport-independent: the RNG stream is forked
//! from `(master_seed, id, generation)`, injections are scheduled by round,
//! and the inbox is sorted by source id before compute (within one source,
//! both substrates preserve send order — column order in memory, stream
//! FIFO order on a socket).

use std::io;

use rand::rngs::SmallRng;

use crate::clock::Round;
use crate::engine::{Context, OutputRecord, Protocol};
use crate::message::{Envelope, EnvelopeRef, Inbox, OutboxColumns, SendColumns, Tag};
use crate::process::ProcessId;
use crate::rng::{fork_rng, fork_seed};
use crate::topology::{Topology, TopologySpec};

/// A delivery substrate for bulk-synchronous rounds.
///
/// The round contract, per node and per round `r`:
///
/// 1. [`send_outbox`](RoundTransport::send_outbox) — ship the node's round-`r`
///    messages (the transport takes ownership; self-sends are looped back by
///    the transport, not the caller).
/// 2. [`end_of_round`](RoundTransport::end_of_round) — announce that the node
///    will send nothing more in round `r`.
/// 3. [`recv_until_barrier`](RoundTransport::recv_until_barrier) — block until
///    every process's round-`r` announcement has been observed, then hand
///    back everything delivered to this node in round `r`.
///
/// Implementations decide what "delivered" means (the simulator's adversary
/// and topology filtering, a socket runtime's sender-side topology drops) but
/// must never reorder messages of one `(src, dst)` pair.
pub trait RoundTransport<M> {
    /// Ships node `src`'s round-`round` sends, draining `out`.
    ///
    /// # Errors
    ///
    /// Transport-level failure (e.g. a lost peer connection).
    fn send_outbox(
        &mut self,
        round: Round,
        src: ProcessId,
        out: &mut SendColumns<M>,
    ) -> io::Result<()>;

    /// Announces that `src` has sent everything it will send in `round`.
    ///
    /// # Errors
    ///
    /// Transport-level failure (e.g. a lost peer connection).
    fn end_of_round(&mut self, round: Round, src: ProcessId) -> io::Result<()>;

    /// Blocks until the round-`round` barrier is complete, then fills
    /// `inbox` (cleared first) with the messages delivered to `dst`.
    ///
    /// # Errors
    ///
    /// Transport-level failure: a lost peer, a barrier that can never
    /// complete, or (for in-memory transports) a phase-discipline violation.
    fn recv_until_barrier(
        &mut self,
        round: Round,
        dst: ProcessId,
        inbox: &mut Vec<Envelope<M>>,
    ) -> io::Result<()>;
}

/// The in-memory delivery substrate: one round's merged outbox in columnar
/// layout plus per-process index lists into it.
///
/// Two ways to drive it:
///
/// * **Engine path** (zero-copy): [`begin_round`](MemTransport::begin_round),
///   [`append_outbox`](MemTransport::append_outbox) per process in pid order,
///   [`route_with`](MemTransport::route_with) with the adversary's filters,
///   then read inboxes through [`columns`](MemTransport::columns) +
///   [`inbox_lists`](MemTransport::inbox_lists) without materializing
///   envelopes. This is exactly the engine's pre-existing hot path, moved
///   behind one type — bit-identical by construction.
/// * **Trait path**: a set of [`NodeDriver`]s call the [`RoundTransport`]
///   methods; the barrier counts end-of-round announcements, routing applies
///   the topology (failure-free), and received envelopes are materialized by
///   cloning payloads out of the columns.
#[derive(Debug)]
pub struct MemTransport<M> {
    n: usize,
    topology: Topology,
    /// This round's merged outbox (reused across rounds; cleared, not
    /// reallocated).
    outbox: OutboxColumns<M>,
    /// Per-process inboxes as index lists into `outbox` (reused across
    /// rounds) — delivery routes indices instead of moving envelopes.
    inbox_idx: Vec<Vec<u32>>,
    /// The round `begin_round` opened (phase-discipline checking).
    round: Round,
    /// End-of-round announcements received this round (trait path).
    eor: usize,
    /// Whether this round's routing has run.
    routed: bool,
    topology_drops: u64,
}

impl<M> MemTransport<M> {
    /// A transport for `n` processes over the topology derived from
    /// `(spec, n, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if the spec cannot be instantiated over `n` processes.
    pub fn new(spec: TopologySpec, n: usize, seed: u64) -> Self {
        MemTransport {
            n,
            topology: Topology::build(spec, n, seed),
            outbox: OutboxColumns::new(),
            inbox_idx: (0..n).map(|_| Vec::new()).collect(),
            round: Round::ZERO,
            eor: 0,
            routed: false,
            topology_drops: 0,
        }
    }

    /// The topology messages are delivered over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Messages dropped because the topology had no link that round.
    pub fn topology_drops(&self) -> u64 {
        self.topology_drops
    }

    /// Opens round `round`: drops last round's messages (keeping column
    /// capacities) and resets the barrier.
    pub fn begin_round(&mut self, round: Round) {
        self.outbox.clear();
        for idx in &mut self.inbox_idx {
            idx.clear();
        }
        self.round = round;
        self.eor = 0;
        self.routed = false;
    }

    /// Appends every message of `buf` (all sent by `src`) onto the round
    /// outbox, leaving `buf` empty. Callers append in pid order; the outbox
    /// is then src-major, which is what makes index-list inboxes arrive
    /// sorted by source.
    pub fn append_outbox(&mut self, src: ProcessId, buf: &mut SendColumns<M>) {
        self.outbox.append_from(src, buf);
    }

    /// Number of messages queued this round.
    pub fn outbox_len(&self) -> usize {
        self.outbox.len()
    }

    /// Routing metadata of queued message `i`.
    pub fn outbox_meta(&self, i: usize) -> (ProcessId, ProcessId, Tag) {
        self.outbox.meta(i)
    }

    /// The round's merged outbox columns (for zero-copy columnar inboxes).
    pub fn columns(&self) -> &OutboxColumns<M> {
        &self.outbox
    }

    /// The routed per-process index lists into [`columns`](Self::columns).
    pub fn inbox_lists(&self) -> &[Vec<u32>] {
        &self.inbox_idx
    }

    /// Routes this round's outbox into the per-process index lists, in
    /// outbox order, with the engine's delivery-phase filter chain:
    ///
    /// 1. `sender_gate(src, dst)` — the crash sent-policy (pre-topology);
    /// 2. the topology (absent link ⇒ `on_topology_drop`, skipped entirely
    ///    on a complete topology);
    /// 3. `receiver_gate(src, dst)` — receiver liveness and the restart
    ///    incoming-policy;
    /// 4. `on_deliver` observes each surviving envelope in delivery order.
    ///
    /// The filter order is load-bearing: it is the engine's historical
    /// order, pinned by the golden trace digests.
    pub fn route_with(
        &mut self,
        round: Round,
        mut sender_gate: impl FnMut(ProcessId, ProcessId) -> bool,
        mut receiver_gate: impl FnMut(ProcessId, ProcessId) -> bool,
        mut on_deliver: impl FnMut(EnvelopeRef<'_, M>),
        mut on_topology_drop: impl FnMut(),
    ) {
        for idx in &mut self.inbox_idx {
            idx.clear();
        }
        let mut drops = 0u64;
        let filter_topology = !self.topology.is_complete();
        for i in 0..self.outbox.len() {
            let (src, dst, _tag) = self.outbox.meta(i);
            if !sender_gate(src, dst) {
                continue;
            }
            if filter_topology && !self.topology.connected(round, src, dst) {
                drops += 1;
                on_topology_drop();
                continue; // no link between src and dst this round
            }
            if !receiver_gate(src, dst) {
                continue;
            }
            on_deliver(self.outbox.get(i, round));
            self.inbox_idx[dst.as_usize()].push(i as u32);
        }
        self.topology_drops += drops;
        self.routed = true;
    }
}

impl<M: Clone> RoundTransport<M> for MemTransport<M> {
    fn send_outbox(
        &mut self,
        round: Round,
        src: ProcessId,
        out: &mut SendColumns<M>,
    ) -> io::Result<()> {
        if round != self.round {
            return Err(phase_error(format!(
                "send for {round} but the open round is {} (call begin_round)",
                self.round
            )));
        }
        self.append_outbox(src, out);
        Ok(())
    }

    fn end_of_round(&mut self, round: Round, _src: ProcessId) -> io::Result<()> {
        if round != self.round {
            return Err(phase_error(format!(
                "end-of-round for {round} but the open round is {}",
                self.round
            )));
        }
        self.eor += 1;
        Ok(())
    }

    fn recv_until_barrier(
        &mut self,
        round: Round,
        dst: ProcessId,
        inbox: &mut Vec<Envelope<M>>,
    ) -> io::Result<()> {
        if round != self.round {
            return Err(phase_error(format!(
                "receive for {round} but the open round is {}",
                self.round
            )));
        }
        if self.eor < self.n {
            // An in-memory "block" would deadlock: the caller is the only
            // thread, so the missing announcements can never arrive.
            return Err(phase_error(format!(
                "{round} barrier incomplete: {}/{} end-of-round announcements \
                 (drive every node's send phase before receiving)",
                self.eor, self.n
            )));
        }
        if !self.routed {
            // Failure-free routing: topology only, no adversary gates.
            self.route_with(round, |_, _| true, |_, _| true, |_| (), || ());
        }
        inbox.clear();
        for &i in &self.inbox_idx[dst.as_usize()] {
            inbox.push(self.outbox.get(i as usize, round).to_envelope());
        }
        Ok(())
    }
}

fn phase_error(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::WouldBlock, msg)
}

/// One process of a transport-backed deployment: the protocol instance, its
/// forked RNG stream, pending sends and produced outputs, plus the per-node
/// superstep loop — the drive logic that used to be duplicated between the
/// engine and the TCP runtime.
pub struct NodeDriver<P: Protocol> {
    id: ProcessId,
    n: usize,
    round: Round,
    proto: P,
    rng: SmallRng,
    /// Messages queued by the protocol (compute-phase sends carry over to
    /// the next round's send phase, exactly like an engine slot).
    pending: Vec<(ProcessId, P::Msg, Tag)>,
    /// Send-phase staging buffer (reused across rounds).
    out: SendColumns<P::Msg>,
    /// Receive buffer (reused across rounds).
    inbox: Vec<Envelope<P::Msg>>,
    outputs: Vec<OutputRecord<P::Output>>,
    /// Delivery-metadata log `(round, sender, tag)` for this node, recorded
    /// just after the inbox sort when enabled — the socket-path equivalent
    /// of the engine's `Observer::on_deliver` tap. Self-sends are skipped to
    /// match the observing-coalition contract. Recording reads state the
    /// compute phase produces anyway and touches no RNG, so enabling it
    /// cannot perturb the execution.
    sightings: Option<Vec<(Round, ProcessId, Tag)>>,
}

impl<P: Protocol> NodeDriver<P> {
    /// A driver for process `id` of `n`, with the protocol default-built
    /// from the same forked seed the engine would use — a networked node and
    /// a simulated process with equal `(master_seed, id)` are bit-identical.
    pub fn new(id: ProcessId, n: usize, master_seed: u64) -> Self {
        Self::with_factory(id, n, master_seed, P::new)
    }

    /// A driver whose protocol instance is built by `factory` (for
    /// configured deployments). The factory receives the same forked
    /// per-process seed as [`new`](Self::new).
    pub fn with_factory(
        id: ProcessId,
        n: usize,
        master_seed: u64,
        factory: impl FnOnce(ProcessId, usize, u64) -> P,
    ) -> Self {
        let mut proto = factory(id, n, fork_seed(master_seed, id, 0));
        proto.on_start(Round::ZERO);
        NodeDriver {
            id,
            n,
            round: Round::ZERO,
            proto,
            rng: fork_rng(master_seed, id, 0),
            pending: Vec::new(),
            out: SendColumns::default(),
            inbox: Vec::new(),
            outputs: Vec::new(),
            sightings: None,
        }
    }

    /// Enables (or disables) delivery-metadata recording for this node.
    /// While enabled, every received envelope's `(round, sender, tag)` is
    /// appended to the log returned by [`take_sightings`](Self::take_sightings).
    pub fn record_sightings(&mut self, on: bool) {
        if on {
            self.sightings.get_or_insert_with(Vec::new);
        } else {
            self.sightings = None;
        }
    }

    /// Drains the recorded delivery metadata (empty unless
    /// [`record_sightings`](Self::record_sightings) was enabled).
    pub fn take_sightings(&mut self) -> Vec<(Round, ProcessId, Tag)> {
        match &mut self.sightings {
            Some(s) => std::mem::take(s),
            None => Vec::new(),
        }
    }

    /// This driver's process id.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The round about to execute.
    pub fn round(&self) -> Round {
        self.round
    }

    /// Outputs produced so far.
    pub fn outputs(&self) -> &[OutputRecord<P::Output>] {
        &self.outputs
    }

    /// Consumes the driver, returning the full output log.
    pub fn into_outputs(self) -> Vec<OutputRecord<P::Output>> {
        self.outputs
    }

    /// Read access to the protocol state (white-box test assertions).
    pub fn protocol(&self) -> &P {
        &self.proto
    }

    /// Runs the current round's send phase: the protocol queues messages,
    /// which are shipped through the transport, followed by the end-of-round
    /// announcement.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send_phase<T: RoundTransport<P::Msg>>(&mut self, transport: &mut T) -> io::Result<()> {
        let round = self.round;
        {
            let mut ctx = Context::<P>::for_runtime(
                self.id,
                self.n,
                round,
                &mut self.rng,
                &mut self.pending,
                &mut self.outputs,
            );
            self.proto.send(&mut ctx);
        }
        for (dst, payload, tag) in self.pending.drain(..) {
            self.out.push(dst, tag, payload);
        }
        transport.send_outbox(round, self.id, &mut self.out)?;
        transport.end_of_round(round, self.id)
    }

    /// Runs the current round's barrier + compute phase: blocks on the
    /// transport until every peer's round is over, sorts the inbox by source
    /// (the engine's pid-ordered delivery order), feeds it to the protocol
    /// together with any injected `input`, and advances the round.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn compute_phase<T: RoundTransport<P::Msg>>(
        &mut self,
        transport: &mut T,
        input: Option<P::Input>,
    ) -> io::Result<()> {
        let round = self.round;
        transport.recv_until_barrier(round, self.id, &mut self.inbox)?;
        // Stable by source: equals the engine's src-major outbox order, since
        // both substrates preserve per-source send order.
        self.inbox.sort_by_key(|e| e.src);
        if let Some(sightings) = &mut self.sightings {
            sightings.extend(
                self.inbox
                    .iter()
                    .filter(|e| e.src != self.id)
                    .map(|e| (round, e.src, e.tag)),
            );
        }
        {
            let mut ctx = Context::<P>::for_runtime(
                self.id,
                self.n,
                round,
                &mut self.rng,
                &mut self.pending,
                &mut self.outputs,
            );
            self.proto
                .receive(&mut ctx, Inbox::from_slice(&self.inbox), input);
        }
        self.round = round.next();
        Ok(())
    }

    /// Runs `rounds` full rounds over a transport this node owns (each node
    /// of a socket cluster has its own), injecting `injections` as
    /// `(round, input)` pairs (at most one per round — the model's rule).
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn run_rounds<T: RoundTransport<P::Msg>>(
        &mut self,
        transport: &mut T,
        rounds: u64,
        mut injections: Vec<(u64, P::Input)>,
    ) -> io::Result<()> {
        injections.sort_by_key(|(r, _)| *r);
        for _ in 0..rounds {
            self.send_phase(transport)?;
            let r = self.round.as_u64();
            let input = match injections.first() {
                Some((due, _)) if *due == r => Some(injections.remove(0).1),
                _ => None,
            };
            self.compute_phase(transport, input)?;
        }
        Ok(())
    }
}

/// Runs an in-process, failure-free cluster of [`NodeDriver`]s over one
/// shared [`MemTransport`], phase-interleaved like the engine (all sends,
/// then all computes). Returns every output, ordered by `(round, process)`.
///
/// This is the reference composition of driver + transport: the
/// differential suite pins it against both the engine and the socket
/// runtime.
///
/// # Errors
///
/// Propagates transport failures (none occur under correct interleaving).
///
/// # Panics
///
/// Panics if the topology cannot be instantiated over `n` processes.
pub fn run_local_cluster<P>(
    n: usize,
    seed: u64,
    topology: TopologySpec,
    rounds: u64,
    injections: Vec<(u64, ProcessId, P::Input)>,
) -> io::Result<Vec<OutputRecord<P::Output>>>
where
    P: Protocol,
    P::Msg: Clone,
{
    let mut mem = MemTransport::<P::Msg>::new(topology, n, seed);
    let mut drivers: Vec<NodeDriver<P>> = (0..n)
        .map(|i| NodeDriver::new(ProcessId::new(i), n, seed))
        .collect();
    let mut per_node: Vec<Vec<(u64, P::Input)>> = (0..n).map(|_| Vec::new()).collect();
    for (round, pid, input) in injections {
        per_node[pid.as_usize()].push((round, input));
    }
    for inj in &mut per_node {
        inj.sort_by_key(|(r, _)| *r);
    }

    for r in 0..rounds {
        mem.begin_round(Round(r));
        for d in drivers.iter_mut() {
            d.send_phase(&mut mem)?;
        }
        for (d, inj) in drivers.iter_mut().zip(per_node.iter_mut()) {
            let input = match inj.first() {
                Some((due, _)) if *due == r => Some(inj.remove(0).1),
                _ => None,
            };
            d.compute_phase(&mut mem, input)?;
        }
    }

    let mut outs: Vec<OutputRecord<P::Output>> = drivers
        .into_iter()
        .flat_map(NodeDriver::into_outputs)
        .collect();
    outs.sort_by_key(|o| (o.round, o.process));
    Ok(outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig, NullAdversary};
    use rand::Rng;

    /// Every process sends a seeded random token to its successor and to
    /// itself each round; receivers report `(src, token)`. Exercises RNG
    /// forking, self-send loopback and multi-source inbox ordering.
    struct Echo;

    impl Protocol for Echo {
        type Msg = u64;
        type Input = u64;
        type Output = (ProcessId, u64);

        fn new(_id: ProcessId, _n: usize, _seed: u64) -> Self {
            Echo
        }
        fn send(&mut self, ctx: &mut Context<'_, Self>) {
            let next = ProcessId::new((ctx.id().as_usize() + 1) % ctx.n());
            let token = ctx.rng().gen::<u64>();
            ctx.send(next, token, Tag("echo"));
            ctx.send(ctx.id(), token ^ 1, Tag("self"));
        }
        fn receive(
            &mut self,
            ctx: &mut Context<'_, Self>,
            inbox: Inbox<'_, u64>,
            input: Option<u64>,
        ) {
            for env in inbox {
                ctx.output((env.src, *env.payload));
            }
            if let Some(v) = input {
                ctx.output((ctx.id(), v + 1_000_000));
            }
        }
    }

    fn engine_outputs(
        n: usize,
        seed: u64,
        topology: TopologySpec,
        rounds: u64,
        injections: &[(u64, ProcessId, u64)],
    ) -> Vec<OutputRecord<(ProcessId, u64)>> {
        use crate::engine::{Adversary, RoundDecision, RoundView};
        struct Inject {
            schedule: Vec<(u64, ProcessId, u64)>,
        }
        impl Adversary<Echo> for Inject {
            fn decide(&mut self, view: &RoundView<'_>) -> RoundDecision<u64> {
                let r = view.round.as_u64();
                let mut d = RoundDecision::none();
                self.schedule.retain(|(due, p, v)| {
                    if *due == r {
                        d.injections.push((*p, *v));
                        false
                    } else {
                        true
                    }
                });
                d
            }
        }
        let mut e = Engine::<Echo>::new(EngineConfig::new(n).seed(seed).topology(topology));
        e.run(
            rounds,
            &mut Inject {
                schedule: injections.to_vec(),
            },
        );
        let mut outs = e.into_outputs();
        outs.sort_by_key(|o| (o.round, o.process));
        outs
    }

    #[test]
    fn local_cluster_matches_engine_exactly() {
        let injections = vec![
            (0, ProcessId::new(0), 7u64),
            (2, ProcessId::new(3), 9u64),
            (5, ProcessId::new(1), 11u64),
        ];
        for (seed, topology) in [
            (1u64, TopologySpec::Complete),
            (2, TopologySpec::Complete),
            (3, TopologySpec::Expander { degree: 4 }),
        ] {
            let sim = engine_outputs(6, seed, topology, 8, &injections);
            let local = run_local_cluster::<Echo>(6, seed, topology, 8, injections.clone())
                .expect("local cluster");
            assert_eq!(sim, local, "seed {seed} topology {topology} diverged");
            assert!(!sim.is_empty());
        }
    }

    #[test]
    fn mem_transport_counts_topology_drops() {
        let spec = TopologySpec::Expander { degree: 2 };
        let outs =
            run_local_cluster::<Echo>(8, 5, spec, 4, vec![]).expect("cluster");
        // On a 2-regular graph most successor links are absent some rounds?
        // No churn here: the edge set is static, so either the ring matches
        // the expander edges or tokens are dropped — outputs still flow via
        // self-sends.
        assert!(outs.iter().any(|o| o.value.1 & 1 == 1), "self-sends loop back");
    }

    #[test]
    fn premature_receive_is_a_clean_error() {
        let mut mem = MemTransport::<u64>::new(TopologySpec::Complete, 2, 0);
        mem.begin_round(Round(0));
        let mut d = NodeDriver::<Echo>::new(ProcessId::new(0), 2, 0);
        d.send_phase(&mut mem).expect("send");
        // Node 1 has not sent: the barrier cannot complete on one thread.
        let err = d.compute_phase(&mut mem, None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert!(err.to_string().contains("barrier incomplete"), "{err}");
    }

    #[test]
    fn wrong_round_is_a_clean_error() {
        let mut mem = MemTransport::<u64>::new(TopologySpec::Complete, 1, 0);
        mem.begin_round(Round(3));
        let mut out = SendColumns::default();
        let err = mem
            .send_outbox(Round(0), ProcessId::new(0), &mut out)
            .unwrap_err();
        assert!(err.to_string().contains("open round"), "{err}");
    }

    #[test]
    fn driver_restart_free_run_matches_engine_under_null_adversary() {
        // Sanity on the plain engine entry point too (no injections).
        let mut e = Engine::<Echo>::new(EngineConfig::new(4).seed(8));
        e.run(5, &mut NullAdversary);
        let mut sim = e.into_outputs();
        sim.sort_by_key(|o| (o.round, o.process));
        let local = run_local_cluster::<Echo>(4, 8, TopologySpec::Complete, 5, vec![])
            .expect("local cluster");
        assert_eq!(sim, local);
    }
}
