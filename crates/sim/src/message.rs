//! Message envelopes and service tags.

use crate::clock::Round;
use crate::process::ProcessId;
use std::fmt;

/// Labels the *service* that sent a message.
///
/// The paper meters message complexity per service — e.g. Lemma 7 bounds the
/// messages of `Proxy[ℓ]` and `GroupDistribution[ℓ]` *excluding* those sent
/// by `GroupGossip` — so every send carries a tag and the engine keeps
/// per-tag, per-round counters.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag(pub &'static str);

impl Tag {
    /// Returns the tag's name.
    pub fn name(self) -> &'static str {
        self.0
    }
}

impl fmt::Debug for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// A point-to-point message in flight or delivered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender.
    pub src: ProcessId,
    /// Receiver.
    pub dst: ProcessId,
    /// The round in which the message was sent (and, the network being
    /// synchronous, delivered).
    pub round: Round,
    /// Sending service.
    pub tag: Tag,
    /// Protocol payload.
    pub payload: M,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_formatting() {
        assert_eq!(format!("{}", Tag("proxy")), "proxy");
        assert_eq!(format!("{:?}", Tag("proxy")), "#proxy");
        assert_eq!(Tag("gd").name(), "gd");
    }

    #[test]
    fn envelope_is_plain_data() {
        let e = Envelope {
            src: ProcessId::new(1),
            dst: ProcessId::new(2),
            round: Round(5),
            tag: Tag("t"),
            payload: 99u32,
        };
        let f = e.clone();
        assert_eq!(e, f);
    }
}
