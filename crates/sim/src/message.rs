//! Message envelopes and service tags.

use crate::clock::Round;
use crate::process::ProcessId;
use std::fmt;

/// Labels the *service* that sent a message.
///
/// The paper meters message complexity per service — e.g. Lemma 7 bounds the
/// messages of `Proxy[ℓ]` and `GroupDistribution[ℓ]` *excluding* those sent
/// by `GroupGossip` — so every send carries a tag and the engine keeps
/// per-tag, per-round counters.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag(pub &'static str);

impl Tag {
    /// Returns the tag's name.
    pub fn name(self) -> &'static str {
        self.0
    }
}

impl fmt::Debug for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// A point-to-point message in flight or delivered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender.
    pub src: ProcessId,
    /// Receiver.
    pub dst: ProcessId,
    /// The round in which the message was sent (and, the network being
    /// synchronous, delivered).
    pub round: Round,
    /// Sending service.
    pub tag: Tag,
    /// Protocol payload.
    pub payload: M,
}

/// A borrowed view of one in-flight message — the columnar round buffers
/// store messages as struct-of-arrays, so delivered messages are read
/// through references instead of moved envelopes.
#[derive(Debug, PartialEq, Eq)]
pub struct EnvelopeRef<'a, M> {
    /// Sender.
    pub src: ProcessId,
    /// Receiver.
    pub dst: ProcessId,
    /// The round in which the message was sent (and delivered).
    pub round: Round,
    /// Sending service.
    pub tag: Tag,
    /// Protocol payload (owned by the round's outbox columns).
    pub payload: &'a M,
}

impl<M> Clone for EnvelopeRef<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for EnvelopeRef<'_, M> {}

impl<M: Clone> EnvelopeRef<'_, M> {
    /// Materializes an owned [`Envelope`] (clones the payload).
    pub fn to_envelope(&self) -> Envelope<M> {
        Envelope {
            src: self.src,
            dst: self.dst,
            round: self.round,
            tag: self.tag,
            payload: self.payload.clone(),
        }
    }
}

/// One round's merged outbox in struct-of-arrays layout.
///
/// The engine reuses one instance across rounds (`clear` keeps the column
/// capacities), so a steady-state round performs no per-envelope `Vec`
/// allocation: sends append onto the columns, and delivery hands each
/// process an *index list* into them instead of moving envelopes around.
#[derive(Debug)]
pub struct OutboxColumns<M> {
    src: Vec<ProcessId>,
    dst: Vec<ProcessId>,
    tag: Vec<Tag>,
    payload: Vec<M>,
}

impl<M> Default for OutboxColumns<M> {
    fn default() -> Self {
        OutboxColumns {
            src: Vec::new(),
            dst: Vec::new(),
            tag: Vec::new(),
            payload: Vec::new(),
        }
    }
}

impl<M> OutboxColumns<M> {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// `true` if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Drops all messages, keeping the column capacities for reuse.
    pub fn clear(&mut self) {
        self.src.clear();
        self.dst.clear();
        self.tag.clear();
        self.payload.clear();
    }

    /// Appends one message.
    pub fn push(&mut self, src: ProcessId, dst: ProcessId, tag: Tag, payload: M) {
        self.src.push(src);
        self.dst.push(dst);
        self.tag.push(tag);
        self.payload.push(payload);
    }

    /// Appends every message of `buf`, all sent by `src`, leaving `buf`
    /// empty (capacities retained). This is the pid-ordered merge step: the
    /// per-process send buffers are concatenated as index ranges of the
    /// round outbox, in process-id order.
    pub fn append_from(&mut self, src: ProcessId, buf: &mut SendColumns<M>) {
        self.src.extend(std::iter::repeat(src).take(buf.dst.len()));
        self.dst.append(&mut buf.dst);
        self.tag.append(&mut buf.tag);
        self.payload.append(&mut buf.payload);
    }

    /// Routing metadata of message `i`.
    pub fn meta(&self, i: usize) -> (ProcessId, ProcessId, Tag) {
        (self.src[i], self.dst[i], self.tag[i])
    }

    /// A borrowed view of message `i`, stamped with `round`.
    pub fn get(&self, i: usize, round: Round) -> EnvelopeRef<'_, M> {
        EnvelopeRef {
            src: self.src[i],
            dst: self.dst[i],
            round,
            tag: self.tag[i],
            payload: &self.payload[i],
        }
    }
}

/// One process's send-phase buffer: the outbox columns minus the (constant)
/// sender id. Reused across rounds.
#[derive(Debug)]
pub struct SendColumns<M> {
    dst: Vec<ProcessId>,
    tag: Vec<Tag>,
    payload: Vec<M>,
}

impl<M> Default for SendColumns<M> {
    fn default() -> Self {
        SendColumns {
            dst: Vec::new(),
            tag: Vec::new(),
            payload: Vec::new(),
        }
    }
}

impl<M> SendColumns<M> {
    /// Queues one message.
    pub fn push(&mut self, dst: ProcessId, tag: Tag, payload: M) {
        self.dst.push(dst);
        self.tag.push(tag);
        self.payload.push(payload);
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Drains the queued messages in send order as `(dst, tag, payload)`,
    /// leaving the buffer empty with its capacity retained. This is how a
    /// non-columnar transport (e.g. a socket runtime) consumes the send
    /// phase's output.
    pub fn drain(&mut self) -> impl Iterator<Item = (ProcessId, Tag, M)> + '_ {
        self.dst
            .drain(..)
            .zip(self.tag.drain(..))
            .zip(self.payload.drain(..))
            .map(|((dst, tag), payload)| (dst, tag, payload))
    }
}

/// A process's inbox for one round: either an index list into the round's
/// shared [`OutboxColumns`] (the engine's zero-copy path) or a plain
/// envelope slice (for runtimes that still store owned envelopes).
///
/// Iteration yields [`EnvelopeRef`]s in delivery order.
#[derive(Debug)]
pub struct Inbox<'a, M> {
    repr: InboxRepr<'a, M>,
}

#[derive(Debug)]
enum InboxRepr<'a, M> {
    Columnar {
        cols: &'a OutboxColumns<M>,
        idx: &'a [u32],
        round: Round,
    },
    Slice(&'a [Envelope<M>]),
    Empty,
}

impl<M> Clone for Inbox<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for Inbox<'_, M> {}
impl<M> Clone for InboxRepr<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for InboxRepr<'_, M> {}

impl<'a, M> Inbox<'a, M> {
    /// An inbox over an index list into the round's outbox columns.
    pub fn columnar(cols: &'a OutboxColumns<M>, idx: &'a [u32], round: Round) -> Self {
        Inbox {
            repr: InboxRepr::Columnar { cols, idx, round },
        }
    }

    /// An inbox over a slice of owned envelopes.
    pub fn from_slice(envs: &'a [Envelope<M>]) -> Self {
        Inbox {
            repr: InboxRepr::Slice(envs),
        }
    }

    /// An empty inbox.
    pub fn empty() -> Self {
        Inbox {
            repr: InboxRepr::Empty,
        }
    }

    /// Number of delivered messages.
    pub fn len(&self) -> usize {
        match self.repr {
            InboxRepr::Columnar { idx, .. } => idx.len(),
            InboxRepr::Slice(envs) => envs.len(),
            InboxRepr::Empty => 0,
        }
    }

    /// `true` if nothing was delivered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th delivered message.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> EnvelopeRef<'a, M> {
        match self.repr {
            InboxRepr::Columnar { cols, idx, round } => cols.get(idx[i] as usize, round),
            InboxRepr::Slice(envs) => {
                let e = &envs[i];
                EnvelopeRef {
                    src: e.src,
                    dst: e.dst,
                    round: e.round,
                    tag: e.tag,
                    payload: &e.payload,
                }
            }
            InboxRepr::Empty => panic!("index {i} out of bounds of empty inbox"),
        }
    }

    /// Iterates the delivered messages in delivery order.
    pub fn iter(&self) -> InboxIter<'a, M> {
        InboxIter {
            inbox: *self,
            next: 0,
        }
    }
}

/// Iterator over an [`Inbox`].
#[derive(Clone, Debug)]
pub struct InboxIter<'a, M> {
    inbox: Inbox<'a, M>,
    next: usize,
}

impl<'a, M> Iterator for InboxIter<'a, M> {
    type Item = EnvelopeRef<'a, M>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next < self.inbox.len() {
            let item = self.inbox.get(self.next);
            self.next += 1;
            Some(item)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.inbox.len() - self.next;
        (rem, Some(rem))
    }
}

impl<M> ExactSizeIterator for InboxIter<'_, M> {}

impl<'a, M> IntoIterator for Inbox<'a, M> {
    type Item = EnvelopeRef<'a, M>;
    type IntoIter = InboxIter<'a, M>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<'a, M> IntoIterator for &Inbox<'a, M> {
    type Item = EnvelopeRef<'a, M>;
    type IntoIter = InboxIter<'a, M>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_formatting() {
        assert_eq!(format!("{}", Tag("proxy")), "proxy");
        assert_eq!(format!("{:?}", Tag("proxy")), "#proxy");
        assert_eq!(Tag("gd").name(), "gd");
    }

    #[test]
    fn envelope_is_plain_data() {
        let e = Envelope {
            src: ProcessId::new(1),
            dst: ProcessId::new(2),
            round: Round(5),
            tag: Tag("t"),
            payload: 99u32,
        };
        let f = e.clone();
        assert_eq!(e, f);
    }

    #[test]
    fn columns_round_trip_and_reuse_capacity() {
        let mut cols: OutboxColumns<u32> = OutboxColumns::new();
        let mut buf = SendColumns::default();
        buf.push(ProcessId::new(1), Tag("a"), 10);
        buf.push(ProcessId::new(2), Tag("b"), 20);
        cols.append_from(ProcessId::new(0), &mut buf);
        assert_eq!(buf.len(), 0, "append drains the send buffer");
        cols.push(ProcessId::new(3), ProcessId::new(0), Tag("c"), 30);
        assert_eq!(cols.len(), 3);
        assert_eq!(cols.meta(0), (ProcessId::new(0), ProcessId::new(1), Tag("a")));
        let e = cols.get(2, Round(7));
        assert_eq!(e.src, ProcessId::new(3));
        assert_eq!(e.round, Round(7));
        assert_eq!(*e.payload, 30);
        cols.clear();
        assert!(cols.is_empty());
    }

    #[test]
    fn columnar_inbox_iterates_index_list() {
        let mut cols: OutboxColumns<u32> = OutboxColumns::new();
        for i in 0..5u32 {
            cols.push(ProcessId::new(i as usize), ProcessId::new(0), Tag("t"), i * 11);
        }
        let idx = [1u32, 3, 4];
        let inbox = Inbox::columnar(&cols, &idx, Round(2));
        assert_eq!(inbox.len(), 3);
        let got: Vec<u32> = inbox.iter().map(|e| *e.payload).collect();
        assert_eq!(got, vec![11, 33, 44]);
        assert_eq!(inbox.get(1).src, ProcessId::new(3));
        assert_eq!(inbox.get(0).round, Round(2));
    }

    #[test]
    fn slice_inbox_matches_envelopes() {
        let envs = vec![Envelope {
            src: ProcessId::new(4),
            dst: ProcessId::new(5),
            round: Round(9),
            tag: Tag("s"),
            payload: 77u32,
        }];
        let inbox = Inbox::from_slice(&envs);
        assert_eq!(inbox.len(), 1);
        let e = inbox.get(0);
        assert_eq!(e.to_envelope(), envs[0]);
        assert!(Inbox::<u32>::empty().is_empty());
    }
}
