//! Process identifiers and liveness states.

use std::fmt;

/// Identifier of a process, in `0..n`.
///
/// The paper uses ids `1..=n`; we use the zero-based convention natural in
/// Rust. The `ℓ`-th bit of the id defines the bit-partitions of Section 4.2
/// (see [`bit`](ProcessId::bit)).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Creates a process id from a raw index.
    pub fn new(index: usize) -> Self {
        ProcessId(u32::try_from(index).expect("process index fits in u32"))
    }

    /// Returns the id as a `usize` index.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Returns the `ℓ`-th bit (0-based, little-endian) of the id's binary
    /// representation — the basis of partition `ℓ` in the paper.
    pub fn bit(self, ell: u32) -> u8 {
        ((self.0 >> ell) & 1) as u8
    }

    /// Iterates over all process ids `0..n`.
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> {
        (0..n).map(ProcessId::new)
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<ProcessId> for usize {
    fn from(id: ProcessId) -> usize {
        id.as_usize()
    }
}

/// Liveness state of a process at a point in time.
///
/// Mirrors the paper's two-state model: a process is either `Alive` or
/// `Crashed`; while crashed it performs no computation and neither sends nor
/// receives messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProcessState {
    /// The process executes the protocol normally.
    Alive,
    /// The process is crashed: no computation, no messages.
    Crashed,
}

impl ProcessState {
    /// Returns `true` if the process is alive.
    pub fn is_alive(self) -> bool {
        matches!(self, ProcessState::Alive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_extracts_binary_representation() {
        let p = ProcessId::new(0b1011);
        assert_eq!(p.bit(0), 1);
        assert_eq!(p.bit(1), 1);
        assert_eq!(p.bit(2), 0);
        assert_eq!(p.bit(3), 1);
        assert_eq!(p.bit(4), 0);
    }

    #[test]
    fn distinct_ids_differ_in_some_bit() {
        // The heart of Lemma 5: unique ids ⇒ some bit separates any two.
        for a in 0..64usize {
            for b in 0..64usize {
                if a == b {
                    continue;
                }
                let (pa, pb) = (ProcessId::new(a), ProcessId::new(b));
                assert!(
                    (0..6).any(|ell| pa.bit(ell) != pb.bit(ell)),
                    "{pa} and {pb} must differ in one of the first 6 bits"
                );
            }
        }
    }

    #[test]
    fn all_enumerates_in_order() {
        let ids: Vec<usize> = ProcessId::all(4).map(ProcessId::as_usize).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn display_and_debug_are_compact() {
        assert_eq!(format!("{}", ProcessId::new(7)), "p7");
        assert_eq!(format!("{:?}", ProcessId::new(7)), "p7");
    }

    #[test]
    fn state_liveness_predicate() {
        assert!(ProcessState::Alive.is_alive());
        assert!(!ProcessState::Crashed.is_alive());
    }
}
