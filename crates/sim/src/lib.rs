//! # congos-sim — a synchronous-round simulator for the CRRI model
//!
//! This crate implements the computation model of *Confidential Gossip*
//! (Georgiou, Gilbert, Kowalski; ICDCS 2011):
//!
//! * `n` synchronous processes with unique ids `0..n`, communicating over a
//!   reliable, fully connected, point-to-point network (the default; the
//!   [`topology`] module can replace it with a sparse or churning link
//!   layer, dropping envelopes whose edge is absent that round);
//! * a global clock (globally numbered rounds);
//! * in each round a process (i) sends point-to-point messages, (ii) receives
//!   the messages sent to it *in the same round*, and (iii) performs local
//!   computation;
//! * an adaptive **CRRI adversary** (Crash-and-Restart-Rumor-Injection) that,
//!   in each round — *after observing the random choices made in that round*
//!   (i.e. the outboxes) — crashes processes, restarts processes, and injects
//!   rumors;
//! * processes have **no durable storage**: a restarted process is reset to
//!   its default initial state, knowing only the algorithm, `[n]`, and the
//!   global clock.
//!
//! The engine is fully deterministic given a master seed, so every
//! probabilistic claim of the paper can be reproduced exactly.
//!
//! ```
//! use congos_sim::{Engine, EngineConfig, Protocol, Context, Inbox, Tag,
//!                  NullAdversary, ProcessId};
//!
//! /// A toy protocol: process 0 floods a token once; everyone else reports it.
//! struct Flood { has_token: bool, sent: bool }
//!
//! impl Protocol for Flood {
//!     type Msg = ();
//!     type Input = ();
//!     type Output = ();
//!     fn new(id: ProcessId, _n: usize, _seed: u64) -> Self {
//!         Flood { has_token: id.as_usize() == 0, sent: false }
//!     }
//!     fn send(&mut self, ctx: &mut Context<'_, Self>) {
//!         if self.has_token && !self.sent {
//!             for p in ctx.all_processes() {
//!                 ctx.send(p, (), Tag("flood"));
//!             }
//!             self.sent = true;
//!         }
//!     }
//!     fn receive(&mut self, ctx: &mut Context<'_, Self>,
//!                inbox: Inbox<'_, ()>, _input: Option<()>) {
//!         if !inbox.is_empty() && !self.has_token {
//!             self.has_token = true;
//!             ctx.output(());
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::<Flood>::new(EngineConfig::new(8).seed(42));
//! engine.run(3, &mut NullAdversary);
//! assert_eq!(engine.outputs().len(), 7); // everyone but the source reported
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod engine;
pub mod idset;
pub mod liveness;
pub mod message;
pub mod metrics;
pub mod process;
pub mod rng;
pub mod threaded;
pub mod topology;
pub mod trace;
pub mod transport;

pub use clock::{BlockClock, Round};
pub use engine::{
    Adversary, Context, CrashSpec, Engine, EngineBackend, EngineConfig, IncomingPolicy,
    InjectionRecord, NullAdversary, NullObserver, Observer, OutboxMeta, OutputRecord, Protocol,
    RoundDecision, RoundView, SentPolicy,
};
pub use idset::IdSet;
pub use liveness::{LivenessEvent, LivenessLog};
pub use message::{Envelope, EnvelopeRef, Inbox, OutboxColumns, Tag};
pub use metrics::{Metrics, RoundCounts};
pub use process::{ProcessId, ProcessState};
pub use topology::{Topology, TopologySpec};
pub use trace::{TraceEvent, Tracer};
pub use transport::{run_local_cluster, MemTransport, NodeDriver, RoundTransport};
