//! Liveness history: who was alive when.
//!
//! Quality of Delivery (Definition 1) only binds for *admissible* rumors:
//! rumor `ρ` injected at `p` in round `t` is admissible for `q ∈ ρ.D` when
//! both `p` and `q` are **continuously alive** during `[t, t + ρ.d]`. The
//! engine records every crash/restart so the harness can classify rumors
//! exactly.
//!
//! Continuous aliveness is only the *liveness* half of admissibility: the
//! paper proves QoD on a complete network, where an alive pair can always
//! communicate. On sparse or churning topologies the harness additionally
//! requires a temporal path between the pair
//! ([`Topology::reachable_within`](crate::topology::Topology::reachable_within));
//! this log deliberately knows nothing about connectivity, so it cannot be
//! misread as an "everyone hears everything" oracle.

use crate::clock::Round;
use crate::process::ProcessId;

/// A crash or restart event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LivenessEvent {
    /// `crash(p, t)` — the process halts during round `t`.
    Crash(Round),
    /// `restart(p, t)` — the process resumes (state reset) during round `t`.
    Restart(Round),
}

/// Per-process liveness timelines for one execution.
#[derive(Clone, Debug, Default)]
pub struct LivenessLog {
    events: Vec<Vec<LivenessEvent>>, // indexed by pid
}

impl LivenessLog {
    /// Creates a log for `n` processes (all initially alive).
    pub fn new(n: usize) -> Self {
        LivenessLog {
            events: vec![Vec::new(); n],
        }
    }

    /// Records a crash of `p` in round `t`.
    pub fn record_crash(&mut self, p: ProcessId, t: Round) {
        self.events[p.as_usize()].push(LivenessEvent::Crash(t));
    }

    /// Records a restart of `p` in round `t`.
    pub fn record_restart(&mut self, p: ProcessId, t: Round) {
        self.events[p.as_usize()].push(LivenessEvent::Restart(t));
    }

    /// Events for process `p` in chronological order.
    pub fn events(&self, p: ProcessId) -> &[LivenessEvent] {
        &self.events[p.as_usize()]
    }

    /// `true` iff `p` is alive at the *end* of round `t` (processes start
    /// alive in round 0; a crash in round `t` makes them dead at its end; a
    /// restart in round `t` makes them alive at its end).
    pub fn alive_at_end(&self, p: ProcessId, t: Round) -> bool {
        let mut alive = true;
        for ev in &self.events[p.as_usize()] {
            match *ev {
                LivenessEvent::Crash(r) if r <= t => alive = false,
                LivenessEvent::Restart(r) if r <= t => alive = true,
                _ => {}
            }
        }
        alive
    }

    /// `true` iff `p` is **continuously alive** over `[ta, tb]`: alive at the
    /// start of `ta`, at the end of `tb`, and suffering no crash event in
    /// between (the paper's definition).
    pub fn continuously_alive(&self, p: ProcessId, ta: Round, tb: Round) -> bool {
        debug_assert!(ta <= tb);
        // Alive at the beginning of ta = alive at the end of ta-1 (or the
        // initial state for round 0).
        let alive_at_start = if ta == Round::ZERO {
            // No event precedes round 0.
            true
        } else {
            self.alive_at_end(p, Round(ta.0 - 1))
        };
        if !alive_at_start {
            return false;
        }
        !self.events[p.as_usize()].iter().any(|ev| match *ev {
            LivenessEvent::Crash(r) => ta <= r && r <= tb,
            LivenessEvent::Restart(_) => false,
        })
    }

    /// Count of crash events across all processes.
    pub fn crash_count(&self) -> usize {
        self.events
            .iter()
            .flatten()
            .filter(|e| matches!(e, LivenessEvent::Crash(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn initially_alive_forever() {
        let log = LivenessLog::new(2);
        assert!(log.alive_at_end(p(0), Round(100)));
        assert!(log.continuously_alive(p(1), Round(0), Round(100)));
    }

    #[test]
    fn crash_breaks_continuity() {
        let mut log = LivenessLog::new(1);
        log.record_crash(p(0), Round(5));
        assert!(log.alive_at_end(p(0), Round(4)));
        assert!(!log.alive_at_end(p(0), Round(5)));
        assert!(log.continuously_alive(p(0), Round(0), Round(4)));
        assert!(!log.continuously_alive(p(0), Round(0), Round(5)));
        assert!(!log.continuously_alive(p(0), Round(5), Round(5)));
    }

    #[test]
    fn restart_resumes_but_does_not_heal_continuity() {
        let mut log = LivenessLog::new(1);
        log.record_crash(p(0), Round(5));
        log.record_restart(p(0), Round(8));
        assert!(log.alive_at_end(p(0), Round(8)));
        // Interval spanning the crash is broken even though p is alive at
        // both endpoints' boundary rounds.
        assert!(!log.continuously_alive(p(0), Round(0), Round(10)));
        // Interval strictly after the restart is fine.
        assert!(log.continuously_alive(p(0), Round(9), Round(20)));
        // Interval starting in the crashed gap is not alive at start.
        assert!(!log.continuously_alive(p(0), Round(6), Round(7)));
        // Starting exactly at the restart round: alive at end of 8, but not
        // at its *start* (it was dead at end of round 7).
        assert!(!log.continuously_alive(p(0), Round(8), Round(9)));
    }

    #[test]
    fn crash_count_tallies() {
        let mut log = LivenessLog::new(2);
        log.record_crash(p(0), Round(1));
        log.record_restart(p(0), Round(2));
        log.record_crash(p(1), Round(3));
        assert_eq!(log.crash_count(), 2);
        assert_eq!(log.events(p(0)).len(), 2);
    }
}
