//! The lock-step round engine and the CRRI adversary interface.
//!
//! Round structure (matching Section 2 of the paper):
//!
//! 1. **Send phase** — every alive process runs [`Protocol::send`]; its
//!    queued messages become this round's outbox. All random choices for the
//!    round are made here.
//! 2. **Adversary phase** — the [`Adversary`] observes the execution so far
//!    *and this round's outboxes* (it is adaptive and omniscient), then
//!    chooses crashes, restarts and rumor injections. For a process crashing
//!    this round it picks which of that process's sent messages survive; for
//!    a process restarting this round it picks which incoming messages are
//!    delivered.
//! 3. **Delivery phase** — surviving messages are delivered to processes
//!    that are alive at the end of the round.
//! 4. **Compute phase** — every alive process runs [`Protocol::receive`]
//!    with its inbox and any injected input.
//!
//! Restarted processes are reset to `Protocol::new(..)` (no durable storage)
//! and are told the current global round via [`Protocol::on_start`].
//!
//! # Execution backends
//!
//! The send and compute phases are *embarrassingly parallel across
//! processes*: each process touches only its own state, RNG stream and
//! per-slot buffers. [`EngineBackend::Parallel`] exploits this with scoped
//! worker threads while preserving **bit-identical** traces and metrics
//! with [`EngineBackend::Sequential`]:
//!
//! * every process draws from its own forked RNG stream, so concurrency
//!   cannot reorder random choices;
//! * workers write envelopes, metric events and outputs into per-process
//!   arenas, which the engine merges *in process-id order* at the phase
//!   barrier — the merged order equals the sequential iteration order by
//!   construction;
//! * the adversary, delivery and bookkeeping phases stay sequential, so an
//!   adaptive adversary observes exactly the ordered outbox snapshot it
//!   would have seen sequentially.

use rand::rngs::SmallRng;

use crate::clock::Round;
use crate::liveness::LivenessLog;
use crate::message::{EnvelopeRef, Inbox, SendColumns, Tag};
use crate::metrics::Metrics;
use crate::process::{ProcessId, ProcessState};
use crate::rng::fork_rng;
use crate::topology::{Topology, TopologySpec};
use crate::transport::MemTransport;

/// A synchronous message-passing protocol run by every process.
///
/// All processes run the same protocol type; per-process behavior derives
/// from the [`ProcessId`] passed to [`new`](Protocol::new).
pub trait Protocol: Sized {
    /// Message payload type.
    type Msg: Clone;
    /// Input injected by the adversary (a rumor, for gossip protocols).
    type Input;
    /// Output delivered to the local user (a reassembled rumor).
    type Output;

    /// Default initial state — used both at round 0 and after every restart
    /// (processes have no durable storage). `seed` is a fresh deterministic
    /// seed for this incarnation.
    fn new(id: ProcessId, n: usize, seed: u64) -> Self;

    /// Called once right after `new`, with the current global round (the
    /// only information a restarted process may consult).
    fn on_start(&mut self, _round: Round) {}

    /// Send phase: queue messages via [`Context::send`]. Random choices made
    /// here are visible to the adaptive adversary.
    fn send(&mut self, ctx: &mut Context<'_, Self>);

    /// Compute phase: process the messages received this round and any
    /// injected input. Messages queued here are sent next round.
    ///
    /// The inbox is a borrowed view into the round's shared outbox columns —
    /// payloads a protocol wants to keep must be cloned out.
    fn receive(
        &mut self,
        ctx: &mut Context<'_, Self>,
        inbox: Inbox<'_, Self::Msg>,
        input: Option<Self::Input>,
    );

    /// Estimated wire size of a message payload in bytes, used for the
    /// per-round *communication* complexity metrics (Section 7 of the
    /// paper discusses bits, not just message counts). Defaults to 0 —
    /// protocols that want byte metering override this.
    fn msg_size(_msg: &Self::Msg) -> u64 {
        0
    }
}

/// Per-process execution context handed to [`Protocol`] callbacks.
pub struct Context<'a, P: Protocol> {
    id: ProcessId,
    n: usize,
    round: Round,
    rng: &'a mut SmallRng,
    pending: &'a mut Vec<(ProcessId, P::Msg, Tag)>,
    outputs: &'a mut Vec<OutputRecord<P::Output>>,
}

impl<'a, P: Protocol> Context<'a, P> {
    /// Constructs a context for an alternative runtime (a threaded or
    /// networked backend driving [`Protocol`] implementations outside the
    /// lock-step engine). Runtimes are responsible for draining `pending`
    /// after the send phase and routing the messages themselves.
    pub fn for_runtime(
        id: ProcessId,
        n: usize,
        round: Round,
        rng: &'a mut SmallRng,
        pending: &'a mut Vec<(ProcessId, P::Msg, Tag)>,
        outputs: &'a mut Vec<OutputRecord<P::Output>>,
    ) -> Self {
        Context {
            id,
            n,
            round,
            rng,
            pending,
            outputs,
        }
    }

    /// This process's id.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Number of processes in the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current global round.
    pub fn round(&self) -> Round {
        self.round
    }

    /// This incarnation's deterministic RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Queues a point-to-point message. During the send phase it goes out
    /// this round; during the compute phase it goes out next round.
    ///
    /// Self-sends are delivered like any other message.
    pub fn send(&mut self, dst: ProcessId, msg: P::Msg, tag: Tag) {
        debug_assert!(dst.as_usize() < self.n, "send to unknown process {dst}");
        self.pending.push((dst, msg, tag));
    }

    /// Delivers an output to the local user (recorded by the engine).
    pub fn output(&mut self, out: P::Output) {
        self.outputs.push(OutputRecord {
            round: self.round,
            process: self.id,
            value: out,
        });
    }

    /// Iterates over every process id in the system (including self).
    pub fn all_processes(&self) -> impl Iterator<Item = ProcessId> {
        ProcessId::all(self.n)
    }
}

/// An output delivered by some process, stamped with time and place.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutputRecord<O> {
    /// Round of delivery.
    pub round: Round,
    /// Delivering process.
    pub process: ProcessId,
    /// The delivered value.
    pub value: O,
}

/// Metadata of one queued message, visible to the adaptive adversary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutboxMeta {
    /// Sender.
    pub src: ProcessId,
    /// Receiver.
    pub dst: ProcessId,
    /// Sending service.
    pub tag: Tag,
}

/// The adversary's view of the current round, presented *after* the send
/// phase — so its decisions may depend on the round's random choices, as the
/// CRRI adversary of the paper does.
#[derive(Debug)]
pub struct RoundView<'a> {
    /// Current round.
    pub round: Round,
    /// `alive[p]` — liveness at the start of the round.
    pub alive: &'a [bool],
    /// Every message queued this round.
    pub outbox: &'a [OutboxMeta],
}

impl RoundView<'_> {
    /// Number of processes.
    pub fn n(&self) -> usize {
        self.alive.len()
    }

    /// Ids of processes alive at the start of the round.
    pub fn alive_ids(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, a)| **a)
            .map(|(i, _)| ProcessId::new(i))
    }
}

/// What happens to the messages already sent by a process that crashes this
/// round (the paper: "some of the messages sent by p in round t may be
/// delivered, and some may be lost" — the adversary chooses).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum SentPolicy {
    /// All of the crashing process's round-`t` messages are delivered.
    DeliverAll,
    /// All are lost (the default, and the strongest attack).
    #[default]
    DropAll,
    /// Only messages to the listed destinations are delivered.
    DeliverOnlyTo(Vec<ProcessId>),
}

impl SentPolicy {
    fn allows(&self, dst: ProcessId) -> bool {
        match self {
            SentPolicy::DeliverAll => true,
            SentPolicy::DropAll => false,
            SentPolicy::DeliverOnlyTo(set) => set.contains(&dst),
        }
    }
}

/// What happens to messages addressed to a process restarting this round.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum IncomingPolicy {
    /// All messages sent to the restarting process this round are delivered.
    DeliverAll,
    /// All are lost (the default).
    #[default]
    DropAll,
    /// Only messages from the listed sources are delivered.
    DeliverOnlyFrom(Vec<ProcessId>),
}

impl IncomingPolicy {
    fn allows(&self, src: ProcessId) -> bool {
        match self {
            IncomingPolicy::DeliverAll => true,
            IncomingPolicy::DropAll => false,
            IncomingPolicy::DeliverOnlyFrom(set) => set.contains(&src),
        }
    }
}

/// A crash decision for one process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// Victim (must be alive; at most one liveness event per process per
    /// round).
    pub process: ProcessId,
    /// Fate of the victim's messages already sent this round.
    pub sent: SentPolicy,
}

impl CrashSpec {
    /// Crash `process`, dropping all of its round-`t` messages.
    pub fn dropping(process: ProcessId) -> Self {
        CrashSpec {
            process,
            sent: SentPolicy::DropAll,
        }
    }

    /// Crash `process` but let its round-`t` messages through.
    pub fn delivering(process: ProcessId) -> Self {
        CrashSpec {
            process,
            sent: SentPolicy::DeliverAll,
        }
    }
}

/// The adversary's decisions for one round.
#[derive(Clone, Debug)]
pub struct RoundDecision<I> {
    /// Processes to crash this round.
    pub crashes: Vec<CrashSpec>,
    /// Processes to restart this round, with the fate of their inbox.
    pub restarts: Vec<(ProcessId, IncomingPolicy)>,
    /// Rumors to inject — at most one per process per round, only at alive
    /// processes (others are dropped and logged as undelivered).
    pub injections: Vec<(ProcessId, I)>,
}

impl<I> Default for RoundDecision<I> {
    fn default() -> Self {
        RoundDecision {
            crashes: Vec::new(),
            restarts: Vec::new(),
            injections: Vec::new(),
        }
    }
}

impl<I> RoundDecision<I> {
    /// A decision with no crashes, restarts or injections.
    pub fn none() -> Self {
        Self::default()
    }
}

/// The CRRI adversary: adaptive, omniscient, in full control of crashes,
/// restarts and rumor injection.
pub trait Adversary<P: Protocol> {
    /// Decides this round's events after observing the round's outboxes.
    fn decide(&mut self, view: &RoundView<'_>) -> RoundDecision<P::Input>;
}

/// The trivial adversary: no failures, no injections.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullAdversary;

impl<P: Protocol> Adversary<P> for NullAdversary {
    fn decide(&mut self, _view: &RoundView<'_>) -> RoundDecision<P::Input> {
        RoundDecision::none()
    }
}

/// Passive observer of engine events — used by the confidentiality auditor,
/// which must see every delivered message to track fragment knowledge.
///
/// All methods default to no-ops.
pub trait Observer<P: Protocol> {
    /// A message was delivered (post adversary filtering). The envelope is
    /// a borrowed view into the round's outbox columns.
    fn on_deliver(&mut self, _env: EnvelopeRef<'_, P::Msg>) {}
    /// An input was injected at an alive process.
    fn on_inject(&mut self, _round: Round, _process: ProcessId, _input: &P::Input) {}
    /// An output was produced.
    fn on_output(&mut self, _rec: &OutputRecord<P::Output>) {}
    /// A process crashed.
    fn on_crash(&mut self, _round: Round, _process: ProcessId) {}
    /// A process restarted (state already reset).
    fn on_restart(&mut self, _round: Round, _process: ProcessId) {}
    /// A round completed.
    fn on_round_end(&mut self, _round: Round) {}
}

/// Observer that records nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl<P: Protocol> Observer<P> for NullObserver {}

/// An injected input and whether it reached an alive process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InjectionRecord {
    /// Round of injection.
    pub round: Round,
    /// Target process.
    pub process: ProcessId,
    /// `false` if the target was crashed and the injection was dropped.
    pub delivered: bool,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    n: usize,
    seed: u64,
    topology: TopologySpec,
}

impl EngineConfig {
    /// Configuration for `n` processes with seed 0 on the complete topology.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        EngineConfig {
            n,
            seed: 0,
            topology: TopologySpec::Complete,
        }
    }

    /// Sets the master seed (every run with the same config and adversary is
    /// bit-identical).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the communication topology (default: [`TopologySpec::Complete`],
    /// the paper's reliable complete network).
    ///
    /// # Panics
    ///
    /// Panics if the spec cannot be instantiated over `n` processes.
    pub fn topology(mut self, spec: TopologySpec) -> Self {
        if let Err(e) = spec.validate(self.n) {
            panic!("invalid topology {spec} for n={}: {e}", self.n);
        }
        self.topology = spec;
        self
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Master seed.
    pub fn master_seed(&self) -> u64 {
        self.seed
    }

    /// The configured topology spec.
    pub fn topology_spec(&self) -> TopologySpec {
        self.topology
    }
}

/// How the engine executes the per-process phases of a round.
///
/// Both backends produce **bit-identical** executions: identical delivery
/// sets, metrics, outputs and observer event order for the same config,
/// adversary and seed (see the module docs for why). `Parallel` pays a
/// per-round synchronization cost, so it wins only when per-process work is
/// substantial (large `n`, heavy protocols).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EngineBackend {
    /// One thread executes processes in id order (the default).
    #[default]
    Sequential,
    /// Scoped worker threads split processes into contiguous id chunks for
    /// the send and compute phases; adversary and delivery stay sequential.
    Parallel {
        /// Number of worker threads (>= 1). `Parallel { workers: 1 }` is
        /// the sequential schedule executed on one spawned worker.
        workers: usize,
    },
    /// Adaptive selection: `Parallel` with the machine's parallelism when
    /// the per-round work (one send + one compute slot per process) clears
    /// [`EngineBackend::AUTO_WORK_THRESHOLD`] and the host has more than one
    /// core; `Sequential` otherwise. Below that threshold the per-round
    /// thread-spawn barrier costs more than it saves
    /// (`BENCH_backend_scaling.json`: `par:8` is ~1.3× *slower* than `seq`
    /// at n = 1024 on a single-core host).
    Auto,
}

impl EngineBackend {
    /// Minimum per-round work (process slots) for `Auto` to go parallel.
    pub const AUTO_WORK_THRESHOLD: usize = 2048;

    /// A parallel backend sized to the machine
    /// (`std::thread::available_parallelism`, min 1).
    pub fn parallel_auto() -> Self {
        EngineBackend::Parallel {
            workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        }
    }

    /// Resolves `Auto` against the per-round work of an `n`-process system;
    /// `Sequential` and `Parallel` resolve to themselves. The result is
    /// never `Auto`.
    pub fn resolve(self, n: usize) -> EngineBackend {
        match self {
            EngineBackend::Auto => {
                let cores = std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1);
                if cores > 1 && n >= Self::AUTO_WORK_THRESHOLD {
                    EngineBackend::Parallel { workers: cores }
                } else {
                    EngineBackend::Sequential
                }
            }
            b => b,
        }
    }

    /// Worker count: 1 for `Sequential`, `workers` for `Parallel`; for
    /// `Auto`, the count of the backend it would resolve to on an
    /// arbitrarily large system.
    pub fn workers(&self) -> usize {
        match self {
            EngineBackend::Sequential => 1,
            EngineBackend::Parallel { workers } => *workers,
            EngineBackend::Auto => EngineBackend::Auto.resolve(usize::MAX).workers(),
        }
    }
}

impl std::fmt::Display for EngineBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineBackend::Sequential => write!(f, "seq"),
            EngineBackend::Parallel { workers } => write!(f, "par:{workers}"),
            EngineBackend::Auto => write!(f, "auto"),
        }
    }
}

impl std::str::FromStr for EngineBackend {
    type Err = String;

    /// Parses `seq` / `sequential`, `auto`, or `par` / `parallel` with an
    /// optional `:<workers>` suffix (defaulting to the machine's
    /// parallelism).
    fn from_str(s: &str) -> Result<Self, String> {
        let (kind, workers) = match s.split_once(':') {
            Some((k, w)) => (k, Some(w)),
            None => (s, None),
        };
        match kind {
            "seq" | "sequential" => match workers {
                None => Ok(EngineBackend::Sequential),
                Some(_) => Err(format!("sequential backend takes no worker count: {s:?}")),
            },
            "auto" => match workers {
                None => Ok(EngineBackend::Auto),
                Some(_) => Err(format!("auto backend takes no worker count: {s:?}")),
            },
            "par" | "parallel" => {
                let workers = match workers {
                    None => return Ok(EngineBackend::parallel_auto()),
                    Some(w) => w
                        .parse::<usize>()
                        .ok()
                        .filter(|&w| w >= 1)
                        .ok_or_else(|| format!("bad worker count in {s:?}"))?,
                };
                Ok(EngineBackend::Parallel { workers })
            }
            _ => Err(format!(
                "unknown backend {s:?} (expected seq, auto, or par[:N])"
            )),
        }
    }
}

struct Slot<P: Protocol> {
    proto: P,
    rng: SmallRng,
    state: ProcessState,
    generation: u64,
    pending: Vec<(ProcessId, P::Msg, Tag)>,
}

/// Per-process round buffers filled during the parallel phases and merged
/// in process-id order at the phase barrier. Kept across rounds so the
/// steady-state round allocates nothing.
struct SlotBuf<P: Protocol> {
    /// Messages queued in the send phase, in columnar (dst/tag/payload)
    /// layout — the sender id is implied by the slot.
    out: SendColumns<P::Msg>,
    /// `(tag, wire size)` of each send, in send order — replayed into
    /// [`Metrics`] at the merge so sharded counting is exact.
    sends: Vec<(Tag, u64)>,
    /// Outputs produced in either phase.
    outputs: Vec<OutputRecord<P::Output>>,
}

impl<P: Protocol> Default for SlotBuf<P> {
    fn default() -> Self {
        SlotBuf {
            out: SendColumns::default(),
            sends: Vec::new(),
            outputs: Vec::new(),
        }
    }
}

/// Send phase for one process, writing into its arena buffers. Shared by
/// both backends, so their per-process behavior is identical by
/// construction.
fn run_send_slot<P: Protocol>(
    i: usize,
    n: usize,
    round: Round,
    slot: &mut Slot<P>,
    buf: &mut SlotBuf<P>,
) {
    if !slot.state.is_alive() {
        return;
    }
    let id = ProcessId::new(i);
    {
        let mut ctx = Context::<P> {
            id,
            n,
            round,
            rng: &mut slot.rng,
            pending: &mut slot.pending,
            outputs: &mut buf.outputs,
        };
        slot.proto.send(&mut ctx);
    }
    for (dst, payload, tag) in slot.pending.drain(..) {
        buf.sends.push((tag, P::msg_size(&payload)));
        buf.out.push(dst, tag, payload);
    }
}

/// Compute phase for one process. Shared by both backends.
fn run_compute_slot<P: Protocol>(
    i: usize,
    n: usize,
    round: Round,
    slot: &mut Slot<P>,
    inbox: Inbox<'_, P::Msg>,
    input: &mut Option<P::Input>,
    buf: &mut SlotBuf<P>,
) {
    if !slot.state.is_alive() {
        return;
    }
    let input = input.take();
    let mut ctx = Context::<P> {
        id: ProcessId::new(i),
        n,
        round,
        rng: &mut slot.rng,
        pending: &mut slot.pending,
        outputs: &mut buf.outputs,
    };
    slot.proto.receive(&mut ctx, inbox, input);
}

/// The lock-step execution engine.
pub struct Engine<P: Protocol + 'static> {
    cfg: EngineConfig,
    round: Round,
    slots: Vec<Slot<P>>,
    factory: Box<dyn Fn(ProcessId, usize, u64) -> P>,
    metrics: Metrics,
    liveness: LivenessLog,
    outputs: Vec<OutputRecord<P::Output>>,
    injections: Vec<InjectionRecord>,
    /// Per-process round buffers (reused across rounds).
    arena: Vec<SlotBuf<P>>,
    /// The in-memory delivery substrate: topology, this round's merged
    /// columnar outbox and the per-process index-list inboxes into it. The
    /// engine drives it through its inherent zero-copy methods; networked
    /// deployments drive a socket transport through the same
    /// [`RoundTransport`](crate::transport::RoundTransport) superstep.
    mem: MemTransport<P::Msg>,
    /// The adversary's outbox-metadata view (reused across rounds).
    meta: Vec<OutboxMeta>,
    /// This round's injected inputs (reused across rounds).
    inputs: Vec<Option<P::Input>>,
}

impl<P: Protocol + 'static> Engine<P> {
    /// Creates an engine with all processes alive in their default initial
    /// state ([`Protocol::new`]).
    pub fn new(cfg: EngineConfig) -> Self {
        Self::with_factory(cfg, P::new)
    }

    /// Creates an engine whose processes are built by `factory` — used to
    /// thread deployment configuration into protocol state. The factory is
    /// also what restarts use, so a restarted process is reset to the same
    /// configured initial state (it keeps configuration and `[n]`, nothing
    /// else — exactly the paper's "default initial state consisting only of
    /// the algorithm and `[n]`").
    pub fn with_factory<F>(cfg: EngineConfig, factory: F) -> Self
    where
        F: Fn(ProcessId, usize, u64) -> P + 'static,
    {
        let factory: Box<dyn Fn(ProcessId, usize, u64) -> P> = Box::new(factory);
        let slots = (0..cfg.n)
            .map(|i| {
                let id = ProcessId::new(i);
                let seed = crate::rng::fork_seed(cfg.seed, id, 0);
                let mut proto = factory(id, cfg.n, seed);
                proto.on_start(Round::ZERO);
                Slot {
                    proto,
                    rng: fork_rng(cfg.seed, id, 0),
                    state: ProcessState::Alive,
                    generation: 0,
                    pending: Vec::new(),
                }
            })
            .collect();
        Engine {
            mem: MemTransport::new(cfg.topology, cfg.n, cfg.seed),
            cfg,
            round: Round::ZERO,
            slots,
            factory,
            metrics: Metrics::new(),
            liveness: LivenessLog::new(cfg.n),
            outputs: Vec::new(),
            injections: Vec::new(),
            arena: (0..cfg.n).map(|_| SlotBuf::default()).collect(),
            meta: Vec::new(),
            inputs: Vec::new(),
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.cfg.n
    }

    /// The round about to execute (i.e. completed rounds are `0..round`).
    pub fn round(&self) -> Round {
        self.round
    }

    /// Liveness of process `p` right now.
    pub fn state_of(&self, p: ProcessId) -> ProcessState {
        self.slots[p.as_usize()].state
    }

    /// Accumulated message metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The communication topology this engine delivers over.
    pub fn topology(&self) -> &Topology {
        self.mem.topology()
    }

    /// Crash/restart history.
    pub fn liveness(&self) -> &LivenessLog {
        &self.liveness
    }

    /// All outputs produced so far.
    pub fn outputs(&self) -> &[OutputRecord<P::Output>] {
        &self.outputs
    }

    /// Consumes the engine, returning the full output log.
    pub fn into_outputs(self) -> Vec<OutputRecord<P::Output>> {
        self.outputs
    }

    /// All injections attempted so far.
    pub fn injections(&self) -> &[InjectionRecord] {
        &self.injections
    }

    /// Read access to a process's protocol state (for white-box assertions
    /// in tests; the protocols themselves never use this).
    pub fn protocol(&self, p: ProcessId) -> &P {
        &self.slots[p.as_usize()].proto
    }

    /// Runs `rounds` rounds under `adversary`.
    pub fn run<A: Adversary<P>>(&mut self, rounds: u64, adversary: &mut A) {
        for _ in 0..rounds {
            self.step(adversary);
        }
    }

    /// Runs `rounds` rounds under `adversary`, reporting events to `obs`.
    pub fn run_observed<A: Adversary<P>, O: Observer<P>>(
        &mut self,
        rounds: u64,
        adversary: &mut A,
        obs: &mut O,
    ) {
        for _ in 0..rounds {
            self.step_observed(adversary, obs);
        }
    }

    /// Executes one round.
    pub fn step<A: Adversary<P>>(&mut self, adversary: &mut A) {
        self.step_observed(adversary, &mut NullObserver);
    }

    /// Executes one round, reporting events to `obs`.
    pub fn step_observed<A: Adversary<P>, O: Observer<P>>(
        &mut self,
        adversary: &mut A,
        obs: &mut O,
    ) {
        let n = self.cfg.n;
        let round = self.round;
        self.metrics.begin_round();
        let out_start = self.outputs.len();

        // ---- Phase 1: send. -------------------------------------------
        for (i, (slot, buf)) in self.slots.iter_mut().zip(self.arena.iter_mut()).enumerate() {
            run_send_slot(i, n, round, slot, buf);
        }
        self.merge_send_results();

        // ---- Phases 2 & 3: adversary + delivery. ----------------------
        self.prepare_round(adversary, obs);

        // ---- Phase 4: compute. ----------------------------------------
        {
            let outbox = self.mem.columns();
            let inbox_idx = self.mem.inbox_lists();
            for i in 0..n {
                run_compute_slot(
                    i,
                    n,
                    round,
                    &mut self.slots[i],
                    Inbox::columnar(outbox, &inbox_idx[i], round),
                    &mut self.inputs[i],
                    &mut self.arena[i],
                );
            }
        }
        self.merge_compute_outputs();

        self.complete_round(round, out_start, obs);
    }

    /// Merges the send-phase arena buffers in process-id order: metric
    /// events into [`Metrics`], the per-process send columns onto the round
    /// outbox (index ranges of the shared columns, no envelope moves),
    /// outputs into the global output log. This is the phase barrier that
    /// makes the parallel backend's observable order equal the sequential
    /// order.
    fn merge_send_results(&mut self) {
        // Last round's payloads die here; the columns keep their capacity.
        self.mem.begin_round(self.round);
        for (i, buf) in self.arena.iter_mut().enumerate() {
            for (tag, size) in buf.sends.drain(..) {
                self.metrics.record_send(tag, size);
            }
            self.mem.append_outbox(ProcessId::new(i), &mut buf.out);
            self.outputs.append(&mut buf.outputs);
        }
    }

    /// Merges compute-phase outputs in process-id order.
    fn merge_compute_outputs(&mut self) {
        for buf in &mut self.arena {
            self.outputs.append(&mut buf.outputs);
        }
    }

    /// The strictly sequential middle of a round: present the merged outbox
    /// to the adversary, apply crashes and restarts, deliver surviving
    /// messages into per-process inboxes, and stage injected inputs.
    fn prepare_round<A: Adversary<P>, O: Observer<P>>(&mut self, adversary: &mut A, obs: &mut O) {
        let n = self.cfg.n;
        let round = self.round;

        // ---- Phase 2: adversary. --------------------------------------
        let alive_at_start: Vec<bool> =
            self.slots.iter().map(|s| s.state.is_alive()).collect();
        self.meta.clear();
        self.meta.extend((0..self.mem.outbox_len()).map(|i| {
            let (src, dst, tag) = self.mem.outbox_meta(i);
            OutboxMeta { src, dst, tag }
        }));
        let view = RoundView {
            round,
            alive: &alive_at_start,
            outbox: &self.meta,
        };
        let decision = adversary.decide(&view);

        let mut touched = vec![false; n]; // one liveness event per round
        let mut crash_policy: Vec<Option<SentPolicy>> = vec![None; n];
        for spec in decision.crashes {
            let i = spec.process.as_usize();
            if !self.slots[i].state.is_alive() || touched[i] {
                debug_assert!(false, "invalid crash of {} in {round}", spec.process);
                continue;
            }
            touched[i] = true;
            self.slots[i].state = ProcessState::Crashed;
            self.slots[i].pending.clear();
            crash_policy[i] = Some(spec.sent);
            self.liveness.record_crash(spec.process, round);
            obs.on_crash(round, spec.process);
        }

        let mut restart_policy: Vec<Option<IncomingPolicy>> = vec![None; n];
        for (p, policy) in decision.restarts {
            let i = p.as_usize();
            if self.slots[i].state.is_alive() || touched[i] {
                debug_assert!(false, "invalid restart of {p} in {round}");
                continue;
            }
            touched[i] = true;
            let slot = &mut self.slots[i];
            slot.generation += 1;
            slot.rng = fork_rng(self.cfg.seed, p, slot.generation);
            let seed = crate::rng::fork_seed(self.cfg.seed, p, slot.generation);
            slot.proto = (self.factory)(p, n, seed);
            slot.proto.on_start(round);
            slot.pending.clear();
            slot.state = ProcessState::Alive;
            restart_policy[i] = Some(policy);
            self.liveness.record_restart(p, round);
            obs.on_restart(round, p);
        }

        // ---- Phase 3: delivery. ---------------------------------------
        // The filter chain (crash sent-policy → topology → receiver alive →
        // restart incoming-policy → observe) lives in MemTransport; the
        // engine supplies the adversary's gates as closures over this
        // round's decisions.
        {
            let slots = &self.slots;
            let metrics = &mut self.metrics;
            self.mem.route_with(
                round,
                |src, dst| match &crash_policy[src.as_usize()] {
                    Some(policy) => policy.allows(dst),
                    None => true,
                },
                |src, dst| {
                    let di = dst.as_usize();
                    if !slots[di].state.is_alive() {
                        return false; // crashed receivers receive nothing
                    }
                    match &restart_policy[di] {
                        Some(policy) => policy.allows(src),
                        None => true,
                    }
                },
                |env| obs.on_deliver(env),
                || metrics.record_topology_drop(),
            );
        }

        // ---- Injections (staged for the compute phase). ---------------
        self.inputs.clear();
        self.inputs.resize_with(n, || None);
        for (p, input) in decision.injections {
            let i = p.as_usize();
            let delivered = self.slots[i].state.is_alive();
            debug_assert!(
                self.inputs[i].is_none(),
                "at most one injection per process per round"
            );
            self.injections.push(InjectionRecord {
                round,
                process: p,
                delivered,
            });
            if delivered {
                obs.on_inject(round, p, &input);
                self.inputs[i] = Some(input);
            }
        }
    }

    /// End-of-round bookkeeping: meter this round's deliveries, notify the
    /// observer, advance the clock.
    fn complete_round<O: Observer<P>>(&mut self, round: Round, out_start: usize, obs: &mut O) {
        for rec in &self.outputs[out_start..] {
            self.metrics.record_delivery();
            obs.on_output(rec);
        }
        obs.on_round_end(round);
        self.round = round.next();
    }
}

impl<P> Engine<P>
where
    P: Protocol + Send + 'static,
    P::Msg: Send + Sync,
    P::Input: Send,
    P::Output: Send,
{
    /// Executes one round on the given backend (reporting events to `obs`).
    ///
    /// Backends may be switched freely between rounds — the engine's state
    /// evolution is backend-independent.
    pub fn step_backend<A: Adversary<P>, O: Observer<P>>(
        &mut self,
        backend: EngineBackend,
        adversary: &mut A,
        obs: &mut O,
    ) {
        match backend.resolve(self.cfg.n) {
            EngineBackend::Sequential => self.step_observed(adversary, obs),
            EngineBackend::Parallel { workers } => {
                self.step_observed_parallel(workers, adversary, obs)
            }
            EngineBackend::Auto => unreachable!("resolve() never returns Auto"),
        }
    }

    /// Runs `rounds` rounds under `adversary` on the given backend.
    pub fn run_backend<A: Adversary<P>>(
        &mut self,
        backend: EngineBackend,
        rounds: u64,
        adversary: &mut A,
    ) {
        self.run_observed_backend(backend, rounds, adversary, &mut NullObserver);
    }

    /// Runs `rounds` rounds on the given backend, reporting events to `obs`.
    pub fn run_observed_backend<A: Adversary<P>, O: Observer<P>>(
        &mut self,
        backend: EngineBackend,
        rounds: u64,
        adversary: &mut A,
        obs: &mut O,
    ) {
        for _ in 0..rounds {
            self.step_backend(backend, adversary, obs);
        }
    }

    /// Executes one round with the send and compute phases split across
    /// `workers` scoped threads (contiguous process-id chunks). Bit-identical
    /// to [`step_observed`](Engine::step_observed) — see the module docs.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn step_observed_parallel<A: Adversary<P>, O: Observer<P>>(
        &mut self,
        workers: usize,
        adversary: &mut A,
        obs: &mut O,
    ) {
        assert!(workers >= 1, "parallel backend needs at least one worker");
        let n = self.cfg.n;
        let round = self.round;
        self.metrics.begin_round();
        let out_start = self.outputs.len();
        // Fixed chunking: process ids [c*chunk, (c+1)*chunk) go to worker c,
        // independent of scheduling, so work assignment is deterministic.
        let chunk = n.div_ceil(workers).max(1);

        // ---- Phase 1: send (parallel). --------------------------------
        {
            let slots = &mut self.slots;
            let arena = &mut self.arena;
            std::thread::scope(|s| {
                for (ci, (slot_chunk, buf_chunk)) in slots
                    .chunks_mut(chunk)
                    .zip(arena.chunks_mut(chunk))
                    .enumerate()
                {
                    let base = ci * chunk;
                    s.spawn(move || {
                        for (j, (slot, buf)) in
                            slot_chunk.iter_mut().zip(buf_chunk.iter_mut()).enumerate()
                        {
                            run_send_slot(base + j, n, round, slot, buf);
                        }
                    });
                }
            });
        }
        // Barrier: workers joined; merge in process-id order.
        self.merge_send_results();

        // ---- Phases 2 & 3: adversary + delivery (sequential). ---------
        self.prepare_round(adversary, obs);

        // ---- Phase 4: compute (parallel). -----------------------------
        {
            let slots = &mut self.slots;
            let arena = &mut self.arena;
            let outbox = self.mem.columns();
            let inbox_idx = self.mem.inbox_lists();
            let inputs = &mut self.inputs;
            std::thread::scope(|s| {
                for (ci, ((slot_chunk, buf_chunk), (idx_chunk, input_chunk))) in slots
                    .chunks_mut(chunk)
                    .zip(arena.chunks_mut(chunk))
                    .zip(inbox_idx.chunks(chunk).zip(inputs.chunks_mut(chunk)))
                    .enumerate()
                {
                    let base = ci * chunk;
                    s.spawn(move || {
                        for (j, ((slot, buf), (idx, input))) in slot_chunk
                            .iter_mut()
                            .zip(buf_chunk.iter_mut())
                            .zip(idx_chunk.iter().zip(input_chunk.iter_mut()))
                            .enumerate()
                        {
                            let inbox = Inbox::columnar(outbox, idx, round);
                            run_compute_slot(base + j, n, round, slot, inbox, input, buf);
                        }
                    });
                }
            });
        }
        self.merge_compute_outputs();

        self.complete_round(round, out_start, obs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every process pings its successor each round and reports each ping.
    struct Ring;

    impl Protocol for Ring {
        type Msg = u64;
        type Input = u64;
        type Output = (ProcessId, u64);

        fn new(_id: ProcessId, _n: usize, _seed: u64) -> Self {
            Ring
        }
        fn send(&mut self, ctx: &mut Context<'_, Self>) {
            let next = ProcessId::new((ctx.id().as_usize() + 1) % ctx.n());
            let r = ctx.round().as_u64();
            ctx.send(next, r, Tag("ping"));
        }
        fn receive(
            &mut self,
            ctx: &mut Context<'_, Self>,
            inbox: Inbox<'_, u64>,
            input: Option<u64>,
        ) {
            for env in inbox {
                let src = env.src;
                let payload = *env.payload;
                ctx.output((src, payload));
            }
            if let Some(v) = input {
                ctx.output((ctx.id(), v + 1000));
            }
        }
    }

    #[test]
    fn failure_free_ring_delivers_everything() {
        let mut e = Engine::<Ring>::new(EngineConfig::new(4).seed(1));
        e.run(3, &mut NullAdversary);
        // 4 pings per round × 3 rounds.
        assert_eq!(e.metrics().total(), 12);
        assert_eq!(e.metrics().max_per_round(), 4);
        assert_eq!(e.outputs().len(), 12);
        assert_eq!(e.metrics().deliveries(), 12);
    }

    struct ScriptedAdversary {
        script: Vec<(u64, RoundDecision<u64>)>,
    }

    impl Adversary<Ring> for ScriptedAdversary {
        fn decide(&mut self, view: &RoundView<'_>) -> RoundDecision<u64> {
            let t = view.round.as_u64();
            match self.script.iter().position(|(r, _)| *r == t) {
                Some(i) => self.script.remove(i).1,
                None => RoundDecision::none(),
            }
        }
    }

    #[test]
    fn crash_drops_sent_and_received_messages() {
        // Crash p1 in round 0 with DropAll: its ping to p2 dies, and the
        // ping from p0 to p1 also dies (crashed receivers receive nothing).
        let mut adv = ScriptedAdversary {
            script: vec![(
                0,
                RoundDecision {
                    crashes: vec![CrashSpec::dropping(ProcessId::new(1))],
                    restarts: vec![],
                    injections: vec![],
                },
            )],
        };
        let mut e = Engine::<Ring>::new(EngineConfig::new(4).seed(1));
        e.step(&mut adv);
        // Sent messages are still metered (complexity counts sends).
        assert_eq!(e.metrics().round(0).total(), 4);
        // p2 got nothing, p1 got nothing: only p0←p3 and p3←p2 delivered.
        assert_eq!(e.outputs().len(), 2);
        assert_eq!(e.state_of(ProcessId::new(1)), ProcessState::Crashed);
        // Crashed process does not send in round 1: 3 messages.
        e.step(&mut adv);
        assert_eq!(e.metrics().round(1).total(), 3);
    }

    #[test]
    fn crash_with_deliver_all_lets_final_messages_through() {
        let mut adv = ScriptedAdversary {
            script: vec![(
                0,
                RoundDecision {
                    crashes: vec![CrashSpec::delivering(ProcessId::new(1))],
                    restarts: vec![],
                    injections: vec![],
                },
            )],
        };
        let mut e = Engine::<Ring>::new(EngineConfig::new(4).seed(1));
        e.step(&mut adv);
        // p1's ping to p2 survives; p1 itself receives nothing.
        assert_eq!(e.outputs().len(), 3);
    }

    #[test]
    fn restart_resets_and_rejoins() {
        let p1 = ProcessId::new(1);
        let mut adv = ScriptedAdversary {
            script: vec![
                (
                    0,
                    RoundDecision {
                        crashes: vec![CrashSpec::dropping(p1)],
                        restarts: vec![],
                        injections: vec![],
                    },
                ),
                (
                    2,
                    RoundDecision {
                        crashes: vec![],
                        restarts: vec![(p1, IncomingPolicy::DeliverAll)],
                        injections: vec![],
                    },
                ),
            ],
        };
        let mut e = Engine::<Ring>::new(EngineConfig::new(4).seed(1));
        e.run(4, &mut adv);
        assert_eq!(e.state_of(p1), ProcessState::Alive);
        // Round 2: p1 restarted mid-round, receives p0's ping (DeliverAll)
        // but did not send. Round 3: fully back, sends again.
        assert_eq!(e.metrics().round(2).total(), 3);
        assert_eq!(e.metrics().round(3).total(), 4);
        assert!(e.liveness().continuously_alive(p1, Round(3), Round(3)));
        assert!(!e.liveness().continuously_alive(p1, Round(0), Round(3)));
    }

    #[test]
    fn restart_with_drop_all_loses_inflight_messages() {
        let p1 = ProcessId::new(1);
        let mut adv = ScriptedAdversary {
            script: vec![
                (
                    0,
                    RoundDecision {
                        crashes: vec![CrashSpec::dropping(p1)],
                        restarts: vec![],
                        injections: vec![],
                    },
                ),
                (
                    1,
                    RoundDecision {
                        crashes: vec![],
                        restarts: vec![(p1, IncomingPolicy::DropAll)],
                        injections: vec![],
                    },
                ),
            ],
        };
        let mut e = Engine::<Ring>::new(EngineConfig::new(4).seed(1));
        e.run(2, &mut adv);
        // Round 1 outputs: p2←p1? no (p1 crashed at send time of round 1 —
        // restart happens after send phase). p1's inbox dropped by policy.
        // Delivered: p3←p2, p0←p3. p2←p1 missing, p1←p0 dropped.
        let round1: Vec<_> = e.outputs().iter().filter(|o| o.round == Round(1)).collect();
        assert_eq!(round1.len(), 2);
    }

    #[test]
    fn injections_reach_only_alive_processes() {
        let p1 = ProcessId::new(1);
        let mut adv = ScriptedAdversary {
            script: vec![
                (
                    0,
                    RoundDecision {
                        crashes: vec![CrashSpec::dropping(p1)],
                        restarts: vec![],
                        injections: vec![(ProcessId::new(0), 7u64)],
                    },
                ),
                (
                    1,
                    RoundDecision {
                        crashes: vec![],
                        restarts: vec![],
                        injections: vec![(p1, 9u64)],
                    },
                ),
            ],
        };
        let mut e = Engine::<Ring>::new(EngineConfig::new(4).seed(1));
        e.run(2, &mut adv);
        let injected: Vec<_> = e
            .outputs()
            .iter()
            .filter(|o| o.value.1 >= 1000)
            .collect();
        assert_eq!(injected.len(), 1, "only the alive process saw its input");
        assert_eq!(injected[0].value, (ProcessId::new(0), 1007));
        assert_eq!(e.injections().len(), 2);
        assert!(e.injections()[0].delivered);
        assert!(!e.injections()[1].delivered);
    }

    #[test]
    fn determinism_same_seed_same_execution() {
        let run = |seed| {
            let mut e = Engine::<Ring>::new(EngineConfig::new(8).seed(seed));
            e.run(5, &mut NullAdversary);
            (e.metrics().total(), e.outputs().len())
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn backend_parses_and_displays() {
        use std::str::FromStr;
        assert_eq!(
            EngineBackend::from_str("seq").unwrap(),
            EngineBackend::Sequential
        );
        assert_eq!(
            EngineBackend::from_str("sequential").unwrap(),
            EngineBackend::Sequential
        );
        assert_eq!(
            EngineBackend::from_str("par:4").unwrap(),
            EngineBackend::Parallel { workers: 4 }
        );
        assert_eq!(
            EngineBackend::from_str("parallel:1").unwrap(),
            EngineBackend::Parallel { workers: 1 }
        );
        assert!(matches!(
            EngineBackend::from_str("par").unwrap(),
            EngineBackend::Parallel { workers } if workers >= 1
        ));
        assert!(EngineBackend::from_str("par:0").is_err());
        assert!(EngineBackend::from_str("seq:2").is_err());
        assert!(EngineBackend::from_str("bogus").is_err());
        assert_eq!(EngineBackend::Sequential.to_string(), "seq");
        assert_eq!(EngineBackend::Parallel { workers: 8 }.to_string(), "par:8");
        assert_eq!(EngineBackend::default(), EngineBackend::Sequential);
        assert_eq!(EngineBackend::Sequential.workers(), 1);
        assert_eq!(EngineBackend::Parallel { workers: 3 }.workers(), 3);
        assert_eq!(EngineBackend::from_str("auto").unwrap(), EngineBackend::Auto);
        assert!(EngineBackend::from_str("auto:2").is_err());
        assert_eq!(EngineBackend::Auto.to_string(), "auto");
        // Below the work threshold Auto always degrades to sequential.
        assert_eq!(EngineBackend::Auto.resolve(8), EngineBackend::Sequential);
        // At/above the threshold it picks parallel iff this host has >1 core.
        let big = EngineBackend::Auto.resolve(EngineBackend::AUTO_WORK_THRESHOLD);
        match std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1) {
            1 => assert_eq!(big, EngineBackend::Sequential),
            cores => assert_eq!(big, EngineBackend::Parallel { workers: cores }),
        }
        // Non-auto backends resolve to themselves.
        assert_eq!(
            EngineBackend::Sequential.resolve(1 << 20),
            EngineBackend::Sequential
        );
        assert_eq!(
            EngineBackend::Parallel { workers: 2 }.resolve(1),
            EngineBackend::Parallel { workers: 2 }
        );
    }

    /// Observer that fingerprints the full ordered event stream, for
    /// backend-equivalence assertions.
    #[derive(Default)]
    struct EventLog {
        events: Vec<String>,
    }
    impl Observer<Ring> for EventLog {
        fn on_deliver(&mut self, env: EnvelopeRef<'_, u64>) {
            self.events
                .push(format!("d {} {} {} {}", env.src, env.dst, env.round, env.payload));
        }
        fn on_inject(&mut self, round: Round, p: ProcessId, input: &u64) {
            self.events.push(format!("i {round} {p} {input}"));
        }
        fn on_output(&mut self, rec: &OutputRecord<(ProcessId, u64)>) {
            self.events
                .push(format!("o {} {} {:?}", rec.round, rec.process, rec.value));
        }
        fn on_crash(&mut self, round: Round, p: ProcessId) {
            self.events.push(format!("c {round} {p}"));
        }
        fn on_restart(&mut self, round: Round, p: ProcessId) {
            self.events.push(format!("r {round} {p}"));
        }
        fn on_round_end(&mut self, round: Round) {
            self.events.push(format!("e {round}"));
        }
    }

    fn churn_script() -> ScriptedAdversary {
        let p1 = ProcessId::new(1);
        let p3 = ProcessId::new(3);
        ScriptedAdversary {
            script: vec![
                (
                    0,
                    RoundDecision {
                        crashes: vec![CrashSpec::dropping(p1)],
                        restarts: vec![],
                        injections: vec![(ProcessId::new(0), 7u64)],
                    },
                ),
                (
                    1,
                    RoundDecision {
                        crashes: vec![CrashSpec::delivering(p3)],
                        restarts: vec![],
                        injections: vec![(p1, 9u64)],
                    },
                ),
                (
                    2,
                    RoundDecision {
                        crashes: vec![],
                        restarts: vec![
                            (p1, IncomingPolicy::DeliverAll),
                            (p3, IncomingPolicy::DropAll),
                        ],
                        injections: vec![(ProcessId::new(2), 11u64)],
                    },
                ),
            ],
        }
    }

    #[test]
    fn parallel_backend_is_bit_identical_to_sequential() {
        // Same seed, same scripted churn: the full ordered event stream must
        // match the sequential backend exactly, for every worker count.
        let run = |backend: EngineBackend| {
            let mut e = Engine::<Ring>::new(EngineConfig::new(8).seed(42));
            let mut log = EventLog::default();
            e.run_observed_backend(backend, 6, &mut churn_script(), &mut log);
            (
                log.events,
                e.metrics().total(),
                e.metrics().deliveries(),
                e.outputs().to_vec(),
                e.injections().to_vec(),
            )
        };
        let seq = run(EngineBackend::Sequential);
        for workers in [1, 2, 3, 8, 16] {
            let par = run(EngineBackend::Parallel { workers });
            assert_eq!(seq, par, "workers={workers} diverged from sequential");
        }
    }

    #[test]
    fn backend_switch_mid_run_is_seamless() {
        // Alternating backends between rounds produces the same execution as
        // either backend alone (state evolution is backend-independent).
        let mut adv_a = churn_script();
        let mut a = Engine::<Ring>::new(EngineConfig::new(6).seed(9));
        for r in 0..6u64 {
            let backend = if r % 2 == 0 {
                EngineBackend::Sequential
            } else {
                EngineBackend::Parallel { workers: 2 }
            };
            a.step_backend(backend, &mut adv_a, &mut NullObserver);
        }
        let mut adv_b = churn_script();
        let mut b = Engine::<Ring>::new(EngineConfig::new(6).seed(9));
        b.run(6, &mut adv_b);
        assert_eq!(a.outputs(), b.outputs());
        assert_eq!(a.metrics().total(), b.metrics().total());
    }

    #[test]
    fn parallel_handles_more_workers_than_processes() {
        let mut e = Engine::<Ring>::new(EngineConfig::new(2).seed(1));
        e.run_backend(EngineBackend::Parallel { workers: 16 }, 3, &mut NullAdversary);
        assert_eq!(e.outputs().len(), 6); // 2 pings per round × 3 rounds
    }

    /// Protocol that outputs one random value, to check RNG reset semantics.
    struct RandOnce {
        emitted: bool,
    }
    impl Protocol for RandOnce {
        type Msg = ();
        type Input = ();
        type Output = u64;
        fn new(_id: ProcessId, _n: usize, _seed: u64) -> Self {
            RandOnce { emitted: false }
        }
        fn send(&mut self, _ctx: &mut Context<'_, Self>) {}
        fn receive(&mut self, ctx: &mut Context<'_, Self>, _i: Inbox<'_, ()>, _in: Option<()>) {
            if !self.emitted {
                self.emitted = true;
                let v = rand::Rng::gen::<u64>(ctx.rng());
                ctx.output(v);
            }
        }
    }

    struct CrashRestartOnce;
    impl Adversary<RandOnce> for CrashRestartOnce {
        fn decide(&mut self, view: &RoundView<'_>) -> RoundDecision<()> {
            match view.round.as_u64() {
                0 => RoundDecision {
                    crashes: vec![CrashSpec::dropping(ProcessId::new(0))],
                    restarts: vec![],
                    injections: vec![],
                },
                1 => RoundDecision {
                    crashes: vec![],
                    restarts: vec![(ProcessId::new(0), IncomingPolicy::DropAll)],
                    injections: vec![],
                },
                _ => RoundDecision::none(),
            }
        }
    }

    #[test]
    fn restart_gets_fresh_rng_stream() {
        let mut e = Engine::<RandOnce>::new(EngineConfig::new(1).seed(5));
        e.run(3, &mut CrashRestartOnce);
        // p0 crashed in round 0 before computing... no: compute happens after
        // crash, so crashed p0 never emitted in round 0. After restart it
        // emits once. Exactly one output.
        assert_eq!(e.outputs().len(), 1);
        let after_restart = e.outputs()[0].value;

        // A failure-free run emits the generation-0 value, which must differ
        // from the generation-1 value above.
        let mut f = Engine::<RandOnce>::new(EngineConfig::new(1).seed(5));
        f.run(1, &mut NullAdversary);
        assert_ne!(f.outputs()[0].value, after_restart);
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::message::Tag;

    /// p0 sends to p1 and p2 every round; receivers report.
    struct Fan;
    impl Protocol for Fan {
        type Msg = ();
        type Input = ();
        type Output = ProcessId;
        fn new(_id: ProcessId, _n: usize, _seed: u64) -> Self {
            Fan
        }
        fn send(&mut self, ctx: &mut Context<'_, Self>) {
            if ctx.id().as_usize() == 0 {
                ctx.send(ProcessId::new(1), (), Tag("fan"));
                ctx.send(ProcessId::new(2), (), Tag("fan"));
            }
        }
        fn receive(&mut self, ctx: &mut Context<'_, Self>, inbox: Inbox<'_, ()>, _i: Option<()>) {
            for _ in inbox {
                ctx.output(ctx.id());
            }
        }
    }

    struct SubsetCrash;
    impl Adversary<Fan> for SubsetCrash {
        fn decide(&mut self, view: &RoundView<'_>) -> RoundDecision<()> {
            if view.round == Round(0) {
                RoundDecision {
                    crashes: vec![CrashSpec {
                        process: ProcessId::new(0),
                        sent: SentPolicy::DeliverOnlyTo(vec![ProcessId::new(2)]),
                    }],
                    restarts: vec![],
                    injections: vec![],
                }
            } else {
                RoundDecision::none()
            }
        }
    }

    #[test]
    fn deliver_only_to_filters_per_destination() {
        // The paper's partial-delivery semantics: the adversary picks WHICH
        // of a crashing process's messages survive, per destination.
        let mut e = Engine::<Fan>::new(EngineConfig::new(3).seed(1));
        e.step(&mut SubsetCrash);
        let receivers: Vec<ProcessId> = e.outputs().iter().map(|o| o.value).collect();
        assert_eq!(receivers, vec![ProcessId::new(2)], "only p2's copy survives");
        // Both sends are still metered (complexity counts sends).
        assert_eq!(e.metrics().round(0).total(), 2);
    }

    struct SubsetRestart;
    impl Adversary<Fan> for SubsetRestart {
        fn decide(&mut self, view: &RoundView<'_>) -> RoundDecision<()> {
            match view.round.as_u64() {
                0 => RoundDecision {
                    crashes: vec![CrashSpec::dropping(ProcessId::new(1))],
                    restarts: vec![],
                    injections: vec![],
                },
                1 => RoundDecision {
                    crashes: vec![],
                    restarts: vec![(
                        ProcessId::new(1),
                        IncomingPolicy::DeliverOnlyFrom(vec![ProcessId::new(0)]),
                    )],
                    injections: vec![],
                },
                _ => RoundDecision::none(),
            }
        }
    }

    #[test]
    fn deliver_only_from_filters_restart_inbox() {
        let mut e = Engine::<Fan>::new(EngineConfig::new(3).seed(1));
        e.run(2, &mut SubsetRestart);
        // Round 1: p1 restarts with a from-p0 filter; p0's message arrives.
        let round1: Vec<_> = e
            .outputs()
            .iter()
            .filter(|o| o.round == Round(1) && o.value == ProcessId::new(1))
            .collect();
        assert_eq!(round1.len(), 1);
    }
}
