//! A bulk-synchronous *threaded* runtime for the same [`Protocol`] trait.
//!
//! The lock-step [`Engine`](crate::Engine) is the faithful substrate for the
//! paper's adaptive-adversary analysis; this module demonstrates that the
//! protocol logic is runtime-agnostic by executing the same `Protocol`
//! implementations on real OS threads with message passing over crossbeam
//! channels and a barrier per round (a BSP superstep). It supports
//! failure-free executions plus *scheduled* (oblivious) crash/restart scripts
//! — an adaptive adversary is definitionally impossible over concurrent
//! wall-clock execution, which is exactly why the lock-step engine exists.
//!
//! ```
//! use congos_sim::threaded::{run_threaded, ThreadedConfig};
//! use congos_sim::{Context, Envelope, Protocol, ProcessId, Tag};
//!
//! struct Echo;
//! impl Protocol for Echo {
//!     type Msg = u32;
//!     type Input = ();
//!     type Output = u32;
//!     fn new(_id: ProcessId, _n: usize, _seed: u64) -> Self { Echo }
//!     fn send(&mut self, ctx: &mut Context<'_, Self>) {
//!         if ctx.id().as_usize() == 0 && ctx.round().as_u64() == 0 {
//!             for p in ctx.all_processes() { ctx.send(p, 7, Tag("echo")); }
//!         }
//!     }
//!     fn receive(&mut self, ctx: &mut Context<'_, Self>,
//!                inbox: &[Envelope<u32>], _i: Option<()>) {
//!         for e in inbox { let v = e.payload; ctx.output(v); }
//!     }
//! }
//!
//! let report = run_threaded::<Echo>(ThreadedConfig::new(4).rounds(2));
//! assert_eq!(report.outputs.len(), 4);
//! ```

use std::collections::VecDeque;
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::clock::Round;
use crate::engine::{Context, OutputRecord, Protocol};
use crate::message::{Envelope, Tag};
use crate::process::ProcessId;
use crate::rng::{fork_rng, fork_seed};

/// Configuration for a threaded run.
#[derive(Clone, Debug)]
pub struct ThreadedConfig {
    n: usize,
    seed: u64,
    rounds: u64,
}

impl ThreadedConfig {
    /// A failure-free threaded run of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        ThreadedConfig {
            n,
            seed: 0,
            rounds: 1,
        }
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of rounds to execute.
    pub fn rounds(mut self, rounds: u64) -> Self {
        self.rounds = rounds;
        self
    }
}

/// Result of a threaded run.
#[derive(Debug)]
pub struct ThreadedReport<O> {
    /// Outputs from all processes, ordered by `(round, process)`.
    pub outputs: Vec<OutputRecord<O>>,
    /// Total messages sent.
    pub messages: u64,
    /// Rounds executed.
    pub rounds: u64,
}

enum Wire<M> {
    Msg(Envelope<M>),
    /// End-of-round marker, stamped with its round: peers may run one
    /// superstep ahead, so markers must not be attributed to the wrong
    /// barrier.
    EndOfRound(u64),
}

/// Runs `P` on one OS thread per process, in bulk-synchronous supersteps,
/// with no injections.
pub fn run_threaded<P>(cfg: ThreadedConfig) -> ThreadedReport<P::Output>
where
    P: Protocol + Send,
    P::Msg: Send,
    P::Input: Send,
    P::Output: Send,
{
    run_threaded_with::<P>(cfg, Vec::new())
}

/// Runs `P` on one OS thread per process, in bulk-synchronous supersteps.
///
/// Each round: every thread runs its send phase, pushes envelopes directly to
/// the destination thread's channel, signals end-of-round to every peer, then
/// drains its own channel until it has seen `n` end-of-round markers — a
/// distributed barrier — and finally runs its compute phase (receiving any
/// scheduled injection for `(round, process)`).
pub fn run_threaded_with<P>(
    cfg: ThreadedConfig,
    injections: Vec<(u64, ProcessId, P::Input)>,
) -> ThreadedReport<P::Output>
where
    P: Protocol + Send,
    P::Msg: Send,
    P::Input: Send,
    P::Output: Send,
{
    let n = cfg.n;
    let mut senders: Vec<Sender<Wire<P::Msg>>> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<Receiver<Wire<P::Msg>>>> = Vec::with_capacity(n);
    for _ in 0..n {
        // Capacity n*round fanout is unbounded in principle; a generous
        // bound with blocking sends is fine for a barrier-synchronized step.
        let (tx, rx) = bounded::<Wire<P::Msg>>(64 * n.max(16));
        senders.push(tx);
        receivers.push(Some(rx));
    }

    let outputs = Arc::new(Mutex::new(Vec::<OutputRecord<P::Output>>::new()));
    let messages = Arc::new(Mutex::new(0u64));

    // Partition the injection schedule by target process.
    let mut per_process: Vec<Vec<(u64, P::Input)>> = (0..n).map(|_| Vec::new()).collect();
    for (round, pid, input) in injections {
        per_process[pid.as_usize()].push((round, input));
    }
    let mut receivers = receivers;

    std::thread::scope(|scope| {
        for (i, mut my_injections) in per_process.into_iter().enumerate() {
            my_injections.sort_by_key(|(r, _)| *r);
            let my_rx = receivers[i].take().expect("receiver taken once");
            let senders = senders.clone();
            let outputs = Arc::clone(&outputs);
            let messages = Arc::clone(&messages);
            let cfg = cfg.clone();
            scope.spawn(move || {
                let id = ProcessId::new(i);
                let mut rng = fork_rng(cfg.seed, id, 0);
                let mut proto = P::new(id, n, fork_seed(cfg.seed, id, 0));
                proto.on_start(Round::ZERO);
                let mut pending: Vec<(ProcessId, P::Msg, Tag)> = Vec::new();
                let mut local_outputs: Vec<OutputRecord<P::Output>> = Vec::new();
                let mut carried: VecDeque<Wire<P::Msg>> = VecDeque::new();
                let mut sent = 0u64;

                for r in 0..cfg.rounds {
                    let round = Round(r);
                    // Send phase.
                    {
                        let mut ctx = Context::<P>::for_runtime(
                            id,
                            n,
                            round,
                            &mut rng,
                            &mut pending,
                            &mut local_outputs,
                        );
                        proto.send(&mut ctx);
                    }
                    for (dst, payload, tag) in pending.drain(..) {
                        sent += 1;
                        senders[dst.as_usize()]
                            .send(Wire::Msg(Envelope {
                                src: id,
                                dst,
                                round,
                                tag,
                                payload,
                            }))
                            .expect("peer alive");
                    }
                    for tx in &senders {
                        tx.send(Wire::EndOfRound(r)).expect("peer alive");
                    }
                    // Barrier: collect until n markers *for this round*.
                    // Future-round traffic is parked in `carried` and only
                    // rescanned at the next round (re-polling it within the
                    // same round would spin).
                    let mut inbox: Vec<Envelope<P::Msg>> = Vec::new();
                    let mut eor = 0usize;
                    let mut park: VecDeque<Wire<P::Msg>> = VecDeque::new();
                    let classify = |item: Wire<P::Msg>,
                                        inbox: &mut Vec<Envelope<P::Msg>>,
                                        eor: &mut usize|
                     -> Option<Wire<P::Msg>> {
                        match item {
                            Wire::Msg(env) if env.round == round => {
                                inbox.push(env);
                                None
                            }
                            Wire::EndOfRound(er) if er == r => {
                                *eor += 1;
                                None
                            }
                            future => Some(future),
                        }
                    };
                    for item in carried.drain(..) {
                        if let Some(f) = classify(item, &mut inbox, &mut eor) {
                            park.push_back(f);
                        }
                    }
                    while eor < n {
                        let item = my_rx.recv().expect("channel open");
                        if let Some(f) = classify(item, &mut inbox, &mut eor) {
                            park.push_back(f);
                        }
                    }
                    carried = park;
                    inbox.sort_by_key(|e| e.src);
                    // Compute phase (delivering any scheduled injection).
                    let input = match my_injections.first() {
                        Some((due, _)) if *due == r => Some(my_injections.remove(0).1),
                        _ => None,
                    };
                    let mut ctx = Context::<P>::for_runtime(
                        id,
                        n,
                        round,
                        &mut rng,
                        &mut pending,
                        &mut local_outputs,
                    );
                    proto.receive(&mut ctx, &inbox, input);
                }

                outputs.lock().extend(local_outputs);
                *messages.lock() += sent;
            });
        }
    });

    let mut outs = Arc::try_unwrap(outputs)
        .unwrap_or_else(|_| unreachable!("threads joined"))
        .into_inner();
    outs.sort_by_key(|o| (o.round, o.process));
    let messages = *messages.lock();
    ThreadedReport {
        outputs: outs,
        messages,
        rounds: cfg.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All-to-all flood each round.
    struct Blast;
    impl Protocol for Blast {
        type Msg = u8;
        type Input = ();
        type Output = u8;
        fn new(_id: ProcessId, _n: usize, _seed: u64) -> Self {
            Blast
        }
        fn send(&mut self, ctx: &mut Context<'_, Self>) {
            for p in ctx.all_processes() {
                ctx.send(p, 1, Tag("blast"));
            }
        }
        fn receive(&mut self, ctx: &mut Context<'_, Self>, inbox: &[Envelope<u8>], _i: Option<()>) {
            if inbox.len() == ctx.n() {
                ctx.output(1);
            }
        }
    }

    #[test]
    fn barrier_delivers_full_rounds() {
        let rep = run_threaded::<Blast>(ThreadedConfig::new(6).rounds(3).seed(9));
        // Every process saw all n messages in all 3 rounds.
        assert_eq!(rep.outputs.len(), 18);
        assert_eq!(rep.messages, 6 * 6 * 3);
        assert_eq!(rep.rounds, 3);
    }

    #[test]
    fn single_process_runs() {
        let rep = run_threaded::<Blast>(ThreadedConfig::new(1).rounds(2));
        assert_eq!(rep.outputs.len(), 2);
    }

    /// Echoes injected inputs as outputs.
    struct Sink;
    impl Protocol for Sink {
        type Msg = ();
        type Input = u32;
        type Output = u32;
        fn new(_id: ProcessId, _n: usize, _seed: u64) -> Self {
            Sink
        }
        fn send(&mut self, _ctx: &mut Context<'_, Self>) {}
        fn receive(&mut self, ctx: &mut Context<'_, Self>, _i: &[Envelope<()>], input: Option<u32>) {
            if let Some(v) = input {
                ctx.output(v);
            }
        }
    }

    #[test]
    fn scheduled_injections_are_delivered() {
        let rep = run_threaded_with::<Sink>(
            ThreadedConfig::new(4).rounds(5),
            vec![
                (0, ProcessId::new(1), 10),
                (3, ProcessId::new(1), 11),
                (2, ProcessId::new(3), 12),
            ],
        );
        let got: Vec<u32> = rep.outputs.iter().map(|o| o.value).collect();
        assert_eq!(got, vec![10, 12, 11], "ordered by (round, process)");
    }
}
