//! Multi-threaded execution of [`Protocol`]s — a thin facade over the
//! engine's parallel backend.
//!
//! Earlier versions of this module carried an independent bulk-synchronous
//! runtime (one OS thread per process, `std::sync::mpsc` channels, a
//! distributed end-of-round barrier). That duplicated the round semantics
//! of the lock-step [`Engine`](crate::Engine) and could not host an
//! *adaptive* adversary, which is definitionally impossible over concurrent
//! wall-clock execution. It has been rebased onto
//! [`EngineBackend::Parallel`](crate::EngineBackend): the same scoped-thread
//! barrier machinery the engine uses, with bit-identical semantics to the
//! sequential engine (see the engine module docs for the determinism
//! contract). The public API is unchanged; scheduled (oblivious) injection
//! scripts are expressed as a scripted [`Adversary`].
//!
//! ```
//! use congos_sim::threaded::{run_threaded, ThreadedConfig};
//! use congos_sim::{Context, Inbox, Protocol, ProcessId, Tag};
//!
//! struct Echo;
//! impl Protocol for Echo {
//!     type Msg = u32;
//!     type Input = ();
//!     type Output = u32;
//!     fn new(_id: ProcessId, _n: usize, _seed: u64) -> Self { Echo }
//!     fn send(&mut self, ctx: &mut Context<'_, Self>) {
//!         if ctx.id().as_usize() == 0 && ctx.round().as_u64() == 0 {
//!             for p in ctx.all_processes() { ctx.send(p, 7, Tag("echo")); }
//!         }
//!     }
//!     fn receive(&mut self, ctx: &mut Context<'_, Self>,
//!                inbox: Inbox<'_, u32>, _i: Option<()>) {
//!         for e in inbox { let v = *e.payload; ctx.output(v); }
//!     }
//! }
//!
//! let report = run_threaded::<Echo>(ThreadedConfig::new(4).rounds(2));
//! assert_eq!(report.outputs.len(), 4);
//! ```

use crate::engine::{
    Adversary, Engine, EngineBackend, EngineConfig, NullObserver, OutputRecord, Protocol,
    RoundDecision, RoundView,
};
use crate::process::ProcessId;

/// Configuration for a threaded run.
#[derive(Clone, Debug)]
pub struct ThreadedConfig {
    n: usize,
    seed: u64,
    rounds: u64,
    workers: Option<usize>,
}

impl ThreadedConfig {
    /// A failure-free threaded run of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        ThreadedConfig {
            n,
            seed: 0,
            rounds: 1,
            workers: None,
        }
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of rounds to execute.
    pub fn rounds(mut self, rounds: u64) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the worker-thread count (defaults to the machine's available
    /// parallelism). The result is identical for every worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        self.workers = Some(workers);
        self
    }

    fn backend(&self) -> EngineBackend {
        match self.workers {
            Some(workers) => EngineBackend::Parallel { workers },
            None => EngineBackend::parallel_auto(),
        }
    }
}

/// Result of a threaded run.
#[derive(Debug)]
pub struct ThreadedReport<O> {
    /// Outputs from all processes, ordered by `(round, process)`.
    pub outputs: Vec<OutputRecord<O>>,
    /// Total messages sent.
    pub messages: u64,
    /// Rounds executed.
    pub rounds: u64,
}

/// Runs `P` across worker threads in bulk-synchronous supersteps, with no
/// injections.
pub fn run_threaded<P>(cfg: ThreadedConfig) -> ThreadedReport<P::Output>
where
    P: Protocol + Send + 'static,
    P::Msg: Send + Sync,
    P::Input: Send,
    P::Output: Send,
{
    run_threaded_with::<P>(cfg, Vec::new())
}

/// Runs `P` across worker threads in bulk-synchronous supersteps.
///
/// Each round executes on the engine's parallel backend: send and compute
/// phases are split across scoped worker threads with an ordered merge at
/// each phase barrier, and any injection scheduled for `(round, process)` is
/// delivered through the adversary interface. The execution (outputs,
/// message counts) is bit-identical to a sequential engine run with the same
/// `n`, seed and injection schedule.
pub fn run_threaded_with<P>(
    cfg: ThreadedConfig,
    injections: Vec<(u64, ProcessId, P::Input)>,
) -> ThreadedReport<P::Output>
where
    P: Protocol + Send + 'static,
    P::Msg: Send + Sync,
    P::Input: Send,
    P::Output: Send,
{
    let backend = cfg.backend();
    let mut schedule = injections;
    schedule.sort_by_key(|(r, p, _)| (*r, *p));
    let mut adversary = ScheduleReplay::<P::Input> { schedule };

    let mut engine = Engine::<P>::new(EngineConfig::new(cfg.n).seed(cfg.seed));
    engine.run_observed_backend(backend, cfg.rounds, &mut adversary, &mut NullObserver);

    let messages = engine.metrics().total();
    let mut outputs = engine.into_outputs();
    outputs.sort_by_key(|o| (o.round, o.process));
    ThreadedReport {
        outputs,
        messages,
        rounds: cfg.rounds,
    }
}

/// Oblivious adversary replaying a fixed injection schedule (taken by value
/// round by round).
struct ScheduleReplay<I> {
    /// Remaining schedule, sorted by `(round, process)`.
    schedule: Vec<(u64, ProcessId, I)>,
}

impl<I, P: Protocol<Input = I>> Adversary<P> for ScheduleReplay<I> {
    fn decide(&mut self, view: &RoundView<'_>) -> RoundDecision<I> {
        let due = view.round.as_u64();
        let mut decision = RoundDecision::none();
        // Schedule is sorted by round; everything due this round is a prefix.
        let split = self.schedule.partition_point(|(r, _, _)| *r <= due);
        for (r, p, input) in self.schedule.drain(..split) {
            debug_assert!(r == due, "missed injection scheduled for round {r}");
            decision.injections.push((p, input));
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Context;
    use crate::message::{Inbox, Tag};

    /// All-to-all flood each round.
    struct Blast;
    impl Protocol for Blast {
        type Msg = u8;
        type Input = ();
        type Output = u8;
        fn new(_id: ProcessId, _n: usize, _seed: u64) -> Self {
            Blast
        }
        fn send(&mut self, ctx: &mut Context<'_, Self>) {
            for p in ctx.all_processes() {
                ctx.send(p, 1, Tag("blast"));
            }
        }
        fn receive(&mut self, ctx: &mut Context<'_, Self>, inbox: Inbox<'_, u8>, _i: Option<()>) {
            if inbox.len() == ctx.n() {
                ctx.output(1);
            }
        }
    }

    #[test]
    fn barrier_delivers_full_rounds() {
        let rep = run_threaded::<Blast>(ThreadedConfig::new(6).rounds(3).seed(9));
        // Every process saw all n messages in all 3 rounds.
        assert_eq!(rep.outputs.len(), 18);
        assert_eq!(rep.messages, 6 * 6 * 3);
        assert_eq!(rep.rounds, 3);
    }

    #[test]
    fn single_process_runs() {
        let rep = run_threaded::<Blast>(ThreadedConfig::new(1).rounds(2));
        assert_eq!(rep.outputs.len(), 2);
    }

    #[test]
    fn explicit_worker_count_matches_auto() {
        let auto = run_threaded::<Blast>(ThreadedConfig::new(5).rounds(3).seed(4));
        let two = run_threaded::<Blast>(ThreadedConfig::new(5).rounds(3).seed(4).workers(2));
        assert_eq!(auto.outputs.len(), two.outputs.len());
        assert_eq!(auto.messages, two.messages);
    }

    /// Echoes injected inputs as outputs.
    struct Sink;
    impl Protocol for Sink {
        type Msg = ();
        type Input = u32;
        type Output = u32;
        fn new(_id: ProcessId, _n: usize, _seed: u64) -> Self {
            Sink
        }
        fn send(&mut self, _ctx: &mut Context<'_, Self>) {}
        fn receive(&mut self, ctx: &mut Context<'_, Self>, _i: Inbox<'_, ()>, input: Option<u32>) {
            if let Some(v) = input {
                ctx.output(v);
            }
        }
    }

    #[test]
    fn scheduled_injections_are_delivered() {
        let rep = run_threaded_with::<Sink>(
            ThreadedConfig::new(4).rounds(5),
            vec![
                (0, ProcessId::new(1), 10),
                (3, ProcessId::new(1), 11),
                (2, ProcessId::new(3), 12),
            ],
        );
        let got: Vec<u32> = rep.outputs.iter().map(|o| o.value).collect();
        assert_eq!(got, vec![10, 12, 11], "ordered by (round, process)");
    }

    #[test]
    fn threaded_run_matches_sequential_engine() {
        // The facade promises bit-identical semantics to the lock-step
        // engine; check outputs and message counts against a direct run.
        let rep = run_threaded::<Blast>(ThreadedConfig::new(4).rounds(3).seed(7));
        let mut e = Engine::<Blast>::new(EngineConfig::new(4).seed(7));
        e.run(3, &mut crate::engine::NullAdversary);
        assert_eq!(rep.messages, e.metrics().total());
        assert_eq!(rep.outputs.len(), e.outputs().len());
        assert_eq!(rep.outputs, e.outputs());
    }
}
