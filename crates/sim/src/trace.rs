//! Execution tracing: a bounded, structured event log.
//!
//! [`Tracer`] is an [`Observer`] that records engine events into a ring
//! buffer and renders them as a human-readable timeline — the debugging
//! companion to the metrics (which aggregate) and the auditor (which
//! judges). Attach it to any run:
//!
//! ```
//! use congos_sim::trace::Tracer;
//! use congos_sim::{Engine, EngineConfig, NullAdversary, Context, Inbox,
//!                  Protocol, ProcessId, Tag};
//!
//! struct Ping;
//! impl Protocol for Ping {
//!     type Msg = ();
//!     type Input = ();
//!     type Output = ();
//!     fn new(_id: ProcessId, _n: usize, _seed: u64) -> Self { Ping }
//!     fn send(&mut self, ctx: &mut Context<'_, Self>) {
//!         let next = ProcessId::new((ctx.id().as_usize() + 1) % ctx.n());
//!         ctx.send(next, (), Tag("ping"));
//!     }
//!     fn receive(&mut self, _ctx: &mut Context<'_, Self>,
//!                _inbox: Inbox<'_, ()>, _input: Option<()>) {}
//! }
//!
//! let mut engine = Engine::<Ping>::new(EngineConfig::new(3));
//! let mut tracer = Tracer::new(100);
//! engine.run_observed(2, &mut NullAdversary, &mut tracer);
//! let timeline = tracer.render();
//! assert!(timeline.contains("r0"));
//! assert!(timeline.contains("#ping"));
//! ```

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::clock::Round;
use crate::engine::{Observer, OutputRecord, Protocol};
use crate::message::{EnvelopeRef, Tag};
use crate::process::ProcessId;

/// One traced event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message was delivered.
    Deliver {
        /// Round of delivery.
        round: Round,
        /// Sender.
        src: ProcessId,
        /// Receiver.
        dst: ProcessId,
        /// Service tag.
        tag: Tag,
    },
    /// An input was injected.
    Inject {
        /// Round of injection.
        round: Round,
        /// Target process.
        process: ProcessId,
    },
    /// A process produced an output.
    Output {
        /// Round of output.
        round: Round,
        /// Producing process.
        process: ProcessId,
    },
    /// A process crashed.
    Crash {
        /// Round of the crash.
        round: Round,
        /// The victim.
        process: ProcessId,
    },
    /// A process restarted.
    Restart {
        /// Round of the restart.
        round: Round,
        /// The returnee.
        process: ProcessId,
    },
}

impl TraceEvent {
    fn round(&self) -> Round {
        match self {
            TraceEvent::Deliver { round, .. }
            | TraceEvent::Inject { round, .. }
            | TraceEvent::Output { round, .. }
            | TraceEvent::Crash { round, .. }
            | TraceEvent::Restart { round, .. } => *round,
        }
    }
}

/// A bounded event recorder (keeps the most recent `capacity` events).
#[derive(Clone, Debug)]
pub struct Tracer {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    /// Only record deliveries with these tags (empty = all).
    tag_filter: Vec<&'static str>,
}

impl Tracer {
    /// A tracer keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Tracer {
            capacity,
            events: VecDeque::new(),
            dropped: 0,
            tag_filter: Vec::new(),
        }
    }

    /// Restricts delivery tracing to the given service tags (other events
    /// are always recorded).
    pub fn only_tags(mut self, tags: &[Tag]) -> Self {
        self.tag_filter = tags.iter().map(|t| t.name()).collect();
        self
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders a per-round timeline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut current: Option<Round> = None;
        if self.dropped > 0 {
            let _ = writeln!(out, "… {} earlier events dropped …", self.dropped);
        }
        for ev in &self.events {
            if current != Some(ev.round()) {
                current = Some(ev.round());
                let _ = writeln!(out, "{}:", ev.round());
            }
            match ev {
                TraceEvent::Deliver { src, dst, tag, .. } => {
                    let _ = writeln!(out, "  {src} → {dst}  {tag:?}");
                }
                TraceEvent::Inject { process, .. } => {
                    let _ = writeln!(out, "  inject @ {process}");
                }
                TraceEvent::Output { process, .. } => {
                    let _ = writeln!(out, "  output @ {process}");
                }
                TraceEvent::Crash { process, .. } => {
                    let _ = writeln!(out, "  ✗ crash {process}");
                }
                TraceEvent::Restart { process, .. } => {
                    let _ = writeln!(out, "  ↻ restart {process}");
                }
            }
        }
        out
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

impl<P: Protocol> Observer<P> for Tracer {
    fn on_deliver(&mut self, env: EnvelopeRef<'_, P::Msg>) {
        if !self.tag_filter.is_empty() && !self.tag_filter.contains(&env.tag.name()) {
            return;
        }
        self.push(TraceEvent::Deliver {
            round: env.round,
            src: env.src,
            dst: env.dst,
            tag: env.tag,
        });
    }

    fn on_inject(&mut self, round: Round, process: ProcessId, _input: &P::Input) {
        self.push(TraceEvent::Inject { round, process });
    }

    fn on_output(&mut self, rec: &OutputRecord<P::Output>) {
        self.push(TraceEvent::Output {
            round: rec.round,
            process: rec.process,
        });
    }

    fn on_crash(&mut self, round: Round, process: ProcessId) {
        self.push(TraceEvent::Crash { round, process });
    }

    fn on_restart(&mut self, round: Round, process: ProcessId) {
        self.push(TraceEvent::Restart { round, process });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Context, Engine, EngineConfig, NullAdversary};

    struct Ring;
    impl Protocol for Ring {
        type Msg = ();
        type Input = ();
        type Output = ();
        fn new(_id: ProcessId, _n: usize, _seed: u64) -> Self {
            Ring
        }
        fn send(&mut self, ctx: &mut Context<'_, Self>) {
            let next = ProcessId::new((ctx.id().as_usize() + 1) % ctx.n());
            ctx.send(next, (), Tag("ring"));
        }
        fn receive(
            &mut self,
            _ctx: &mut Context<'_, Self>,
            _inbox: crate::message::Inbox<'_, ()>,
            _input: Option<()>,
        ) {
        }
    }

    #[test]
    fn records_and_renders_deliveries() {
        let mut engine = Engine::<Ring>::new(EngineConfig::new(3));
        let mut tracer = Tracer::new(100);
        engine.run_observed(2, &mut NullAdversary, &mut tracer);
        assert_eq!(tracer.events().count(), 6); // 3 deliveries × 2 rounds
        let text = tracer.render();
        assert!(text.contains("r0:"));
        assert!(text.contains("r1:"));
        assert!(text.contains("#ring"));
        assert_eq!(tracer.dropped(), 0);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut engine = Engine::<Ring>::new(EngineConfig::new(3));
        let mut tracer = Tracer::new(4);
        engine.run_observed(2, &mut NullAdversary, &mut tracer);
        assert_eq!(tracer.events().count(), 4);
        assert_eq!(tracer.dropped(), 2);
        assert!(tracer.render().contains("2 earlier events dropped"));
        // Only round-1 events remain (plus the tail of round 0).
        assert!(tracer.events().all(|e| e.round() >= Round(0)));
    }

    #[test]
    fn tag_filter_drops_other_services() {
        let mut engine = Engine::<Ring>::new(EngineConfig::new(3));
        let mut tracer = Tracer::new(100).only_tags(&[Tag("other")]);
        engine.run_observed(2, &mut NullAdversary, &mut tracer);
        assert_eq!(tracer.events().count(), 0);
    }
}
