//! Per-round, per-service message metering.
//!
//! The paper's complexity measure is *per-round message complexity*
//! (Definition 3): the maximum, over rounds, of the number of point-to-point
//! messages sent in that round. Tags let callers meter individual services —
//! e.g. Lemma 7 counts Proxy/GroupDistribution messages excluding the
//! GroupGossip black box.

use crate::message::Tag;
use std::collections::BTreeMap;

/// Message counts (and payload bytes) for a single round, keyed by tag
/// name.
///
/// Byte accounting covers the paper's *communication complexity* discussion
/// (Section 7): message counts alone hide the cost of large batched
/// envelopes, so every send also records its payload's estimated wire size
/// (see [`Protocol::msg_size`](crate::Protocol::msg_size)).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundCounts {
    by_tag: BTreeMap<&'static str, (u64, u64)>, // (messages, bytes)
}

impl RoundCounts {
    /// Total messages sent in the round.
    pub fn total(&self) -> u64 {
        self.by_tag.values().map(|(m, _)| m).sum()
    }

    /// Total payload bytes sent in the round.
    pub fn total_bytes(&self) -> u64 {
        self.by_tag.values().map(|(_, b)| b).sum()
    }

    /// Messages sent by the service with tag `tag` in this round.
    pub fn of(&self, tag: Tag) -> u64 {
        self.by_tag.get(tag.name()).map(|(m, _)| *m).unwrap_or(0)
    }

    /// Payload bytes sent by the service with tag `tag` in this round.
    pub fn bytes_of(&self, tag: Tag) -> u64 {
        self.by_tag.get(tag.name()).map(|(_, b)| *b).unwrap_or(0)
    }

    /// Iterates `(tag name, count)` in tag-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.by_tag.iter().map(|(k, (m, _))| (*k, *m))
    }

    pub(crate) fn record(&mut self, tag: Tag, count: u64, bytes: u64) {
        let e = self.by_tag.entry(tag.name()).or_insert((0, 0));
        e.0 += count;
        e.1 += bytes;
    }
}

/// Accumulated metrics across an execution.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    rounds: Vec<RoundCounts>,
    deliveries: u64,
    topology_drops: u64,
}

impl Metrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts for round `t` (empty counts if the execution is shorter).
    pub fn round(&self, t: u64) -> RoundCounts {
        self.rounds.get(t as usize).cloned().unwrap_or_default()
    }

    /// Number of rounds metered so far.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// `true` if no rounds have been metered.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Maximum per-round total message count — the paper's per-round message
    /// complexity of the metered execution.
    pub fn max_per_round(&self) -> u64 {
        self.rounds.iter().map(RoundCounts::total).max().unwrap_or(0)
    }

    /// Maximum per-round payload byte count — the per-round *communication*
    /// complexity of the metered execution (Section 7 of the paper).
    pub fn max_bytes_per_round(&self) -> u64 {
        self.rounds
            .iter()
            .map(RoundCounts::total_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Total payload bytes over the whole execution.
    pub fn total_bytes(&self) -> u64 {
        self.rounds.iter().map(RoundCounts::total_bytes).sum()
    }

    /// Total payload bytes for one service tag.
    pub fn total_bytes_of(&self, tag: Tag) -> u64 {
        self.rounds.iter().map(|r| r.bytes_of(tag)).sum()
    }

    /// Maximum per-round count for one service tag.
    pub fn max_per_round_of(&self, tag: Tag) -> u64 {
        self.rounds.iter().map(|r| r.of(tag)).max().unwrap_or(0)
    }

    /// Total messages over the whole execution.
    pub fn total(&self) -> u64 {
        self.rounds.iter().map(RoundCounts::total).sum()
    }

    /// Total messages for one service tag.
    pub fn total_of(&self, tag: Tag) -> u64 {
        self.rounds.iter().map(|r| r.of(tag)).sum()
    }

    /// Mean messages per round (0 for an empty execution).
    pub fn mean_per_round(&self) -> f64 {
        if self.rounds.is_empty() {
            0.0
        } else {
            self.total() as f64 / self.rounds.len() as f64
        }
    }

    /// Per-round totals as a series (for complexity-shape experiments).
    pub fn per_round_series(&self) -> Vec<u64> {
        self.rounds.iter().map(RoundCounts::total).collect()
    }

    /// Number of protocol outputs delivered (engine-level convenience).
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// Messages dropped by the delivery phase because the topology had no
    /// src→dst link that round. Always 0 on the complete topology — sends
    /// are still metered normally (the process paid for the send; the
    /// network ate it).
    pub fn topology_drops(&self) -> u64 {
        self.topology_drops
    }

    /// All tag names seen during the execution.
    pub fn tags(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self
            .rounds
            .iter()
            .flat_map(|r| r.iter().map(|(k, _)| k))
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    pub(crate) fn begin_round(&mut self) {
        self.rounds.push(RoundCounts::default());
    }

    pub(crate) fn record_send(&mut self, tag: Tag, bytes: u64) {
        self.rounds
            .last_mut()
            .expect("begin_round before record_send")
            .record(tag, 1, bytes);
    }

    pub(crate) fn record_delivery(&mut self) {
        self.deliveries += 1;
    }

    pub(crate) fn record_topology_drop(&mut self) {
        self.topology_drops += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Metrics {
        let mut m = Metrics::new();
        m.begin_round();
        m.record_send(Tag("a"), 10);
        m.record_send(Tag("a"), 10);
        m.record_send(Tag("b"), 5);
        m.begin_round();
        m.record_send(Tag("b"), 5);
        m.record_delivery();
        m
    }

    #[test]
    fn per_round_totals() {
        let m = sample();
        assert_eq!(m.round(0).total(), 3);
        assert_eq!(m.round(1).total(), 1);
        assert_eq!(m.round(99).total(), 0);
        assert_eq!(m.max_per_round(), 3);
        assert_eq!(m.total(), 4);
        assert_eq!(m.per_round_series(), vec![3, 1]);
    }

    #[test]
    fn per_tag_metering() {
        let m = sample();
        assert_eq!(m.round(0).of(Tag("a")), 2);
        assert_eq!(m.max_per_round_of(Tag("b")), 1);
        assert_eq!(m.total_of(Tag("a")), 2);
        assert_eq!(m.tags(), vec!["a", "b"]);
    }

    #[test]
    fn byte_accounting() {
        let m = sample();
        assert_eq!(m.round(0).total_bytes(), 25);
        assert_eq!(m.round(0).bytes_of(Tag("a")), 20);
        assert_eq!(m.max_bytes_per_round(), 25);
        assert_eq!(m.total_bytes(), 30);
        assert_eq!(m.total_bytes_of(Tag("b")), 10);
    }

    #[test]
    fn means_and_deliveries() {
        let m = sample();
        assert!((m.mean_per_round() - 2.0).abs() < 1e-12);
        assert_eq!(m.deliveries(), 1);
        assert_eq!(Metrics::new().mean_per_round(), 0.0);
        assert!(Metrics::new().is_empty());
    }
}
