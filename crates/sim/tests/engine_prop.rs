//! Model-based property tests of the engine: random crash/restart/injection
//! scripts against a transparent protocol, checking the execution-model
//! invariants the paper's analysis relies on.

use congos_sim::{
    Adversary, Context, CrashSpec, Engine, EngineConfig, EnvelopeRef, Inbox, IncomingPolicy,
    Observer, ProcessId, Protocol, RoundDecision, RoundView, SentPolicy, Tag,
};
use proptest::prelude::*;

/// Every process sends one tick to every process each round and reports
/// every tick received.
struct Chatty;

impl Protocol for Chatty {
    type Msg = u64;
    type Input = u64;
    type Output = (u64, ProcessId);

    fn new(_id: ProcessId, _n: usize, _seed: u64) -> Self {
        Chatty
    }
    fn send(&mut self, ctx: &mut Context<'_, Self>) {
        let r = ctx.round().as_u64();
        for p in ctx.all_processes() {
            ctx.send(p, r, Tag("tick"));
        }
    }
    fn receive(
        &mut self,
        ctx: &mut Context<'_, Self>,
        inbox: Inbox<'_, u64>,
        input: Option<u64>,
    ) {
        for env in inbox {
            let src = env.src;
            let val = *env.payload;
            ctx.output((val, src));
        }
        if let Some(v) = input {
            ctx.output((v + 1_000_000, ctx.id()));
        }
    }
}

#[derive(Clone, Debug)]
enum Action {
    Crash(usize, bool),   // (victim index, deliver_sent)
    Restart(usize, bool), // (victim index, deliver_incoming)
    Inject(usize, u64),
}

/// Replays scripted actions, respecting validity (crash alive / restart
/// crashed), tracking what it actually did.
struct Scripted {
    script: Vec<(u64, Action)>,
    performed: Vec<(u64, Action)>,
}

impl Adversary<Chatty> for Scripted {
    fn decide(&mut self, view: &RoundView<'_>) -> RoundDecision<u64> {
        let now = view.round.as_u64();
        let mut d = RoundDecision::none();
        let mut touched: Vec<usize> = Vec::new();
        for (r, action) in &self.script {
            if *r != now {
                continue;
            }
            match action {
                Action::Crash(i, deliver) => {
                    let i = i % view.n();
                    if view.alive[i] && !touched.contains(&i) {
                        touched.push(i);
                        d.crashes.push(CrashSpec {
                            process: ProcessId::new(i),
                            sent: if *deliver {
                                SentPolicy::DeliverAll
                            } else {
                                SentPolicy::DropAll
                            },
                        });
                        self.performed.push((now, action.clone()));
                    }
                }
                Action::Restart(i, deliver) => {
                    let i = i % view.n();
                    if !view.alive[i] && !touched.contains(&i) {
                        touched.push(i);
                        d.restarts.push((
                            ProcessId::new(i),
                            if *deliver {
                                IncomingPolicy::DeliverAll
                            } else {
                                IncomingPolicy::DropAll
                            },
                        ));
                        self.performed.push((now, action.clone()));
                    }
                }
                Action::Inject(i, v) => {
                    let i = i % view.n();
                    if !d.injections.iter().any(|(p, _)| p.as_usize() == i) {
                        d.injections.push((ProcessId::new(i), *v));
                        self.performed.push((now, action.clone()));
                    }
                }
            }
        }
        d
    }
}

/// Observer checking per-delivery invariants.
#[derive(Default)]
struct Invariants {
    delivered: u64,
}

impl Observer<Chatty> for Invariants {
    fn on_deliver(&mut self, env: EnvelopeRef<'_, u64>) {
        // Messages are delivered in the round they were sent (synchrony).
        assert_eq!(*env.payload, env.round.as_u64());
        self.delivered += 1;
    }
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0usize..8, any::<bool>()).prop_map(|(i, d)| Action::Crash(i, d)),
        (0usize..8, any::<bool>()).prop_map(|(i, d)| Action::Restart(i, d)),
        (0usize..8, 0u64..100).prop_map(|(i, v)| Action::Inject(i, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn engine_invariants_hold_under_random_scripts(
        script in prop::collection::vec((0u64..12, action_strategy()), 0..40),
        seed in any::<u64>(),
    ) {
        let n = 8;
        let rounds = 12;
        let mut adv = Scripted { script, performed: Vec::new() };
        let mut inv = Invariants::default();
        let mut engine = Engine::<Chatty>::new(EngineConfig::new(n).seed(seed));
        engine.run_observed(rounds, &mut adv, &mut inv);

        // 1. The liveness log agrees with the performed script.
        let performed_crashes = adv
            .performed
            .iter()
            .filter(|(_, a)| matches!(a, Action::Crash(..)))
            .count();
        prop_assert_eq!(engine.liveness().crash_count(), performed_crashes);

        // 2. Delivered message count matches what the observer saw, and
        //    equals the engine-reported output count for ticks.
        let tick_outputs = engine
            .outputs()
            .iter()
            .filter(|o| o.value.0 < 1_000_000)
            .count() as u64;
        prop_assert_eq!(tick_outputs, inv.delivered);

        // 3. Sent-message metering: a process alive at the start of round r
        //    sends exactly n messages that round — so per-round totals are
        //    n × (alive processes at send time). Replay liveness to check.
        let mut alive = vec![true; n];
        for r in 0..rounds {
            let expected: u64 = alive.iter().filter(|a| **a).count() as u64 * n as u64;
            prop_assert_eq!(
                engine.metrics().round(r).total(),
                expected,
                "round {}", r
            );
            // Apply this round's performed events for the next round.
            for (pr, action) in &adv.performed {
                if *pr == r {
                    match action {
                        Action::Crash(i, _) => alive[i % n] = false,
                        Action::Restart(i, _) => alive[i % n] = true,
                        Action::Inject(..) => {}
                    }
                }
            }
        }

        // 4. Injection records: every performed injection is logged; it is
        //    delivered iff the target was alive at compute time.
        let performed_injections = adv
            .performed
            .iter()
            .filter(|(_, a)| matches!(a, Action::Inject(..)))
            .count();
        prop_assert_eq!(engine.injections().len(), performed_injections);
        let delivered_injections = engine
            .injections()
            .iter()
            .filter(|i| i.delivered)
            .count();
        let injection_outputs = engine
            .outputs()
            .iter()
            .filter(|o| o.value.0 >= 1_000_000)
            .count();
        prop_assert_eq!(delivered_injections, injection_outputs);

        // 5. Determinism: replaying the same seed and script yields the
        //    same metrics.
        let mut adv2 = Scripted { script: adv.performed.clone(), performed: Vec::new() };
        let mut engine2 = Engine::<Chatty>::new(EngineConfig::new(n).seed(seed));
        engine2.run(rounds, &mut adv2);
        prop_assert_eq!(engine2.metrics().total(), engine.metrics().total());
    }
}
