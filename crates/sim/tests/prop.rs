//! Property-based tests of the simulator's core data structures, checked
//! against naive reference models.

use std::collections::BTreeSet;

use congos_sim::clock::{trim_deadline, BlockClock};
use congos_sim::liveness::LivenessLog;
use congos_sim::{IdSet, ProcessId, Round};
use proptest::prelude::*;

proptest! {
    /// IdSet agrees with a BTreeSet model under any operation sequence.
    #[test]
    fn idset_matches_btreeset_model(
        ops in prop::collection::vec((0usize..3, 0usize..96), 0..200)
    ) {
        let n = 96;
        let mut set = IdSet::empty(n);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for (op, i) in ops {
            let p = ProcessId::new(i);
            match op {
                0 => {
                    prop_assert_eq!(set.insert(p), model.insert(i));
                }
                1 => {
                    prop_assert_eq!(set.remove(p), model.remove(&i));
                }
                _ => {
                    prop_assert_eq!(set.contains(p), model.contains(&i));
                }
            }
            prop_assert_eq!(set.len(), model.len());
        }
        let got: Vec<usize> = set.iter().map(ProcessId::as_usize).collect();
        let want: Vec<usize> = model.into_iter().collect();
        prop_assert_eq!(got, want, "iteration order is sorted and complete");
    }

    /// Set algebra matches the model.
    #[test]
    fn idset_algebra_matches_model(
        a in prop::collection::btree_set(0usize..64, 0..40),
        b in prop::collection::btree_set(0usize..64, 0..40),
    ) {
        let n = 64;
        let sa = IdSet::from_iter(n, a.iter().map(|i| ProcessId::new(*i)));
        let sb = IdSet::from_iter(n, b.iter().map(|i| ProcessId::new(*i)));

        let mut u = sa.clone();
        u.union_with(&sb);
        let mu: BTreeSet<usize> = a.union(&b).copied().collect();
        prop_assert_eq!(u.len(), mu.len());

        let mut i = sa.clone();
        i.intersect_with(&sb);
        let mi: BTreeSet<usize> = a.intersection(&b).copied().collect();
        prop_assert_eq!(i.len(), mi.len());

        let mut d = sa.clone();
        d.subtract(&sb);
        let md: BTreeSet<usize> = a.difference(&b).copied().collect();
        prop_assert_eq!(d.len(), md.len());

        prop_assert_eq!(sa.is_subset_of(&sb), a.is_subset(&b));
        prop_assert_eq!(sa.is_disjoint_from(&sb), a.is_disjoint(&b));
    }

    /// trim_deadline: result is a power of two, ≤ min(d.max(1), cap),
    /// and > d/2 when no cap binds.
    #[test]
    fn trim_deadline_properties(d in 0u64..1_000_000, cap in 1u64..1_000_000) {
        let out = trim_deadline(d, cap);
        prop_assert!(out.is_power_of_two());
        prop_assert!(out <= d.max(1));
        let capped = d.min(cap).max(1);
        prop_assert!(out <= capped.next_power_of_two());
        prop_assert!(out * 2 > capped, "rounding down loses at most half");
    }

    /// Block clock invariants for any valid deadline class.
    #[test]
    fn block_clock_invariants(pow in 5u32..20, t in 0u64..1_000_000) {
        let dline = 1u64 << pow; // ≥ 32
        let c = BlockClock::new(dline);
        let t = Round(t);
        prop_assert_eq!(c.block_len(), dline / 4);
        prop_assert!(c.iterations_per_block() >= dline.isqrt() / 8, "Lemma 6");
        prop_assert!(c.offset_in_block(t) < c.block_len());
        if let Some(off) = c.offset_in_iteration(t) {
            prop_assert!(off < c.iter_len());
            let it = c.iteration_of(t).unwrap();
            prop_assert_eq!(c.offset_in_block(t), it * c.iter_len() + off);
        } else {
            prop_assert!(c.offset_in_block(t) >= c.iterations_per_block() * c.iter_len());
        }
    }

    /// Algebraic identities: `a = (a∖b) ∪ (a∩b)`, union is commutative and
    /// idempotent, and `is_empty` agrees with `len`.
    #[test]
    fn idset_algebra_identities(
        a in prop::collection::btree_set(0usize..96, 0..50),
        b in prop::collection::btree_set(0usize..96, 0..50),
    ) {
        let n = 96;
        let sa = IdSet::from_iter(n, a.iter().map(|i| ProcessId::new(*i)));
        let sb = IdSet::from_iter(n, b.iter().map(|i| ProcessId::new(*i)));

        let mut diff = sa.clone();
        diff.subtract(&sb);
        let mut meet = sa.clone();
        meet.intersect_with(&sb);
        let mut rebuilt = diff.clone();
        rebuilt.union_with(&meet);
        prop_assert_eq!(&rebuilt, &sa, "a = (a\\b) ∪ (a∩b)");

        let mut ab = sa.clone();
        ab.union_with(&sb);
        let mut ba = sb.clone();
        ba.union_with(&sa);
        prop_assert_eq!(&ab, &ba, "union commutes");
        let mut aa = sa.clone();
        aa.union_with(&sa);
        prop_assert_eq!(&aa, &sa, "union is idempotent");

        prop_assert_eq!(sa.is_empty(), sa.len() == 0);
        prop_assert!(diff.is_disjoint_from(&sb));
        prop_assert!(meet.is_subset_of(&sb));
    }

    /// `FromIterator` picks the tightest universe and keeps every member.
    #[test]
    fn idset_collect_universe(ids in prop::collection::vec(0usize..200, 0..30)) {
        let set: IdSet = ids.iter().map(|i| ProcessId::new(*i)).collect();
        let expect = ids.iter().map(|i| i + 1).max().unwrap_or(0);
        prop_assert_eq!(set.universe(), expect);
        for i in &ids {
            prop_assert!(set.contains(ProcessId::new(*i)));
        }
        prop_assert_eq!(
            set.len(),
            ids.iter().collect::<BTreeSet<_>>().len(),
            "duplicates collapse"
        );
    }

    /// Blocks tile the timeline: `block_start(block_of(t)) ≤ t` strictly
    /// inside the next block, offsets are exactly `t mod dline/4`, and the
    /// boundary predicates agree with the offsets.
    #[test]
    fn block_clock_tiles_timeline(pow in 5u32..20, t in 0u64..1_000_000) {
        let c = BlockClock::new(1u64 << pow);
        let t = Round(t);
        let b = c.block_of(t);
        prop_assert!(c.block_start(b) <= t);
        prop_assert!(t < c.block_start(b + 1));
        prop_assert_eq!(c.offset_in_block(t), t - c.block_start(b));
        prop_assert_eq!(c.offset_in_block(t), t.as_u64() % c.block_len());
        prop_assert_eq!(c.is_block_start(t), c.offset_in_block(t) == 0);
        prop_assert_eq!(c.is_block_end(t), c.offset_in_block(t) == c.block_len() - 1);
        prop_assert_eq!(c.in_block_slack(t), c.iteration_of(t).is_none());
    }

    /// trim_deadline is idempotent and monotone, and deadline_cap is
    /// monotone in both `n` and `c`.
    #[test]
    fn deadline_trimming_is_stable(
        d1 in 0u64..1_000_000,
        d2 in 0u64..1_000_000,
        cap in 1u64..1_000_000,
        n1 in 2usize..10_000,
        n2 in 2usize..10_000,
    ) {
        let out = trim_deadline(d1, cap);
        prop_assert_eq!(trim_deadline(out, cap), out, "idempotent");
        if d1 <= d2 {
            prop_assert!(trim_deadline(d1, cap) <= trim_deadline(d2, cap));
        }
        use congos_sim::clock::deadline_cap;
        if n1 <= n2 {
            prop_assert!(deadline_cap(n1, 1.0) <= deadline_cap(n2, 1.0));
        }
        prop_assert!(deadline_cap(n1, 1.0) <= deadline_cap(n1, 2.0));
        prop_assert!(deadline_cap(n1, 1.0) >= 64, "floor");
    }

    /// Liveness log vs a naive round-by-round replay.
    #[test]
    fn liveness_matches_replay(
        events in prop::collection::vec((0u64..100, prop::bool::ANY), 0..20),
        qa in 0u64..100,
        span in 0u64..30,
    ) {
        // Build a consistent event sequence for one process: alternate
        // crash/restart in round order, at most one event per round.
        let mut rounds: Vec<u64> = events.iter().map(|(r, _)| *r).collect();
        rounds.sort_unstable();
        rounds.dedup();
        let mut log = LivenessLog::new(1);
        let p = ProcessId::new(0);
        let mut alive = true;
        let mut timeline = Vec::new(); // (round, alive_after)
        for r in rounds {
            if alive {
                log.record_crash(p, Round(r));
            } else {
                log.record_restart(p, Round(r));
            }
            alive = !alive;
            timeline.push((r, alive));
        }
        // Replay model: alive at end of round t.
        let alive_at = |t: u64| -> bool {
            timeline
                .iter()
                .rfind(|(r, _)| *r <= t)
                .map(|(_, a)| *a)
                .unwrap_or(true)
        };
        let ta = qa;
        let tb = qa + span;
        prop_assert_eq!(log.alive_at_end(p, Round(tb)), alive_at(tb));
        let model_cont = (ta == 0 || alive_at(ta - 1))
            && timeline.iter().all(|(r, a)| {
                // crash events are the transitions to !alive
                !(!a && *r >= ta && *r <= tb)
            });
        prop_assert_eq!(
            log.continuously_alive(p, Round(ta), Round(tb)),
            model_cont
        );
    }
}
