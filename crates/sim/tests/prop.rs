//! Property-based tests of the simulator's core data structures, checked
//! against naive reference models.

use std::collections::BTreeSet;

use congos_sim::clock::{trim_deadline, BlockClock};
use congos_sim::liveness::LivenessLog;
use congos_sim::{IdSet, ProcessId, Round};
use proptest::prelude::*;

proptest! {
    /// IdSet agrees with a BTreeSet model under any operation sequence.
    #[test]
    fn idset_matches_btreeset_model(
        ops in prop::collection::vec((0usize..3, 0usize..96), 0..200)
    ) {
        let n = 96;
        let mut set = IdSet::empty(n);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for (op, i) in ops {
            let p = ProcessId::new(i);
            match op {
                0 => {
                    prop_assert_eq!(set.insert(p), model.insert(i));
                }
                1 => {
                    prop_assert_eq!(set.remove(p), model.remove(&i));
                }
                _ => {
                    prop_assert_eq!(set.contains(p), model.contains(&i));
                }
            }
            prop_assert_eq!(set.len(), model.len());
        }
        let got: Vec<usize> = set.iter().map(ProcessId::as_usize).collect();
        let want: Vec<usize> = model.into_iter().collect();
        prop_assert_eq!(got, want, "iteration order is sorted and complete");
    }

    /// Set algebra matches the model.
    #[test]
    fn idset_algebra_matches_model(
        a in prop::collection::btree_set(0usize..64, 0..40),
        b in prop::collection::btree_set(0usize..64, 0..40),
    ) {
        let n = 64;
        let sa = IdSet::from_iter(n, a.iter().map(|i| ProcessId::new(*i)));
        let sb = IdSet::from_iter(n, b.iter().map(|i| ProcessId::new(*i)));

        let mut u = sa.clone();
        u.union_with(&sb);
        let mu: BTreeSet<usize> = a.union(&b).copied().collect();
        prop_assert_eq!(u.len(), mu.len());

        let mut i = sa.clone();
        i.intersect_with(&sb);
        let mi: BTreeSet<usize> = a.intersection(&b).copied().collect();
        prop_assert_eq!(i.len(), mi.len());

        let mut d = sa.clone();
        d.subtract(&sb);
        let md: BTreeSet<usize> = a.difference(&b).copied().collect();
        prop_assert_eq!(d.len(), md.len());

        prop_assert_eq!(sa.is_subset_of(&sb), a.is_subset(&b));
        prop_assert_eq!(sa.is_disjoint_from(&sb), a.is_disjoint(&b));
    }

    /// trim_deadline: result is a power of two, ≤ min(d.max(1), cap),
    /// and > d/2 when no cap binds.
    #[test]
    fn trim_deadline_properties(d in 0u64..1_000_000, cap in 1u64..1_000_000) {
        let out = trim_deadline(d, cap);
        prop_assert!(out.is_power_of_two());
        prop_assert!(out <= d.max(1));
        let capped = d.min(cap).max(1);
        prop_assert!(out <= capped.next_power_of_two());
        prop_assert!(out * 2 > capped, "rounding down loses at most half");
    }

    /// Block clock invariants for any valid deadline class.
    #[test]
    fn block_clock_invariants(pow in 5u32..20, t in 0u64..1_000_000) {
        let dline = 1u64 << pow; // ≥ 32
        let c = BlockClock::new(dline);
        let t = Round(t);
        prop_assert_eq!(c.block_len(), dline / 4);
        prop_assert!(c.iterations_per_block() >= dline.isqrt() / 8, "Lemma 6");
        prop_assert!(c.offset_in_block(t) < c.block_len());
        if let Some(off) = c.offset_in_iteration(t) {
            prop_assert!(off < c.iter_len());
            let it = c.iteration_of(t).unwrap();
            prop_assert_eq!(c.offset_in_block(t), it * c.iter_len() + off);
        } else {
            prop_assert!(c.offset_in_block(t) >= c.iterations_per_block() * c.iter_len());
        }
    }

    /// Liveness log vs a naive round-by-round replay.
    #[test]
    fn liveness_matches_replay(
        events in prop::collection::vec((0u64..100, prop::bool::ANY), 0..20),
        qa in 0u64..100,
        span in 0u64..30,
    ) {
        // Build a consistent event sequence for one process: alternate
        // crash/restart in round order, at most one event per round.
        let mut rounds: Vec<u64> = events.iter().map(|(r, _)| *r).collect();
        rounds.sort_unstable();
        rounds.dedup();
        let mut log = LivenessLog::new(1);
        let p = ProcessId::new(0);
        let mut alive = true;
        let mut timeline = Vec::new(); // (round, alive_after)
        for r in rounds {
            if alive {
                log.record_crash(p, Round(r));
            } else {
                log.record_restart(p, Round(r));
            }
            alive = !alive;
            timeline.push((r, alive));
        }
        // Replay model: alive at end of round t.
        let alive_at = |t: u64| -> bool {
            timeline
                .iter()
                .rfind(|(r, _)| *r <= t)
                .map(|(_, a)| *a)
                .unwrap_or(true)
        };
        let ta = qa;
        let tb = qa + span;
        prop_assert_eq!(log.alive_at_end(p, Round(tb)), alive_at(tb));
        let model_cont = (ta == 0 || alive_at(ta - 1))
            && timeline.iter().all(|(r, a)| {
                // crash events are the transitions to !alive
                !(!a && *r >= ta && *r <= tb)
            });
        prop_assert_eq!(
            log.continuously_alive(p, Round(ta), Round(tb)),
            model_cont
        );
    }
}
