//! Property-based tests of the topology layer: the expander construction
//! must always yield a simple, `d`-regular, connected graph for valid
//! `(n, d)`; churn must never produce self-loops or asymmetric links; and
//! everything must be a pure function of `(spec, n, seed)`.

use congos_sim::{ProcessId, Round, Topology, TopologySpec};
use proptest::prelude::*;

/// `(n, d)` pairs accepted by `TopologySpec::validate` — degree clamped
/// below `n` and parity-fixed so `n·d` is even.
fn valid_n_d() -> impl Strategy<Value = (usize, usize)> {
    (3usize..33, 2usize..12).prop_map(|(n, d_raw)| {
        let mut d = d_raw.min(n - 1);
        if n * d % 2 != 0 {
            d -= 1; // n odd here, so even d keeps n·d even; d >= 2 stays
        }
        (n, d.max(2).min(n - 1))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every valid `(n, d, seed)` builds a simple d-regular connected graph.
    #[test]
    fn expander_is_simple_d_regular_connected(
        nd in valid_n_d(),
        seed in any::<u64>(),
    ) {
        let (n, d) = nd;
        let spec = TopologySpec::Expander { degree: d };
        prop_assume!(spec.validate(n).is_ok());
        let t = Topology::build(spec, n, seed);
        for i in 0..n {
            let nb = t.neighbors(Round(0), ProcessId::new(i));
            prop_assert_eq!(nb.len(), d, "vertex {} degree", i);
            prop_assert!(!nb.contains(ProcessId::new(i)), "self-loop at {}", i);
            for q in nb.iter() {
                prop_assert!(
                    t.connected(Round(0), q, ProcessId::new(i)),
                    "edge {}–{} not symmetric", i, q.as_usize()
                );
            }
        }
        // Connected: flooding from vertex 0 reaches everyone within n rounds.
        for dst in 1..n {
            prop_assert!(
                t.reachable_within(ProcessId::new(0), ProcessId::new(dst), Round(0), Round(n as u64)),
                "vertex {} unreachable from 0", dst
            );
        }
        // Static: the graph does not change over rounds.
        prop_assert_eq!(t.edges(Round(0)), t.edges(Round(31)));
    }

    /// Expander construction is a pure function of `(n, d, seed)`.
    #[test]
    fn expander_same_seed_same_edges(
        nd in valid_n_d(),
        seed in any::<u64>(),
    ) {
        let (n, d) = nd;
        let spec = TopologySpec::Expander { degree: d };
        prop_assume!(spec.validate(n).is_ok());
        let a = Topology::build(spec, n, seed);
        let b = Topology::build(spec, n, seed);
        prop_assert_eq!(a.edges(Round(0)), b.edges(Round(0)));
    }

    /// Churn never invents self-loops or asymmetric links, and its edge set
    /// (i < j pairs) never contains duplicates.
    #[test]
    fn churn_edges_stay_simple_and_symmetric(
        n in 2usize..24,
        ppm in 0u32..=1_000_000,
        seed in any::<u64>(),
        round in 0u64..64,
    ) {
        let t = Topology::build(
            TopologySpec::Churn { base_degree: None, flip_ppm: ppm },
            n,
            seed,
        );
        let edges = t.edges(Round(round));
        let mut sorted = edges.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), edges.len(), "duplicate edges");
        for &(i, j) in &edges {
            prop_assert!(i < j, "edge not normalized");
            prop_assert!(
                t.connected(Round(round), ProcessId::new(j), ProcessId::new(i)),
                "edge {}–{} not symmetric", i, j
            );
        }
        for i in 0..n {
            let p = ProcessId::new(i);
            prop_assert!(t.connected(Round(round), p, p), "self-pair must stay local");
            prop_assert!(
                !t.neighbors(Round(round), p).contains(p),
                "self-loop in neighbors of {}", i
            );
        }
    }

    /// Churn is a pure function of `(spec, n, seed, round)` — rebuilt
    /// topologies agree round by round, including over an expander base.
    #[test]
    fn churn_same_seed_same_edge_sequence(
        nd in valid_n_d(),
        ppm in 0u32..500_000,
        seed in any::<u64>(),
    ) {
        let (n, d) = nd;
        let spec = TopologySpec::Churn { base_degree: Some(d), flip_ppm: ppm };
        prop_assume!(spec.validate(n).is_ok());
        let a = Topology::build(spec, n, seed);
        let b = Topology::build(spec, n, seed);
        for r in [0u64, 1, 7, 63] {
            prop_assert_eq!(a.edges(Round(r)), b.edges(Round(r)), "round {}", r);
        }
        // ppm = 0 freezes the base graph exactly.
        let frozen = Topology::build(
            TopologySpec::Churn { base_degree: Some(d), flip_ppm: 0 },
            n,
            seed,
        );
        let base = Topology::build(TopologySpec::Expander { degree: d }, n, seed);
        prop_assert_eq!(frozen.edges(Round(9)), base.edges(Round(0)));
    }
}
