//! # congos-bench — benchmark-only crate
//!
//! All content lives in `benches/`; run with `cargo bench -p congos-bench`.
//! Each bench group regenerates (a small-scale version of) one experiment
//! from EXPERIMENTS.md; the full-scale tables come from the
//! `congos-harness` binaries.
