//! Microbenchmarks of the protocol's primitives: XOR splitting, partition
//! construction and queries, and the IdSet operations that sit on the hot
//! path of every round.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use congos::{split, PartitionSet};
use congos_sim::{IdSet, ProcessId};

fn bench_split(c: &mut Criterion) {
    let mut g = c.benchmark_group("split_merge");
    for len in [64usize, 1024, 16384] {
        let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
        g.bench_with_input(BenchmarkId::new("split_k2", len), &data, |b, data| {
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| black_box(split::split(&mut rng, data, 2)));
        });
        g.bench_with_input(BenchmarkId::new("split_k8", len), &data, |b, data| {
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| black_box(split::split(&mut rng, data, 8)));
        });
        let mut rng = SmallRng::seed_from_u64(2);
        let frags = split::split(&mut rng, &data, 4);
        g.bench_with_input(BenchmarkId::new("merge_k4", len), &frags, |b, frags| {
            b.iter(|| {
                let refs: Vec<&[u8]> = frags.iter().map(|f| f.as_slice()).collect();
                black_box(split::merge(&refs))
            });
        });
    }
    g.finish();
}

fn bench_partitions(c: &mut Criterion) {
    let mut g = c.benchmark_group("partitions");
    for n in [64usize, 256, 1024] {
        g.bench_with_input(BenchmarkId::new("bits_construct", n), &n, |b, &n| {
            b.iter(|| black_box(PartitionSet::bits(n)));
        });
        g.bench_with_input(BenchmarkId::new("random_tau3", n), &n, |b, &n| {
            b.iter(|| black_box(PartitionSet::random(n, 3, 2.0, 7)));
        });
        let ps = PartitionSet::bits(n);
        g.bench_with_input(BenchmarkId::new("separating", n), &ps, |b, ps| {
            b.iter(|| {
                black_box(ps.separating(ProcessId::new(0), ProcessId::new(n - 1)))
            });
        });
    }
    g.finish();
}

fn bench_idset(c: &mut Criterion) {
    let mut g = c.benchmark_group("idset");
    for n in [256usize, 1024] {
        let a = IdSet::from_iter(n, (0..n).step_by(2).map(ProcessId::new));
        let b_set = IdSet::from_iter(n, (0..n).step_by(3).map(ProcessId::new));
        g.bench_with_input(BenchmarkId::new("union", n), &n, |b, _| {
            b.iter(|| {
                let mut u = a.clone();
                u.union_with(&b_set);
                black_box(u)
            });
        });
        g.bench_with_input(BenchmarkId::new("iter_sum", n), &n, |b, _| {
            b.iter(|| {
                black_box(a.iter().map(ProcessId::as_usize).sum::<usize>())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_split, bench_partitions, bench_idset);
criterion_main!(benches);
