//! One bench group per experiment: each measures a *reduced kernel* of the
//! run that regenerates the corresponding EXPERIMENTS.md table, so
//! regressions in protocol cost show up as bench regressions without
//! re-running the full sweeps. The tables themselves are printed by the
//! `congos-harness` binaries (`cargo run --release -p congos-harness --bin
//! exp_eN`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use congos::{CongosConfig, CongosNode, CoverTrafficConfig, PartitionSet};
use congos_adversary::{NoFailures, PoissonWorkload, RandomChurn, Theorem1Workload};
use congos_baselines::{CryptoMulticastNode, StronglyConfidentialNode};
use congos_harness::run::{run, run_with_factory, RunSpec};
use congos_sim::{EngineBackend, IdSet, ProcessId, Round};

const N: usize = 12;
const DEADLINE: u64 = 64;
const ROUNDS: u64 = 2 * DEADLINE;

fn spec(seed: u64) -> RunSpec {
    RunSpec::new(N, seed, ROUNDS)
}

fn poisson(seed: u64) -> PoissonWorkload {
    PoissonWorkload::new(0.03, 3, DEADLINE, seed).until(Round(ROUNDS - DEADLINE))
}

fn benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiment_kernels");
    g.sample_size(10);

    // E1 kernel: strongly confidential gossip under the Theorem-1 workload.
    g.bench_function("e1_strong_theorem1", |b| {
        b.iter(|| {
            black_box(run::<StronglyConfidentialNode, _, _>(
                spec(0xE1),
                NoFailures,
                Theorem1Workload::new(8.0, DEADLINE, 0xE1),
            ))
        })
    });

    // E2/E3 kernel: CONGOS under continuous injection, failure-free.
    g.bench_function("e3_congos_poisson", |b| {
        b.iter(|| black_box(run::<CongosNode, _, _>(spec(0xE3), NoFailures, poisson(0xE3))))
    });

    // E4 kernel: partition construction + coverage queries.
    g.bench_function("e4_partition_coverage", |b| {
        let ps = PartitionSet::random(64, 3, 4.0, 0xE4);
        let survivors = IdSet::from_iter(64, (0..40).map(ProcessId::new));
        b.iter(|| black_box(ps.covering(&survivors)))
    });

    // E5/E6 kernel: collusion-tolerant CONGOS (τ = 2).
    g.bench_function("e6_congos_tau2", |b| {
        b.iter(|| {
            let cfg = CongosConfig::collusion_tolerant(2, 0xE6).without_degenerate_shortcut();
            black_box(run_with_factory::<CongosNode, _, _>(
                spec(0xE6),
                move |id, n, _s| CongosNode::with_config(id, n, cfg.clone()),
                NoFailures,
                poisson(0xE6),
            ))
        })
    });

    // E7 kernel: CONGOS under churn.
    g.bench_function("e7_congos_churn", |b| {
        b.iter(|| {
            black_box(run::<CongosNode, _, _>(
                spec(0xE7),
                RandomChurn::new(0.005, 0.15, 0xE7),
                poisson(0xE7),
            ))
        })
    });

    // E8 kernel: the crypto-multicast comparator on fresh groups.
    g.bench_function("e8_crypto_fresh_groups", |b| {
        b.iter(|| {
            black_box(run::<CryptoMulticastNode, _, _>(
                spec(0xE8),
                NoFailures,
                poisson(0xE8),
            ))
        })
    });

    // E9 kernel: CONGOS over the deterministic expander substrate.
    g.bench_function("e9_congos_expander", |b| {
        b.iter(|| {
            let cfg = CongosConfig::base()
                .gossip_strategy(congos_gossip::GossipStrategy::Expander);
            black_box(run_with_factory::<CongosNode, _, _>(
                spec(0xE9),
                move |id, n, _s| CongosNode::with_config(id, n, cfg.clone()),
                NoFailures,
                poisson(0xE9),
            ))
        })
    });

    // E10 kernel: destination hiding (n singleton rumors per injection).
    g.bench_function("e10_congos_dest_hiding", |b| {
        b.iter(|| {
            let cfg = CongosConfig::base().hide_destinations();
            black_box(run_with_factory::<CongosNode, _, _>(
                spec(0xE10),
                move |id, n, _s| CongosNode::with_config(id, n, cfg.clone()),
                NoFailures,
                poisson(0xE10),
            ))
        })
    });

    // E11 kernel: large payloads through the pipeline (byte metering).
    g.bench_function("e11_congos_large_payloads", |b| {
        b.iter(|| {
            black_box(run::<CongosNode, _, _>(
                spec(0xE11),
                NoFailures,
                poisson(0xE11).data_len(4096),
            ))
        })
    });

    // Cover-traffic kernel (part of E10's story).
    g.bench_function("e10_cover_traffic", |b| {
        b.iter(|| {
            let cfg = CongosConfig::base().cover_traffic(CoverTrafficConfig {
                rate: 0.05,
                data_len: 16,
                deadline: DEADLINE,
            });
            black_box(run_with_factory::<CongosNode, _, _>(
                spec(0xE10C),
                move |id, n, _s| CongosNode::with_config(id, n, cfg.clone()),
                NoFailures,
                poisson(0xE10C),
            ))
        })
    });

    g.finish();

    // Backend-scaling smoke: the E3 kernel at n = 1024 on each backend. The
    // workload is kept light (≈2 rumors/round on the direct path) so the
    // engine's per-round fan-out over 1024 processes dominates — that is the
    // part the parallel backend shards. Outcomes are bit-identical across
    // backends (tests/differential.rs); only wall clock may differ, and the
    // speedup tracks the host's physical core count.
    let mut g = c.benchmark_group("backend_scaling");
    g.sample_size(10);
    const N_LARGE: usize = 1024;
    for backend in [
        EngineBackend::Sequential,
        EngineBackend::Parallel { workers: 8 },
    ] {
        g.bench_with_input(
            BenchmarkId::new("e3_congos_poisson_n1024", backend),
            &backend,
            |b, &backend| {
                b.iter(|| {
                    let spec = RunSpec::new(N_LARGE, 0xE3, 48).backend(backend);
                    let w = PoissonWorkload::new(2.0 / N_LARGE as f64, 3, 16, 0xE3)
                        .until(Round(32));
                    black_box(run::<CongosNode, _, _>(spec, NoFailures, w))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(kernels, benches);
criterion_main!(kernels);
