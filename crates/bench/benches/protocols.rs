//! Whole-protocol benchmarks: rounds-per-second of each system under a
//! fixed continuous workload (the engine cost of E8's comparison), plus
//! CONGOS round cost as `n` grows (the engine-side view of E3a).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use congos::CongosNode;
use congos_adversary::{CrriAdversary, NoFailures, PoissonWorkload};
use congos_baselines::{CryptoMulticastNode, DirectNode, StronglyConfidentialNode};
use congos_gossip::GossipNode;
use congos_sim::{Engine, EngineConfig, Protocol, Round};

const DEADLINE: u64 = 64;
const ROUNDS: u64 = 96;

fn drive<P>(n: usize) -> u64
where
    P: Protocol + 'static,
    P::Input: From<congos_adversary::RumorSpec>,
{
    let workload =
        PoissonWorkload::new(0.05, 3, DEADLINE, 11).until(Round(ROUNDS - DEADLINE / 2));
    let mut adv = CrriAdversary::new(NoFailures, workload);
    let mut engine = Engine::<P>::new(EngineConfig::new(n).seed(0xBE));
    engine.run(ROUNDS, &mut adv);
    engine.metrics().total()
}

fn bench_systems(c: &mut Criterion) {
    let n = 24;
    let mut g = c.benchmark_group("system_execution");
    g.sample_size(10);
    g.bench_function("congos", |b| b.iter(|| black_box(drive::<CongosNode>(n))));
    g.bench_function("epidemic", |b| b.iter(|| black_box(drive::<GossipNode>(n))));
    g.bench_function("direct", |b| b.iter(|| black_box(drive::<DirectNode>(n))));
    g.bench_function("strong", |b| {
        b.iter(|| black_box(drive::<StronglyConfidentialNode>(n)))
    });
    g.bench_function("crypto", |b| {
        b.iter(|| black_box(drive::<CryptoMulticastNode>(n)))
    });
    g.finish();
}

fn bench_congos_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("congos_scaling");
    g.sample_size(10);
    for n in [8usize, 16, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(drive::<CongosNode>(n)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_systems, bench_congos_scaling);
criterion_main!(benches);
