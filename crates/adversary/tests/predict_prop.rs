//! Property-based tests of the source-prediction subsystem (`predict`),
//! on synthetic traces where ground truth is known by construction.
//!
//! The headline property is *coalition monotonicity*: on traces where only
//! the source transmits (direct-unicast-style), a larger coalition can
//! never identify the source with lower probability than any of its
//! subsets — more observers means more sightings of the same truthful
//! sender, never contradictory evidence. On multi-hop traces the weaker
//! (but still universal) property holds: the estimated first-contact round
//! is monotone non-increasing in the coalition.

use congos_adversary::predict::{
    first_contact_posterior, CoalitionTap, EstimatorCtx, MlEstimator, Sighting, SightingLog,
};
use congos_sim::{ProcessId, Round, Tag, Topology, TopologySpec};
use proptest::prelude::*;

/// A tag interned for the tests (Tag carries a `&'static str`).
const TAG: Tag = Tag("rumor");

/// Builds two nested coalitions (subset ⊆ superset) from index sets,
/// excluding `source`, and returns their member lists.
fn nested_coalitions(
    n: usize,
    source: ProcessId,
    picks: &[usize],
    extra: &[usize],
) -> (Vec<ProcessId>, Vec<ProcessId>) {
    let clean = |ids: &[usize]| -> Vec<ProcessId> {
        let mut v: Vec<ProcessId> = ids
            .iter()
            .map(|i| ProcessId::new(i % n))
            .filter(|p| *p != source)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let subset = clean(picks);
    let mut superset = subset.clone();
    superset.extend(clean(extra));
    superset.sort_unstable();
    superset.dedup();
    (subset, superset)
}

/// Filters a delivery trace through a coalition tap.
fn observe(
    n: usize,
    members: &[ProcessId],
    deliveries: &[(Round, ProcessId, ProcessId)],
) -> SightingLog {
    let mut tap = CoalitionTap::new(n, members);
    for &(round, src, dst) in deliveries {
        tap.record_delivery(round, src, dst, TAG);
    }
    tap.into_log()
}

proptest! {
    /// Direct-unicast-style traces: only the source ever sends. Growing the
    /// coalition can only add sightings of the (truthful) source, so the
    /// first-contact identification credit never decreases.
    #[test]
    fn superset_coalition_never_identifies_worse_on_source_only_traces(
        n in 6usize..32,
        source_ix in 0usize..32,
        sends in prop::collection::vec((0u64..24, 0usize..32), 1..40),
        picks in prop::collection::vec(0usize..32, 1..6),
        extra in prop::collection::vec(0usize..32, 0..8),
    ) {
        let source = ProcessId::new(source_ix % n);
        let deliveries: Vec<(Round, ProcessId, ProcessId)> = sends
            .iter()
            .map(|&(r, d)| (Round(r), source, ProcessId::new(d % n)))
            .filter(|&(_, s, d)| s != d)
            .collect();
        let (subset, superset) = nested_coalitions(n, source, &picks, &extra);
        // Same candidate pool for both evaluations (everyone outside the
        // *larger* coalition), so the comparison is purely informational.
        let candidates: Vec<ProcessId> = ProcessId::all(n)
            .filter(|p| !superset.contains(p))
            .collect();
        prop_assume!(candidates.contains(&source));

        let credit = |members: &[ProcessId]| {
            let log = observe(n, members, &deliveries);
            let posterior = first_contact_posterior(&EstimatorCtx {
                log: &log,
                candidates: &candidates,
                injected_at: Round(0),
                tags: &["rumor"],
            });
            let si = candidates.iter().position(|c| *c == source).unwrap();
            posterior[si]
        };
        let small = credit(&subset);
        let large = credit(&superset);
        prop_assert!(
            large >= small - 1e-12,
            "superset posterior mass on source dropped: {small} -> {large}"
        );
    }

    /// Multi-hop truthful spread: every sighting a subset coalition records
    /// is also recorded by the superset, so the estimated first-contact
    /// round never moves later as the coalition grows.
    #[test]
    fn first_contact_round_is_monotone_in_the_coalition(
        n in 6usize..32,
        deliveries_raw in prop::collection::vec((0u64..32, 0usize..32, 0usize..32), 1..80),
        picks in prop::collection::vec(0usize..32, 1..6),
        extra in prop::collection::vec(0usize..32, 0..8),
    ) {
        let deliveries: Vec<(Round, ProcessId, ProcessId)> = deliveries_raw
            .iter()
            .map(|&(r, s, d)| (Round(r), ProcessId::new(s % n), ProcessId::new(d % n)))
            .filter(|&(_, s, d)| s != d)
            .collect();
        let (subset, superset) =
            nested_coalitions(n, ProcessId::new(n), &picks, &extra); // n = no exclusion
        let first_round = |members: &[ProcessId]| -> Option<Round> {
            observe(n, members, &deliveries)
                .first_per_sender(&["rumor"], Round(0))
                .into_iter()
                .flatten()
                .min()
        };
        let small = first_round(&subset);
        let large = first_round(&superset);
        match (small, large) {
            (Some(a), Some(b)) => prop_assert!(b <= a, "first contact moved later: {a:?} -> {b:?}"),
            (Some(_), None) => prop_assert!(false, "superset lost the subset's sightings"),
            _ => {}
        }
    }

    /// Both estimators always return a probability distribution over the
    /// candidate set, whatever the log contains.
    #[test]
    fn posteriors_are_distributions(
        n in 4usize..24,
        degree in 2usize..4,
        seed in 0u64..1000,
        raw in prop::collection::vec((0u64..32, 0usize..24, 0usize..24), 0..60),
        coalition_ix in prop::collection::vec(0usize..24, 1..5),
    ) {
        let mut log = SightingLog::new(n);
        for &(r, s, d) in &raw {
            let (s, d) = (ProcessId::new(s % n), ProcessId::new(d % n));
            if s != d {
                log.record(Sighting { round: Round(r), observer: d, sender: s, tag: TAG });
            }
        }
        let mut members: Vec<ProcessId> =
            coalition_ix.iter().map(|i| ProcessId::new(i % n)).collect();
        members.sort_unstable();
        members.dedup();
        let candidates: Vec<ProcessId> = ProcessId::all(n)
            .filter(|p| !members.contains(p))
            .collect();
        prop_assume!(!candidates.is_empty());
        let ctx = EstimatorCtx {
            log: &log,
            candidates: &candidates,
            injected_at: Round(0),
            tags: &["rumor"],
        };
        // n·degree must be even for a d-regular graph to exist.
        let degree = if n * degree % 2 == 0 { degree } else { degree + 1 };
        let spec = if degree < n {
            TopologySpec::Expander { degree }
        } else {
            TopologySpec::Complete
        };
        let topology = Topology::build(spec, n, seed);
        for posterior in [
            first_contact_posterior(&ctx),
            MlEstimator::default().posterior(&ctx, &topology),
        ] {
            prop_assert_eq!(posterior.len(), candidates.len());
            prop_assert!(posterior.iter().all(|p| *p >= 0.0));
            let total: f64 = posterior.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "sums to {total}");
        }
    }
}
