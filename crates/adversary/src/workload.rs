//! Rumor-injection workloads.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use congos_sim::{ProcessId, Round, RoundView};

use crate::plan::InjectionPlan;

/// A protocol-agnostic description of a rumor to inject: payload bytes, a
/// deadline in rounds, and a destination set. Protocol crates convert this
/// into their own rumor type via `From<RumorSpec>`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RumorSpec {
    /// Workload-unique rumor identifier, used to correlate injections with
    /// deliveries in experiments.
    pub id: u64,
    /// The confidential payload `ρ.z`.
    pub data: Vec<u8>,
    /// Deadline duration `ρ.d` in rounds.
    pub deadline: u64,
    /// Destination set `ρ.D` (sorted, deduplicated).
    pub dest: Vec<ProcessId>,
}

impl RumorSpec {
    /// Creates a spec, normalizing the destination set.
    pub fn new(id: u64, data: Vec<u8>, deadline: u64, mut dest: Vec<ProcessId>) -> Self {
        dest.sort_unstable();
        dest.dedup();
        RumorSpec {
            id,
            data,
            deadline,
            dest,
        }
    }
}

/// Record of an injection a workload has emitted (for later QoD accounting).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InjectionLogEntry {
    /// Round of injection.
    pub round: Round,
    /// Source process.
    pub source: ProcessId,
    /// The injected spec.
    pub spec: RumorSpec,
}

/// Workload that injects nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoInjections;

impl InjectionPlan for NoInjections {
    fn decide_injections(&mut self, _view: &RoundView<'_>) -> Vec<(ProcessId, RumorSpec)> {
        Vec::new()
    }
}

/// Injects a fixed batch of rumors at one round.
#[derive(Clone, Debug)]
pub struct OneShot {
    round: Round,
    batch: Vec<(ProcessId, RumorSpec)>,
    log: Vec<InjectionLogEntry>,
}

impl OneShot {
    /// Injects `batch` at `round`.
    pub fn new(round: Round, batch: Vec<(ProcessId, RumorSpec)>) -> Self {
        OneShot {
            round,
            batch,
            log: Vec::new(),
        }
    }

    /// Injections emitted so far.
    pub fn log(&self) -> &[InjectionLogEntry] {
        &self.log
    }
}

impl InjectionPlan for OneShot {
    fn decide_injections(&mut self, view: &RoundView<'_>) -> Vec<(ProcessId, RumorSpec)> {
        if view.round != self.round {
            return Vec::new();
        }
        let batch = std::mem::take(&mut self.batch);
        for (p, spec) in &batch {
            self.log.push(InjectionLogEntry {
                round: view.round,
                source: *p,
                spec: spec.clone(),
            });
        }
        batch
    }
}

/// Continuous injection: each round, each alive process independently
/// injects a rumor with probability `rate`, targeting a fresh uniformly
/// random destination set of size `dest_size` (resampled per rumor — the
/// "rapidly changing groups" regime where the paper argues cryptographic
/// schemes struggle).
#[derive(Clone, Debug)]
pub struct PoissonWorkload {
    rate: f64,
    dest_size: usize,
    deadline: u64,
    data_len: usize,
    rng: SmallRng,
    next_id: u64,
    until: Option<Round>,
    log: Vec<InjectionLogEntry>,
}

impl PoissonWorkload {
    /// Creates a continuous workload; `rate` is the per-process per-round
    /// injection probability (≤ 1: at most one rumor per process per round,
    /// as the model requires).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `[0, 1]` or `dest_size == 0`.
    pub fn new(rate: f64, dest_size: usize, deadline: u64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        assert!(dest_size > 0, "destination sets must be non-empty");
        PoissonWorkload {
            rate,
            dest_size,
            deadline,
            data_len: 16,
            rng: SmallRng::seed_from_u64(seed ^ 0x7a11_ab1e),
            next_id: 0,
            until: None,
            log: Vec::new(),
        }
    }

    /// Sets the payload length in bytes (default 16).
    pub fn data_len(mut self, len: usize) -> Self {
        self.data_len = len;
        self
    }

    /// Stops injecting at the given round (exclusive) so executions can
    /// drain.
    pub fn until(mut self, round: Round) -> Self {
        self.until = Some(round);
        self
    }

    /// Injections emitted so far.
    pub fn log(&self) -> &[InjectionLogEntry] {
        &self.log
    }
}

impl InjectionPlan for PoissonWorkload {
    fn decide_injections(&mut self, view: &RoundView<'_>) -> Vec<(ProcessId, RumorSpec)> {
        if let Some(limit) = self.until {
            if view.round >= limit {
                return Vec::new();
            }
        }
        let n = view.n();
        let mut out = Vec::new();
        for p in view.alive_ids() {
            if self.rng.gen_bool(self.rate) {
                let dest = sample_distinct(&mut self.rng, n, self.dest_size.min(n));
                let data = (0..self.data_len).map(|_| self.rng.gen()).collect();
                let spec = RumorSpec::new(self.next_id, data, self.deadline, dest);
                self.next_id += 1;
                self.log.push(InjectionLogEntry {
                    round: view.round,
                    source: p,
                    spec: spec.clone(),
                });
                out.push((p, spec));
            }
        }
        out
    }
}

/// The workload from the proofs of Theorems 1 and 12: at round 0, every
/// process injects exactly one rumor whose destination set contains each
/// process independently with probability `x/n`, where `x = n^{1/2 − 2/c}`.
#[derive(Clone, Debug)]
pub struct Theorem1Workload {
    c: f64,
    deadline: u64,
    data_len: usize,
    rng: SmallRng,
    log: Vec<InjectionLogEntry>,
}

impl Theorem1Workload {
    /// Creates the workload with the paper's parameter `c` (it sets
    /// `c = ⌈2/ε⌉`; `c = 4` gives `x = √n / n^{1/2·…}` — see
    /// [`Self::x`]).
    pub fn new(c: f64, deadline: u64, seed: u64) -> Self {
        assert!(c > 2.0, "theorem 1 requires c > 2 so that x ≥ 1 eventually");
        Theorem1Workload {
            c,
            deadline,
            data_len: 16,
            rng: SmallRng::seed_from_u64(seed ^ 0x1e0_4e44),
            log: Vec::new(),
        }
    }

    /// The expected destination-set size parameter `x = n^{1/2 − 2/c}`.
    pub fn x(&self, n: usize) -> f64 {
        (n as f64).powf(0.5 - 2.0 / self.c)
    }

    /// Injections emitted so far.
    pub fn log(&self) -> &[InjectionLogEntry] {
        &self.log
    }
}

impl InjectionPlan for Theorem1Workload {
    fn decide_injections(&mut self, view: &RoundView<'_>) -> Vec<(ProcessId, RumorSpec)> {
        if view.round != Round::ZERO {
            return Vec::new();
        }
        let n = view.n();
        let prob = (self.x(n) / n as f64).clamp(0.0, 1.0);
        let mut out = Vec::new();
        for (i, p) in ProcessId::all(n).enumerate() {
            let mut dest: Vec<ProcessId> = ProcessId::all(n)
                .filter(|_| self.rng.gen_bool(prob))
                .collect();
            if dest.is_empty() {
                // Degenerate empty sets carry no delivery obligation; give
                // them one destination so every rumor is measurable.
                dest.push(ProcessId::new((i + 1) % n));
            }
            let data = (0..self.data_len).map(|_| self.rng.gen()).collect();
            let spec = RumorSpec::new(i as u64, data, self.deadline, dest);
            self.log.push(InjectionLogEntry {
                round: view.round,
                source: p,
                spec: spec.clone(),
            });
            out.push((p, spec.clone()));
        }
        out
    }
}

/// Rumors repeatedly target the same fixed groups (the *stable groups*
/// regime where cryptographic multicast shines — used as the contrast case
/// in experiment E8).
#[derive(Clone, Debug)]
pub struct StableGroupWorkload {
    groups: Vec<Vec<ProcessId>>,
    rate: f64,
    deadline: u64,
    rng: SmallRng,
    next_id: u64,
    until: Option<Round>,
    log: Vec<InjectionLogEntry>,
}

impl StableGroupWorkload {
    /// Creates a workload over the given fixed groups; each round each alive
    /// process injects with probability `rate`, targeting a uniformly chosen
    /// group.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty or contains an empty group.
    pub fn new(groups: Vec<Vec<ProcessId>>, rate: f64, deadline: u64, seed: u64) -> Self {
        assert!(!groups.is_empty(), "need at least one group");
        assert!(
            groups.iter().all(|g| !g.is_empty()),
            "groups must be non-empty"
        );
        StableGroupWorkload {
            groups,
            rate,
            deadline,
            rng: SmallRng::seed_from_u64(seed ^ 0x57ab_1e67),
            next_id: 0,
            until: None,
            log: Vec::new(),
        }
    }

    /// Stops injecting at the given round (exclusive).
    pub fn until(mut self, round: Round) -> Self {
        self.until = Some(round);
        self
    }

    /// Injections emitted so far.
    pub fn log(&self) -> &[InjectionLogEntry] {
        &self.log
    }
}

impl InjectionPlan for StableGroupWorkload {
    fn decide_injections(&mut self, view: &RoundView<'_>) -> Vec<(ProcessId, RumorSpec)> {
        if let Some(limit) = self.until {
            if view.round >= limit {
                return Vec::new();
            }
        }
        let mut out = Vec::new();
        for p in view.alive_ids() {
            if self.rng.gen_bool(self.rate) {
                let g = self.rng.gen_range(0..self.groups.len());
                let data = (0..16).map(|_| self.rng.gen()).collect();
                let spec = RumorSpec::new(
                    self.next_id,
                    data,
                    self.deadline,
                    self.groups[g].clone(),
                );
                self.next_id += 1;
                self.log.push(InjectionLogEntry {
                    round: view.round,
                    source: p,
                    spec: spec.clone(),
                });
                out.push((p, spec));
            }
        }
        out
    }
}

/// Alias-style wrapper for the *dynamic groups* regime: every rumor draws a
/// completely fresh destination set. Identical to [`PoissonWorkload`] but
/// named for its role in experiment E8.
pub type FreshGroupWorkload = PoissonWorkload;

/// Samples `k` distinct process ids uniformly from `0..n` (Floyd's
/// algorithm).
pub fn sample_distinct(rng: &mut SmallRng, n: usize, k: usize) -> Vec<ProcessId> {
    debug_assert!(k <= n);
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        if chosen.contains(&t) {
            chosen.push(j);
        } else {
            chosen.push(t);
        }
    }
    chosen.sort_unstable();
    chosen.into_iter().map(ProcessId::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use congos_sim::OutboxMeta;

    fn view(round: u64, alive: &[bool]) -> RoundView<'_> {
        RoundView {
            round: Round(round),
            alive,
            outbox: &[] as &[OutboxMeta],
        }
    }

    #[test]
    fn rumor_spec_normalizes_dest() {
        let s = RumorSpec::new(
            0,
            vec![],
            10,
            vec![ProcessId::new(3), ProcessId::new(1), ProcessId::new(3)],
        );
        assert_eq!(s.dest, vec![ProcessId::new(1), ProcessId::new(3)]);
    }

    #[test]
    fn one_shot_fires_once() {
        let alive = vec![true; 4];
        let mut w = OneShot::new(
            Round(1),
            vec![(
                ProcessId::new(0),
                RumorSpec::new(0, vec![], 8, vec![ProcessId::new(1)]),
            )],
        );
        assert!(w.decide_injections(&view(0, &alive)).is_empty());
        assert_eq!(w.decide_injections(&view(1, &alive)).len(), 1);
        assert!(w.decide_injections(&view(1, &alive)).is_empty());
        assert_eq!(w.log().len(), 1);
    }

    #[test]
    fn poisson_respects_rate_and_liveness() {
        let mut alive = vec![true; 100];
        alive[0] = false;
        let mut w = PoissonWorkload::new(1.0, 3, 64, 7);
        let out = w.decide_injections(&view(0, &alive));
        assert_eq!(out.len(), 99, "rate 1.0 ⇒ every alive process injects");
        assert!(out.iter().all(|(p, _)| p.as_usize() != 0));
        assert!(out.iter().all(|(_, s)| s.dest.len() == 3));
        let ids: Vec<u64> = out.iter().map(|(_, s)| s.id).collect();
        let mut dedup = ids.clone();
        dedup.dedup();
        assert_eq!(ids, dedup, "ids unique");
    }

    #[test]
    fn poisson_until_stops() {
        let alive = vec![true; 10];
        let mut w = PoissonWorkload::new(1.0, 2, 64, 7).until(Round(2));
        assert!(!w.decide_injections(&view(1, &alive)).is_empty());
        assert!(w.decide_injections(&view(2, &alive)).is_empty());
    }

    #[test]
    fn theorem1_destination_sets_have_expected_size() {
        let n = 256;
        let alive = vec![true; n];
        let mut w = Theorem1Workload::new(4.0, 64, 3);
        let out = w.decide_injections(&view(0, &alive));
        assert_eq!(out.len(), n, "every process injects exactly one rumor");
        let x = w.x(n); // n^{1/2 - 1/2} = n^0 = 1 for c=4
        let mean: f64 =
            out.iter().map(|(_, s)| s.dest.len() as f64).sum::<f64>() / n as f64;
        // Mean |D| ≈ x (within generous tolerance; sets are floored to ≥1).
        assert!(
            mean >= 0.5 * x.max(1.0) && mean <= 3.0 * x.max(1.0),
            "mean {mean} vs x {x}"
        );
        // Nothing after round 0.
        assert!(w.decide_injections(&view(1, &alive)).is_empty());
    }

    #[test]
    fn theorem1_x_formula() {
        let w = Theorem1Workload::new(8.0, 64, 0);
        let x = w.x(256);
        assert!((x - (256f64).powf(0.25)).abs() < 1e-9);
    }

    #[test]
    fn stable_groups_reuse_destinations() {
        let groups = vec![
            vec![ProcessId::new(0), ProcessId::new(1)],
            vec![ProcessId::new(2), ProcessId::new(3)],
        ];
        let alive = vec![true; 4];
        let mut w = StableGroupWorkload::new(groups.clone(), 1.0, 64, 9);
        let out = w.decide_injections(&view(0, &alive));
        assert_eq!(out.len(), 4);
        for (_, s) in &out {
            assert!(groups.contains(&s.dest));
        }
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..50 {
            let v = sample_distinct(&mut rng, 20, 7);
            assert_eq!(v.len(), 7);
            let mut w = v.clone();
            w.dedup();
            assert_eq!(v, w);
            assert!(v.iter().all(|p| p.as_usize() < 20));
        }
        assert_eq!(sample_distinct(&mut rng, 5, 5).len(), 5);
        assert!(sample_distinct(&mut rng, 5, 0).is_empty());
    }
}
