//! # congos-adversary — CRRI adversary strategies and workloads
//!
//! The paper's adversary controls three things at once: **C**rashes,
//! **R**estarts and **R**umor **I**njection (hence *CRRI*). This crate
//! factors those into two composable plans:
//!
//! * a [`FailurePlan`] decides crashes/restarts — from benign
//!   ([`NoFailures`]) through random churn to the adaptive attacks the paper
//!   defends against ([`ProxyKiller`] crashes a process the instant it is
//!   asked to act as a proxy; [`GroupAnnihilator`] wipes out an entire side
//!   of a partition);
//! * an [`InjectionPlan`] decides which rumors appear where and when —
//!   including the exact random-destination-set workload used in the proofs
//!   of Theorems 1 and 12 ([`Theorem1Workload`]).
//!
//! [`CrriAdversary`] glues a failure plan and an injection plan into a
//! [`congos_sim::Adversary`] for any protocol whose input can be built from a
//! [`RumorSpec`].
//!
//! Orthogonal to CRRI, the [`predict`] module family implements a *passive
//! observing coalition* — a source-prediction adversary that records
//! delivery metadata through an RNG-neutral engine tap and runs
//! first-contact / maximum-likelihood source estimators over it (the E13
//! anonymity experiments).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collusion;
pub mod failures;
pub mod plan;
pub mod predict;
pub mod workload;

pub use collusion::pick_colluders;
pub use predict::{
    first_contact_posterior, AttackScore, CoalitionSpec, CoalitionTap, EstimatorCtx, MlEstimator,
    Sighting, SightingLog,
};
pub use failures::{Eclipse, GroupAnnihilator, NoFailures, ProxyKiller, RandomChurn, RollingWaves, ScheduledChurn};
pub use plan::{CrriAdversary, FailurePlan, InjectionPlan};
pub use workload::{
    FreshGroupWorkload, InjectionLogEntry, NoInjections, OneShot, PoissonWorkload, RumorSpec,
    StableGroupWorkload, Theorem1Workload,
};
