//! Failure plans: from benign to the adaptive attacks of the paper.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use congos_sim::{CrashSpec, IncomingPolicy, ProcessId, Round, RoundView, SentPolicy, Tag};

use crate::plan::FailurePlan;

/// No crashes, no restarts.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFailures;

impl FailurePlan for NoFailures {
    fn decide_failures(
        &mut self,
        _view: &RoundView<'_>,
    ) -> (Vec<CrashSpec>, Vec<(ProcessId, IncomingPolicy)>) {
        (Vec::new(), Vec::new())
    }
}

/// Memoryless churn: each alive process crashes with probability `p_crash`
/// per round; each crashed process restarts with probability `p_restart`.
/// Processes in the protected set never crash (used to keep a rumor's source
/// and destinations admissible while the rest of the system churns).
#[derive(Clone, Debug)]
pub struct RandomChurn {
    p_crash: f64,
    p_restart: f64,
    protected: Vec<ProcessId>,
    rng: SmallRng,
    deliver_on_crash: bool,
}

impl RandomChurn {
    /// Creates churn with the given per-round probabilities.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(p_crash: f64, p_restart: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p_crash), "p_crash in [0,1]");
        assert!((0.0..=1.0).contains(&p_restart), "p_restart in [0,1]");
        RandomChurn {
            p_crash,
            p_restart,
            protected: Vec::new(),
            rng: SmallRng::seed_from_u64(seed ^ 0xc4a5_4e57),
            deliver_on_crash: false,
        }
    }

    /// Marks processes that must never crash.
    pub fn protect<I: IntoIterator<Item = ProcessId>>(mut self, ids: I) -> Self {
        self.protected.extend(ids);
        self
    }

    /// If set, a crashing process's in-flight messages are delivered rather
    /// than dropped (a milder failure mode).
    pub fn deliver_on_crash(mut self, yes: bool) -> Self {
        self.deliver_on_crash = yes;
        self
    }
}

impl FailurePlan for RandomChurn {
    fn decide_failures(
        &mut self,
        view: &RoundView<'_>,
    ) -> (Vec<CrashSpec>, Vec<(ProcessId, IncomingPolicy)>) {
        let mut crashes = Vec::new();
        let mut restarts = Vec::new();
        for i in 0..view.n() {
            let p = ProcessId::new(i);
            if view.alive[i] {
                if !self.protected.contains(&p) && self.rng.gen_bool(self.p_crash) {
                    crashes.push(CrashSpec {
                        process: p,
                        sent: if self.deliver_on_crash {
                            SentPolicy::DeliverAll
                        } else {
                            SentPolicy::DropAll
                        },
                    });
                }
            } else if self.rng.gen_bool(self.p_restart) {
                restarts.push((p, IncomingPolicy::DropAll));
            }
        }
        (crashes, restarts)
    }
}

/// An oblivious, precomputed crash/restart script.
#[derive(Clone, Debug, Default)]
pub struct ScheduledChurn {
    crashes: Vec<(Round, ProcessId)>,
    restarts: Vec<(Round, ProcessId)>,
}

impl ScheduledChurn {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a crash of `p` at round `t`.
    pub fn crash_at(mut self, t: Round, p: ProcessId) -> Self {
        self.crashes.push((t, p));
        self
    }

    /// Schedules a restart of `p` at round `t`.
    pub fn restart_at(mut self, t: Round, p: ProcessId) -> Self {
        self.restarts.push((t, p));
        self
    }
}

impl FailurePlan for ScheduledChurn {
    fn decide_failures(
        &mut self,
        view: &RoundView<'_>,
    ) -> (Vec<CrashSpec>, Vec<(ProcessId, IncomingPolicy)>) {
        let t = view.round;
        let crashes = self
            .crashes
            .iter()
            .filter(|(r, p)| *r == t && view.alive[p.as_usize()])
            .map(|(_, p)| CrashSpec::dropping(*p))
            .collect();
        let restarts = self
            .restarts
            .iter()
            .filter(|(r, p)| *r == t && !view.alive[p.as_usize()])
            .map(|(_, p)| (*p, IncomingPolicy::DropAll))
            .collect();
        (crashes, restarts)
    }
}

/// The adaptive attack the Proxy service is designed to survive: *"every
/// time a source sends a rumor (or rumor fragment) to another process, the
/// adversary may choose to immediately crash that recipient"* (Section 1).
///
/// `ProxyKiller` watches the round's outboxes for messages with the given
/// tag and crashes up to `budget` of their receivers per round, before they
/// can act. Optionally restarts victims `revive_after` rounds later so the
/// system never runs out of processes.
#[derive(Clone, Debug)]
pub struct ProxyKiller {
    tag: Tag,
    budget: usize,
    protected: Vec<ProcessId>,
    revive_after: Option<u64>,
    pending_revival: Vec<(Round, ProcessId)>,
    kills: u64,
}

impl ProxyKiller {
    /// Kills up to `budget` receivers of `tag`-tagged messages per round.
    pub fn new(tag: Tag, budget: usize) -> Self {
        ProxyKiller {
            tag,
            budget,
            protected: Vec::new(),
            revive_after: None,
            pending_revival: Vec::new(),
            kills: 0,
        }
    }

    /// Marks processes that must never crash.
    pub fn protect<I: IntoIterator<Item = ProcessId>>(mut self, ids: I) -> Self {
        self.protected.extend(ids);
        self
    }

    /// Restart victims after the given number of rounds.
    pub fn revive_after(mut self, rounds: u64) -> Self {
        self.revive_after = Some(rounds);
        self
    }

    /// Total kills so far.
    pub fn kills(&self) -> u64 {
        self.kills
    }
}

impl FailurePlan for ProxyKiller {
    fn decide_failures(
        &mut self,
        view: &RoundView<'_>,
    ) -> (Vec<CrashSpec>, Vec<(ProcessId, IncomingPolicy)>) {
        let mut victims: Vec<ProcessId> = Vec::new();
        for m in view.outbox {
            if m.tag == self.tag
                && view.alive[m.dst.as_usize()]
                && !self.protected.contains(&m.dst)
                && !victims.contains(&m.dst)
            {
                victims.push(m.dst);
                if victims.len() >= self.budget {
                    break;
                }
            }
        }
        self.kills += victims.len() as u64;
        if let Some(delay) = self.revive_after {
            for v in &victims {
                self.pending_revival.push((view.round + delay, *v));
            }
        }
        let mut restarts = Vec::new();
        self.pending_revival.retain(|(when, p)| {
            // Restart when due, provided the process is (still) crashed and
            // is not also being crashed this very round.
            if *when <= view.round && !view.alive[p.as_usize()] && !victims.contains(p) {
                restarts.push((*p, IncomingPolicy::DropAll));
                false
            } else {
                *when > view.round || victims.contains(p)
            }
        });
        // Victims crash *with their inbox*: they never get to cache the
        // proxy request (SentPolicy concerns their own sends, all dropped).
        let crashes = victims.into_iter().map(CrashSpec::dropping).collect();
        (crashes, restarts)
    }
}

/// Crashes every process of one group of a bit-partition at a given round —
/// the attack that makes a single partition insufficient and motivates the
/// `log n` partitions of Section 4.2.
#[derive(Clone, Debug)]
pub struct GroupAnnihilator {
    ell: u32,
    bit: u8,
    at: Round,
    protected: Vec<ProcessId>,
}

impl GroupAnnihilator {
    /// Crashes, at round `at`, every process whose `ell`-th id bit equals
    /// `bit`.
    pub fn new(ell: u32, bit: u8, at: Round) -> Self {
        GroupAnnihilator {
            ell,
            bit,
            at,
            protected: Vec::new(),
        }
    }

    /// Marks processes that must never crash.
    pub fn protect<I: IntoIterator<Item = ProcessId>>(mut self, ids: I) -> Self {
        self.protected.extend(ids);
        self
    }
}

impl FailurePlan for GroupAnnihilator {
    fn decide_failures(
        &mut self,
        view: &RoundView<'_>,
    ) -> (Vec<CrashSpec>, Vec<(ProcessId, IncomingPolicy)>) {
        if view.round != self.at {
            return (Vec::new(), Vec::new());
        }
        let crashes = view
            .alive_ids()
            .filter(|p| p.bit(self.ell) == self.bit && !self.protected.contains(p))
            .map(CrashSpec::dropping)
            .collect();
        (crashes, Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congos_sim::OutboxMeta;

    fn view<'a>(round: u64, alive: &'a [bool], outbox: &'a [OutboxMeta]) -> RoundView<'a> {
        RoundView {
            round: Round(round),
            alive,
            outbox,
        }
    }

    #[test]
    fn random_churn_respects_protection() {
        let alive = vec![true; 50];
        let mut churn = RandomChurn::new(1.0, 0.0, 1).protect(ProcessId::all(10));
        let (crashes, _) = churn.decide_failures(&view(0, &alive, &[]));
        assert_eq!(crashes.len(), 40);
        assert!(crashes.iter().all(|c| c.process.as_usize() >= 10));
    }

    #[test]
    fn random_churn_restarts_crashed() {
        let mut alive = vec![true; 4];
        alive[2] = false;
        let mut churn = RandomChurn::new(0.0, 1.0, 1);
        let (crashes, restarts) = churn.decide_failures(&view(0, &alive, &[]));
        assert!(crashes.is_empty());
        assert_eq!(restarts.len(), 1);
        assert_eq!(restarts[0].0, ProcessId::new(2));
    }

    #[test]
    fn scheduled_churn_fires_on_time_and_checks_state() {
        let mut sched = ScheduledChurn::new()
            .crash_at(Round(1), ProcessId::new(0))
            .restart_at(Round(2), ProcessId::new(0));
        let alive = vec![true; 2];
        let dead = vec![false, true];
        assert!(sched.decide_failures(&view(0, &alive, &[])).0.is_empty());
        assert_eq!(sched.decide_failures(&view(1, &alive, &[])).0.len(), 1);
        // Restart only applies if actually crashed.
        assert_eq!(sched.decide_failures(&view(2, &dead, &[])).1.len(), 1);
        let mut sched2 = ScheduledChurn::new().restart_at(Round(2), ProcessId::new(0));
        assert!(sched2.decide_failures(&view(2, &alive, &[])).1.is_empty());
    }

    #[test]
    fn proxy_killer_targets_tagged_receivers() {
        let alive = vec![true; 4];
        let outbox = [
            OutboxMeta {
                src: ProcessId::new(0),
                dst: ProcessId::new(1),
                tag: Tag("proxy_request"),
            },
            OutboxMeta {
                src: ProcessId::new(0),
                dst: ProcessId::new(2),
                tag: Tag("other"),
            },
            OutboxMeta {
                src: ProcessId::new(0),
                dst: ProcessId::new(3),
                tag: Tag("proxy_request"),
            },
        ];
        let mut killer = ProxyKiller::new(Tag("proxy_request"), 10);
        let (crashes, _) = killer.decide_failures(&view(0, &alive, &outbox));
        let victims: Vec<usize> = crashes.iter().map(|c| c.process.as_usize()).collect();
        assert_eq!(victims, vec![1, 3]);
        assert_eq!(killer.kills(), 2);
    }

    #[test]
    fn proxy_killer_budget_and_revival() {
        let alive = vec![true; 4];
        let outbox = [
            OutboxMeta {
                src: ProcessId::new(0),
                dst: ProcessId::new(1),
                tag: Tag("p"),
            },
            OutboxMeta {
                src: ProcessId::new(0),
                dst: ProcessId::new(2),
                tag: Tag("p"),
            },
        ];
        let mut killer = ProxyKiller::new(Tag("p"), 1).revive_after(2);
        let (crashes, _) = killer.decide_failures(&view(0, &alive, &outbox));
        assert_eq!(crashes.len(), 1);
        // Two rounds later the victim is revived.
        let mut dead = vec![true; 4];
        dead[1] = false;
        let (_, restarts) = killer.decide_failures(&view(2, &dead, &[]));
        assert_eq!(restarts, vec![(ProcessId::new(1), IncomingPolicy::DropAll)]);
    }

    #[test]
    fn group_annihilator_kills_exactly_one_side() {
        let alive = vec![true; 8];
        let mut ann = GroupAnnihilator::new(1, 0, Round(3));
        assert!(ann.decide_failures(&view(0, &alive, &[])).0.is_empty());
        let (crashes, _) = ann.decide_failures(&view(3, &alive, &[]));
        // ids with bit 1 == 0: 0,1,4,5
        let victims: Vec<usize> = crashes.iter().map(|c| c.process.as_usize()).collect();
        assert_eq!(victims, vec![0, 1, 4, 5]);
    }
}

/// Eclipse attack: adaptively crash any process observed *sending to* the
/// victim, for a window of rounds — an attempt to cut one destination off
/// from the collaboration while leaving it (and the source) alive. QoD must
/// still hold: the deadline fallback goes straight from the source, and the
/// attacker cannot crash the continuously-alive source without exempting
/// the rumor.
#[derive(Clone, Debug)]
pub struct Eclipse {
    victim: ProcessId,
    until: Round,
    budget_per_round: usize,
    protected: Vec<ProcessId>,
    kills: u64,
}

impl Eclipse {
    /// Eclipses `victim` until round `until` (exclusive), crashing up to
    /// `budget_per_round` of its correspondents each round.
    pub fn new(victim: ProcessId, until: Round, budget_per_round: usize) -> Self {
        Eclipse {
            victim,
            until,
            budget_per_round,
            protected: Vec::new(),
            kills: 0,
        }
    }

    /// Marks processes that must never crash (typically the source, so the
    /// rumor stays admissible).
    pub fn protect<I: IntoIterator<Item = ProcessId>>(mut self, ids: I) -> Self {
        self.protected.extend(ids);
        self
    }

    /// Total kills so far.
    pub fn kills(&self) -> u64 {
        self.kills
    }
}

impl FailurePlan for Eclipse {
    fn decide_failures(
        &mut self,
        view: &RoundView<'_>,
    ) -> (Vec<CrashSpec>, Vec<(ProcessId, IncomingPolicy)>) {
        if view.round >= self.until {
            return (Vec::new(), Vec::new());
        }
        let mut victims: Vec<ProcessId> = Vec::new();
        for m in view.outbox {
            if m.dst == self.victim
                && m.src != self.victim
                && view.alive[m.src.as_usize()]
                && !self.protected.contains(&m.src)
                && !victims.contains(&m.src)
            {
                victims.push(m.src);
                if victims.len() >= self.budget_per_round {
                    break;
                }
            }
        }
        self.kills += victims.len() as u64;
        (victims.into_iter().map(CrashSpec::dropping).collect(), Vec::new())
    }
}

/// Rolling-wave churn: crashes a sliding window of `width` consecutive ids
/// every `period` rounds and restarts the previous wave — the whole system
/// flaps, but no process is down for more than a window.
#[derive(Clone, Debug)]
pub struct RollingWaves {
    width: usize,
    period: u64,
    protected: Vec<ProcessId>,
}

impl RollingWaves {
    /// Creates waves of `width` processes every `period` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` or `width == 0`.
    pub fn new(width: usize, period: u64) -> Self {
        assert!(period > 0 && width > 0);
        RollingWaves {
            width,
            period,
            protected: Vec::new(),
        }
    }

    /// Marks processes that must never crash.
    pub fn protect<I: IntoIterator<Item = ProcessId>>(mut self, ids: I) -> Self {
        self.protected.extend(ids);
        self
    }

    fn wave(&self, k: u64, n: usize) -> Vec<ProcessId> {
        (0..self.width)
            .map(|j| ProcessId::new(((k as usize * self.width) + j) % n))
            .filter(|p| !self.protected.contains(p))
            .collect()
    }
}

impl FailurePlan for RollingWaves {
    fn decide_failures(
        &mut self,
        view: &RoundView<'_>,
    ) -> (Vec<CrashSpec>, Vec<(ProcessId, IncomingPolicy)>) {
        let t = view.round.as_u64();
        if t == 0 || t % self.period != 0 {
            return (Vec::new(), Vec::new());
        }
        let k = t / self.period;
        let n = view.n();
        let crashes = self
            .wave(k, n)
            .into_iter()
            .filter(|p| view.alive[p.as_usize()])
            .map(CrashSpec::dropping)
            .collect();
        let restarts = self
            .wave(k - 1, n)
            .into_iter()
            .filter(|p| !view.alive[p.as_usize()])
            .map(|p| (p, IncomingPolicy::DropAll))
            .collect();
        (crashes, restarts)
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use congos_sim::OutboxMeta;

    fn view<'a>(round: u64, alive: &'a [bool], outbox: &'a [OutboxMeta]) -> RoundView<'a> {
        RoundView {
            round: Round(round),
            alive,
            outbox,
        }
    }

    #[test]
    fn eclipse_crashes_victims_correspondents_only() {
        let alive = vec![true; 5];
        let outbox = [
            OutboxMeta {
                src: ProcessId::new(1),
                dst: ProcessId::new(0),
                tag: Tag("x"),
            },
            OutboxMeta {
                src: ProcessId::new(2),
                dst: ProcessId::new(3),
                tag: Tag("x"),
            },
            OutboxMeta {
                src: ProcessId::new(4),
                dst: ProcessId::new(0),
                tag: Tag("x"),
            },
        ];
        let mut e = Eclipse::new(ProcessId::new(0), Round(10), 8)
            .protect([ProcessId::new(4)]);
        let (crashes, _) = e.decide_failures(&view(0, &alive, &outbox));
        let victims: Vec<usize> = crashes.iter().map(|c| c.process.as_usize()).collect();
        assert_eq!(victims, vec![1], "p2 talks elsewhere, p4 protected");
        assert_eq!(e.kills(), 1);
        // After the window the attack stops.
        let (crashes, _) = e.decide_failures(&view(10, &alive, &outbox));
        assert!(crashes.is_empty());
    }

    #[test]
    fn rolling_waves_flap_disjoint_windows() {
        let alive = vec![true; 9];
        let mut w = RollingWaves::new(3, 8);
        assert!(w.decide_failures(&view(0, &alive, &[])).0.is_empty());
        assert!(w.decide_failures(&view(5, &alive, &[])).0.is_empty());
        let (crashes, restarts) = w.decide_failures(&view(8, &alive, &[]));
        let victims: Vec<usize> = crashes.iter().map(|c| c.process.as_usize()).collect();
        assert_eq!(victims, vec![3, 4, 5], "wave 1");
        assert!(restarts.is_empty(), "wave 0 never crashed (t=0 skipped)");
        // Next wave crashes 6..9 and restarts 3..6 (now dead).
        let mut alive2 = vec![true; 9];
        for v in &victims {
            alive2[*v] = false;
        }
        let (crashes, restarts) = w.decide_failures(&view(16, &alive2, &[]));
        let victims2: Vec<usize> = crashes.iter().map(|c| c.process.as_usize()).collect();
        assert_eq!(victims2, vec![6, 7, 8]);
        let returned: Vec<usize> = restarts.iter().map(|(p, _)| p.as_usize()).collect();
        assert_eq!(returned, vec![3, 4, 5]);
    }
}
