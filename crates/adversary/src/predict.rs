//! Source-prediction adversaries: "who started this rumor?"
//!
//! CONGOS encrypts payloads, but a *passive observing coalition* never needs
//! to decrypt anything: it records which processes sent it messages, with
//! which service tag, in which round, and tries to infer a rumor's **source**
//! from timing alone. This module family implements that adversary and the
//! metrics of Bellet/Guerraoui/Hendrikx ("Who started this rumor? Quantifying
//! the natural differential privacy of gossip protocols", DISC 2020) and
//! Jin/Huang/Dai ("On the Privacy Guarantees of Gossip Protocols in General
//! Networks"):
//!
//! * [`observe`] — the coalition itself: [`CoalitionSpec`] picks a
//!   deterministic observer set, [`CoalitionTap`] records per-round
//!   `(observer, sender, tag, round)` [`Sighting`]s into a [`SightingLog`].
//!   The tap implements [`congos_sim::Observer`], so it consumes **no engine
//!   RNG** and cannot perturb an execution: golden trace digests are
//!   bit-identical with and without a tap attached.
//! * [`first_contact`] — the first-contact estimator: the earliest sender the
//!   coalition hears from (on rumor-bearing tags, after the injection round)
//!   is the suspect.
//! * [`ml`] — a maximum-likelihood estimator: a posterior over candidate
//!   sources scored by how well each candidate's BFS distances on the known
//!   [`congos_sim::Topology`] explain the observed first-sighting curve.
//! * [`metrics`] — identification-probability / top-k accounting under
//!   randomized tie-breaking, and the DP-style `ε` the papers use to compare
//!   protocols.
//!
//! Estimators are pure functions of a [`SightingLog`] plus public knowledge
//! (the topology spec, `n`, the injection round). They live here — outside
//! the engine — because the engine must stay adversary-agnostic: taps only
//! *observe* the delivery phase, and everything downstream is offline
//! analysis.

pub mod first_contact;
pub mod metrics;
pub mod ml;
pub mod observe;

pub use first_contact::first_contact_posterior;
pub use metrics::{argmax_credit, dp_epsilon, topk_credit, AttackScore};
pub use ml::MlEstimator;
pub use observe::{CoalitionSpec, CoalitionTap, Sighting, SightingLog};

use congos_sim::{ProcessId, Round};

/// Everything an estimator is allowed to look at: the coalition's sighting
/// log plus *public* knowledge about the execution.
///
/// `candidates` is the suspect pool — every process the coalition considers
/// a possible source (normally all non-coalition processes). `tags` names
/// the services the adversary treats as rumor-bearing (empty = all);
/// `injected_at` is the round the rumor entered the system, which the papers
/// assume is public (the adversary knows *when* the gossip started, not
/// *where*).
#[derive(Clone, Copy, Debug)]
pub struct EstimatorCtx<'a> {
    /// The coalition's recorded sightings.
    pub log: &'a SightingLog,
    /// Suspect pool, in ascending id order.
    pub candidates: &'a [ProcessId],
    /// The publicly known injection round.
    pub injected_at: Round,
    /// Rumor-bearing service tags (empty = consider every tag).
    pub tags: &'a [&'static str],
}

impl EstimatorCtx<'_> {
    /// `true` if `tag` passes the rumor-bearing filter.
    pub fn tag_matches(&self, tag: &str) -> bool {
        self.tags.is_empty() || self.tags.contains(&tag)
    }
}
