//! Composable failure and injection plans, and the composite CRRI adversary.

use congos_sim::{
    Adversary, CrashSpec, IncomingPolicy, ProcessId, Protocol, RoundDecision, RoundView,
};

use crate::workload::RumorSpec;

/// Decides crashes and restarts each round, after seeing the round's
/// outboxes (so implementations may be fully adaptive).
pub trait FailurePlan {
    /// Crash/restart decisions for this round. Implementations must respect
    /// the model: crash only alive processes, restart only crashed ones, at
    /// most one liveness event per process per round.
    fn decide_failures(
        &mut self,
        view: &RoundView<'_>,
    ) -> (Vec<CrashSpec>, Vec<(ProcessId, IncomingPolicy)>);
}

/// Decides rumor injections each round (at most one per process per round).
pub trait InjectionPlan {
    /// Rumors to inject this round.
    fn decide_injections(&mut self, view: &RoundView<'_>) -> Vec<(ProcessId, RumorSpec)>;
}

/// The composite CRRI adversary: a failure plan plus an injection plan plus
/// a conversion from [`RumorSpec`] into the protocol's input type.
///
/// ```
/// use congos_adversary::{CrriAdversary, NoFailures, NoInjections};
/// // An adversary for any protocol whose Input: From<RumorSpec>:
/// let _adv = CrriAdversary::new(NoFailures, NoInjections);
/// ```
#[derive(Clone, Debug)]
pub struct CrriAdversary<F, W> {
    failures: F,
    workload: W,
}

impl<F: FailurePlan, W: InjectionPlan> CrriAdversary<F, W> {
    /// Combines a failure plan and an injection plan.
    pub fn new(failures: F, workload: W) -> Self {
        CrriAdversary { failures, workload }
    }

    /// Access to the failure plan (e.g. to read attack statistics).
    pub fn failures(&self) -> &F {
        &self.failures
    }

    /// Access to the injection plan (e.g. to read the injected-rumor log).
    pub fn workload(&self) -> &W {
        &self.workload
    }
}

impl<P, F, W> Adversary<P> for CrriAdversary<F, W>
where
    P: Protocol,
    P::Input: From<RumorSpec>,
    F: FailurePlan,
    W: InjectionPlan,
{
    fn decide(&mut self, view: &RoundView<'_>) -> RoundDecision<P::Input> {
        let (crashes, restarts) = self.failures.decide_failures(view);
        // Injections may only target alive processes; the plan sees the
        // pre-crash liveness, so drop targets crashed this very round.
        let crashed_now: Vec<ProcessId> = crashes.iter().map(|c| c.process).collect();
        let restarted_now: Vec<ProcessId> = restarts.iter().map(|(p, _)| *p).collect();
        let injections = self
            .workload
            .decide_injections(view)
            .into_iter()
            .filter(|(p, _)| {
                let alive = view.alive[p.as_usize()];
                (alive && !crashed_now.contains(p)) || restarted_now.contains(p)
            })
            .map(|(p, spec)| (p, P::Input::from(spec)))
            .collect();
        RoundDecision {
            crashes,
            restarts,
            injections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failures::NoFailures;
    use crate::workload::{NoInjections, OneShot, RumorSpec};
    use congos_sim::{Context, Engine, EngineConfig, Inbox, Round};

    /// Minimal protocol that records injected specs as outputs.
    struct Sink;
    impl Protocol for Sink {
        type Msg = ();
        type Input = RumorSpec;
        type Output = u64;
        fn new(_id: ProcessId, _n: usize, _seed: u64) -> Self {
            Sink
        }
        fn send(&mut self, _ctx: &mut Context<'_, Self>) {}
        fn receive(
            &mut self,
            ctx: &mut Context<'_, Self>,
            _inbox: Inbox<'_, ()>,
            input: Option<RumorSpec>,
        ) {
            if let Some(spec) = input {
                ctx.output(spec.id);
            }
        }
    }

    #[test]
    fn composite_injects_at_the_scheduled_round() {
        let spec = RumorSpec::new(42, vec![1, 2, 3], 64, vec![ProcessId::new(1)]);
        let mut adv = CrriAdversary::new(
            NoFailures,
            OneShot::new(Round(2), vec![(ProcessId::new(0), spec)]),
        );
        let mut e = Engine::<Sink>::new(EngineConfig::new(4));
        e.run(4, &mut adv);
        assert_eq!(e.outputs().len(), 1);
        assert_eq!(e.outputs()[0].round, Round(2));
        assert_eq!(e.outputs()[0].value, 42);
    }

    #[test]
    fn no_failures_no_injections_is_inert() {
        let mut adv = CrriAdversary::new(NoFailures, NoInjections);
        let mut e = Engine::<Sink>::new(EngineConfig::new(4));
        e.run(4, &mut adv);
        assert!(e.outputs().is_empty());
        assert_eq!(e.liveness().crash_count(), 0);
    }
}
