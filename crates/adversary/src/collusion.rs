//! Colluding-set selection for the `CRRI(τ)` adversary of Section 6.
//!
//! A collusion set `C_ρ` for rumor `ρ` may contain any process outside
//! `ρ.D ∪ {source}`, with `|C_ρ| ≤ τ`. The auditor in the `congos` crate
//! pools the fragment knowledge of each collusion set when checking
//! Definition 2.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

use congos_sim::ProcessId;

/// Picks up to `tau` colluders for a rumor: processes outside the
/// destination set and distinct from the source. Returns fewer than `tau`
/// only when the system is too small to contain `tau` eligible processes.
pub fn pick_colluders(
    rng: &mut SmallRng,
    n: usize,
    source: ProcessId,
    dest: &[ProcessId],
    tau: usize,
) -> Vec<ProcessId> {
    let mut eligible: Vec<ProcessId> = ProcessId::all(n)
        .filter(|p| *p != source && !dest.contains(p))
        .collect();
    eligible.shuffle(rng);
    eligible.truncate(tau);
    eligible.sort_unstable();
    eligible
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn colluders_exclude_source_and_destinations() {
        let mut rng = SmallRng::seed_from_u64(3);
        let dest = vec![ProcessId::new(1), ProcessId::new(2)];
        for _ in 0..20 {
            let c = pick_colluders(&mut rng, 10, ProcessId::new(0), &dest, 4);
            assert_eq!(c.len(), 4);
            assert!(!c.contains(&ProcessId::new(0)));
            assert!(!c.contains(&ProcessId::new(1)));
            assert!(!c.contains(&ProcessId::new(2)));
        }
    }

    #[test]
    fn colluders_truncate_when_system_is_small() {
        let mut rng = SmallRng::seed_from_u64(3);
        let dest = vec![ProcessId::new(1)];
        let c = pick_colluders(&mut rng, 3, ProcessId::new(0), &dest, 10);
        assert_eq!(c, vec![ProcessId::new(2)]);
    }
}
