//! The observing coalition: membership, sightings, and the engine tap.
//!
//! A coalition is a set of *curious-but-passive* processes that follow the
//! protocol faithfully and additionally log the metadata of every message
//! delivered to them. It is chosen by a [`CoalitionSpec`] — a pure function
//! of `(n, fraction, seed)` with its own `SmallRng`, so membership never
//! touches the engine's RNG stream. The [`CoalitionTap`] records sightings
//! through the [`Observer`] interface on the simulator path, or through
//! [`CoalitionTap::record_delivery`] when a socket runtime hands it inbox
//! metadata; either way the executed protocol is bit-identical to an
//! untapped run.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use congos_sim::{EnvelopeRef, Observer, ProcessId, Protocol, Round, Tag};

/// One observation: in `round`, coalition member `observer` received a
/// message from `sender` on service `tag`. Payloads are never recorded —
/// the whole point is that the attack works on envelope metadata alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sighting {
    /// Delivery round.
    pub round: Round,
    /// The coalition member that received the message.
    pub observer: ProcessId,
    /// The process the message came from.
    pub sender: ProcessId,
    /// Service tag on the envelope.
    pub tag: Tag,
}

/// Deterministic coalition selection: `fraction_ppm` parts-per-million of
/// the `n` processes (at least one, at most `n - 1`), drawn by a dedicated
/// `SmallRng` seeded from `seed`.
///
/// Expressed in ppm rather than `f64` so the spec stays `Copy + Eq` and can
/// ride inside a harness `RunSpec`. The rumor's source is excluded from the
/// coalition when known (the standard assumption: the adversary is trying to
/// *find* the source, so the source itself is not one of its observers).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CoalitionSpec {
    /// Coalition size as parts-per-million of `n` (100_000 = 10%).
    pub fraction_ppm: u32,
    /// Seed for the membership draw; independent of the engine seed.
    pub seed: u64,
}

impl CoalitionSpec {
    /// Spec for a coalition of `fraction` (in `[0, 1]`) of the processes.
    pub fn new(fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "coalition fraction {fraction} outside [0, 1]"
        );
        CoalitionSpec {
            fraction_ppm: (fraction * 1_000_000.0).round() as u32,
            seed,
        }
    }

    /// The coalition fraction as a float.
    pub fn fraction(&self) -> f64 {
        self.fraction_ppm as f64 / 1_000_000.0
    }

    /// Coalition size for a system of `n` processes: `round(n · fraction)`,
    /// clamped to `[1, n - 1]` so there is always at least one observer and
    /// at least one suspect.
    pub fn size(&self, n: usize) -> usize {
        assert!(n >= 2, "a coalition needs n >= 2, got {n}");
        let raw = (n as f64 * self.fraction()).round() as usize;
        raw.clamp(1, n - 1)
    }

    /// The coalition members, in ascending id order. `exclude` (normally the
    /// rumor's source) is never selected.
    pub fn members(&self, n: usize, exclude: Option<ProcessId>) -> Vec<ProcessId> {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0xC0A1_1710);
        let mut eligible: Vec<ProcessId> = ProcessId::all(n)
            .filter(|p| Some(*p) != exclude)
            .collect();
        eligible.shuffle(&mut rng);
        eligible.truncate(self.size(n));
        eligible.sort_unstable();
        eligible
    }
}

/// Append-only log of the coalition's [`Sighting`]s, in delivery order.
///
/// Delivery order is deterministic (the transports pin it; golden digests
/// depend on it), so two runs with the same seeds produce identical logs.
#[derive(Clone, Debug, Default)]
pub struct SightingLog {
    n: usize,
    sightings: Vec<Sighting>,
}

impl SightingLog {
    /// An empty log for a system of `n` processes.
    pub fn new(n: usize) -> Self {
        SightingLog {
            n,
            sightings: Vec::new(),
        }
    }

    /// System size the log was recorded against.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Appends one sighting.
    pub fn record(&mut self, s: Sighting) {
        debug_assert!(s.observer.as_usize() < self.n && s.sender.as_usize() < self.n);
        self.sightings.push(s);
    }

    /// Number of recorded sightings.
    pub fn len(&self) -> usize {
        self.sightings.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.sightings.is_empty()
    }

    /// Iterates sightings in recording (= delivery) order.
    pub fn iter(&self) -> impl Iterator<Item = &Sighting> {
        self.sightings.iter()
    }

    /// Earliest sighting round per sender, filtered to `tags` (empty = all)
    /// and to rounds `>= from`. Index `i` is the first round process `i` was
    /// seen sending, or `None` if never seen.
    pub fn first_per_sender(&self, tags: &[&'static str], from: Round) -> Vec<Option<Round>> {
        let mut first: Vec<Option<Round>> = vec![None; self.n];
        for s in &self.sightings {
            if s.round < from || !(tags.is_empty() || tags.contains(&s.tag.name())) {
                continue;
            }
            let slot = &mut first[s.sender.as_usize()];
            if slot.map_or(true, |r| s.round < r) {
                *slot = Some(s.round);
            }
        }
        first
    }
}

/// A passive observing coalition attached to a running execution.
///
/// On the simulator path this is an [`Observer`]: the engine calls
/// [`Observer::on_deliver`] for every delivered envelope, and the tap keeps
/// those whose receiver is a coalition member. Observers get no RNG handle
/// and no way to mutate engine state, so RNG-neutrality holds by
/// construction. On the socket path a node driver with sighting recording
/// enabled feeds the same data through [`CoalitionTap::record_delivery`].
///
/// Self-deliveries (`src == dst`) are skipped: a member "hearing from
/// itself" carries no information about anyone else.
#[derive(Clone, Debug)]
pub struct CoalitionTap {
    watch: Vec<bool>,
    log: SightingLog,
}

impl CoalitionTap {
    /// A tap for coalition `members` in a system of `n` processes.
    pub fn new(n: usize, members: &[ProcessId]) -> Self {
        let mut watch = vec![false; n];
        for m in members {
            watch[m.as_usize()] = true;
        }
        CoalitionTap {
            watch,
            log: SightingLog::new(n),
        }
    }

    /// `true` if `p` is a coalition member.
    pub fn watches(&self, p: ProcessId) -> bool {
        self.watch[p.as_usize()]
    }

    /// The sightings recorded so far.
    pub fn log(&self) -> &SightingLog {
        &self.log
    }

    /// Consumes the tap, returning its log.
    pub fn into_log(self) -> SightingLog {
        self.log
    }

    /// Records one delivered envelope's metadata, if its receiver is a
    /// coalition member. Transport-agnostic entry point: the simulator path
    /// routes through [`Observer::on_deliver`], socket runtimes call this
    /// directly with their per-round inbox metadata.
    pub fn record_delivery(&mut self, round: Round, src: ProcessId, dst: ProcessId, tag: Tag) {
        if src != dst && self.watch[dst.as_usize()] {
            self.log.record(Sighting {
                round,
                observer: dst,
                sender: src,
                tag,
            });
        }
    }
}

impl<P: Protocol> Observer<P> for CoalitionTap {
    fn on_deliver(&mut self, env: EnvelopeRef<'_, P::Msg>) {
        self.record_delivery(env.round, env.src, env.dst, env.tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalition_spec_sizes_clamp() {
        let spec = CoalitionSpec::new(0.10, 7);
        assert_eq!(spec.fraction_ppm, 100_000);
        assert_eq!(spec.size(64), 6);
        assert_eq!(spec.size(2), 1, "at least one observer");
        assert_eq!(CoalitionSpec::new(1.0, 7).size(8), 7, "at most n - 1");
    }

    #[test]
    fn members_are_deterministic_sorted_and_exclude() {
        let spec = CoalitionSpec::new(0.25, 42);
        let a = spec.members(16, Some(ProcessId::new(3)));
        let b = spec.members(16, Some(ProcessId::new(3)));
        assert_eq!(a, b, "same spec, same members");
        assert_eq!(a.len(), 4);
        assert!(!a.contains(&ProcessId::new(3)));
        assert!(a.windows(2).all(|w| w[0] < w[1]), "ascending id order");
        let c = spec.members(16, None);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn tap_records_only_member_deliveries_and_skips_self() {
        let members = [ProcessId::new(1)];
        let mut tap = CoalitionTap::new(4, &members);
        tap.record_delivery(Round(3), ProcessId::new(0), ProcessId::new(1), Tag("t"));
        tap.record_delivery(Round(3), ProcessId::new(0), ProcessId::new(2), Tag("t"));
        tap.record_delivery(Round(4), ProcessId::new(1), ProcessId::new(1), Tag("t"));
        assert_eq!(tap.log().len(), 1);
        let s = *tap.log().iter().next().unwrap();
        assert_eq!(
            s,
            Sighting {
                round: Round(3),
                observer: ProcessId::new(1),
                sender: ProcessId::new(0),
                tag: Tag("t"),
            }
        );
    }

    #[test]
    fn first_per_sender_filters_tags_and_rounds() {
        let mut log = SightingLog::new(4);
        let obs = ProcessId::new(3);
        log.record(Sighting { round: Round(1), observer: obs, sender: ProcessId::new(0), tag: Tag("noise") });
        log.record(Sighting { round: Round(2), observer: obs, sender: ProcessId::new(0), tag: Tag("rumor") });
        log.record(Sighting { round: Round(5), observer: obs, sender: ProcessId::new(1), tag: Tag("rumor") });
        log.record(Sighting { round: Round(4), observer: obs, sender: ProcessId::new(1), tag: Tag("rumor") });
        let first = log.first_per_sender(&["rumor"], Round(2));
        assert_eq!(first[0], Some(Round(2)), "noise tag ignored");
        assert_eq!(first[1], Some(Round(4)), "earliest matching kept");
        assert_eq!(first[2], None);
        let all = log.first_per_sender(&[], Round(0));
        assert_eq!(all[0], Some(Round(1)), "empty filter admits every tag");
    }
}
