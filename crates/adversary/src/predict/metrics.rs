//! Attack-quality metrics: identification probability, top-k accuracy, and
//! the DP-style `ε` used by the gossip-privacy papers.
//!
//! Credits are computed under a *uniformly randomized tie-break*: if an
//! estimator's posterior has several maxima, a real attacker would pick one
//! at random, so a trial contributes the exact probability that the random
//! pick is correct (`1/|argmax set|` if the source is among them). This
//! keeps every metric deterministic — the accounting is the expectation over
//! the tie-break, not one sampled draw — while remaining an unbiased
//! estimate of the sampled attack's hit rate.

use congos_sim::ProcessId;

/// Probability that a uniformly randomized argmax of `posterior` picks
/// `source`. `candidates` and `posterior` are parallel slices.
pub fn argmax_credit(posterior: &[f64], candidates: &[ProcessId], source: ProcessId) -> f64 {
    debug_assert_eq!(posterior.len(), candidates.len());
    let Some(si) = candidates.iter().position(|c| *c == source) else {
        return 0.0;
    };
    let max = posterior.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let tol = tie_tolerance(max);
    if posterior[si] < max - tol {
        return 0.0;
    }
    let ties = posterior.iter().filter(|p| **p >= max - tol).count();
    1.0 / ties as f64
}

/// Probability that `source` lands in the top `k` of `posterior` when ties
/// are broken uniformly at random.
pub fn topk_credit(posterior: &[f64], candidates: &[ProcessId], source: ProcessId, k: usize) -> f64 {
    debug_assert_eq!(posterior.len(), candidates.len());
    let Some(si) = candidates.iter().position(|c| *c == source) else {
        return 0.0;
    };
    let s = posterior[si];
    let tol = tie_tolerance(posterior.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    let better = posterior.iter().filter(|p| **p > s + tol).count();
    if better >= k {
        return 0.0;
    }
    let equal = posterior.iter().filter(|p| (**p - s).abs() <= tol).count();
    debug_assert!(equal >= 1);
    ((k - better) as f64 / equal as f64).min(1.0)
}

fn tie_tolerance(max: f64) -> f64 {
    // Posteriors are built from softmax/uniform splits; exact ties are the
    // common case and float noise is tiny relative to the mass scale.
    1e-9 * max.abs().max(1e-300)
}

/// Differential-privacy-style leakage bound from an identification
/// probability, after Bellet/Guerraoui/Hendrikx: a source-prediction attack
/// distinguishing "s started the rumor" from "someone else did" with
/// success probability `p` over `m` equally likely candidates implies the
/// mechanism is at best `ε`-DP for
/// `ε = ln(p·(m − 1) / (1 − p))`, clamped at 0.
///
/// A uniform-guessing adversary (`p = 1/m`) gives `ε = 0` — no leakage —
/// and a perfect one (`p → 1`) gives `ε → ∞`.
pub fn dp_epsilon(p: f64, m: usize) -> f64 {
    assert!(m >= 2, "ε needs at least two candidates");
    let p = p.clamp(0.0, 1.0 - 1e-12);
    let odds = p * (m as f64 - 1.0) / (1.0 - p);
    odds.ln().max(0.0)
}

/// Accumulates per-trial credits into identification probability, top-k
/// accuracy, and a Laplace-smoothed `ε̂`.
#[derive(Clone, Debug)]
pub struct AttackScore {
    k: usize,
    trials: u64,
    id_mass: f64,
    topk_mass: f64,
}

impl AttackScore {
    /// A fresh accumulator; `k` is the top-k rank threshold.
    pub fn new(k: usize) -> Self {
        AttackScore {
            k,
            trials: 0,
            id_mass: 0.0,
            topk_mass: 0.0,
        }
    }

    /// Scores one trial's posterior against the true `source`.
    pub fn observe(&mut self, posterior: &[f64], candidates: &[ProcessId], source: ProcessId) {
        self.trials += 1;
        self.id_mass += argmax_credit(posterior, candidates, source);
        self.topk_mass += topk_credit(posterior, candidates, source, self.k);
    }

    /// Number of scored trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Mean identification probability over the scored trials.
    pub fn p_id(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.id_mass / self.trials as f64
    }

    /// Mean top-k accuracy over the scored trials.
    pub fn top_k(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.topk_mass / self.trials as f64
    }

    /// DP-style `ε̂` over `m` candidates, from the Laplace-smoothed success
    /// rate `(id_mass + 1) / (trials + 2)` — the smoothing keeps `ε̂` finite
    /// when the attack succeeds in every trial of a finite sweep.
    pub fn epsilon(&self, m: usize) -> f64 {
        let p_hat = (self.id_mass + 1.0) / (self.trials as f64 + 2.0);
        dp_epsilon(p_hat, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<ProcessId> {
        (0..n).map(ProcessId::new).collect()
    }

    #[test]
    fn argmax_credit_handles_ties_and_misses() {
        let c = ids(4);
        assert_eq!(argmax_credit(&[0.1, 0.6, 0.2, 0.1], &c, ProcessId::new(1)), 1.0);
        assert_eq!(argmax_credit(&[0.1, 0.6, 0.2, 0.1], &c, ProcessId::new(2)), 0.0);
        let split = argmax_credit(&[0.4, 0.4, 0.1, 0.1], &c, ProcessId::new(0));
        assert!((split - 0.5).abs() < 1e-12);
        // Source outside the candidate pool can never be credited.
        assert_eq!(argmax_credit(&[1.0], &[ProcessId::new(0)], ProcessId::new(9)), 0.0);
    }

    #[test]
    fn topk_credit_counts_partial_tie_slots() {
        let c = ids(5);
        let p = [0.3, 0.2, 0.2, 0.2, 0.1];
        assert_eq!(topk_credit(&p, &c, ProcessId::new(0), 2), 1.0);
        // One of k=2 slots is taken by 0.3; three candidates tie at 0.2 for
        // the remaining slot.
        let t = topk_credit(&p, &c, ProcessId::new(2), 2);
        assert!((t - 1.0 / 3.0).abs() < 1e-12, "got {t}");
        assert_eq!(topk_credit(&p, &c, ProcessId::new(4), 2), 0.0);
    }

    #[test]
    fn epsilon_zero_at_uniform_guessing() {
        assert_eq!(dp_epsilon(0.25, 4), 0.0);
        assert!(dp_epsilon(0.5, 4) > 0.0);
        assert!(dp_epsilon(0.99, 4) > dp_epsilon(0.5, 4));
        // Below-uniform success clamps to 0 rather than going negative.
        assert_eq!(dp_epsilon(0.1, 4), 0.0);
    }

    #[test]
    fn score_accumulates_means() {
        let c = ids(4);
        let mut score = AttackScore::new(2);
        score.observe(&[1.0, 0.0, 0.0, 0.0], &c, ProcessId::new(0)); // hit
        score.observe(&[1.0, 0.0, 0.0, 0.0], &c, ProcessId::new(1)); // miss
        assert_eq!(score.trials(), 2);
        assert!((score.p_id() - 0.5).abs() < 1e-12);
        assert!(score.epsilon(4) > 0.0);
        // Smoothed: p̂ = (1 + 1) / (2 + 2) = 0.5 ⇒ ε = ln(3·0.5/0.5) = ln 3.
        assert!((score.epsilon(4) - 3.0f64.ln()).abs() < 1e-9);
    }
}
