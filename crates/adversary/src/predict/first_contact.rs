//! The first-contact estimator.
//!
//! Bellet/Guerraoui/Hendrikx's baseline attack: the source is whoever the
//! coalition hears from *first*. In a complete graph with push gossip the
//! first rumor-bearing message a curious node receives is very likely to
//! come straight from the source; protocols hide the source exactly to the
//! extent that they break this correlation (by delaying, re-routing through
//! proxies, or drowning the first contact in uniform background traffic).

use congos_sim::Round;

use super::EstimatorCtx;

/// Posterior over `ctx.candidates` under the first-contact rule.
///
/// Finds the earliest round `>= ctx.injected_at` in which any *candidate*
/// was sighted sending a rumor-bearing message, and splits all probability
/// mass uniformly over the candidates sighted in that round (several
/// candidates can tie in a synchronous network; the split makes the
/// downstream accounting equal to the hit rate of a uniformly randomized
/// tie-break). Sightings of non-candidates (coalition relays) are ignored.
/// With no usable sightings at all the estimator abstains: the posterior is
/// uniform over the candidates.
pub fn first_contact_posterior(ctx: &EstimatorCtx<'_>) -> Vec<f64> {
    let m = ctx.candidates.len();
    assert!(m > 0, "first-contact needs a non-empty suspect pool");
    let first = ctx.log.first_per_sender(ctx.tags, ctx.injected_at);

    let mut best: Option<Round> = None;
    for c in ctx.candidates {
        if let Some(r) = first[c.as_usize()] {
            if best.map_or(true, |b| r < b) {
                best = Some(r);
            }
        }
    }

    match best {
        None => vec![1.0 / m as f64; m],
        Some(r_star) => {
            let hits: Vec<bool> = ctx
                .candidates
                .iter()
                .map(|c| first[c.as_usize()] == Some(r_star))
                .collect();
            let k = hits.iter().filter(|h| **h).count() as f64;
            hits.iter()
                .map(|h| if *h { 1.0 / k } else { 0.0 })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Sighting, SightingLog};
    use super::*;
    use congos_sim::{ProcessId, Tag};

    /// Hand-computed 4-node trace: source p0 injects at round 2, observer p3
    /// hears p0 at round 3 and p1 (a relay) at round 4.
    fn four_node_log() -> SightingLog {
        let mut log = SightingLog::new(4);
        let obs = ProcessId::new(3);
        log.record(Sighting { round: Round(1), observer: obs, sender: ProcessId::new(1), tag: Tag("rumor") });
        log.record(Sighting { round: Round(3), observer: obs, sender: ProcessId::new(0), tag: Tag("rumor") });
        log.record(Sighting { round: Round(3), observer: obs, sender: ProcessId::new(0), tag: Tag("noise") });
        log.record(Sighting { round: Round(4), observer: obs, sender: ProcessId::new(1), tag: Tag("rumor") });
        log.record(Sighting { round: Round(5), observer: obs, sender: ProcessId::new(2), tag: Tag("rumor") });
        log
    }

    #[test]
    fn picks_earliest_candidate_sender_exactly() {
        let log = four_node_log();
        let candidates: Vec<ProcessId> = (0..3).map(ProcessId::new).collect();
        let ctx = EstimatorCtx {
            log: &log,
            candidates: &candidates,
            injected_at: Round(2),
            tags: &["rumor"],
        };
        // p1's round-1 sighting predates the injection and must be ignored;
        // p0's round-3 sighting is the first contact.
        assert_eq!(first_contact_posterior(&ctx), vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn splits_mass_over_tied_first_contacts() {
        let mut log = four_node_log();
        let obs = ProcessId::new(3);
        log.record(Sighting { round: Round(3), observer: obs, sender: ProcessId::new(2), tag: Tag("rumor") });
        let candidates: Vec<ProcessId> = (0..3).map(ProcessId::new).collect();
        let ctx = EstimatorCtx {
            log: &log,
            candidates: &candidates,
            injected_at: Round(2),
            tags: &["rumor"],
        };
        assert_eq!(first_contact_posterior(&ctx), vec![0.5, 0.0, 0.5]);
    }

    #[test]
    fn abstains_to_uniform_without_sightings() {
        let log = SightingLog::new(4);
        let candidates: Vec<ProcessId> = (0..3).map(ProcessId::new).collect();
        let ctx = EstimatorCtx {
            log: &log,
            candidates: &candidates,
            injected_at: Round(0),
            tags: &[],
        };
        let p = first_contact_posterior(&ctx);
        assert!(p.iter().all(|x| (*x - 1.0 / 3.0).abs() < 1e-12));
    }

    #[test]
    fn ignores_non_candidate_relays() {
        let log = four_node_log();
        // Only p1 and p2 are suspects; p0's earlier sighting is off-pool.
        let candidates = [ProcessId::new(1), ProcessId::new(2)];
        let ctx = EstimatorCtx {
            log: &log,
            candidates: &candidates,
            injected_at: Round(2),
            tags: &["rumor"],
        };
        assert_eq!(first_contact_posterior(&ctx), vec![1.0, 0.0]);
    }
}
