//! The maximum-likelihood source estimator.
//!
//! Jin/Huang/Dai analyze source privacy on *general* graphs: what leaks is
//! not just who spoke first but how well each candidate's position in the
//! known topology explains the whole observed spread curve. This estimator
//! scores every candidate `s` by comparing, for each sender `u` the
//! coalition sighted, the observed first-activity latency of `u` against the
//! earliest round at which `u` *could* have been informed had `s` been the
//! source — the BFS distance `d(s, u)` on the public topology.
//!
//! The likelihood is a soft hop-count model rather than an exact one:
//! protocols do not forward along shortest paths every round, so a sender
//! being *later* than `d(s, u) + 1` is only weak evidence against `s`
//! (weight [`MlEstimator::late_weight`] per slack round), while being
//! *earlier* is physically impossible under source `s` up to protocol
//! batching and is penalized much harder ([`MlEstimator::early_weight`]).
//! Log-likelihoods are softmax-normalized, so the result is a posterior that
//! sums to 1 over the candidate pool.

use congos_sim::{ProcessId, Round, Topology};

use super::EstimatorCtx;

/// Maximum-likelihood estimator configuration.
#[derive(Clone, Copy, Debug)]
pub struct MlEstimator {
    /// Penalty per round of *late* slack (`observed > expected`).
    pub late_weight: f64,
    /// Penalty per round of *early* slack (`observed < expected`), i.e. the
    /// candidate cannot causally explain the sighting.
    pub early_weight: f64,
}

impl Default for MlEstimator {
    fn default() -> Self {
        MlEstimator {
            late_weight: 0.35,
            early_weight: 2.0,
        }
    }
}

impl MlEstimator {
    /// Posterior over `ctx.candidates` given the sighting log and the public
    /// `topology`.
    ///
    /// Distances are taken on the topology's graph at round
    /// `ctx.injected_at`; for churning topologies this is a snapshot
    /// approximation (documented in EXPERIMENTS.md E13 — churn both blurs
    /// the true spread and degrades the adversary's model, which is part of
    /// what the experiment measures). Disconnected pairs get distance `n`.
    /// With no usable sightings the posterior is uniform.
    pub fn posterior(&self, ctx: &EstimatorCtx<'_>, topology: &Topology) -> Vec<f64> {
        let m = ctx.candidates.len();
        assert!(m > 0, "ML estimation needs a non-empty suspect pool");
        let n = ctx.log.n();
        let first = ctx.log.first_per_sender(ctx.tags, ctx.injected_at);
        let observed: Vec<(usize, u64)> = first
            .iter()
            .enumerate()
            .filter_map(|(u, r)| r.map(|r| (u, r.0 - ctx.injected_at.0)))
            .collect();
        if observed.is_empty() {
            return vec![1.0 / m as f64; m];
        }

        let adj = adjacency(topology, ctx.injected_at, n);
        let ll: Vec<f64> = ctx
            .candidates
            .iter()
            .map(|s| {
                let dist = bfs(&adj, s.as_usize(), n);
                -observed
                    .iter()
                    .map(|&(u, latency)| {
                        // One round to first leave the source: a rumor
                        // injected in round t is first *sent* in round t+1.
                        let expected = dist[u] as f64 + 1.0;
                        let slack = latency as f64 - expected;
                        if slack >= 0.0 {
                            self.late_weight * slack
                        } else {
                            self.early_weight * -slack
                        }
                    })
                    .sum::<f64>()
            })
            .collect();

        softmax(&ll)
    }
}

fn adjacency(topology: &Topology, round: Round, n: usize) -> Vec<Vec<usize>> {
    ProcessId::all(n)
        .map(|p| {
            topology
                .neighbors(round, p)
                .iter()
                .map(|q| q.as_usize())
                .collect()
        })
        .collect()
}

/// BFS hop counts from `start`; unreachable vertices get distance `n`.
fn bfs(adj: &[Vec<usize>], start: usize, n: usize) -> Vec<u64> {
    let mut dist = vec![n as u64; n];
    dist[start] = 0;
    let mut frontier = vec![start];
    let mut next = Vec::new();
    let mut d = 0;
    while !frontier.is_empty() {
        d += 1;
        for &u in &frontier {
            for &v in &adj[u] {
                if dist[v] == n as u64 && v != start {
                    dist[v] = d;
                    next.push(v);
                }
            }
        }
        frontier.clear();
        std::mem::swap(&mut frontier, &mut next);
    }
    dist
}

fn softmax(ll: &[f64]) -> Vec<f64> {
    let max = ll.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = ll.iter().map(|x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::super::{EstimatorCtx, Sighting, SightingLog};
    use super::*;
    use congos_sim::{Tag, TopologySpec};

    /// Hand-computed 4-node trace on the complete graph: the rumor is
    /// injected at round 2; observer p3 hears p0 at round 3 (latency 1 =
    /// d+1 for the source itself) and p1 at round 4 (informed one hop
    /// later). Candidate p0 explains both sightings with zero late slack
    /// against expected latencies; p2 (never sighted) cannot do better.
    fn ctx_log() -> SightingLog {
        let mut log = SightingLog::new(4);
        let obs = ProcessId::new(3);
        log.record(Sighting { round: Round(3), observer: obs, sender: ProcessId::new(0), tag: Tag("rumor") });
        log.record(Sighting { round: Round(4), observer: obs, sender: ProcessId::new(1), tag: Tag("rumor") });
        log
    }

    #[test]
    fn posterior_sums_to_one_and_prefers_consistent_candidate() {
        let log = ctx_log();
        let candidates: Vec<ProcessId> = (0..3).map(ProcessId::new).collect();
        let ctx = EstimatorCtx {
            log: &log,
            candidates: &candidates,
            injected_at: Round(2),
            tags: &["rumor"],
        };
        let topo = Topology::build(TopologySpec::Complete, 4, 0);
        let p = MlEstimator::default().posterior(&ctx, &topo);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "posterior sums to 1, got {sum}");
        // On the complete graph every candidate is 1 hop from everyone, so
        // p0's own round-3 sighting (latency 1) is *early* slack for
        // candidates p1/p2 (expected 2) and exact for p0.
        assert!(p[0] > p[1] && p[0] > p[2], "true source wins: {p:?}");
        // p1 was sighted at latency 2 — exact for p1 as source — while p2
        // was never sighted; both carry one early-slack violation from p0's
        // sighting, and p1 additionally explains its own sighting exactly.
        assert!(p[1] > 0.0 && p[2] > 0.0, "softmax keeps full support");
    }

    #[test]
    fn uniform_without_sightings() {
        let log = SightingLog::new(4);
        let candidates: Vec<ProcessId> = (0..4).map(ProcessId::new).collect();
        let ctx = EstimatorCtx {
            log: &log,
            candidates: &candidates,
            injected_at: Round(0),
            tags: &[],
        };
        let topo = Topology::build(TopologySpec::Complete, 4, 0);
        let p = MlEstimator::default().posterior(&ctx, &topo);
        assert!(p.iter().all(|x| (*x - 0.25).abs() < 1e-12));
    }

    #[test]
    fn distance_model_separates_candidates_on_a_sparse_graph() {
        // Ring of 6 (expander degree 2): distances differ by candidate, so
        // a latency-3 sighting of a far node should favor far candidates.
        let topo = Topology::build(TopologySpec::Expander { degree: 2 }, 6, 9);
        let mut log = SightingLog::new(6);
        // Find two nodes at graph distance >= 2 to stage the sighting.
        let adj = adjacency(&topo, Round(0), 6);
        let dist0 = bfs(&adj, 0, 6);
        let far = (0..6).max_by_key(|&v| dist0[v]).unwrap();
        assert!(dist0[far] >= 2, "ring should have a far pair");
        // The far node is sighted with the exact latency source 0 predicts.
        log.record(Sighting {
            round: Round(dist0[far] + 1),
            observer: ProcessId::new(5),
            sender: ProcessId::new(far),
            tag: Tag("rumor"),
        });
        let candidates: Vec<ProcessId> = (0..6).map(ProcessId::new).collect();
        let ctx = EstimatorCtx {
            log: &log,
            candidates: &candidates,
            injected_at: Round(0),
            tags: &["rumor"],
        };
        let p = MlEstimator::default().posterior(&ctx, &topo);
        // The sighted node itself (latency d+1 vs its expected 1) is a
        // worse explanation than candidate 0, for which the fit is exact.
        assert!(p[0] > p[far], "distance-consistent candidate preferred: {p:?}");
    }
}
