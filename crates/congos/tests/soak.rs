//! Long-running soak test (ignored by default — run with
//! `cargo test -p congos --test soak -- --ignored`).
//!
//! A thousand rounds of continuous injection under combined churn and
//! adaptive attacks, with the auditor attached throughout: memory must stay
//! bounded (pruning works), confidentiality must never break, and every
//! admissible pair must deliver on time.

use congos::{CongosNode, ConfidentialityAuditor};
use congos_adversary::{
    CrriAdversary, FailurePlan, PoissonWorkload, ProxyKiller, RandomChurn,
};
use congos_sim::{CrashSpec, IncomingPolicy, ProcessId, Round, RoundView, Tag};

struct Combined {
    churn: RandomChurn,
    killer: ProxyKiller,
}

impl FailurePlan for Combined {
    fn decide_failures(
        &mut self,
        view: &RoundView<'_>,
    ) -> (Vec<CrashSpec>, Vec<(ProcessId, IncomingPolicy)>) {
        let (mut c, mut r) = self.churn.decide_failures(view);
        let (kc, kr) = self.killer.decide_failures(view);
        for x in kc {
            if !c.iter().any(|y| y.process == x.process) {
                c.push(x);
            }
        }
        for x in kr {
            if !r.iter().any(|y| y.0 == x.0) && !c.iter().any(|y| y.process == x.0) {
                r.push(x);
            }
        }
        (c, r)
    }
}

#[test]
#[ignore = "soak test: ~1-2 minutes; run with --ignored"]
fn thousand_round_soak() {
    let n = 24;
    let deadline = 64u64;
    let rounds = 1024u64;
    let workload =
        PoissonWorkload::new(0.03, 3, deadline, 0x50AC).until(Round(rounds - deadline));
    let failures = Combined {
        churn: RandomChurn::new(0.002, 0.12, 0x50AC),
        killer: ProxyKiller::new(Tag("proxy"), 1).revive_after(48),
    };
    let mut adv = CrriAdversary::new(failures, workload);
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = congos_sim::Engine::<CongosNode>::new(
        congos_sim::EngineConfig::new(n).seed(0x50AC),
    );
    e.run_observed(rounds, &mut adv, &mut audit);
    audit.assert_clean();

    // Index first deliveries once — the naive per-pair scan over outputs()
    // is quadratic and dominated the soak's post-run classification.
    let mut first_delivery: std::collections::HashMap<(u64, ProcessId), Round> =
        std::collections::HashMap::new();
    for o in e.outputs() {
        first_delivery
            .entry((o.value.wid, o.process))
            .and_modify(|r| *r = (*r).min(o.round))
            .or_insert(o.round);
    }
    let (mut admissible, mut on_time) = (0u64, 0u64);
    for entry in adv.workload().log() {
        let t = entry.round;
        let end = t + entry.spec.deadline;
        if !e.liveness().continuously_alive(entry.source, t, end) {
            continue;
        }
        for d in &entry.spec.dest {
            if !e.liveness().continuously_alive(*d, t, end) {
                continue;
            }
            admissible += 1;
            if first_delivery
                .get(&(entry.spec.id, *d))
                .is_some_and(|r| *r <= end)
            {
                on_time += 1;
            }
        }
    }
    assert_eq!(on_time, admissible, "QoD violated in soak");
    assert!(admissible > 100, "soak workload too thin: {admissible}");
    assert!(e.liveness().crash_count() > 20);
    // Memory bounding sanity: pending confirmations are pruned over time.
    let pending: usize = ProcessId::all(n)
        .map(|p| e.protocol(p).pending_confirmations())
        .sum();
    assert!(pending < 50, "confirmation cache leak: {pending}");
}
