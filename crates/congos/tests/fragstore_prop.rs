//! Property tests for the hash-consed fragment store: interning is
//! idempotent, released allocations die, and distinct contents never alias
//! — in particular fragments of distinct splits stay distinct allocations.

use congos::split::{merge, split_interned};
use congos::{DestRef, FragBytes, FragStore};
use congos_sim::{IdSet, ProcessId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interning the same content any number of times yields one allocation
    /// and content-equal handles.
    #[test]
    fn intern_is_idempotent(
        blobs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..20),
        repeats in 2usize..5,
    ) {
        let store = FragStore::new();
        let mut keep = Vec::new();
        for blob in &blobs {
            let first = store.intern_bytes(blob);
            for _ in 0..repeats {
                let again = store.intern_bytes(blob);
                prop_assert!(FragBytes::ptr_eq(&first, &again));
                prop_assert_eq!(&*again, &blob[..]);
            }
            keep.push(first);
        }
        // Live allocations = distinct blobs, not total interns.
        let distinct: std::collections::HashSet<&Vec<u8>> = blobs.iter().collect();
        prop_assert_eq!(store.stats().live_bytes, distinct.len());
    }

    /// Dropping every handle releases the allocation: the store holds only
    /// weak references and a gc'd store retains nothing.
    #[test]
    fn dropping_handles_releases_allocations(
        blobs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..20),
        members in prop::collection::vec(0usize..64, 0..16),
    ) {
        let store = FragStore::new();
        let handles: Vec<FragBytes> =
            blobs.iter().map(|b| store.intern_bytes(b)).collect();
        let set = IdSet::from_iter(64, members.into_iter().map(ProcessId::new));
        let dest = store.intern_dest(&set);
        prop_assert!(store.stats().live_bytes > 0);
        prop_assert_eq!(store.stats().live_dests, 1);

        // A clone keeps its allocation alive through the drop of the rest.
        let survivor = handles[0].clone();
        let survivor_content = blobs[0].clone();
        drop(handles);
        drop(dest);
        store.gc();
        let stats = store.stats();
        prop_assert_eq!(stats.live_bytes, 1);
        prop_assert_eq!(stats.live_dests, 0);
        prop_assert_eq!(&*survivor, &survivor_content[..]);

        drop(survivor);
        store.gc();
        prop_assert_eq!(store.stats().live_bytes, 0);
    }

    /// Fragments of two distinct splits never alias each other unless the
    /// bytes are genuinely identical, and interned splits still merge back
    /// to their rumor.
    #[test]
    fn no_aliasing_across_distinct_splits(
        data_a in prop::collection::vec(any::<u8>(), 1..48),
        data_b in prop::collection::vec(any::<u8>(), 1..48),
        k in 2usize..5,
        seed in any::<u64>(),
    ) {
        let store = FragStore::new();
        let frags_a = split_interned(&mut SmallRng::seed_from_u64(seed), &data_a, k, &store);
        let frags_b =
            split_interned(&mut SmallRng::seed_from_u64(seed.wrapping_add(1)), &data_b, k, &store);

        for fa in &frags_a {
            for fb in &frags_b {
                if *fa != *fb {
                    prop_assert!(!FragBytes::ptr_eq(fa, fb));
                }
            }
        }
        let refs_a: Vec<&[u8]> = frags_a.iter().map(|f| &f[..]).collect();
        let refs_b: Vec<&[u8]> = frags_b.iter().map(|f| &f[..]).collect();
        prop_assert_eq!(merge(&refs_a), Some(data_a));
        prop_assert_eq!(merge(&refs_b), Some(data_b));
    }

    /// Destination-set interning: content equality ⇔ shared allocation
    /// within one store; distinct sets never alias.
    #[test]
    fn dest_interning_respects_content(
        universe in 1usize..128,
        picks in prop::collection::vec(0usize..4096, 0..24),
    ) {
        let store = FragStore::new();
        let set = IdSet::from_iter(
            universe,
            picks.iter().map(|ix| ProcessId::new(ix % universe)),
        );
        let a = store.intern_dest(&set);
        let b = store.intern_dest(&set.clone());
        prop_assert!(DestRef::ptr_eq(&a, &b));
        prop_assert_eq!(a.len(), set.len());

        // A set differing in one element must not alias.
        let mut other = set.clone();
        let probe = ProcessId::new(0);
        if !other.remove(probe) {
            other.insert(probe);
        }
        let c = store.intern_dest(&other);
        prop_assert!(!DestRef::ptr_eq(&a, &c));
    }
}
