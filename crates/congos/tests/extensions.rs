//! Tests of the Section 7 metadata-hiding extensions: destination hiding
//! and cover traffic.

use congos::{CongosConfig, CongosNode, ConfidentialityAuditor, CoverTrafficConfig};
use congos_adversary::{CrriAdversary, NoFailures, NoInjections, OneShot, RumorSpec};
use congos_gossip::GossipWire;
use congos_sim::{Engine, EngineConfig, EnvelopeRef, Observer, ProcessId, Round};

fn engine_with(cfg: CongosConfig, n: usize, seed: u64) -> Engine<CongosNode> {
    Engine::with_factory(EngineConfig::new(n).seed(seed), move |id, n, _s| {
        CongosNode::with_config(id, n, cfg.clone())
    })
}

/// Observer asserting that under destination hiding every fragment on the
/// wire has a *singleton* destination set — the original `ρ.D` is invisible.
struct SingletonCheck;

impl Observer<CongosNode> for SingletonCheck {
    fn on_deliver(&mut self, env: EnvelopeRef<'_, congos::CongosMsg>) {
        let check = |frags: &[congos::Fragment]| {
            for f in frags {
                assert_eq!(
                    f.dest.len(),
                    1,
                    "destination hiding must expose only singleton sets"
                );
            }
        };
        match env.payload {
            congos::CongosMsg::Gossip { wire, .. } => {
                if let GossipWire::Push(rumors) = wire.as_ref() {
                    for r in rumors.iter() {
                        if let congos::GossipPayload::Fragments(frags) = r.payload.as_ref() {
                            check(frags.as_slice());
                        }
                    }
                }
            }
            congos::CongosMsg::ProxyRequest { fragments, .. }
            | congos::CongosMsg::Partials { fragments, .. } => check(fragments),
            congos::CongosMsg::Shoot { rumor, .. } => {
                assert_eq!(rumor.dest.len(), 1);
            }
            _ => {}
        }
    }
}

#[test]
fn destination_hiding_delivers_only_to_real_destinations() {
    let n = 12;
    let cfg = CongosConfig::base().hide_destinations();
    let dest = vec![ProcessId::new(3), ProcessId::new(7)];
    let secret = vec![0xAB; 16];
    let spec = RumorSpec::new(0, secret.clone(), 64, dest.clone());
    let mut adv = CrriAdversary::new(
        NoFailures,
        OneShot::new(Round(0), vec![(ProcessId::new(0), spec)]),
    );
    let mut e = engine_with(cfg, n, 31);
    let mut check = SingletonCheck;
    e.run_observed(66, &mut adv, &mut check);

    // Only the two real destinations output anything; the other nine
    // received same-sized noise and silently discarded it.
    let receivers: Vec<ProcessId> = e.outputs().iter().map(|o| o.process).collect();
    assert_eq!(receivers.len(), 2, "got {receivers:?}");
    for d in &dest {
        assert!(receivers.contains(d));
    }
    for o in e.outputs() {
        assert_eq!(o.value.data, secret, "markers must be stripped");
        assert!(o.round.as_u64() <= 64);
    }
    // Non-destinations reassembled decoys and discarded them.
    let discarded: u64 = ProcessId::all(n)
        .map(|p| e.protocol(p).stats().decoys_discarded)
        .sum();
    assert!(discarded > 0, "decoy copies must have been discarded");
}

#[test]
fn destination_hiding_is_audited_clean() {
    let n = 12;
    let cfg = CongosConfig::base().hide_destinations();
    let dest = vec![ProcessId::new(5)];
    let spec = RumorSpec::new(0, vec![1, 2, 3, 4], 64, dest);
    let mut adv = CrriAdversary::new(
        NoFailures,
        OneShot::new(Round(0), vec![(ProcessId::new(0), spec)]),
    );
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = engine_with(cfg, n, 32);
    e.run_observed(66, &mut adv, &mut audit);
    audit.assert_clean();
    assert_eq!(e.outputs().len(), 1);
    assert_eq!(e.outputs()[0].value.data, vec![1, 2, 3, 4]);
}

#[test]
fn cover_traffic_produces_indistinguishable_decoys_and_no_outputs() {
    let n = 12;
    let cfg = CongosConfig::base().cover_traffic(CoverTrafficConfig {
        rate: 0.05,
        data_len: 16,
        deadline: 64,
    });
    let mut adv = CrriAdversary::new(NoFailures, NoInjections);
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = engine_with(cfg, n, 33);
    e.run_observed(192, &mut adv, &mut audit);
    audit.assert_clean();

    let injected: u64 = ProcessId::all(n)
        .map(|p| e.protocol(p).stats().decoys_injected)
        .sum();
    assert!(injected > 3, "cover traffic must flow: {injected}");
    // Decoys generate real protocol traffic...
    assert!(e.metrics().total() > 100);
    // ...but never a user-visible delivery.
    assert!(e.outputs().is_empty(), "decoys must never surface");
}

#[test]
fn real_rumors_ride_alongside_cover_traffic() {
    let n = 12;
    let cfg = CongosConfig::base().cover_traffic(CoverTrafficConfig {
        rate: 0.05,
        data_len: 16,
        deadline: 64,
    });
    let dest = vec![ProcessId::new(4)];
    let secret = vec![0x5E; 16];
    let spec = RumorSpec::new(7, secret.clone(), 64, dest.clone());
    let mut adv = CrriAdversary::new(
        NoFailures,
        OneShot::new(Round(3), vec![(ProcessId::new(0), spec)]),
    );
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = engine_with(cfg, n, 34);
    e.run_observed(128, &mut adv, &mut audit);
    audit.assert_clean();

    let real: Vec<_> = e.outputs().iter().filter(|o| o.value.wid == 7).collect();
    assert_eq!(real.len(), 1);
    assert_eq!(real[0].process, dest[0]);
    assert_eq!(real[0].value.data, secret);
    assert!(real[0].round.as_u64() <= 3 + 64);
    // Nothing else surfaced.
    assert_eq!(e.outputs().len(), 1);
}
