//! CONGOS over the deterministic expander substrate (the de-randomized
//! [13] mode): all guarantees must hold with no substrate randomness at
//! all — the adversary gains nothing from observing coin flips that don't
//! exist.

use congos::{CongosConfig, CongosNode, ConfidentialityAuditor};
use congos_adversary::{
    CrriAdversary, NoFailures, OneShot, PoissonWorkload, ProxyKiller, RumorSpec,
};
use congos_gossip::GossipStrategy;
use congos_sim::{Engine, EngineConfig, ProcessId, Round, Tag};

fn engine(n: usize, seed: u64) -> Engine<CongosNode> {
    let cfg = CongosConfig::base().gossip_strategy(GossipStrategy::Expander);
    Engine::with_factory(EngineConfig::new(n).seed(seed), move |id, n, _s| {
        CongosNode::with_config(id, n, cfg.clone())
    })
}

#[test]
fn expander_substrate_delivers_and_confirms() {
    let n = 16;
    let dest: Vec<ProcessId> = vec![2, 7, 11].into_iter().map(ProcessId::new).collect();
    let spec = RumorSpec::new(0, vec![0xEA; 12], 64, dest.clone());
    let mut adv = CrriAdversary::new(
        NoFailures,
        OneShot::new(Round(0), vec![(ProcessId::new(0), spec)]),
    );
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = engine(n, 61);
    e.run_observed(66, &mut adv, &mut audit);
    audit.assert_clean();
    assert_eq!(e.outputs().len(), dest.len());
    for d in &dest {
        assert!(e
            .outputs()
            .iter()
            .any(|o| o.process == *d && o.round.as_u64() <= 64));
    }
    let stats = e.protocol(ProcessId::new(0)).stats();
    assert_eq!(stats.confirmed, 1, "pipeline confirms over expander too");
}

#[test]
fn expander_substrate_survives_adaptive_attack() {
    // The whole point of de-randomization in [13]: the adversary already
    // "knows" the schedule; adaptive attacks gain no extra power over it.
    let n = 16;
    let source = ProcessId::new(0);
    let dest = vec![ProcessId::new(5), ProcessId::new(10)];
    let mut protected = dest.clone();
    protected.push(source);
    let killer = ProxyKiller::new(Tag("proxy"), 2)
        .protect(protected)
        .revive_after(40);
    let spec = RumorSpec::new(0, vec![4; 8], 64, dest.clone());
    let mut adv = CrriAdversary::new(killer, OneShot::new(Round(0), vec![(source, spec)]));
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = engine(n, 62);
    e.run_observed(66, &mut adv, &mut audit);
    audit.assert_clean();
    for d in &dest {
        assert!(
            e.outputs()
                .iter()
                .any(|o| o.process == *d && o.round.as_u64() <= 64),
            "{d} missed under adaptive attack on the deterministic substrate"
        );
    }
}

#[test]
fn continuous_workload_over_expander_meets_qod() {
    let n = 16;
    let deadline = 64u64;
    let rounds = 192u64;
    let workload = PoissonWorkload::new(0.03, 3, deadline, 63).until(Round(rounds - deadline));
    let mut adv = CrriAdversary::new(NoFailures, workload);
    let mut e = engine(n, 63);
    e.run(rounds, &mut adv);
    for entry in adv.workload().log() {
        let end = entry.round + entry.spec.deadline;
        for d in &entry.spec.dest {
            assert!(
                e.outputs()
                    .iter()
                    .any(|o| o.process == *d && o.value.wid == entry.spec.id && o.round <= end),
                "rumor {} missed {d}",
                entry.spec.id
            );
        }
    }
}
