//! End-to-end tests of collusion-tolerant CONGOS (Section 6.2): `τ+1`-way
//! splits over random partitions, audited against pooled coalitions.

use congos::{CongosConfig, CongosNode, ConfidentialityAuditor, DeliveryPath};
use congos_adversary::{
    pick_colluders, CrriAdversary, NoFailures, OneShot, PoissonWorkload, RandomChurn, RumorSpec,
};
use congos_sim::{Engine, EngineConfig, IdSet, ProcessId, Round};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn collusion_engine(n: usize, tau: usize, seed: u64) -> Engine<CongosNode> {
    let cfg = CongosConfig::collusion_tolerant(tau, 77).without_degenerate_shortcut();
    Engine::with_factory(EngineConfig::new(n).seed(seed), move |id, n, _s| {
        CongosNode::with_config(id, n, cfg.clone())
    })
}

#[test]
fn tau2_pipeline_delivers_and_confirms() {
    let n = 32;
    let tau = 2;
    let dest: Vec<ProcessId> = vec![3, 11, 20].into_iter().map(ProcessId::new).collect();
    let spec = RumorSpec::new(0, vec![0xC0; 16], 64, dest.clone());
    let mut adv = CrriAdversary::new(
        NoFailures,
        OneShot::new(Round(0), vec![(ProcessId::new(0), spec)]),
    );
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = collusion_engine(n, tau, 41);
    e.run_observed(66, &mut adv, &mut audit);
    audit.assert_clean();

    assert_eq!(e.outputs().len(), dest.len());
    for o in e.outputs() {
        assert!(dest.contains(&o.process));
        assert!(o.round.as_u64() <= 64);
        assert_eq!(o.value.via, DeliveryPath::Fragments);
    }
    let stats = e.protocol(ProcessId::new(0)).stats();
    assert_eq!(stats.confirmed, 1, "collusion pipeline must confirm");
    assert_eq!(stats.fallbacks, 0);
    // The node really runs (τ+1)-group partitions.
    assert_eq!(
        e.protocol(ProcessId::new(0))
            .partitions()
            .groups_per_partition(),
        tau + 1
    );
}

#[test]
fn coalitions_of_tau_curious_processes_learn_nothing() {
    let n = 32;
    let tau = 3;
    let rounds = 128u64;
    let workload = PoissonWorkload::new(0.03, 4, 64, 5).until(Round(rounds - 64));
    let mut adv = CrriAdversary::new(NoFailures, workload);
    let mut audit = ConfidentialityAuditor::new(n);
    // Register many random coalitions of size τ.
    let mut rng = SmallRng::seed_from_u64(9);
    for i in 0..16 {
        let members = pick_colluders(
            &mut rng,
            n,
            ProcessId::new(i % n),
            &[], // no destination exclusion: the auditor itself skips
            // rumors a coalition member is entitled to
            tau,
        );
        audit.add_coalition(IdSet::from_iter(n, members));
    }
    let mut e = collusion_engine(n, tau, 42);
    e.run_observed(rounds, &mut adv, &mut audit);
    audit.assert_clean();
    assert!(
        audit.report().fragment_receipts > 100,
        "fragments must actually circulate: {}",
        audit.report().fragment_receipts
    );
    // QoD under the failure-free run: everything delivered on time.
    for entry in adv.workload().log() {
        let end = entry.round + entry.spec.deadline;
        for d in &entry.spec.dest {
            assert!(
                e.outputs()
                    .iter()
                    .any(|o| o.process == *d && o.value.wid == entry.spec.id && o.round <= end),
                "rumor {} missed {d}",
                entry.spec.id
            );
        }
    }
}

#[test]
fn collusion_pipeline_survives_churn() {
    let n = 32;
    let tau = 2;
    let rounds = 160u64;
    let workload = PoissonWorkload::new(0.02, 3, 64, 15).until(Round(rounds - 64));
    let churn = RandomChurn::new(0.002, 0.1, 16);
    let mut adv = CrriAdversary::new(churn, workload);
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = collusion_engine(n, tau, 43);
    e.run_observed(rounds, &mut adv, &mut audit);
    audit.assert_clean();

    let mut admissible = 0;
    for entry in adv.workload().log() {
        let t = entry.round;
        let end = t + entry.spec.deadline;
        if !e.liveness().continuously_alive(entry.source, t, end) {
            continue;
        }
        for d in &entry.spec.dest {
            if !e.liveness().continuously_alive(*d, t, end) {
                continue;
            }
            admissible += 1;
            assert!(
                e.outputs()
                    .iter()
                    .any(|o| o.process == *d && o.value.wid == entry.spec.id && o.round <= end),
                "admissible rumor {} missed {d}",
                entry.spec.id
            );
        }
    }
    assert!(admissible > 5, "workload too thin: {admissible}");
}

#[test]
fn degenerate_tau_sends_directly() {
    // With the paper's shortcut enabled, τ ≥ n/log²n ⇒ everything direct.
    let n = 16;
    let cfg = CongosConfig::collusion_tolerant(8, 3);
    assert!(cfg.degenerate_collusion(n));
    let dest = vec![ProcessId::new(5)];
    let spec = RumorSpec::new(0, vec![1], 64, dest);
    let mut adv = CrriAdversary::new(
        NoFailures,
        OneShot::new(Round(0), vec![(ProcessId::new(0), spec)]),
    );
    let mut e = Engine::<CongosNode>::with_factory(
        EngineConfig::new(n).seed(44),
        move |id, n, _s| CongosNode::with_config(id, n, cfg.clone()),
    );
    e.run(3, &mut adv);
    assert_eq!(e.outputs().len(), 1);
    assert_eq!(e.outputs()[0].value.via, DeliveryPath::Direct);
}
