//! Edge cases: broadcast destinations, mixed deadline classes, source
//! crashes mid-pipeline, tiny systems, and restart-heavy schedules.

use congos::{CongosNode, ConfidentialityAuditor, DeliveryPath};
use congos_adversary::{
    CrriAdversary, NoFailures, OneShot, PoissonWorkload, RumorSpec, ScheduledChurn,
};
use congos_sim::{Engine, EngineConfig, ProcessId, Round};

#[test]
fn broadcast_to_everyone_is_legal_and_confidentiality_is_vacuous() {
    let n = 12;
    let dest: Vec<ProcessId> = ProcessId::all(n).collect();
    let spec = RumorSpec::new(0, vec![0xB0; 8], 64, dest.clone());
    let mut adv = CrriAdversary::new(
        NoFailures,
        OneShot::new(Round(0), vec![(ProcessId::new(0), spec)]),
    );
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = Engine::<CongosNode>::new(EngineConfig::new(n).seed(51));
    e.run_observed(66, &mut adv, &mut audit);
    audit.assert_clean();
    assert_eq!(e.outputs().len(), n, "everyone delivers a broadcast");
}

#[test]
fn mixed_deadline_classes_coexist() {
    // Three rumors with deadlines landing in three different regimes:
    // direct (8), one pipeline class (64), a longer class (200 → trims to
    // 128). All must deliver on time.
    let n = 16;
    let batch = vec![
        (
            ProcessId::new(0),
            RumorSpec::new(0, vec![1], 8, vec![ProcessId::new(5)]),
        ),
        (
            ProcessId::new(1),
            RumorSpec::new(1, vec![2], 64, vec![ProcessId::new(6)]),
        ),
        (
            ProcessId::new(2),
            RumorSpec::new(2, vec![3], 200, vec![ProcessId::new(7)]),
        ),
    ];
    let mut adv = CrriAdversary::new(NoFailures, OneShot::new(Round(0), batch));
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = Engine::<CongosNode>::new(EngineConfig::new(n).seed(52));
    e.run_observed(201, &mut adv, &mut audit);
    audit.assert_clean();

    let by_wid = |w: u64| {
        e.outputs()
            .iter()
            .find(|o| o.value.wid == w)
            .unwrap_or_else(|| panic!("rumor {w} undelivered"))
    };
    assert!(by_wid(0).round.as_u64() <= 8);
    assert_eq!(by_wid(0).value.via, DeliveryPath::Direct);
    assert!(by_wid(1).round.as_u64() <= 64);
    assert!(by_wid(2).round.as_u64() <= 200);
    assert_eq!(e.outputs().len(), 3);
}

#[test]
fn source_crash_mid_pipeline_never_leaks() {
    // Source crashes right after injecting (rumor inadmissible): delivery
    // is not required, but whatever happens must stay confidential and the
    // system must not wedge.
    let n = 16;
    let source = ProcessId::new(0);
    let spec = RumorSpec::new(0, vec![0xDE; 8], 64, vec![ProcessId::new(9)]);
    let sched = ScheduledChurn::new().crash_at(Round(1), source);
    let mut adv = CrriAdversary::new(sched, OneShot::new(Round(0), vec![(source, spec)]));
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = Engine::<CongosNode>::new(EngineConfig::new(n).seed(53));
    e.run_observed(80, &mut adv, &mut audit);
    audit.assert_clean();
    // All outputs, if any, are at the destination.
    assert!(e.outputs().iter().all(|o| o.process == ProcessId::new(9)));
}

#[test]
fn two_process_system_works() {
    // n=2: one bit partition separating the two processes.
    let n = 2;
    let spec = RumorSpec::new(0, vec![0x22; 4], 64, vec![ProcessId::new(1)]);
    let mut adv = CrriAdversary::new(
        NoFailures,
        OneShot::new(Round(0), vec![(ProcessId::new(0), spec)]),
    );
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = Engine::<CongosNode>::new(EngineConfig::new(n).seed(54));
    e.run_observed(66, &mut adv, &mut audit);
    audit.assert_clean();
    let hits: Vec<_> = e
        .outputs()
        .iter()
        .filter(|o| o.process == ProcessId::new(1))
        .collect();
    assert_eq!(hits.len(), 1);
    assert!(hits[0].round.as_u64() <= 64);
}

#[test]
fn single_process_system_delivers_locally_only() {
    let n = 1;
    let spec = RumorSpec::new(0, vec![9], 64, vec![ProcessId::new(0)]);
    let mut adv = CrriAdversary::new(
        NoFailures,
        OneShot::new(Round(0), vec![(ProcessId::new(0), spec)]),
    );
    let mut e = Engine::<CongosNode>::new(EngineConfig::new(n).seed(55));
    e.run(5, &mut adv);
    assert_eq!(e.outputs().len(), 1);
    assert_eq!(e.outputs()[0].value.via, DeliveryPath::Local);
    assert_eq!(e.metrics().total(), 0, "no network in a 1-process system");
}

#[test]
fn restart_storm_keeps_audit_clean_and_admissible_delivery() {
    // Aggressive scheduled churn: a third of the system flaps every 16
    // rounds; sources and a destination flap too.
    let n = 12;
    let deadline = 64u64;
    let rounds = 192u64;
    let mut sched = ScheduledChurn::new();
    for wave in 0..6u64 {
        for i in 0..2usize {
            let p = ProcessId::new((wave as usize + i * 5) % n);
            sched = sched
                .crash_at(Round(wave * 32 + 3), p)
                .restart_at(Round(wave * 32 + 21), p);
        }
    }
    let workload = PoissonWorkload::new(0.05, 3, deadline, 56).until(Round(rounds - deadline));
    let mut adv = CrriAdversary::new(sched, workload);
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = Engine::<CongosNode>::new(EngineConfig::new(n).seed(56));
    e.run_observed(rounds, &mut adv, &mut audit);
    audit.assert_clean();
    assert!(e.liveness().crash_count() >= 10);

    let mut admissible = 0;
    for entry in adv.workload().log() {
        let t = entry.round;
        let end = t + entry.spec.deadline;
        if !e.liveness().continuously_alive(entry.source, t, end) {
            continue;
        }
        for d in &entry.spec.dest {
            if !e.liveness().continuously_alive(*d, t, end) {
                continue;
            }
            admissible += 1;
            assert!(
                e.outputs()
                    .iter()
                    .any(|o| o.process == *d && o.value.wid == entry.spec.id && o.round <= end),
                "admissible rumor {} missed {d}",
                entry.spec.id
            );
        }
    }
    assert!(admissible > 5, "storm too destructive to measure: {admissible}");
}

#[test]
fn empty_destination_set_is_a_noop() {
    let n = 8;
    let spec = RumorSpec::new(0, vec![1], 64, vec![]);
    let mut adv = CrriAdversary::new(
        NoFailures,
        OneShot::new(Round(0), vec![(ProcessId::new(0), spec)]),
    );
    let mut e = Engine::<CongosNode>::new(EngineConfig::new(n).seed(57));
    e.run(66, &mut adv);
    assert!(e.outputs().is_empty());
}

#[test]
fn restart_preserves_deployment_configuration() {
    // A restarted process is factory-reset — but the factory carries the
    // deployment configuration ("the algorithm"), so a restarted node keeps
    // running the same variant.
    use congos::CongosConfig;
    use congos_gossip::GossipStrategy;
    let n = 8;
    let cfg = CongosConfig::base().gossip_strategy(GossipStrategy::Expander);
    let mut sched = ScheduledChurn::new()
        .crash_at(Round(2), ProcessId::new(4))
        .restart_at(Round(5), ProcessId::new(4));
    let _ = &mut sched;
    let spec = RumorSpec::new(0, vec![1; 4], 64, vec![ProcessId::new(4)]);
    let cfg2 = cfg.clone();
    let mut adv = CrriAdversary::new(
        sched,
        OneShot::new(Round(8), vec![(ProcessId::new(0), spec)]),
    );
    let mut e = congos_sim::Engine::<CongosNode>::with_factory(
        congos_sim::EngineConfig::new(n).seed(58),
        move |id, n, _s| CongosNode::with_config(id, n, cfg2.clone()),
    );
    e.run(80, &mut adv);
    // The restarted node still runs the expander-strategy configuration.
    assert_eq!(
        e.protocol(ProcessId::new(4)).config().gossip_strategy,
        GossipStrategy::Expander
    );
    // And (being continuously alive from round 6 on, before the injection
    // at round 8) it receives the rumor on time.
    assert!(e
        .outputs()
        .iter()
        .any(|o| o.process == ProcessId::new(4) && o.round.as_u64() <= 8 + 64));
}
