//! End-to-end tests of the CONGOS pipeline: delivery, confirmation,
//! confidentiality (audited), and the fallback path.

use congos::{
    CongosNode, ConfidentialityAuditor, DeliveryPath, NodeStats,
};
use congos_adversary::{
    CrriAdversary, GroupAnnihilator, NoFailures, OneShot, PoissonWorkload, ProxyKiller,
    RandomChurn, RumorSpec, ScheduledChurn,
};
use congos_sim::{Engine, EngineConfig, ProcessId, Round, Tag};

fn total_stats(engine: &Engine<CongosNode>) -> NodeStats {
    let mut acc = NodeStats::default();
    for p in ProcessId::all(engine.n()) {
        let s = engine.protocol(p).stats();
        acc.injected += s.injected;
        acc.confirmed += s.confirmed;
        acc.fallbacks += s.fallbacks;
        acc.direct += s.direct;
        acc.gossip_fallbacks += s.gossip_fallbacks;
    }
    acc
}

#[test]
fn benign_run_confirms_without_fallback() {
    let n = 16;
    let dest: Vec<ProcessId> = vec![1, 4, 7, 10, 13].into_iter().map(ProcessId::new).collect();
    let spec = RumorSpec::new(0, vec![0x5A; 24], 64, dest.clone());
    let mut adv = CrriAdversary::new(
        NoFailures,
        OneShot::new(Round(0), vec![(ProcessId::new(0), spec)]),
    );
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = Engine::<CongosNode>::new(EngineConfig::new(n).seed(11));
    e.run_observed(66, &mut adv, &mut audit);
    audit.assert_clean();

    // All five destinations delivered, each exactly once, within deadline.
    assert_eq!(e.outputs().len(), dest.len());
    for d in &dest {
        let hits: Vec<_> = e.outputs().iter().filter(|o| o.process == *d).collect();
        assert_eq!(hits.len(), 1, "{d} must deliver exactly once");
        assert!(hits[0].round.as_u64() <= 64);
        assert_eq!(hits[0].value.data, vec![0x5A; 24]);
        assert_eq!(hits[0].value.via, DeliveryPath::Fragments);
    }

    // The source confirmed through the pipeline; the fallback never fired.
    let stats = total_stats(&e);
    assert_eq!(stats.injected, 1);
    assert_eq!(stats.confirmed, 1, "pipeline must confirm in benign runs");
    assert_eq!(stats.fallbacks, 0);
    assert_eq!(e.metrics().total_of(Tag("shoot")), 0);
}

#[test]
fn continuous_workload_is_confidential_and_timely() {
    let n = 16;
    let deadline = 64u64;
    let rounds = 192u64;
    let workload = PoissonWorkload::new(0.04, 3, deadline, 21).until(Round(rounds - deadline));
    let mut adv = CrriAdversary::new(NoFailures, workload);
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = Engine::<CongosNode>::new(EngineConfig::new(n).seed(12));
    e.run_observed(rounds, &mut adv, &mut audit);
    audit.assert_clean();

    let log = adv.workload().log().to_vec();
    assert!(log.len() > 20, "workload too thin: {}", log.len());
    for entry in &log {
        let end = entry.round + entry.spec.deadline;
        for d in &entry.spec.dest {
            let got = e
                .outputs()
                .iter()
                .any(|o| o.process == *d && o.value.wid == entry.spec.id && o.round <= end);
            assert!(got, "rumor {} missed {d} by {end}", entry.spec.id);
        }
    }
}

#[test]
fn qod_holds_under_random_churn() {
    let n = 16;
    let deadline = 64u64;
    let rounds = 256u64;
    let workload = PoissonWorkload::new(0.03, 3, deadline, 31).until(Round(rounds - deadline));
    let churn = RandomChurn::new(0.004, 0.15, 32);
    let mut adv = CrriAdversary::new(churn, workload);
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = Engine::<CongosNode>::new(EngineConfig::new(n).seed(13));
    e.run_observed(rounds, &mut adv, &mut audit);
    audit.assert_clean();

    let log = adv.workload().log().to_vec();
    let mut admissible = 0;
    for entry in &log {
        let t = entry.round;
        let end = t + entry.spec.deadline;
        if !e.liveness().continuously_alive(entry.source, t, end) {
            continue;
        }
        for d in &entry.spec.dest {
            if !e.liveness().continuously_alive(*d, t, end) {
                continue;
            }
            admissible += 1;
            let got = e
                .outputs()
                .iter()
                .any(|o| o.process == *d && o.value.wid == entry.spec.id && o.round <= end);
            assert!(
                got,
                "admissible rumor {} (inj {t}) missed {d} by {end}",
                entry.spec.id
            );
        }
    }
    assert!(admissible > 10, "churn killed the whole workload: {admissible}");
    assert!(e.liveness().crash_count() > 0, "churn must actually churn");
}

#[test]
fn proxy_killer_cannot_break_confidentiality_or_qod() {
    // The adaptive attack the Proxy service handles: crash every process
    // the moment it receives a proxy request.
    let n = 16;
    let deadline = 64u64;
    let source = ProcessId::new(0);
    let dest: Vec<ProcessId> = vec![3, 6, 9].into_iter().map(ProcessId::new).collect();
    let spec = RumorSpec::new(0, vec![7; 16], deadline, dest.clone());
    let mut protected = dest.clone();
    protected.push(source);
    let killer = ProxyKiller::new(Tag("proxy"), 2)
        .protect(protected)
        .revive_after(40);
    let mut adv = CrriAdversary::new(killer, OneShot::new(Round(0), vec![(source, spec)]));
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = Engine::<CongosNode>::new(EngineConfig::new(n).seed(14));
    e.run_observed(65, &mut adv, &mut audit);
    audit.assert_clean();

    for d in &dest {
        assert!(
            e.outputs()
                .iter()
                .any(|o| o.process == *d && o.round.as_u64() <= deadline),
            "{d} missed the rumor under the proxy-killer attack"
        );
    }
    assert!(adv.failures().kills() > 0, "the attack must actually fire");
}

#[test]
fn annihilating_one_group_still_delivers_via_other_partitions() {
    // Killing all of one side of partition 0 right as fragments spread: the
    // remaining log(n)-1 partitions (or the fallback) must still deliver.
    let n = 16;
    let deadline = 64u64;
    let source = ProcessId::new(1); // bit0 = 1
    let dest = vec![ProcessId::new(3)]; // bit0 = 1
    let spec = RumorSpec::new(0, vec![9; 8], deadline, dest.clone());
    // Kill every process with bit 0 == 0 at round 2 (the entire group 0 of
    // partition 0 — including proxies holding fragment 0).
    let ann = GroupAnnihilator::new(0, 0, Round(2));
    let mut adv = CrriAdversary::new(ann, OneShot::new(Round(0), vec![(source, spec)]));
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = Engine::<CongosNode>::new(EngineConfig::new(n).seed(15));
    e.run_observed(65, &mut adv, &mut audit);
    audit.assert_clean();

    assert!(
        e.outputs()
            .iter()
            .any(|o| o.process == dest[0] && o.round.as_u64() <= deadline),
        "destination missed the rumor after group annihilation"
    );
}

#[test]
fn fallback_rescues_rumor_when_pipeline_is_starved() {
    // Crash *everyone* except source and destination at round 1: no group
    // has enough survivors, so the deadline fallback must fire and deliver.
    let n = 16;
    let deadline = 64u64;
    let source = ProcessId::new(0);
    let dest = ProcessId::new(5);
    let spec = RumorSpec::new(0, vec![3; 8], deadline, vec![dest]);
    let mut sched = ScheduledChurn::new();
    for i in 0..n {
        let p = ProcessId::new(i);
        if p != source && p != dest {
            sched = sched.crash_at(Round(1), p);
        }
    }
    let mut adv = CrriAdversary::new(sched, OneShot::new(Round(0), vec![(source, spec)]));
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = Engine::<CongosNode>::new(EngineConfig::new(n).seed(16));
    e.run_observed(66, &mut adv, &mut audit);
    audit.assert_clean();

    let hits: Vec<_> = e.outputs().iter().filter(|o| o.process == dest).collect();
    assert_eq!(hits.len(), 1);
    assert!(hits[0].round.as_u64() <= deadline, "fallback met the deadline");
    let stats = total_stats(&e);
    assert!(
        stats.fallbacks >= 1 || hits[0].value.via == DeliveryPath::Fragments,
        "either the fallback fired or a partition survived"
    );
}

#[test]
fn short_deadlines_take_the_direct_path() {
    let n = 8;
    let dest = vec![ProcessId::new(2), ProcessId::new(6)];
    let spec = RumorSpec::new(0, vec![1, 2, 3], 8, dest.clone());
    let mut adv = CrriAdversary::new(
        NoFailures,
        OneShot::new(Round(0), vec![(ProcessId::new(0), spec)]),
    );
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = Engine::<CongosNode>::new(EngineConfig::new(n).seed(17));
    e.run_observed(10, &mut adv, &mut audit);
    audit.assert_clean();

    assert_eq!(e.outputs().len(), 2);
    for o in e.outputs() {
        assert_eq!(o.value.via, DeliveryPath::Direct);
        assert!(o.round.as_u64() <= 8);
    }
    let stats = total_stats(&e);
    assert_eq!(stats.direct, 1);
    assert_eq!(e.metrics().total_of(Tag("shoot")), 2);
}

#[test]
fn source_in_destination_set_delivers_locally() {
    let n = 8;
    let source = ProcessId::new(0);
    let spec = RumorSpec::new(0, vec![42], 64, vec![source, ProcessId::new(3)]);
    let mut adv = CrriAdversary::new(NoFailures, OneShot::new(Round(0), vec![(source, spec)]));
    let mut e = Engine::<CongosNode>::new(EngineConfig::new(n).seed(18));
    e.run(66, &mut adv);
    let local: Vec<_> = e.outputs().iter().filter(|o| o.process == source).collect();
    assert_eq!(local.len(), 1);
    assert_eq!(local[0].value.via, DeliveryPath::Local);
    assert_eq!(local[0].round, Round(0), "local delivery is immediate");
}

#[test]
fn executions_are_deterministic() {
    let run = |seed: u64| {
        let n = 12;
        let workload = PoissonWorkload::new(0.05, 3, 64, 5).until(Round(64));
        let churn = RandomChurn::new(0.003, 0.1, 6);
        let mut adv = CrriAdversary::new(churn, workload);
        let mut e = Engine::<CongosNode>::new(EngineConfig::new(n).seed(seed));
        e.run(128, &mut adv);
        (
            e.metrics().total(),
            e.outputs().len(),
            e.liveness().crash_count(),
        )
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9), run(10), "different seeds explore different runs");
}

#[test]
fn non_destinations_never_output_and_audit_observes_traffic() {
    let n = 16;
    let dest = vec![ProcessId::new(9)];
    let spec = RumorSpec::new(0, vec![0xEE; 32], 64, dest.clone());
    let mut adv = CrriAdversary::new(
        NoFailures,
        OneShot::new(Round(0), vec![(ProcessId::new(0), spec)]),
    );
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = Engine::<CongosNode>::new(EngineConfig::new(n).seed(19));
    e.run_observed(66, &mut adv, &mut audit);
    audit.assert_clean();

    assert!(e.outputs().iter().all(|o| o.process == dest[0]));
    // The whole point of CONGOS: non-destinations *do* carry fragments.
    assert!(
        audit.report().fragment_receipts > 10,
        "collaboration should spread fragments widely, got {}",
        audit.report().fragment_receipts
    );
    assert_eq!(audit.report().rumors, 1);
}

#[test]
fn gd_killer_cannot_break_confidentiality_or_qod() {
    // Same adaptive game as the proxy killer, aimed at the
    // GroupDistribution recipients instead.
    let n = 16;
    let deadline = 64u64;
    let source = ProcessId::new(0);
    let dest: Vec<ProcessId> = vec![2, 9, 14].into_iter().map(ProcessId::new).collect();
    let spec = RumorSpec::new(0, vec![6; 16], deadline, dest.clone());
    let mut protected = dest.clone();
    protected.push(source);
    let killer = ProxyKiller::new(Tag("group_dist"), 2)
        .protect(protected)
        .revive_after(40);
    let mut adv = CrriAdversary::new(killer, OneShot::new(Round(0), vec![(source, spec)]));
    let mut audit = ConfidentialityAuditor::new(n);
    let mut e = Engine::<CongosNode>::new(EngineConfig::new(n).seed(71));
    e.run_observed(65, &mut adv, &mut audit);
    audit.assert_clean();
    for d in &dest {
        assert!(
            e.outputs()
                .iter()
                .any(|o| o.process == *d && o.round.as_u64() <= deadline),
            "{d} missed under the GD-killer attack"
        );
    }
}

#[test]
fn hiding_plus_collusion_composes() {
    use congos::CongosConfig;
    use congos_adversary::pick_colluders;
    use congos_sim::IdSet;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let n = 16;
    let tau = 2;
    let cfg = CongosConfig::collusion_tolerant(tau, 3)
        .without_degenerate_shortcut()
        .hide_destinations();
    let dest = vec![ProcessId::new(9)];
    let secret = vec![0x17; 12];
    let spec = RumorSpec::new(0, secret.clone(), 64, dest.clone());
    let mut adv = CrriAdversary::new(
        NoFailures,
        OneShot::new(Round(0), vec![(ProcessId::new(0), spec)]),
    );
    let mut audit = ConfidentialityAuditor::new(n);
    let mut rng = SmallRng::seed_from_u64(4);
    for i in 0..6 {
        let ring = pick_colluders(&mut rng, n, ProcessId::new(i), &[], tau);
        audit.add_coalition(IdSet::from_iter(n, ring));
    }
    let cfg2 = cfg.clone();
    let mut e = Engine::<CongosNode>::with_factory(
        EngineConfig::new(n).seed(72),
        move |id, n, _s| CongosNode::with_config(id, n, cfg2.clone()),
    );
    e.run_observed(66, &mut adv, &mut audit);
    audit.assert_clean();

    let real: Vec<_> = e.outputs().iter().filter(|o| !o.value.data.is_empty()).collect();
    assert_eq!(real.len(), 1, "only the real destination surfaces anything");
    assert_eq!(real[0].process, dest[0]);
    assert_eq!(real[0].value.data, secret);
}
