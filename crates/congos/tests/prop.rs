//! Property-based tests of CONGOS's core invariants: secret splitting,
//! partitions, and the auditor's reconstruction logic.

use congos::{split, Partition, PartitionSet};
use congos_sim::{IdSet, ProcessId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// split/merge round-trips for any data and any fragment count.
    #[test]
    fn split_merge_roundtrip(
        data in prop::collection::vec(any::<u8>(), 0..200),
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let frags = split::split(&mut rng, &data, k);
        prop_assert_eq!(frags.len(), k);
        let refs: Vec<&[u8]> = frags.iter().map(|f| f.as_slice()).collect();
        prop_assert_eq!(split::merge(&refs), Some(data));
    }

    /// Dropping any one fragment destroys all information: the XOR of the
    /// remaining fragments is independent of the data (equals the dropped
    /// pad XOR data... i.e. uniformly masked). We verify the structural
    /// consequence: two different rumors split with the same RNG stream
    /// agree on every proper subset that excludes the data-bearing residue,
    /// and merging a proper subset never yields the original data unless it
    /// equals it by the 2^-8len fluke (excluded by construction here).
    #[test]
    fn proper_subsets_do_not_reconstruct(
        data in prop::collection::vec(1u8..255, 8..64),
        k in 2usize..6,
        seed in any::<u64>(),
        drop_idx in 0usize..6,
    ) {
        let drop_idx = drop_idx % k;
        let mut rng = SmallRng::seed_from_u64(seed);
        let frags = split::split(&mut rng, &data, k);
        let subset: Vec<&[u8]> = frags
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop_idx)
            .map(|(_, f)| f.as_slice())
            .collect();
        let partial = split::merge(&subset).unwrap();
        // partial XOR dropped = data, and dropped is uniform ⇒ partial ≠
        // data unless the dropped fragment is all zeros (prob 2^-64 at
        // minimum length 8; the RNG is seeded, so flag it if it ever
        // happens rather than failing spuriously).
        if frags[drop_idx].iter().any(|b| *b != 0) {
            prop_assert_ne!(partial, data);
        }
    }

    /// Bit partitions: disjoint, exhaustive, and Lemma 5 holds for random
    /// pairs.
    #[test]
    fn bit_partitions_sound(n in 2usize..300, a in 0usize..300, b in 0usize..300) {
        let ps = PartitionSet::bits(n);
        prop_assert!(!ps.is_empty());
        for (_, p) in ps.iter() {
            prop_assert!(p.well_formed());
            let mut union = p.group(0).clone();
            union.union_with(p.group(1));
            prop_assert_eq!(union.len(), n);
            prop_assert!(p.group(0).is_disjoint_from(p.group(1)));
        }
        let (a, b) = (a % n, b % n);
        if a != b {
            prop_assert!(ps
                .separating(ProcessId::new(a), ProcessId::new(b))
                .is_some());
        }
    }

    /// Random partitions: Partition-Property 1 always holds; group
    /// assignment is a function (each process in exactly one group).
    #[test]
    fn random_partitions_sound(
        n in 8usize..128,
        tau in 1usize..5,
        seed in any::<u64>(),
    ) {
        prop_assume!(tau < n);
        let ps = PartitionSet::random(n, tau, 1.0, seed);
        prop_assert_eq!(ps.groups_per_partition(), tau + 1);
        for (_, p) in ps.iter() {
            prop_assert!(p.well_formed(), "Partition-Property 1");
            let total: usize = (0..=tau).map(|g| p.group(g as u8).len()).sum();
            prop_assert_eq!(total, n);
            for i in 0..n {
                let pid = ProcessId::new(i);
                prop_assert!(p.group(p.group_of(pid)).contains(pid));
            }
        }
    }

    /// `covers` is monotone: adding survivors never breaks coverage.
    #[test]
    fn coverage_is_monotone(
        n in 8usize..64,
        base in prop::collection::btree_set(0usize..64, 1..20),
        extra in 0usize..64,
        assignment_seed in any::<u64>(),
    ) {
        let base: Vec<usize> = base.into_iter().filter(|i| *i < n).collect();
        prop_assume!(!base.is_empty());
        let mut rng = SmallRng::seed_from_u64(assignment_seed);
        let assignment: Vec<u8> = (0..n)
            .map(|_| rand::Rng::gen_range(&mut rng, 0..3u8))
            .collect();
        // Ensure well-formedness by pinning one member per group.
        let mut assignment = assignment;
        if n >= 3 {
            assignment[0] = 0;
            assignment[1] = 1;
            assignment[2] = 2;
        }
        let p = Partition::from_assignment(assignment, 3);
        let small = IdSet::from_iter(n, base.iter().map(|i| ProcessId::new(*i)));
        let mut big = small.clone();
        big.insert(ProcessId::new(extra % n));
        if p.covers(&small) {
            prop_assert!(p.covers(&big), "coverage must be monotone");
        }
    }
}
