//! The CONGOS process: the full confidential-gossip protocol as a
//! [`congos_sim::Protocol`].

use std::collections::{BTreeMap, HashMap, HashSet};

use congos_sim::clock::trim_deadline;
use congos_sim::{Context, IdSet, Inbox, ProcessId, Protocol, Round};

use crate::config::{CongosConfig, PartitionScheme};
use crate::messages::{CongosMsg, Fragment, TAG_SHOOT};
use crate::partition::PartitionSet;
use crate::rumor::{CongosInput, CongosRumorId, DeliveredRumor, DeliveryPath, Rumor};
use crate::services::class_engine::{ClassEngine, ClassStats};
use crate::services::hit_history::ExpiryRing;
use crate::split;

/// Node-level statistics for experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Rumors injected at this process.
    pub injected: u64,
    /// Rumors confirmed through the pipeline.
    pub confirmed: u64,
    /// Rumors that needed the deadline fallback.
    pub fallbacks: u64,
    /// Rumors sent directly (deadline below the pipeline threshold, or the
    /// degenerate collusion regime).
    pub direct: u64,
    /// Substrate (GroupGossip/AllGossip) deadline fallbacks.
    pub gossip_fallbacks: u64,
    /// Cover-traffic decoys this process injected (Section 7 extension).
    pub decoys_injected: u64,
    /// Decoy payloads this process reassembled and discarded.
    pub decoys_discarded: u64,
}

struct PartsEntry {
    k: u8,
    wid: u64,
    /// Fragment bytes by group — interned handles, shared with the store.
    got: BTreeMap<u8, crate::fragstore::FragBytes>,
}

/// One process running CONGOS.
///
/// Built via [`Protocol::new`] (base configuration) or
/// [`CongosNode::with_config`] through
/// [`congos_sim::Engine::with_factory`] for configured deployments.
pub struct CongosNode {
    me: ProcessId,
    n: usize,
    cfg: CongosConfig,
    partitions: PartitionSet,
    /// `None` = alive since the beginning of the execution (treated as
    /// "alive forever", matching the paper's long-running system); `Some(t)`
    /// = restarted at `t`.
    alive_since: Option<Round>,
    classes: BTreeMap<u64, ClassEngine>,
    /// Saved fragments for reassembly: `(rumor, partition) → group → bytes`.
    parts: HashMap<(CongosRumorId, u16), PartsEntry>,
    delivered: HashSet<CongosRumorId>,
    /// Expiry indexes over `parts` / `delivered`: pruning walks only expired
    /// ring buckets instead of scanning the whole map every 512 rounds.
    parts_expiry: ExpiryRing<(CongosRumorId, u16)>,
    delivered_expiry: ExpiryRing<CongosRumorId>,
    injected: u64,
    direct: u64,
    decoys_injected: u64,
    decoys_discarded: u64,
    seq_in_round: (Round, u32),
}

impl CongosNode {
    /// Creates a node with an explicit configuration. All processes of a
    /// deployment must receive identical configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid for `n` processes.
    pub fn with_config(me: ProcessId, n: usize, cfg: CongosConfig) -> Self {
        if let Err(e) = cfg.validate(n) {
            panic!("invalid CONGOS configuration for n={n}: {e}");
        }
        let mut partitions = match cfg.scheme {
            PartitionScheme::Bits => PartitionSet::bits(n),
            PartitionScheme::Random { c, seed } => {
                if cfg.degenerate_collusion(n) {
                    // τ ≥ n/log²n: the algorithm abandons the pipeline and
                    // sends everything directly (Section 6.2).
                    PartitionSet::bits(0)
                } else {
                    PartitionSet::random(n, cfg.tau, c, seed)
                }
            }
        };
        if let Some(cap) = cfg.max_partitions {
            partitions.truncate(cap);
        }
        CongosNode {
            me,
            n,
            cfg,
            partitions,
            alive_since: None,
            classes: BTreeMap::new(),
            parts: HashMap::new(),
            delivered: HashSet::new(),
            parts_expiry: ExpiryRing::new(512),
            delivered_expiry: ExpiryRing::new(512),
            injected: 0,
            direct: 0,
            decoys_injected: 0,
            decoys_discarded: 0,
            seq_in_round: (Round::ZERO, 0),
        }
    }

    /// The node's configuration.
    pub fn config(&self) -> &CongosConfig {
        &self.cfg
    }

    /// The agreed partition set.
    pub fn partitions(&self) -> &PartitionSet {
        &self.partitions
    }

    /// Rumors this node injected that still await confirmation.
    pub fn pending_confirmations(&self) -> usize {
        self.classes.values().map(|c| c.cache_len()).sum()
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> NodeStats {
        let class: ClassStats = self.classes.values().fold(ClassStats::default(), |a, c| {
            let s = c.stats();
            ClassStats {
                confirmed: a.confirmed + s.confirmed,
                fallbacks: a.fallbacks + s.fallbacks,
            }
        });
        NodeStats {
            injected: self.injected,
            confirmed: class.confirmed,
            fallbacks: class.fallbacks,
            direct: self.direct,
            gossip_fallbacks: self.classes.values().map(|c| c.gossip_fallbacks()).sum(),
            decoys_injected: self.decoys_injected,
            decoys_discarded: self.decoys_discarded,
        }
    }

    fn next_rid(&mut self, now: Round) -> CongosRumorId {
        if self.seq_in_round.0 != now {
            self.seq_in_round = (now, 0);
        }
        let seq = self.seq_in_round.1;
        self.seq_in_round.1 += 1;
        CongosRumorId {
            source: self.me,
            birth: now,
            seq,
        }
    }

    /// Frames a payload with the real/decoy marker when a Section 7
    /// extension is enabled (the marker rides *inside* the secret-shared
    /// bytes, so only a legitimate reassembler can read it).
    fn frame(&self, real: bool, data: &[u8]) -> Vec<u8> {
        if !self.cfg.framing_enabled() {
            return data.to_vec();
        }
        let mut framed = Vec::with_capacity(data.len() + 1);
        framed.push(u8::from(real));
        framed.extend_from_slice(data);
        framed
    }

    /// Unframes a reassembled payload; `None` means "decoy — discard".
    fn unframe(&mut self, data: Vec<u8>) -> Option<Vec<u8>> {
        if !self.cfg.framing_enabled() {
            return Some(data);
        }
        match data.split_first() {
            Some((1, rest)) => Some(rest.to_vec()),
            _ => {
                self.decoys_discarded += 1;
                None
            }
        }
    }

    fn alive_rounds(&self, now: Round) -> u64 {
        match self.alive_since {
            None => u64::MAX,
            Some(t) => now.since(t),
        }
    }

    /// The deadline class for an injected deadline, or `None` for the
    /// direct path.
    fn deadline_class(&self, deadline: u64) -> Option<u64> {
        if self.partitions.is_empty() || self.cfg.degenerate_collusion(self.n) {
            return None;
        }
        let dline = trim_deadline(deadline, self.cfg.deadline_cap(self.n));
        (dline >= self.cfg.direct_threshold).then_some(dline)
    }

    /// Fetches (or lazily creates) the class engine for `dline`, returning
    /// it together with the partition set — split borrows so callers can use
    /// both mutably/shared at once.
    fn class_engine<'a>(
        classes: &'a mut BTreeMap<u64, ClassEngine>,
        partitions: &'a PartitionSet,
        cfg: &CongosConfig,
        me: ProcessId,
        n: usize,
        dline: u64,
    ) -> &'a mut ClassEngine {
        classes.entry(dline).or_insert_with(|| {
            let mut c = ClassEngine::new(me, n, dline, partitions);
            c.configure_gossip(cfg);
            c
        })
    }

    /// `true` if an incoming message's deadline class is one this
    /// configuration could legitimately produce.
    fn valid_class(&self, dline: u64) -> bool {
        dline.is_power_of_two()
            && dline >= self.cfg.direct_threshold
            && dline <= trim_deadline(u64::MAX, self.cfg.deadline_cap(self.n))
    }

    fn save_fragment(&mut self, ctx: &mut Context<'_, Self>, f: Fragment) {
        if !f.dest.contains(self.me) || self.delivered.contains(&f.rid) {
            return;
        }
        let key = (f.rid, f.partition);
        if !self.parts.contains_key(&key) {
            let horizon = 2 * self.cfg.deadline_cap(self.n);
            self.parts_expiry.insert((f.rid.birth + horizon).as_u64(), key);
        }
        let entry = self.parts.entry(key).or_insert_with(|| PartsEntry {
            k: f.k,
            wid: f.wid,
            got: BTreeMap::new(),
        });
        entry.got.insert(f.group, f.bytes);
        if entry.got.len() == entry.k as usize {
            let refs: Vec<&[u8]> = entry.got.values().map(|b| &b[..]).collect();
            if let Some(data) = split::merge(&refs) {
                let wid = entry.wid;
                self.deliver(
                    ctx,
                    DeliveredRumor {
                        wid,
                        rid: f.rid,
                        data,
                        via: DeliveryPath::Fragments,
                    },
                );
            }
        }
    }

    fn deliver(&mut self, ctx: &mut Context<'_, Self>, mut out: DeliveredRumor) {
        if self.delivered.insert(out.rid) {
            let horizon = 2 * self.cfg.deadline_cap(self.n);
            self.delivered_expiry
                .insert((out.rid.birth + horizon).as_u64(), out.rid);
            // Reassembly state for this rumor is no longer needed. (Its
            // expiry-ring keys go stale; draining them later is a no-op.)
            self.parts.retain(|(rid, _), _| *rid != out.rid);
            // Decoys (unframe → None) are silently discarded.
            if let Some(data) = self.unframe(std::mem::take(&mut out.data)) {
                out.data = data;
                ctx.output(out);
            }
        }
    }

    fn handle_injection(&mut self, ctx: &mut Context<'_, Self>, input: CongosInput) {
        self.injected += 1;
        if self.cfg.hide_destinations {
            // Section 7: expand into n singleton-destination rumors of
            // identical size — real content for destinations, noise for
            // everyone else. Observers cannot tell which is which.
            let dest = IdSet::from_iter(self.n, input.dest.iter().copied());
            for q in ctx.all_processes().collect::<Vec<_>>() {
                let real = dest.contains(q);
                let data = if real {
                    self.frame(true, &input.data)
                } else {
                    let noise: Vec<u8> =
                        (0..input.data.len()).map(|_| rand::Rng::gen(ctx.rng())).collect();
                    self.frame(false, &noise)
                };
                self.disseminate(
                    ctx,
                    input.wid,
                    data,
                    input.deadline,
                    IdSet::from_iter(self.n, [q]),
                );
            }
        } else {
            let dest = IdSet::from_iter(self.n, input.dest.iter().copied());
            let data = self.frame(true, &input.data);
            self.disseminate(ctx, input.wid, data, input.deadline, dest);
        }
    }

    /// Injects a decoy rumor (cover traffic, Section 7): random singleton
    /// destination, content-free (marker 0).
    fn inject_decoy(&mut self, ctx: &mut Context<'_, Self>, data_len: usize, deadline: u64) {
        self.decoys_injected += 1;
        let target = ProcessId::new(rand::Rng::gen_range(ctx.rng(), 0..self.n));
        let noise: Vec<u8> = (0..data_len).map(|_| rand::Rng::gen(ctx.rng())).collect();
        let data = self.frame(false, &noise);
        self.disseminate(
            ctx,
            u64::MAX,
            data,
            deadline,
            IdSet::from_iter(self.n, [target]),
        );
    }

    /// Core dissemination: deliver locally if entitled, then run the
    /// pipeline or the direct path. `data` is already framed.
    fn disseminate(
        &mut self,
        ctx: &mut Context<'_, Self>,
        wid: u64,
        data: Vec<u8>,
        deadline: u64,
        dest: IdSet,
    ) {
        let now = ctx.round();
        let rid = self.next_rid(now);
        let rumor = Rumor {
            wid,
            data,
            deadline,
            dest,
        };
        if rumor.dest.contains(self.me) {
            self.deliver(
                ctx,
                DeliveredRumor {
                    wid: rumor.wid,
                    rid,
                    data: rumor.data.clone(),
                    via: DeliveryPath::Local,
                },
            );
        }
        let mut others = rumor.dest.clone();
        others.remove(self.me);
        if others.is_empty() {
            return; // nothing to disseminate
        }
        match self.deadline_class(rumor.deadline) {
            Some(dline) => {
                let class = Self::class_engine(
                    &mut self.classes,
                    &self.partitions,
                    &self.cfg,
                    self.me,
                    self.n,
                    dline,
                );
                class.inject(now, ctx.rng(), rid, rumor, &self.partitions);
            }
            None => {
                // Direct path: deadline too short for the pipeline (or the
                // degenerate collusion regime) — Section 5's "trivially met
                // by sending rumors directly".
                self.direct += 1;
                for q in others.iter() {
                    ctx.send(
                        q,
                        CongosMsg::Shoot {
                            rumor: rumor.clone(),
                            rid,
                            direct: true,
                        },
                        TAG_SHOOT,
                    );
                }
            }
        }
    }

    fn prune(&mut self, now: Round) {
        // Expiry rings were filed with `birth + 2·deadline_cap`, so draining
        // `expire < now` removes exactly the keys the old full-scan
        // `retain(birth + horizon >= now)` removed — without walking the
        // live entries.
        for key in self.parts_expiry.drain_expired(now.as_u64()) {
            self.parts.remove(&key);
        }
        for rid in self.delivered_expiry.drain_expired(now.as_u64()) {
            self.delivered.remove(&rid);
        }
    }
}

impl Protocol for CongosNode {
    type Msg = CongosMsg;
    type Input = CongosInput;
    type Output = DeliveredRumor;

    fn new(me: ProcessId, n: usize, _seed: u64) -> Self {
        Self::with_config(me, n, CongosConfig::base())
    }

    fn on_start(&mut self, round: Round) {
        self.alive_since = (round != Round::ZERO).then_some(round);
    }

    fn msg_size(msg: &Self::Msg) -> u64 {
        msg.wire_size()
    }

    fn send(&mut self, ctx: &mut Context<'_, Self>) {
        let now = ctx.round();
        let alive_rounds = self.alive_rounds(now);
        if let Some(cover) = self.cfg.cover_traffic {
            if rand::Rng::gen_bool(ctx.rng(), cover.rate) {
                self.inject_decoy(ctx, cover.data_len, cover.deadline);
            }
        }
        // Collect sends per class, then emit (ctx.rng() and ctx.send() both
        // borrow ctx mutably, so the two stages are sequenced).
        let mut all_sends = Vec::new();
        {
            let cfg = &self.cfg;
            let partitions = &self.partitions;
            for class in self.classes.values_mut() {
                all_sends.extend(class.on_send(now, ctx.rng(), cfg, partitions, alive_rounds));
            }
        }
        for (dst, msg, tag) in all_sends {
            ctx.send(dst, msg, tag);
        }
        if now.as_u64() % 512 == 511 {
            self.prune(now);
        }
    }

    fn receive(
        &mut self,
        ctx: &mut Context<'_, Self>,
        inbox: Inbox<'_, Self::Msg>,
        input: Option<Self::Input>,
    ) {
        let now = ctx.round();
        let mut to_save: Vec<Fragment> = Vec::new();
        for env in inbox {
            match env.payload.clone() {
                CongosMsg::Shoot { rumor, rid, direct } => {
                    if rumor.dest.contains(self.me) {
                        self.deliver(
                            ctx,
                            DeliveredRumor {
                                wid: rumor.wid,
                                rid,
                                data: rumor.data,
                                via: if direct {
                                    DeliveryPath::Direct
                                } else {
                                    DeliveryPath::Fallback
                                },
                            },
                        );
                    }
                }
                msg => {
                    let dline = match &msg {
                        CongosMsg::Gossip { lane, .. } => match lane {
                            crate::messages::GossipLane::Group { dline, .. } => *dline,
                            crate::messages::GossipLane::All { dline } => *dline,
                        },
                        CongosMsg::ProxyRequest { dline, .. } => *dline,
                        CongosMsg::ProxyAck { dline, .. } => *dline,
                        CongosMsg::Partials { dline, .. } => *dline,
                        CongosMsg::Shoot { .. } => unreachable!(),
                    };
                    if !self.valid_class(dline) {
                        debug_assert!(false, "message with invalid deadline class {dline}");
                        continue;
                    }
                    let class = Self::class_engine(
                        &mut self.classes,
                        &self.partitions,
                        &self.cfg,
                        self.me,
                        self.n,
                        dline,
                    );
                    to_save.extend(class.on_receive(now, env.src, msg, &self.partitions));
                }
            }
        }
        if let Some(input) = input {
            self.handle_injection(ctx, input);
        }
        let mut spread: Vec<Fragment> = Vec::new();
        for class in self.classes.values_mut() {
            spread.extend(class.post_receive());
        }
        for f in to_save.into_iter().chain(spread) {
            self.save_fragment(ctx, f);
        }
    }
}
