//! Single-instance confidential gossip — a convenience entry point.
//!
//! The paper closes by noting that the continuous-gossip techniques "apply
//! to other gossip variants (e.g., single-instance gossip)". This module
//! packages that observation as a one-call API: hand it a batch of
//! confidential rumors, get back who learned what and when, with the
//! confidentiality audit already performed. Useful for quick evaluations
//! and as the simplest possible onboarding to the library (the underlying
//! machinery is the full CONGOS protocol on the lock-step engine).

use congos_adversary::{CrriAdversary, NoFailures, OneShot, RumorSpec};
use congos_sim::{Engine, EngineConfig, ProcessId, Round};

use crate::audit::ConfidentialityAuditor;
use crate::config::CongosConfig;
use crate::node::CongosNode;
use crate::rumor::DeliveryPath;

/// A rumor for a one-shot run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OneshotRumor {
    /// The confidential payload.
    pub data: Vec<u8>,
    /// The source process.
    pub source: ProcessId,
    /// The destination processes.
    pub dest: Vec<ProcessId>,
    /// Deadline in rounds (the run lasts one round longer than the longest
    /// deadline).
    pub deadline: u64,
}

/// One delivery from a one-shot run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OneshotDelivery {
    /// Index of the rumor in the input batch.
    pub rumor: usize,
    /// The receiving process.
    pub process: ProcessId,
    /// Round of delivery (counting from 0).
    pub round: u64,
    /// How it arrived.
    pub via: DeliveryPath,
}

/// Result of a one-shot run.
#[derive(Clone, Debug)]
pub struct OneshotReport {
    /// All deliveries, ordered by `(round, process)`.
    pub deliveries: Vec<OneshotDelivery>,
    /// Total messages sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
}

/// Runs one batch of confidential rumors to completion on `n` processes
/// (failure-free, audited), with the default configuration.
///
/// # Panics
///
/// Panics if any rumor's source or destination is out of range, if two
/// rumors share a source (the model allows one injection per process per
/// round), or if the execution violates confidentiality (the built-in
/// audit).
///
/// # Examples
///
/// ```
/// use congos::oneshot::{share, OneshotRumor};
/// use congos_sim::ProcessId;
///
/// let report = share(
///     16,
///     7,
///     &[OneshotRumor {
///         data: b"payload".to_vec(),
///         source: ProcessId::new(0),
///         dest: vec![ProcessId::new(5), ProcessId::new(9)],
///         deadline: 64,
///     }],
/// );
/// assert_eq!(report.deliveries.len(), 2);
/// assert!(report.deliveries.iter().all(|d| d.round <= 64));
/// ```
pub fn share(n: usize, seed: u64, rumors: &[OneshotRumor]) -> OneshotReport {
    share_with(n, seed, rumors, CongosConfig::base())
}

/// [`share`] with an explicit configuration (e.g. collusion-tolerant).
///
/// # Panics
///
/// As [`share`].
pub fn share_with(
    n: usize,
    seed: u64,
    rumors: &[OneshotRumor],
    cfg: CongosConfig,
) -> OneshotReport {
    let mut sources = Vec::new();
    let mut batch = Vec::new();
    let mut horizon = 0u64;
    for (i, r) in rumors.iter().enumerate() {
        assert!(r.source.as_usize() < n, "source out of range");
        assert!(
            r.dest.iter().all(|d| d.as_usize() < n),
            "destination out of range"
        );
        assert!(
            !sources.contains(&r.source),
            "one injection per process per round: duplicate source {}",
            r.source
        );
        sources.push(r.source);
        horizon = horizon.max(r.deadline);
        batch.push((
            r.source,
            RumorSpec::new(i as u64, r.data.clone(), r.deadline, r.dest.clone()),
        ));
    }

    let mut adv = CrriAdversary::new(NoFailures, OneShot::new(Round(0), batch));
    let mut audit = ConfidentialityAuditor::new(n);
    let cfg2 = cfg.clone();
    let mut engine = Engine::<CongosNode>::with_factory(
        EngineConfig::new(n).seed(seed),
        move |id, n, _s| CongosNode::with_config(id, n, cfg2.clone()),
    );
    engine.run_observed(horizon + 2, &mut adv, &mut audit);
    audit.assert_clean();

    let deliveries = engine
        .outputs()
        .iter()
        .map(|o| OneshotDelivery {
            rumor: o.value.wid as usize,
            process: o.process,
            round: o.round.as_u64(),
            via: o.value.via,
        })
        .collect();
    OneshotReport {
        deliveries,
        messages: engine.metrics().total(),
        bytes: engine.metrics().total_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_of_rumors_delivers_confidentially() {
        let rumors = vec![
            OneshotRumor {
                data: vec![1; 8],
                source: ProcessId::new(0),
                dest: vec![ProcessId::new(3)],
                deadline: 64,
            },
            OneshotRumor {
                data: vec![2; 8],
                source: ProcessId::new(1),
                dest: vec![ProcessId::new(4), ProcessId::new(5)],
                deadline: 64,
            },
        ];
        let report = share(8, 3, &rumors);
        assert_eq!(report.deliveries.len(), 3);
        assert!(report.messages > 0);
        assert!(report.bytes > 0);
        for d in &report.deliveries {
            assert!(rumors[d.rumor].dest.contains(&d.process));
            assert!(d.round <= 64);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate source")]
    fn rejects_duplicate_sources() {
        let r = OneshotRumor {
            data: vec![0],
            source: ProcessId::new(0),
            dest: vec![ProcessId::new(1)],
            deadline: 64,
        };
        let _ = share(4, 0, &[r.clone(), r]);
    }

    #[test]
    fn collusion_tolerant_oneshot() {
        let rumors = vec![OneshotRumor {
            data: vec![7; 16],
            source: ProcessId::new(2),
            dest: vec![ProcessId::new(9)],
            deadline: 64,
        }];
        let cfg = CongosConfig::collusion_tolerant(2, 5).without_degenerate_shortcut();
        let report = share_with(16, 9, &rumors, cfg);
        assert_eq!(report.deliveries.len(), 1);
        assert_eq!(report.deliveries[0].process, ProcessId::new(9));
    }
}
