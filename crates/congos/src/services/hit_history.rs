//! Bounded, ring-buffered retention for hit-sets and per-split state.
//!
//! The confirmation matrix `hitSetM` (Figure 8), the reassembly buffers and
//! the delivery-dedup set all key their entries by a rumor id whose `birth`
//! bounds the entry's useful life: a rumor of deadline class `d` is out of
//! its source's cache by `birth + d`, and nothing in the protocol circulates
//! its fragments past `birth + 2d`. The old code retained these maps
//! unboundedly between full-scan prunes — at `n = 8192` the scans and the
//! resident tail dominated both time and memory.
//!
//! [`HitHistory`] stores the confirmation matrix as a ring of birth-epoch
//! buckets (one epoch = one deadline block) and evicts whole buckets once
//! every birth they can contain is past the admissibility horizon
//! `birth + 2d < now`. Eviction is O(bucket), not O(live entries), and — the
//! audit contract — **never removes an entry that is still admissible**: a
//! queryable entry belongs to a cached rumor (`birth + d > now`), which by
//! construction lives in a bucket the horizon cannot reach. The same
//! argument makes eviction trace-neutral: entries the old full-scan prune
//! kept but the ring drops (or vice versa) are never queried.
//!
//! [`ExpiryRing`] is the index-only variant for state owned elsewhere
//! (`CongosNode::parts` / `delivered`, the auditor's holdings): it buckets
//! keys by expiry round and replays exactly the old `retain` predicate at
//! eviction time, scanning only expired buckets plus at most one straddling
//! bucket.

use std::collections::{HashMap, HashSet, VecDeque};

use congos_sim::{ProcessId, Round};

use crate::rumor::CongosRumorId;

/// One hit: a `(target, rumor)` pair some group member reports having
/// served (the sanitized `Distribution` metadata of Figure 10).
pub(crate) type Hit = (ProcessId, CongosRumorId);

struct HitBucket {
    /// Birth epoch: `rid.birth / dline`.
    epoch: u64,
    hits: HashMap<(u16, u8), HashSet<Hit>>,
}

/// The confirmation matrix with ring-buffered, block-granular eviction.
pub(crate) struct HitHistory {
    dline: u64,
    /// Oldest epoch first; almost always ≤ 3 buckets alive.
    buckets: VecDeque<HitBucket>,
    /// Entries evicted so far (diagnostics / memory accounting).
    evicted: u64,
}

impl HitHistory {
    pub(crate) fn new(dline: u64) -> Self {
        assert!(dline > 0, "deadline class must be positive");
        HitHistory {
            dline,
            buckets: VecDeque::new(),
            evicted: 0,
        }
    }

    fn epoch_of(&self, rid: &CongosRumorId) -> u64 {
        rid.birth.as_u64() / self.dline
    }

    fn bucket_mut(&mut self, epoch: u64) -> &mut HitBucket {
        // Common case: the newest bucket. Out-of-order (older-epoch) inserts
        // happen only for hits straggling across a block boundary.
        let pos = self.buckets.iter().position(|b| b.epoch >= epoch);
        match pos {
            Some(i) if self.buckets[i].epoch == epoch => &mut self.buckets[i],
            Some(i) => {
                self.buckets.insert(
                    i,
                    HitBucket {
                        epoch,
                        hits: HashMap::new(),
                    },
                );
                &mut self.buckets[i]
            }
            None => {
                self.buckets.push_back(HitBucket {
                    epoch,
                    hits: HashMap::new(),
                });
                self.buckets.back_mut().expect("just pushed")
            }
        }
    }

    /// Records hits for `(partition, group)`.
    pub(crate) fn extend<I: IntoIterator<Item = Hit>>(
        &mut self,
        partition: u16,
        group: u8,
        hits: I,
    ) {
        for hit in hits {
            let epoch = self.epoch_of(&hit.1);
            self.bucket_mut(epoch)
                .hits
                .entry((partition, group))
                .or_default()
                .insert(hit);
        }
    }

    /// `true` if `(target, rid)` was reported served by `(partition, group)`.
    pub(crate) fn contains(&self, partition: u16, group: u8, target: ProcessId, rid: CongosRumorId) -> bool {
        let epoch = self.epoch_of(&rid);
        self.buckets
            .iter()
            .find(|b| b.epoch == epoch)
            .and_then(|b| b.hits.get(&(partition, group)))
            .is_some_and(|set| set.contains(&(target, rid)))
    }

    /// Drops every bucket whose entire birth range is past the horizon
    /// `birth + 2·dline < now` — i.e. the split's deadline block expired a
    /// full block ago. Still-admissible entries (a cached rumor has
    /// `birth + dline > now`) can never be in such a bucket.
    pub(crate) fn evict_expired(&mut self, now: Round) {
        while let Some(front) = self.buckets.front() {
            // Max birth in epoch e is (e+1)·d − 1; evict when even that is
            // out of horizon: (e+1)d − 1 + 2d < now.
            let max_birth = (front.epoch + 1) * self.dline - 1;
            if max_birth + 2 * self.dline >= now.as_u64() {
                break;
            }
            let dead = self.buckets.pop_front().expect("front exists");
            for set in dead.hits.values() {
                self.evicted += set.len() as u64;
                debug_assert!(
                    set.iter()
                        .all(|(_, rid)| rid.birth.as_u64() + self.dline < now.as_u64()),
                    "evicted a still-admissible hit-set entry"
                );
            }
        }
    }

    /// Live entries across all buckets (diagnostics).
    #[allow(dead_code)]
    pub(crate) fn len(&self) -> usize {
        self.buckets
            .iter()
            .flat_map(|b| b.hits.values())
            .map(|s| s.len())
            .sum()
    }

    /// Total entries evicted so far.
    #[allow(dead_code)]
    pub(crate) fn evicted(&self) -> u64 {
        self.evicted
    }
}

/// An expiry index over keys owned by another container: keys are filed
/// under their expiry round; [`drain_expired`](Self::drain_expired) returns
/// exactly the keys with `expire < now`, touching only expired buckets and
/// at most one straddling bucket.
#[derive(Clone, Debug)]
pub(crate) struct ExpiryRing<K> {
    /// Bucket width in rounds.
    width: u64,
    /// Oldest first: `(epoch, keys expiring in [epoch·w, (epoch+1)·w))`.
    buckets: VecDeque<(u64, Vec<(u64, K)>)>,
}

impl<K> ExpiryRing<K> {
    pub(crate) fn new(width: u64) -> Self {
        assert!(width > 0, "bucket width must be positive");
        ExpiryRing {
            width,
            buckets: VecDeque::new(),
        }
    }

    /// Files `key` under `expire`.
    pub(crate) fn insert(&mut self, expire: u64, key: K) {
        let epoch = expire / self.width;
        let pos = self.buckets.iter().position(|(e, _)| *e >= epoch);
        match pos {
            Some(i) if self.buckets[i].0 == epoch => self.buckets[i].1.push((expire, key)),
            Some(i) => self.buckets.insert(i, (epoch, vec![(expire, key)])),
            None => self.buckets.push_back((epoch, vec![(expire, key)])),
        }
    }

    /// Removes and returns every key with `expire < now`, in filing order
    /// within each bucket. Duplicate keys and keys already removed from the
    /// owning container are the caller's concern (removal is a no-op there).
    pub(crate) fn drain_expired(&mut self, now: u64) -> Vec<K> {
        let mut out = Vec::new();
        while let Some((epoch, _)) = self.buckets.front() {
            let bucket_end = (*epoch + 1) * self.width; // first round ≥ bucket
            if bucket_end <= now {
                // Entire bucket expired.
                let (_, keys) = self.buckets.pop_front().expect("front exists");
                out.extend(keys.into_iter().map(|(_, k)| k));
            } else if *epoch * self.width < now {
                // Straddling bucket: apply the exact predicate per key.
                let (_, keys) = self.buckets.front_mut().expect("front exists");
                let mut keep = Vec::with_capacity(keys.len());
                for (exp, k) in keys.drain(..) {
                    if exp < now {
                        out.push(k);
                    } else {
                        keep.push((exp, k));
                    }
                }
                *keys = keep;
                break;
            } else {
                break;
            }
        }
        out
    }

    /// Keys currently filed (including stale duplicates).
    #[allow(dead_code)]
    pub(crate) fn len(&self) -> usize {
        self.buckets.iter().map(|(_, k)| k.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(src: usize, birth: u64) -> CongosRumorId {
        CongosRumorId {
            source: ProcessId::new(src),
            birth: Round(birth),
            seq: 0,
        }
    }

    #[test]
    fn hits_are_queryable_until_the_horizon() {
        let mut h = HitHistory::new(16);
        let r = rid(0, 5);
        h.extend(0, 1, [(ProcessId::new(3), r)]);
        assert!(h.contains(0, 1, ProcessId::new(3), r));
        assert!(!h.contains(0, 0, ProcessId::new(3), r), "wrong group");
        assert!(!h.contains(1, 1, ProcessId::new(3), r), "wrong partition");

        // Still inside the horizon: birth 5 + 2·16 = 37 ≥ now.
        h.evict_expired(Round(37));
        assert!(h.contains(0, 1, ProcessId::new(3), r));
        assert_eq!(h.evicted(), 0);

        // Epoch 0 covers births 0..=15; evictable once 15 + 32 < now.
        h.evict_expired(Round(48));
        assert!(!h.contains(0, 1, ProcessId::new(3), r));
        assert_eq!(h.evicted(), 1);
        assert_eq!(h.len(), 0);
    }

    #[test]
    fn eviction_is_whole_bucket_and_order_safe() {
        let mut h = HitHistory::new(8);
        // Straggler insert for an older epoch after a newer one exists.
        h.extend(0, 0, [(ProcessId::new(1), rid(0, 20))]);
        h.extend(0, 0, [(ProcessId::new(1), rid(0, 3))]);
        assert_eq!(h.len(), 2);
        assert!(h.contains(0, 0, ProcessId::new(1), rid(0, 3)));
        // Epoch 0 (births 0..=7) dies once 7 + 16 < now; epoch 2 survives.
        h.evict_expired(Round(24));
        assert!(!h.contains(0, 0, ProcessId::new(1), rid(0, 3)));
        assert!(h.contains(0, 0, ProcessId::new(1), rid(0, 20)));
    }

    #[test]
    fn expiry_ring_replays_the_exact_predicate() {
        let mut ring = ExpiryRing::new(512);
        for exp in [100u64, 600, 601, 1100, 5000] {
            ring.insert(exp, exp);
        }
        // now = 601: keys 100 and 600 expired; 601 (straddling bucket) kept.
        let mut gone = ring.drain_expired(601);
        gone.sort_unstable();
        assert_eq!(gone, vec![100, 600]);
        assert_eq!(ring.len(), 3);
        // Nothing more until the next horizon.
        assert!(ring.drain_expired(601).is_empty());
        let mut gone = ring.drain_expired(2000);
        gone.sort_unstable();
        assert_eq!(gone, vec![601, 1100]);
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn expiry_ring_handles_out_of_order_inserts() {
        let mut ring = ExpiryRing::new(64);
        ring.insert(1000, "late");
        ring.insert(10, "early");
        ring.insert(500, "mid");
        let gone = ring.drain_expired(1001);
        assert_eq!(gone, vec!["early", "mid", "late"], "oldest bucket first");
    }
}
