//! The protocol's sub-services: `Proxy[ℓ]`, `GroupDistribution[ℓ]`, and the
//! per-deadline-class engine that coordinates them with the gossip
//! substrate.

pub(crate) mod class_engine;
pub(crate) mod group_distribution;
pub(crate) mod hit_history;
pub(crate) mod proxy;

pub use class_engine::ClassStats;
