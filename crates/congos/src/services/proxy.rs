//! The Proxy service (`Proxy[ℓ]`, Figure 9 / Figure 3 of the paper).
//!
//! A process cannot gossip fragments destined for groups it does not belong
//! to — the filter would (rightly) drop the traffic, and receiving replies
//! could leak fragments it must not hold. Instead it *samples proxies*: in
//! round 1 of each iteration it sends, for every other group `a`, the
//! fragments belonging to `a` to `Θ(n^{1+48/√dline}·log n / |collaborators|)`
//! random members of `a` (excluding known failed proxies). A proxy caches
//! the fragments, re-shares them inside its own group via `GroupGossip[ℓ]`
//! during the iteration's gossip rounds, and acknowledges in the final
//! round. Requesters that hear no acknowledgment mark the sampled proxies
//! failed and retry next iteration; group members collaborate by gossiping
//! their `failed-proxies` sets and collaborator beacons, which both shares
//! the discovery work and calibrates the fanout.
//!
//! [PROXY:CONFIDENTIAL] holds by construction: fragment `ρ_{a,ℓ}` is only
//! ever sent to members of group `a`.

use std::collections::BTreeSet;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

use congos_gossip::{fanout, FanoutParams};
use congos_sim::{IdSet, ProcessId};

use crate::messages::Fragment;
use crate::partition::Partition;

/// A proxy request to emit: fragments for one sampled member of another
/// group.
pub(crate) type ProxyRequests = Vec<(ProcessId, Vec<Fragment>)>;

/// Per-partition proxy-service state at one process.
pub(crate) struct ProxyService {
    my_group: u8,
    /// Fragments (for other groups) injected since the current block began;
    /// they become `my_rumors` at the next block boundary.
    waiting: Vec<Fragment>,
    /// Fragments being distributed this block.
    my_rumors: Vec<Fragment>,
    /// `status = active` (the paper's condition: alive long enough and at
    /// least one fragment collected at block start).
    active: bool,
    /// Fanout divisor: the estimate of active collaborators in my group.
    collaborators: usize,
    /// Collaborator beacons heard since the last iteration boundary.
    collab_next: IdSet,
    /// Proxies known (or believed) crashed this block.
    failed_proxies: IdSet,
    /// Requests sent in the current iteration, awaiting acknowledgment.
    outstanding: Vec<ProcessId>,
    /// Other groups for which some proxy acknowledged this block.
    acked_groups: BTreeSet<u8>,
    /// Fragments received as a proxy, pending re-share in my group.
    buffer: Vec<Fragment>,
    /// Requesters to acknowledge at the end of the iteration.
    ack_due: Vec<ProcessId>,
}

impl ProxyService {
    pub(crate) fn new(n: usize, my_group: u8) -> Self {
        ProxyService {
            my_group,
            waiting: Vec::new(),
            my_rumors: Vec::new(),
            active: false,
            collaborators: 1,
            collab_next: IdSet::empty(n),
            failed_proxies: IdSet::empty(n),
            outstanding: Vec::new(),
            acked_groups: BTreeSet::new(),
            buffer: Vec::new(),
            ack_due: Vec::new(),
        }
    }

    /// Queues a fragment (destined for another group) for the next block.
    pub(crate) fn inject(&mut self, fragment: Fragment) {
        debug_assert_ne!(fragment.group, self.my_group);
        self.waiting.push(fragment);
    }

    /// `true` if this service still has distribution work this block.
    #[cfg(test)]
    pub(crate) fn is_active(&self) -> bool {
        self.active
    }

    /// Block boundary (the paper's "beginning of a block"): collect the
    /// fragments injected since the last block; become active if there are
    /// any and the process has been alive at least a block (`alive_ok`).
    ///
    /// Engineering refinement over Figure 9: fragments whose target group
    /// never acknowledged, and whose rumor is still within its deadline, are
    /// carried over into the next block instead of being dropped — the same
    /// retry rationale as in [`GdService::on_block_start`].
    ///
    /// [`GdService::on_block_start`]: super::group_distribution::GdService::on_block_start
    pub(crate) fn on_block_start(
        &mut self,
        n: usize,
        now: congos_sim::Round,
        alive_ok: bool,
        group_len: usize,
    ) {
        let acked = std::mem::take(&mut self.acked_groups);
        let mut carried = std::mem::take(&mut self.my_rumors);
        carried.retain(|f| !acked.contains(&f.group) && f.rid.birth + f.dline >= now);
        self.my_rumors = std::mem::take(&mut self.waiting);
        self.my_rumors.extend(carried);
        self.active = alive_ok && !self.my_rumors.is_empty();
        self.collaborators = group_len.max(1);
        self.collab_next = IdSet::empty(n);
        self.failed_proxies = IdSet::empty(n);
        self.outstanding.clear();
        self.buffer.clear();
        self.ack_due.clear();
    }

    /// Iteration round 1: settle last iteration's unacknowledged requests
    /// into `failed-proxies`, refresh the collaborator estimate, and emit
    /// this iteration's proxy requests.
    pub(crate) fn on_iteration_start(
        &mut self,
        rng: &mut SmallRng,
        n: usize,
        dline: u64,
        partition: &Partition,
        params: FanoutParams,
    ) -> ProxyRequests {
        for p in std::mem::take(&mut self.outstanding) {
            self.failed_proxies.insert(p);
        }
        if !self.collab_next.is_empty() {
            self.collaborators = self.collab_next.len() + 1;
            self.collab_next = IdSet::empty(n);
        }
        if !self.active || self.all_groups_served(partition) {
            return Vec::new();
        }
        let mut requests = Vec::new();
        for g in 0..partition.group_count() as u8 {
            if g == self.my_group || self.acked_groups.contains(&g) {
                continue;
            }
            let frags: Vec<Fragment> = self
                .my_rumors
                .iter()
                .filter(|f| f.group == g)
                .cloned()
                .collect();
            if frags.is_empty() {
                continue;
            }
            let mut candidates: Vec<ProcessId> = partition
                .group(g)
                .iter()
                .filter(|p| !self.failed_proxies.contains(*p))
                .collect();
            if candidates.is_empty() {
                // Every known member failed; resample the whole group (they
                // may have restarted).
                self.failed_proxies = IdSet::empty(n);
                candidates = partition.group(g).iter().collect();
            }
            let k = fanout(params, n, dline, self.collaborators, partition.group(g).len() + 1)
                .min(candidates.len());
            candidates.shuffle(rng);
            for target in candidates.into_iter().take(k) {
                self.outstanding.push(target);
                requests.push((target, frags.clone()));
            }
        }
        requests
    }

    /// Iteration round 2: the payloads to share in my group's
    /// `GroupGossip[ℓ]` — the proxy buffer (fragments received on behalf of
    /// my group) and the failed-proxies set with a collaborator beacon.
    /// Returns `(buffer, failed_proxies)`; empty parts mean nothing to
    /// share.
    pub(crate) fn gossip_payloads(&mut self) -> (Vec<Fragment>, Vec<ProcessId>) {
        let buffer = std::mem::take(&mut self.buffer);
        let failed = if self.active {
            self.failed_proxies.to_vec()
        } else {
            Vec::new()
        };
        (buffer, failed)
    }

    /// Whether to beacon collaborator status this iteration.
    pub(crate) fn beacon(&self) -> bool {
        self.active
    }

    /// Iteration last round: requesters to acknowledge.
    pub(crate) fn acks_due(&mut self) -> Vec<ProcessId> {
        std::mem::take(&mut self.ack_due)
    }

    /// A proxy request arrived: cache the fragments (they belong to my
    /// group) and remember to acknowledge.
    pub(crate) fn on_request(&mut self, src: ProcessId, fragments: Vec<Fragment>) {
        debug_assert!(fragments.iter().all(|f| f.group == self.my_group));
        self.buffer.extend(fragments);
        if !self.ack_due.contains(&src) {
            self.ack_due.push(src);
        }
    }

    /// An acknowledgment arrived from `src`: its group is served this block.
    pub(crate) fn on_ack(&mut self, src: ProcessId, partition: &Partition) {
        self.acked_groups.insert(partition.group_of(src));
        self.outstanding.retain(|p| *p != src);
    }

    /// Group gossip delivered a collaborator beacon and failed-proxy set.
    pub(crate) fn on_meta(&mut self, origin: ProcessId, failed: &[ProcessId]) {
        self.collab_next.insert(origin);
        for p in failed {
            self.failed_proxies.insert(*p);
        }
    }

    fn all_groups_served(&self, partition: &Partition) -> bool {
        (0..partition.group_count() as u8)
            .filter(|g| *g != self.my_group)
            .all(|g| {
                self.acked_groups.contains(&g)
                    || !self.my_rumors.iter().any(|f| f.group == g)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rumor::CongosRumorId;
    use congos_sim::Round;
    use rand::SeedableRng;

    fn frag(group: u8) -> Fragment {
        Fragment {
            rid: CongosRumorId {
                source: ProcessId::new(0),
                birth: Round(0),
                seq: 0,
            },
            wid: 0,
            partition: 0,
            group,
            k: 2,
            bytes: vec![1, 2, 3].into(),
            dest: IdSet::empty(8).into(),
            dline: 64,
        }
    }

    fn bit_partition(n: usize, ell: u32) -> Partition {
        let assignment = (0..n).map(|i| ProcessId::new(i).bit(ell)).collect();
        Partition::from_assignment(assignment, 2)
    }

    fn params() -> FanoutParams {
        FanoutParams {
            alpha: 1.0,
            gamma: 4.0,
            root: 2,
        }
    }

    #[test]
    fn activation_requires_fragments_and_uptime() {
        let mut p = ProxyService::new(8, 0);
        p.on_block_start(8, Round(0), true, 4);
        assert!(!p.is_active(), "no fragments, no work");
        p.inject(frag(1));
        p.on_block_start(8, Round(0), true, 4);
        assert!(p.is_active());
        p.inject(frag(1));
        p.on_block_start(8, Round(0), false, 4);
        assert!(!p.is_active(), "recently restarted processes wait");
    }

    #[test]
    fn requests_target_only_the_fragments_group() {
        let mut rng = SmallRng::seed_from_u64(1);
        let part = bit_partition(8, 0); // evens group 0, odds group 1
        let mut p = ProxyService::new(8, 0);
        p.inject(frag(1));
        p.on_block_start(8, Round(0), true, 4);
        let reqs = p.on_iteration_start(&mut rng, 8, 64, &part, params());
        assert!(!reqs.is_empty());
        for (target, frags) in &reqs {
            assert_eq!(part.group_of(*target), 1, "[PROXY:CONFIDENTIAL]");
            assert!(frags.iter().all(|f| f.group == 1));
        }
    }

    #[test]
    fn unacked_proxies_become_failed_and_are_avoided() {
        let mut rng = SmallRng::seed_from_u64(2);
        let part = bit_partition(4, 0); // {0,2} vs {1,3}
        let mut p = ProxyService::new(4, 0);
        p.inject(frag(1));
        p.on_block_start(4, Round(0), true, 2);
        let reqs1 = p.on_iteration_start(&mut rng, 4, 64, &part, params());
        let asked1: Vec<ProcessId> = reqs1.iter().map(|(t, _)| *t).collect();
        assert!(!asked1.is_empty());
        // No ack arrives; next iteration must avoid the previous targets
        // (both members may have been asked — then the set resets).
        let reqs2 = p.on_iteration_start(&mut rng, 4, 64, &part, params());
        if asked1.len() < 2 {
            for (t, _) in &reqs2 {
                assert!(!asked1.contains(t), "retry must avoid failed proxies");
            }
        } else {
            assert!(!reqs2.is_empty(), "full reset lets it resample everyone");
        }
    }

    #[test]
    fn ack_stops_requests_for_that_group() {
        let mut rng = SmallRng::seed_from_u64(3);
        let part = bit_partition(4, 0);
        let mut p = ProxyService::new(4, 0);
        p.inject(frag(1));
        p.on_block_start(4, Round(0), true, 2);
        let reqs = p.on_iteration_start(&mut rng, 4, 64, &part, params());
        let (target, _) = &reqs[0];
        p.on_ack(*target, &part);
        let reqs2 = p.on_iteration_start(&mut rng, 4, 64, &part, params());
        assert!(reqs2.is_empty(), "group served, no more requests");
        assert!(p.all_groups_served(&part));
    }

    #[test]
    fn proxy_side_buffers_and_acks() {
        let mut p = ProxyService::new(8, 1);
        p.on_block_start(8, Round(0), true, 4);
        p.on_request(ProcessId::new(0), vec![frag(1), frag(1)]);
        p.on_request(ProcessId::new(2), vec![frag(1)]);
        p.on_request(ProcessId::new(0), vec![frag(1)]);
        let (buffer, _) = p.gossip_payloads();
        assert_eq!(buffer.len(), 4);
        let acks = p.acks_due();
        assert_eq!(acks, vec![ProcessId::new(0), ProcessId::new(2)]);
        assert!(p.acks_due().is_empty(), "drained");
    }

    #[test]
    fn collaborator_beacons_scale_down_fanout() {
        let mut rng = SmallRng::seed_from_u64(4);
        let part = bit_partition(64, 0);
        let mut p = ProxyService::new(64, 0);
        p.inject(frag(1));
        p.on_block_start(64, Round(0), true, 32);
        // Hear 15 collaborators.
        for i in 0..15 {
            p.on_meta(ProcessId::new(i * 2), &[]);
        }
        let _ = p.on_iteration_start(&mut rng, 64, 64, &part, params());
        assert_eq!(p.collaborators, 16);
    }

    #[test]
    fn shared_failed_proxies_are_excluded() {
        let mut rng = SmallRng::seed_from_u64(5);
        let part = bit_partition(4, 0);
        let mut p = ProxyService::new(4, 0);
        p.inject(frag(1));
        p.on_block_start(4, Round(0), true, 2);
        p.on_meta(ProcessId::new(2), &[ProcessId::new(1)]);
        let reqs = p.on_iteration_start(&mut rng, 4, 64, &part, params());
        for (t, _) in &reqs {
            assert_eq!(*t, ProcessId::new(3), "p1 was reported failed");
        }
    }
}
