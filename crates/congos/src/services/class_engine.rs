//! One protocol instance per deadline class.
//!
//! Section 4.2: rumors are trimmed to a power-of-two deadline class no
//! larger than `c·log⁶n`, and the protocol runs one instance per class (the
//! paper's `Θ(log log n · log⁶ n)` parallel instances, instantiated lazily
//! here — a class engine exists at a process only once traffic or an
//! injection of that class appears). Each instance owns, per partition `ℓ`:
//! a filtered `GroupGossip[ℓ]` endpoint for the process's group, a
//! `Proxy[ℓ]` and a `GroupDistribution[ℓ]`; plus one unfiltered `AllGossip`
//! and the coordinator state of the `ConfidentialGossip` service —
//! rumor-cache, the confirmation matrix `hitSetM`, and the deadline
//! fallback.

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::rngs::SmallRng;

use congos_gossip::{ContinuousGossip, GossipConfig};
use congos_sim::{BlockClock, IdSet, ProcessId, Round, Tag};

use crate::config::CongosConfig;
use crate::messages::{
    CongosMsg, Fragment, GossipLane, GossipPayload, TAG_ALL_GOSSIP, TAG_GD, TAG_GROUP_GOSSIP,
    TAG_PROXY, TAG_SHOOT,
};
use crate::partition::PartitionSet;
use crate::rumor::{CongosRumorId, Rumor};
use crate::services::group_distribution::GdService;
use crate::services::hit_history::HitHistory;
use crate::services::proxy::ProxyService;
use crate::split;

/// Outgoing messages produced by a class engine in one send phase.
pub(crate) type Sends = Vec<(ProcessId, CongosMsg, Tag)>;

struct Lane {
    ell: u16,
    my_group: u8,
    gossip: ContinuousGossip<Arc<GossipPayload>>,
    proxy: ProxyService,
    gd: GdService,
}

struct CachedRumor {
    rumor: Rumor,
    expire: Round,
}

/// Statistics a class engine exposes for experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Rumors confirmed through the pipeline (no fallback needed).
    pub confirmed: u64,
    /// Rumors that hit the deadline fallback ("shoot").
    pub fallbacks: u64,
}

pub(crate) struct ClassEngine {
    me: ProcessId,
    n: usize,
    dline: u64,
    clock: BlockClock,
    sqrt_d: u64,
    lanes: Vec<Lane>,
    all_gossip: ContinuousGossip<Arc<GossipPayload>>,
    cache: BTreeMap<CongosRumorId, CachedRumor>,
    /// Confirmation matrix `hitSetM`, ring-buffered by birth epoch.
    hit_matrix: HitHistory,
    stats: ClassStats,
}

impl ClassEngine {
    pub(crate) fn new(me: ProcessId, n: usize, dline: u64, partitions: &PartitionSet) -> Self {
        let clock = BlockClock::new(dline);
        let lanes = partitions
            .iter()
            .map(|(ell, p)| {
                let my_group = p.group_of(me);
                let membership = p.group(my_group).clone();
                Lane {
                    ell: ell as u16,
                    my_group,
                    gossip: ContinuousGossip::new(
                        me,
                        n,
                        GossipConfig::group(membership, TAG_GROUP_GOSSIP),
                    ),
                    proxy: ProxyService::new(n, my_group),
                    gd: GdService::new(n, my_group),
                }
            })
            .collect();
        ClassEngine {
            me,
            n,
            dline,
            clock,
            sqrt_d: dline.isqrt(),
            lanes,
            all_gossip: ContinuousGossip::new(me, n, GossipConfig::all(n, TAG_ALL_GOSSIP)),
            cache: BTreeMap::new(),
            hit_matrix: HitHistory::new(dline),
            stats: ClassStats::default(),
        }
    }

    pub(crate) fn stats(&self) -> ClassStats {
        self.stats
    }

    /// Applies gossip fanout configuration to the engine's endpoints.
    pub(crate) fn configure_gossip(&mut self, cfg: &CongosConfig) {
        // Endpoints are created with defaults; rebuild with configured
        // fanout. (Called once right after `new`.)
        for lane in &mut self.lanes {
            let membership = lane.gossip.membership().clone();
            lane.gossip = ContinuousGossip::new(
                self.me,
                self.n,
                GossipConfig::group(membership, TAG_GROUP_GOSSIP)
                    .fanout(cfg.gossip_fanout)
                    .strategy(cfg.gossip_strategy),
            );
        }
        self.all_gossip = ContinuousGossip::new(
            self.me,
            self.n,
            GossipConfig::all(self.n, TAG_ALL_GOSSIP)
                .fanout(cfg.gossip_fanout)
                .strategy(cfg.gossip_strategy),
        );
    }

    /// Injects a rumor into this class's pipeline (Figure 8's
    /// `rumor-inject`): for every partition, split independently, gossip the
    /// own-group fragment, hand the others to the Proxy service, and cache
    /// the rumor for confirmation tracking.
    pub(crate) fn inject(
        &mut self,
        now: Round,
        rng: &mut SmallRng,
        rid: CongosRumorId,
        rumor: Rumor,
        partitions: &PartitionSet,
    ) {
        // One interned destination set shared by all k·p fragments.
        let store = crate::fragstore::FragStore::global();
        let dest = store.intern_dest(&rumor.dest);
        for lane in &mut self.lanes {
            let partition = partitions.partition(lane.ell as usize);
            let k = partition.group_count();
            let frags = split::split_interned(rng, &rumor.data, k, store);
            for (g, bytes) in frags.into_iter().enumerate() {
                let fragment = Fragment {
                    rid,
                    wid: rumor.wid,
                    partition: lane.ell,
                    group: g as u8,
                    k: k as u8,
                    bytes,
                    dest: dest.clone(),
                    dline: self.dline,
                };
                if g as u8 == lane.my_group {
                    let group_set = partition.group(lane.my_group).clone();
                    lane.gossip.inject(
                        now,
                        Arc::new(GossipPayload::Fragments(vec![fragment])),
                        self.sqrt_d,
                        group_set,
                    );
                } else {
                    lane.proxy.inject(fragment);
                }
            }
        }
        self.cache.insert(
            rid,
            CachedRumor {
                rumor,
                expire: now + self.dline,
            },
        );
    }

    /// Send phase for this class: block/iteration bookkeeping, service
    /// sends, gossip drains, confirmation checks and the deadline fallback.
    pub(crate) fn on_send(
        &mut self,
        now: Round,
        rng: &mut SmallRng,
        cfg: &CongosConfig,
        partitions: &PartitionSet,
        alive_rounds: u64,
    ) -> Sends {
        let mut out: Sends = Vec::new();
        let dline = self.dline;
        let off_block = self.clock.offset_in_block(now);
        let it_off = self.clock.offset_in_iteration(now);
        let last_iter_round = self.clock.iter_len() - 1;

        for lane in &mut self.lanes {
            let partition = partitions.partition(lane.ell as usize);
            let group_len = partition.group(lane.my_group).len();
            if off_block == 0 {
                lane.proxy.on_block_start(
                    self.n,
                    now,
                    alive_rounds >= self.clock.block_len(),
                    group_len,
                );
            }
            if off_block == 1 {
                lane.gd
                    .on_block_start(self.n, now, alive_rounds >= 2 * dline / 3, group_len);
            }
            match it_off {
                Some(0) => {
                    for (dst, fragments) in lane.proxy.on_iteration_start(
                        rng,
                        self.n,
                        dline,
                        partition,
                        cfg.service_fanout,
                    ) {
                        out.push((
                            dst,
                            CongosMsg::ProxyRequest {
                                dline,
                                ell: lane.ell,
                                fragments,
                            },
                            TAG_PROXY,
                        ));
                    }
                }
                Some(1) => {
                    for (dst, fragments) in
                        lane.gd
                            .on_send_round(rng, self.n, dline, partition, cfg.service_fanout)
                    {
                        out.push((
                            dst,
                            CongosMsg::Partials {
                                dline,
                                ell: lane.ell,
                                fragments,
                            },
                            TAG_GD,
                        ));
                    }
                    let (buffer, failed) = lane.proxy.gossip_payloads();
                    let group_set = partition.group(lane.my_group).clone();
                    if !buffer.is_empty() {
                        lane.gossip.inject(
                            now,
                            Arc::new(GossipPayload::Fragments(buffer)),
                            self.sqrt_d,
                            group_set.clone(),
                        );
                    }
                    if lane.proxy.beacon() || !failed.is_empty() {
                        let payload = Arc::new(GossipPayload::ProxyMeta {
                            failed_proxies: failed,
                        });
                        if cfg.lean_metadata {
                            // One epidemic round: every process re-beacons
                            // each iteration anyway, so a longer forwarding
                            // window only multiplies the active-set size
                            // (Θ(|group|) metadata rumors per instance).
                            lane.gossip.inject_best_effort(now, payload, 1, group_set);
                        } else {
                            lane.gossip.inject(now, payload, self.sqrt_d, group_set);
                        }
                    }
                }
                Some(2) => {
                    if let Some(hits) = lane.gd.gossip_share() {
                        let group_set = partition.group(lane.my_group).clone();
                        let payload = Arc::new(GossipPayload::GdShare { hits });
                        if cfg.lean_metadata {
                            // One epidemic round, as for the beacons: shares
                            // are re-published every iteration, and slower
                            // aggregation costs at most a confirmation.
                            lane.gossip.inject_best_effort(now, payload, 1, group_set);
                        } else {
                            lane.gossip.inject(now, payload, self.sqrt_d, group_set);
                        }
                    }
                }
                Some(o) if o == last_iter_round => {
                    for dst in lane.proxy.acks_due() {
                        out.push((
                            dst,
                            CongosMsg::ProxyAck {
                                dline,
                                ell: lane.ell,
                            },
                            TAG_PROXY,
                        ));
                    }
                }
                _ => {}
            }
            if self.clock.is_block_end(now) {
                // Under lean metadata, one designated member per group (the
                // lowest id) publishes the sanitized hit-set; the other
                // copies are fault-tolerance redundancy, and each stays
                // active for a whole block in every process's forwarding
                // set. A missed publication costs a confirmation, never
                // delivery (the source's deadline fallback covers it).
                let publisher = !cfg.lean_metadata
                    || partition.group(lane.my_group).iter().next() == Some(self.me);
                if let Some(hits) = lane.gd.end_of_block().filter(|_| publisher) {
                    // The paper gossips the sanitized hit-set to [n]; only
                    // the rumor *sources* ever consult it, so the guaranteed
                    // destination set is the sources — everyone else still
                    // sees it as a relay, but nobody pays per-member
                    // acknowledgment/fallback cost for n-wide delivery
                    // (which would add an n² per-round term the paper's
                    // bound does not have).
                    let sources =
                        IdSet::from_iter(self.n, hits.iter().map(|(_, rid)| rid.source));
                    self.all_gossip.inject(
                        now,
                        Arc::new(GossipPayload::Distribution {
                            partition: lane.ell,
                            group: lane.my_group,
                            hits,
                        }),
                        self.clock.block_len().saturating_sub(1).max(1),
                        sources,
                    );
                }
            }
            for (dst, wire) in lane.gossip.step(now, rng) {
                out.push((
                    dst,
                    CongosMsg::Gossip {
                        lane: GossipLane::Group {
                            dline,
                            ell: lane.ell,
                        },
                        wire: Box::new(wire),
                    },
                    TAG_GROUP_GOSSIP,
                ));
            }
        }

        for (dst, wire) in self.all_gossip.step(now, rng) {
            out.push((
                dst,
                CongosMsg::Gossip {
                    lane: GossipLane::All { dline },
                    wire: Box::new(wire),
                },
                TAG_ALL_GOSSIP,
            ));
        }

        self.check_confirmations(partitions);
        out.extend(self.fire_fallbacks(now));
        if self.clock.is_block_end(now) {
            self.prune(now);
        }
        out
    }

    /// Routes an incoming protocol message into the right sub-service.
    /// `Partials` fragments are returned to the node for reassembly.
    pub(crate) fn on_receive(
        &mut self,
        now: Round,
        src: ProcessId,
        msg: CongosMsg,
        partitions: &PartitionSet,
    ) -> Vec<Fragment> {
        match msg {
            CongosMsg::Gossip { lane, wire } => match lane {
                GossipLane::Group { ell, .. } => {
                    if let Some(l) = self.lanes.get_mut(ell as usize) {
                        l.gossip.on_receive(now, src, *wire);
                    }
                }
                GossipLane::All { .. } => self.all_gossip.on_receive(now, src, *wire),
            },
            CongosMsg::ProxyRequest {
                ell, fragments, ..
            } => {
                if let Some(l) = self.lanes.get_mut(ell as usize) {
                    // [PROXY:CONFIDENTIAL] sanity: only fragments of our own
                    // group may be proxied to us.
                    debug_assert!(fragments.iter().all(|f| f.group == l.my_group));
                    l.proxy.on_request(src, fragments);
                }
            }
            CongosMsg::ProxyAck { ell, .. } => {
                if let Some(l) = self.lanes.get_mut(ell as usize) {
                    l.proxy.on_ack(src, partitions.partition(ell as usize));
                }
            }
            CongosMsg::Partials { fragments, .. } => return fragments,
            CongosMsg::Shoot { .. } => unreachable!("Shoot handled at node level"),
        }
        Vec::new()
    }

    /// Compute-phase drain: dispatch gossip deliveries into the services and
    /// return the fragments this process received through its groups (for
    /// reassembly if it is a destination).
    pub(crate) fn post_receive(&mut self) -> Vec<Fragment> {
        let mut to_save = Vec::new();
        for lane in &mut self.lanes {
            for rumor in lane.gossip.take_delivered() {
                let origin = rumor.id.origin;
                match rumor.payload.as_ref() {
                    GossipPayload::Fragments(frags) => {
                        for f in frags {
                            debug_assert_eq!(f.partition, lane.ell);
                            debug_assert_eq!(f.group, lane.my_group);
                            lane.gd.inject(f.clone());
                            to_save.push(f.clone());
                        }
                    }
                    GossipPayload::ProxyMeta { failed_proxies } => {
                        lane.proxy.on_meta(origin, failed_proxies);
                    }
                    GossipPayload::GdShare { hits } => {
                        lane.gd.on_share(origin, hits);
                    }
                    GossipPayload::Distribution { .. } => {
                        debug_assert!(false, "Distribution rides AllGossip only");
                    }
                }
            }
        }
        for rumor in self.all_gossip.take_delivered() {
            if let GossipPayload::Distribution {
                partition,
                group,
                hits,
            } = rumor.payload.as_ref()
            {
                self.hit_matrix
                    .extend(*partition, *group, hits.iter().copied());
            }
        }
        to_save
    }

    /// Figure 8's confirmation rule, generalized to `k` groups: a rumor is
    /// confirmed once, for some partition `ℓ`, **every** group's hit-set
    /// covers **every** destination — i.e. each destination was explicitly
    /// sent each of the `k` fragments. (Lemma 4's soundness direction: a
    /// hit-set entry exists only if the fragment was actually sent.)
    fn check_confirmations(&mut self, partitions: &PartitionSet) {
        let confirmed: Vec<CongosRumorId> = self
            .cache
            .iter()
            .filter(|(rid, c)| self.is_confirmed(**rid, &c.rumor, partitions))
            .map(|(rid, _)| *rid)
            .collect();
        for rid in confirmed {
            self.cache.remove(&rid);
            self.stats.confirmed += 1;
        }
    }

    fn is_confirmed(&self, rid: CongosRumorId, rumor: &Rumor, partitions: &PartitionSet) -> bool {
        partitions.iter().any(|(ell, p)| {
            (0..p.group_count() as u8).all(|g| {
                rumor
                    .dest
                    .iter()
                    .all(|q| self.hit_matrix.contains(ell as u16, g, q, rid))
            })
        })
    }

    /// The last two bullets of Figure 2: if a rumor's (trimmed) deadline is
    /// expiring and no confirmation arrived, send it whole, directly, to
    /// every destination.
    fn fire_fallbacks(&mut self, now: Round) -> Sends {
        let mut out: Sends = Vec::new();
        let expired: Vec<CongosRumorId> = self
            .cache
            .iter()
            .filter(|(_, c)| c.expire == now)
            .map(|(rid, _)| *rid)
            .collect();
        for rid in expired {
            let c = self.cache.remove(&rid).expect("present");
            self.stats.fallbacks += 1;
            for q in c.rumor.dest.iter() {
                if q != self.me {
                    out.push((
                        q,
                        CongosMsg::Shoot {
                            rumor: c.rumor.clone(),
                            rid,
                            direct: false,
                        },
                        TAG_SHOOT,
                    ));
                }
            }
        }
        // Anything past its expiry (possible only if this process was
        // crashed across the boundary — then it lost this state anyway) is
        // dropped defensively.
        self.cache.retain(|_, c| c.expire > now);
        out
    }

    /// Drops confirmation entries for long-expired rumors: whole birth-epoch
    /// buckets whose every possible entry is past `birth + 2·dline`. O(evicted),
    /// not O(live) — and never an entry a cached rumor could still query.
    fn prune(&mut self, now: Round) {
        self.hit_matrix.evict_expired(now);
    }

    /// Fallback count plus confirmation count of the substrate endpoints —
    /// used by robustness experiments.
    pub(crate) fn gossip_fallbacks(&self) -> u64 {
        self.lanes.iter().map(|l| l.gossip.fallbacks()).sum::<u64>()
            + self.all_gossip.fallbacks()
    }

    /// Number of own rumors still awaiting confirmation (diagnostics).
    pub(crate) fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CongosConfig;
    use congos_sim::IdSet;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const DLINE: u64 = 64; // block 16, iteration 10

    fn setup(me: usize, n: usize) -> (ClassEngine, PartitionSet, CongosConfig, SmallRng) {
        let partitions = PartitionSet::bits(n);
        let cfg = CongosConfig::base();
        let mut engine = ClassEngine::new(ProcessId::new(me), n, DLINE, &partitions);
        engine.configure_gossip(&cfg);
        (engine, partitions, cfg, SmallRng::seed_from_u64(7))
    }

    fn rumor(n: usize, dest: &[usize]) -> (CongosRumorId, Rumor) {
        (
            CongosRumorId {
                source: ProcessId::new(0),
                birth: Round(0),
                seq: 0,
            },
            Rumor {
                wid: 1,
                data: vec![0xAA; 8],
                deadline: DLINE,
                dest: IdSet::from_iter(n, dest.iter().map(|i| ProcessId::new(*i))),
            },
        )
    }

    #[test]
    fn proxy_requests_start_at_the_next_block_boundary() {
        let n = 8;
        let (mut engine, partitions, cfg, mut rng) = setup(0, n);
        let (rid, r) = rumor(n, &[3]);
        // Mirror the engine's phase order: round 0's send phase runs first,
        // the injection lands in the compute phase after it.
        let _ = engine.on_send(Round(0), &mut rng, &cfg, &partitions, u64::MAX);
        engine.inject(Round(0), &mut rng, rid, r, &partitions);

        // Rest of block 0: fragments spread via gossip; the Proxy service
        // has only collected them into `waiting`.
        for t in 1..16u64 {
            let sends = engine.on_send(Round(t), &mut rng, &cfg, &partitions, u64::MAX);
            assert!(
                !sends
                    .iter()
                    .any(|(_, m, _)| matches!(m, CongosMsg::ProxyRequest { .. })),
                "premature proxy request at round {t}"
            );
        }
        // Round 16 is block 1's first round: proxy requests go out, and each
        // targets the fragment's own group ([PROXY:CONFIDENTIAL]).
        let sends = engine.on_send(Round(16), &mut rng, &cfg, &partitions, u64::MAX);
        let requests: Vec<_> = sends
            .iter()
            .filter_map(|(dst, m, _)| match m {
                CongosMsg::ProxyRequest { ell, fragments, .. } => Some((dst, ell, fragments)),
                _ => None,
            })
            .collect();
        assert!(!requests.is_empty(), "proxy must fire at the block boundary");
        for (dst, ell, fragments) in requests {
            let p = partitions.partition(*ell as usize);
            for f in fragments {
                assert_eq!(p.group_of(*dst), f.group, "fragment sent to its group");
            }
        }
    }

    #[test]
    fn unconfirmed_rumor_shoots_exactly_at_expiry() {
        let n = 8;
        let (mut engine, partitions, cfg, mut rng) = setup(0, n);
        let (rid, r) = rumor(n, &[3, 5]);
        engine.inject(Round(0), &mut rng, rid, r, &partitions);
        assert_eq!(engine.cache_len(), 1);

        // Without any Distribution feedback (nothing is routed back into
        // this engine), confirmation can never happen; the fallback must
        // fire exactly at round 64 and clear the cache.
        for t in 0..DLINE {
            let sends = engine.on_send(Round(t), &mut rng, &cfg, &partitions, u64::MAX);
            assert!(
                !sends.iter().any(|(_, m, _)| matches!(m, CongosMsg::Shoot { .. })),
                "premature shoot at round {t}"
            );
        }
        let sends = engine.on_send(Round(DLINE), &mut rng, &cfg, &partitions, u64::MAX);
        let shoots: Vec<_> = sends
            .iter()
            .filter(|(_, m, _)| matches!(m, CongosMsg::Shoot { .. }))
            .collect();
        assert_eq!(shoots.len(), 2, "one shoot per destination");
        for (dst, m, tag) in &sends {
            if let CongosMsg::Shoot { rumor, direct, .. } = m {
                assert!(rumor.dest.contains(*dst), "shoot only to destinations");
                assert!(!direct);
                assert_eq!(*tag, TAG_SHOOT);
            }
        }
        assert_eq!(engine.cache_len(), 0);
        assert_eq!(engine.stats().fallbacks, 1);
    }

    #[test]
    fn confirmation_through_the_hit_matrix_suppresses_the_fallback() {
        let n = 8;
        let (mut engine, partitions, cfg, mut rng) = setup(0, n);
        let (rid, r) = rumor(n, &[3]);
        engine.inject(Round(0), &mut rng, rid, r, &partitions);

        // Hand-feed Distribution metadata claiming p3 got every group's
        // fragment of partition 0.
        for g in 0..2u8 {
            engine.hit_matrix.extend(0, g, [(ProcessId::new(3), rid)]);
        }
        // Run to expiry: the confirmation check clears the cache before the
        // fallback would fire.
        let mut shoots = 0;
        for t in 0..=DLINE {
            let sends = engine.on_send(Round(t), &mut rng, &cfg, &partitions, u64::MAX);
            shoots += sends
                .iter()
                .filter(|(_, m, _)| matches!(m, CongosMsg::Shoot { .. }))
                .count();
        }
        assert_eq!(shoots, 0);
        assert_eq!(engine.stats().confirmed, 1);
        assert_eq!(engine.stats().fallbacks, 0);
    }

    #[test]
    fn partial_hit_matrix_does_not_confirm() {
        let n = 8;
        let (mut engine, partitions, _cfg, mut rng) = setup(0, n);
        let (rid, r) = rumor(n, &[3]);
        engine.inject(Round(0), &mut rng, rid, r, &partitions);
        // Only group 0 of partition 0 reported the hit: unsound to confirm.
        engine.hit_matrix.extend(0, 0, [(ProcessId::new(3), rid)]);
        engine.check_confirmations(&partitions);
        assert_eq!(engine.stats().confirmed, 0);
        assert_eq!(engine.cache_len(), 1);
    }

    #[test]
    fn own_group_fragments_spread_from_round_one() {
        let n = 8;
        let (mut engine, partitions, cfg, mut rng) = setup(0, n);
        let (rid, r) = rumor(n, &[3]);
        engine.inject(Round(0), &mut rng, rid, r, &partitions);
        let sends = engine.on_send(Round(0), &mut rng, &cfg, &partitions, u64::MAX);
        // Group gossip pushes carry the own-group fragments immediately, and
        // the filter confines them to the sender's groups.
        let mut pushes = 0;
        for (dst, m, _) in &sends {
            if let CongosMsg::Gossip {
                lane: GossipLane::Group { ell, .. },
                ..
            } = m
            {
                pushes += 1;
                let p = partitions.partition(*ell as usize);
                assert_eq!(
                    p.group_of(*dst),
                    p.group_of(ProcessId::new(0)),
                    "group gossip must stay in the sender's group"
                );
            }
        }
        assert!(pushes > 0, "fragments must start spreading at once");
    }
}
