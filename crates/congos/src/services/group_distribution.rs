//! The GroupDistribution service (`GroupDistribution[ℓ]`, Figure 10 /
//! Figure 4 of the paper).
//!
//! Once fragment `ρ_{g,ℓ}` has spread through group `g` (via `GroupGossip`
//! for the source's own group, via the Proxy service for the others), the
//! members of `g` collaborate to deliver it to the rumor's destinations *in
//! the other groups* (destinations inside `g` already received it with the
//! group spread). Each iteration, every active member sends the
//! "appropriate" fragments — only those whose destination set contains the
//! target — to `Θ(n^{1+48/√dline}·log n / |collaborators|)` random processes
//! outside its group that are not yet in the shared `hitSet`; members then
//! gossip their `hitSet`s so the group collectively tracks coverage. At the
//! end of the block, each member publishes a *sanitized* version of its
//! `hitSet` (identities only, no fragment bytes) through `AllGossip`, which
//! is what lets sources confirm delivery without anyone revealing rumor
//! contents.
//!
//! [GD:CONFIDENTIAL] holds by construction: a fragment is only ever sent to
//! a member of its rumor's destination set.

use std::collections::{BTreeMap, HashSet};

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

use congos_gossip::{fanout, FanoutParams};
use congos_sim::{IdSet, ProcessId, Round};

use crate::messages::Fragment;
use crate::partition::Partition;
use crate::rumor::CongosRumorId;

/// Fragment deliveries to emit this round: `(destination, fragments)`.
pub(crate) type GdSends = Vec<(ProcessId, Vec<Fragment>)>;

/// Per-partition group-distribution state at one process.
pub(crate) struct GdService {
    my_group: u8,
    /// Fragments delivered by the group spread since the block began.
    waiting: Vec<Fragment>,
    /// This block's fragments to distribute, one per rumor.
    partials: BTreeMap<CongosRumorId, Fragment>,
    active: bool,
    /// `(target, rumor)` pairs this group has served (own + gossiped).
    hit_set: HashSet<(ProcessId, CongosRumorId)>,
    /// Processes appearing in `hit_set` (excluded from future sampling).
    hit_procs: IdSet,
    /// Sampled processes that matched no fragment (local optimization: they
    /// are skipped in later sampling; see module docs in `confidential.rs`).
    irrelevant: IdSet,
    collaborators: usize,
    collab_next: IdSet,
}

impl GdService {
    pub(crate) fn new(n: usize, my_group: u8) -> Self {
        GdService {
            my_group,
            waiting: Vec::new(),
            partials: BTreeMap::new(),
            active: false,
            hit_set: HashSet::new(),
            hit_procs: IdSet::empty(n),
            irrelevant: IdSet::empty(n),
            collaborators: 1,
            collab_next: IdSet::empty(n),
        }
    }

    /// Queues a fragment of my group for distribution next block.
    pub(crate) fn inject(&mut self, fragment: Fragment) {
        debug_assert_eq!(fragment.group, self.my_group);
        self.waiting.push(fragment);
    }

    /// `true` if the service is distributing this block.
    #[cfg(test)]
    pub(crate) fn is_active(&self) -> bool {
        self.active
    }

    /// Block boundary (the paper's "beginning of the second round of a
    /// block"): collect waiting fragments; become active if the process has
    /// been alive for at least `2·dline/3` rounds (`alive_ok`).
    ///
    /// Engineering refinement over Figure 10: fragments whose rumor is still
    /// within its deadline are *carried over* to the next block instead of
    /// being dropped — at laptop-scale fanouts a block's iterations may not
    /// cover every destination, and retrying (with a fresh hit-set) only
    /// re-sends to destination-set members, so neither confidentiality nor
    /// the complexity shape changes; without it, under-covered blocks would
    /// push rumors to the deadline fallback far more often than the paper's
    /// asymptotic constants would.
    pub(crate) fn on_block_start(
        &mut self,
        n: usize,
        now: Round,
        alive_ok: bool,
        group_len: usize,
    ) {
        let collected = std::mem::take(&mut self.waiting);
        let mut carried = std::mem::take(&mut self.partials);
        carried.retain(|rid, f| rid.birth + f.dline >= now);
        self.active = alive_ok;
        if self.active {
            self.partials = carried;
            for f in collected {
                self.partials.insert(f.rid, f);
            }
        } else {
            // Not yet eligible: keep the fragments for the next block.
            self.waiting = collected;
            self.waiting.extend(carried.into_values());
        }
        self.hit_set.clear();
        self.hit_procs = IdSet::empty(n);
        self.irrelevant = IdSet::empty(n);
        self.collaborators = group_len.max(1);
        self.collab_next = IdSet::empty(n);
    }

    /// Iteration round 2: sample unserved targets and send each the
    /// fragments whose destination set contains it.
    ///
    /// Figure 10 samples from the *opposite* group only, counting on the
    /// group spread to cover same-group destinations — but the confirmation
    /// rule of Figure 8 checks hit-sets for *every* destination, and the
    /// spread is not recorded in any hit-set. Sampling over all processes
    /// makes the recorded hit-sets a sound witness of delivery (no fragment
    /// goes anywhere new: targets still receive only fragments whose
    /// destination set contains them — [GD:CONFIDENTIAL] unchanged).
    pub(crate) fn on_send_round(
        &mut self,
        rng: &mut SmallRng,
        n: usize,
        dline: u64,
        partition: &Partition,
        params: FanoutParams,
    ) -> GdSends {
        if !self.collab_next.is_empty() {
            self.collaborators = self.collab_next.len() + 1;
            self.collab_next = IdSet::empty(n);
        }
        if !self.active || self.partials.is_empty() {
            return Vec::new();
        }
        let mut candidates: Vec<ProcessId> = (0..n)
            .map(ProcessId::new)
            .filter(|p| !self.hit_procs.contains(*p) && !self.irrelevant.contains(*p))
            .collect();
        if candidates.is_empty() {
            return Vec::new();
        }
        let other_side = n - partition.group(self.my_group).len();
        let k = fanout(params, n, dline, self.collaborators, other_side + 1)
            .min(candidates.len());
        candidates.shuffle(rng);
        let mut sends = Vec::new();
        for target in candidates.into_iter().take(k) {
            let appropriate: Vec<Fragment> = self
                .partials
                .values()
                .filter(|f| f.dest.contains(target))
                .cloned()
                .collect();
            if appropriate.is_empty() {
                self.irrelevant.insert(target);
                continue;
            }
            for f in &appropriate {
                self.hit_set.insert((target, f.rid));
            }
            self.hit_procs.insert(target);
            sends.push((target, appropriate));
        }
        sends
    }

    /// Iteration round 3: the hit-set share to gossip in my group, if the
    /// service has anything to report or count.
    pub(crate) fn gossip_share(&self) -> Option<Vec<(ProcessId, CongosRumorId)>> {
        if !self.active || (self.partials.is_empty() && self.hit_set.is_empty()) {
            return None;
        }
        let mut hits: Vec<(ProcessId, CongosRumorId)> = self.hit_set.iter().copied().collect();
        hits.sort_unstable_by_key(|(p, rid)| (*p, rid.source, rid.birth, rid.seq));
        Some(hits)
    }

    /// Group gossip delivered a peer's hit-set share.
    pub(crate) fn on_share(&mut self, origin: ProcessId, hits: &[(ProcessId, CongosRumorId)]) {
        self.collab_next.insert(origin);
        for (p, rid) in hits {
            self.hit_set.insert((*p, *rid));
            self.hit_procs.insert(*p);
        }
    }

    /// Last round of the block: the sanitized hit-set to publish through
    /// `AllGossip` (identities only — this is the paper's confirmation
    /// metadata).
    pub(crate) fn end_of_block(&self) -> Option<Vec<(ProcessId, CongosRumorId)>> {
        if !self.active || self.hit_set.is_empty() {
            return None;
        }
        let mut hits: Vec<(ProcessId, CongosRumorId)> = self.hit_set.iter().copied().collect();
        hits.sort_unstable_by_key(|(p, rid)| (*p, rid.source, rid.birth, rid.seq));
        Some(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congos_sim::Round;
    use rand::SeedableRng;

    fn rid(src: usize) -> CongosRumorId {
        CongosRumorId {
            source: ProcessId::new(src),
            birth: Round(0),
            seq: 0,
        }
    }

    fn frag(src: usize, group: u8, dest: &[usize], n: usize) -> Fragment {
        Fragment {
            rid: rid(src),
            wid: src as u64,
            partition: 0,
            group,
            k: 2,
            bytes: vec![9].into(),
            dest: IdSet::from_iter(n, dest.iter().map(|i| ProcessId::new(*i))).into(),
            dline: 64,
        }
    }

    fn bit_partition(n: usize) -> Partition {
        let assignment = (0..n).map(|i| ProcessId::new(i).bit(0)).collect();
        Partition::from_assignment(assignment, 2)
    }

    fn params() -> FanoutParams {
        FanoutParams {
            alpha: 4.0,
            gamma: 4.0,
            root: 2,
        }
    }

    #[test]
    fn sends_only_appropriate_fragments_to_other_group() {
        let n = 8;
        let part = bit_partition(n); // evens 0, odds 1
        let mut gd = GdService::new(n, 0);
        gd.inject(frag(0, 0, &[1, 3], n)); // dests odd (other group)
        gd.inject(frag(2, 0, &[5], n));
        gd.on_block_start(n, Round(0), true, 4);
        let mut rng = SmallRng::seed_from_u64(1);
        // Run enough send rounds to hit everyone.
        let mut seen: Vec<(ProcessId, Vec<Fragment>)> = Vec::new();
        for _ in 0..20 {
            seen.extend(gd.on_send_round(&mut rng, n, 64, &part, params()));
        }
        assert!(!seen.is_empty());
        for (target, frags) in &seen {
            assert_eq!(part.group_of(*target), 1, "cross-group only");
            for f in frags {
                assert!(f.dest.contains(*target), "[GD:CONFIDENTIAL]");
            }
        }
        // Eventually every destination was hit.
        let hit: Vec<ProcessId> = seen.iter().map(|(t, _)| *t).collect();
        for d in [1usize, 3, 5] {
            assert!(hit.contains(&ProcessId::new(d)), "p{d} never hit");
        }
    }

    #[test]
    fn hit_processes_are_not_resampled() {
        let n = 8;
        let part = bit_partition(n);
        let mut gd = GdService::new(n, 0);
        gd.inject(frag(0, 0, &[1, 3, 5, 7], n));
        gd.on_block_start(n, Round(0), true, 4);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut targets: Vec<ProcessId> = Vec::new();
        for _ in 0..20 {
            for (t, _) in gd.on_send_round(&mut rng, n, 64, &part, params()) {
                assert!(!targets.contains(&t), "p{t} hit twice");
                targets.push(t);
            }
        }
        assert_eq!(targets.len(), 4);
    }

    #[test]
    fn inactive_service_holds_fragments_for_next_block() {
        let n = 4;
        let part = bit_partition(n);
        let mut gd = GdService::new(n, 0);
        gd.inject(frag(0, 0, &[1], n));
        gd.on_block_start(n, Round(0), false, 2); // recently restarted
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(gd.on_send_round(&mut rng, n, 64, &part, params()).is_empty());
        assert!(!gd.is_active());
        // Next block it is eligible and the fragment is still there.
        gd.on_block_start(n, Round(0), true, 2);
        let mut sent = Vec::new();
        for _ in 0..8 {
            sent.extend(gd.on_send_round(&mut rng, n, 64, &part, params()));
        }
        assert!(sent.iter().any(|(t, _)| *t == ProcessId::new(1)));
    }

    #[test]
    fn shares_merge_and_dedupe_coverage() {
        let n = 8;
        let mut gd = GdService::new(n, 0);
        gd.inject(frag(0, 0, &[1], n));
        gd.on_block_start(n, Round(0), true, 4);
        gd.on_share(ProcessId::new(2), &[(ProcessId::new(1), rid(0))]);
        // p1 was already served by a group-mate: no send should target p1.
        let part = bit_partition(n);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10 {
            for (t, _) in gd.on_send_round(&mut rng, n, 64, &part, params()) {
                assert_ne!(t, ProcessId::new(1));
            }
        }
        // And the merged hit appears in the sanitized end-of-block report.
        let hits = gd.end_of_block().unwrap();
        assert!(hits.contains(&(ProcessId::new(1), rid(0))));
    }

    #[test]
    fn gossip_share_requires_content() {
        let n = 4;
        let mut gd = GdService::new(n, 0);
        gd.on_block_start(n, Round(0), true, 2);
        assert!(gd.gossip_share().is_none(), "nothing to share or count");
        assert!(gd.end_of_block().is_none());
    }

    #[test]
    fn collaborator_estimate_follows_shares() {
        let n = 16;
        let part = bit_partition(n);
        let mut gd = GdService::new(n, 0);
        gd.inject(frag(0, 0, &[1], n));
        gd.on_block_start(n, Round(0), true, 8);
        assert_eq!(gd.collaborators, 8, "initial estimate: whole group");
        gd.on_share(ProcessId::new(2), &[]);
        gd.on_share(ProcessId::new(4), &[]);
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = gd.on_send_round(&mut rng, n, 64, &part, params());
        assert_eq!(gd.collaborators, 3, "2 peers + self");
    }
}
