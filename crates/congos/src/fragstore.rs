//! Hash-consed storage for fragment bytes and destination sets.
//!
//! A rumor split into `k` fragments over `p` partitions produces `k·p`
//! [`Fragment`](crate::messages::Fragment) values, every one of which used
//! to own a copy of the rumor's destination set, and every service buffer
//! (proxy carry-over, GD partials, gossip push batches) used to own copies
//! of the fragment bytes. At `n = 8192` the destination bitmaps alone are
//! `n/8` bytes each, so the duplication dominated resident memory.
//!
//! [`FragStore`] interns both: identical byte strings and identical
//! destination sets are stored once, behind the cheap handles
//! [`FragBytes`] and [`DestRef`] (shared `Arc`s with content equality).
//! The store holds only weak references — when the last fragment
//! referencing an allocation is dropped, the allocation dies with it and
//! the store's slot is pruned lazily on the next intern or [`gc`] call.
//!
//! Interning never changes what a fragment *is* (handles compare by
//! content), so wire encodings, trace digests and the confidentiality
//! audit are unaffected: the refactor is observable only through
//! [`FragStore::stats`].
//!
//! [`gc`]: FragStore::gc

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use congos_sim::IdSet;

/// FNV-1a over a byte slice — the same construction the trace fingerprint
/// uses, applied here for interner bucketing only.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn hash_idset(s: &IdSet) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(s.universe() as u64);
    for p in s.iter() {
        mix(p.as_usize() as u64);
    }
    h
}

/// A shared, interned fragment byte string.
///
/// Dereferences to `[u8]`; equality and hashing are by content, with a
/// pointer-identity fast path (two handles from the same store that compare
/// equal are the same allocation).
#[derive(Clone)]
pub struct FragBytes(Arc<[u8]>);

impl FragBytes {
    /// `true` if both handles point at the same allocation.
    pub fn ptr_eq(a: &FragBytes, b: &FragBytes) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl Deref for FragBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for FragBytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl PartialEq for FragBytes {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}
impl Eq for FragBytes {}

impl Hash for FragBytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl fmt::Debug for FragBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FragBytes({} bytes)", self.0.len())
    }
}

/// Interns through the global store.
impl From<Vec<u8>> for FragBytes {
    fn from(v: Vec<u8>) -> Self {
        FragStore::global().intern_bytes(&v)
    }
}

/// Interns through the global store.
impl From<&[u8]> for FragBytes {
    fn from(v: &[u8]) -> Self {
        FragStore::global().intern_bytes(v)
    }
}

/// A shared, interned destination set.
///
/// Dereferences to [`IdSet`]; equality and hashing are by content, with a
/// pointer-identity fast path.
#[derive(Clone)]
pub struct DestRef(Arc<IdSet>);

impl DestRef {
    /// `true` if both handles point at the same allocation.
    pub fn ptr_eq(a: &DestRef, b: &DestRef) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl Deref for DestRef {
    type Target = IdSet;
    fn deref(&self) -> &IdSet {
        &self.0
    }
}

impl AsRef<IdSet> for DestRef {
    fn as_ref(&self) -> &IdSet {
        &self.0
    }
}

impl PartialEq for DestRef {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}
impl Eq for DestRef {}

impl Hash for DestRef {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl fmt::Debug for DestRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

/// Interns through the global store.
impl From<IdSet> for DestRef {
    fn from(s: IdSet) -> Self {
        FragStore::global().intern_dest(&s)
    }
}

/// Interns through the global store.
impl From<&IdSet> for DestRef {
    fn from(s: &IdSet) -> Self {
        FragStore::global().intern_dest(s)
    }
}

/// Counters describing interner effectiveness (monotonic hit/miss tallies
/// plus a point-in-time census of live allocations).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FragStoreStats {
    /// Interns that found an existing allocation.
    pub hits: u64,
    /// Interns that had to allocate.
    pub misses: u64,
    /// Byte strings currently alive.
    pub live_bytes: usize,
    /// Destination sets currently alive.
    pub live_dests: usize,
    /// Total payload bytes held by live byte strings.
    pub resident_payload: usize,
}

/// Hash-consing interner for fragment byte strings and destination sets.
///
/// Thread-safe; the engine's parallel backend interns from worker threads.
/// Entries are weak: the store never keeps an allocation alive on its own.
pub struct FragStore {
    bytes: Mutex<HashMap<u64, Vec<Weak<[u8]>>>>,
    dests: Mutex<HashMap<u64, Vec<Weak<IdSet>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for FragStore {
    fn default() -> Self {
        Self::new()
    }
}

impl FragStore {
    /// An empty store.
    pub fn new() -> Self {
        FragStore {
            bytes: Mutex::new(HashMap::new()),
            dests: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The process-wide store used by the `From` conversions and the codec.
    pub fn global() -> &'static FragStore {
        static GLOBAL: OnceLock<FragStore> = OnceLock::new();
        GLOBAL.get_or_init(FragStore::new)
    }

    /// Interns a byte string: returns a handle to an existing identical
    /// allocation if one is alive, otherwise stores `bytes` and returns a
    /// handle to the new allocation.
    pub fn intern_bytes(&self, bytes: &[u8]) -> FragBytes {
        let key = fnv1a(bytes);
        let mut map = self.bytes.lock().expect("fragstore poisoned");
        let bucket = map.entry(key).or_default();
        let mut found = None;
        bucket.retain(|w| match w.upgrade() {
            Some(arc) => {
                if found.is_none() && *arc == *bytes {
                    found = Some(arc);
                }
                true
            }
            None => false,
        });
        match found {
            Some(arc) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                FragBytes(arc)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let arc: Arc<[u8]> = Arc::from(bytes);
                bucket.push(Arc::downgrade(&arc));
                FragBytes(arc)
            }
        }
    }

    /// Interns a destination set (see [`intern_bytes`](Self::intern_bytes)).
    pub fn intern_dest(&self, set: &IdSet) -> DestRef {
        let key = hash_idset(set);
        let mut map = self.dests.lock().expect("fragstore poisoned");
        let bucket = map.entry(key).or_default();
        let mut found = None;
        bucket.retain(|w| match w.upgrade() {
            Some(arc) => {
                if found.is_none() && *arc == *set {
                    found = Some(arc);
                }
                true
            }
            None => false,
        });
        match found {
            Some(arc) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                DestRef(arc)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let arc = Arc::new(set.clone());
                bucket.push(Arc::downgrade(&arc));
                DestRef(arc)
            }
        }
    }

    /// Drops dead weak entries and empty buckets. Interning prunes the
    /// bucket it touches; `gc` sweeps everything (call between experiment
    /// points, not per round).
    pub fn gc(&self) {
        let mut bytes = self.bytes.lock().expect("fragstore poisoned");
        for bucket in bytes.values_mut() {
            bucket.retain(|w| w.strong_count() > 0);
        }
        bytes.retain(|_, b| !b.is_empty());
        let mut dests = self.dests.lock().expect("fragstore poisoned");
        for bucket in dests.values_mut() {
            bucket.retain(|w| w.strong_count() > 0);
        }
        dests.retain(|_, b| !b.is_empty());
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> FragStoreStats {
        let bytes = self.bytes.lock().expect("fragstore poisoned");
        let (mut live_bytes, mut resident) = (0usize, 0usize);
        for bucket in bytes.values() {
            for w in bucket {
                if let Some(arc) = w.upgrade() {
                    live_bytes += 1;
                    resident += arc.len();
                }
            }
        }
        drop(bytes);
        let dests = self.dests.lock().expect("fragstore poisoned");
        let live_dests = dests
            .values()
            .flat_map(|b| b.iter())
            .filter(|w| w.strong_count() > 0)
            .count();
        FragStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            live_bytes,
            live_dests,
            resident_payload: resident,
        }
    }
}

impl fmt::Debug for FragStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FragStore").field("stats", &self.stats()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congos_sim::ProcessId;

    #[test]
    fn interning_identical_bytes_shares_the_allocation() {
        let store = FragStore::new();
        let a = store.intern_bytes(b"fragment");
        let b = store.intern_bytes(b"fragment");
        assert!(FragBytes::ptr_eq(&a, &b));
        assert_eq!(a, b);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.live_bytes, 1);
        assert_eq!(stats.resident_payload, 8);
    }

    #[test]
    fn distinct_contents_do_not_alias() {
        let store = FragStore::new();
        let a = store.intern_bytes(b"pad-one!");
        let b = store.intern_bytes(b"pad-two!");
        assert!(!FragBytes::ptr_eq(&a, &b));
        assert_ne!(a, b);
        assert_eq!(store.stats().live_bytes, 2);
    }

    #[test]
    fn dropping_all_handles_releases_the_allocation() {
        let store = FragStore::new();
        let a = store.intern_bytes(&[7u8; 128]);
        let b = a.clone();
        drop(a);
        assert_eq!(store.stats().live_bytes, 1);
        drop(b);
        assert_eq!(store.stats().live_bytes, 0);
        store.gc();
        assert!(store.bytes.lock().unwrap().is_empty(), "gc drops dead slots");
        // A fresh intern after release allocates anew.
        let c = store.intern_bytes(&[7u8; 128]);
        assert_eq!(&*c, &[7u8; 128]);
    }

    #[test]
    fn dest_interning_shares_and_releases() {
        let store = FragStore::new();
        let set = IdSet::from_iter(64, [ProcessId::new(3), ProcessId::new(17)]);
        let a = store.intern_dest(&set);
        let b = store.intern_dest(&set.clone());
        assert!(DestRef::ptr_eq(&a, &b));
        assert!(a.contains(ProcessId::new(17)));
        assert_eq!(store.stats().live_dests, 1);
        drop((a, b));
        assert_eq!(store.stats().live_dests, 0);
    }

    #[test]
    fn global_store_backs_from_conversions() {
        let a: FragBytes = vec![9u8, 9, 9].into();
        let b: FragBytes = vec![9u8, 9, 9].into();
        assert!(FragBytes::ptr_eq(&a, &b));
        let s = IdSet::from_iter(8, [ProcessId::new(1)]);
        let d1: DestRef = s.clone().into();
        let d2: DestRef = (&s).into();
        assert!(DestRef::ptr_eq(&d1, &d2));
    }

    #[test]
    fn empty_bytes_intern_fine() {
        let store = FragStore::new();
        let a = store.intern_bytes(&[]);
        let b = store.intern_bytes(&[]);
        assert!(FragBytes::ptr_eq(&a, &b));
        assert_eq!(a.len(), 0);
    }
}
