//! Application-level rumors: the triplet `ρ = ⟨z, d, D⟩` of the paper.

use congos_adversary::RumorSpec;
use congos_sim::{IdSet, ProcessId, Round};
use std::fmt;

/// Identity of an injected rumor: source process, injection round, and a
/// round-local sequence number.
///
/// This is the paper's `counter` (Figure 8) made restart-safe: processes
/// have no durable storage, so a plain per-process counter would collide
/// across incarnations; a crash and a restart cannot share a round, so the
/// `(source, birth)` pair disambiguates. The id is metadata the protocol
/// deliberately shares (it appears in sanitized hit-sets); the paper notes
/// it could be replaced by a pseudorandom identifier to leak less.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CongosRumorId {
    /// The process the rumor was injected at.
    pub source: ProcessId,
    /// Injection round.
    pub birth: Round,
    /// Sequence among this source's injections in `birth` (the model allows
    /// at most one injection per process per round, so this is 0 in engine
    /// runs; kept for API completeness).
    pub seq: u32,
}

impl fmt::Debug for CongosRumorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ρ({}@{}#{})", self.source, self.birth, self.seq)
    }
}

/// A rumor as handled by CONGOS: confidential payload, deadline duration,
/// and destination set, plus the workload id used by experiments to
/// correlate injections with deliveries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rumor {
    /// Workload-assigned id (experiment bookkeeping, not protocol state).
    pub wid: u64,
    /// The confidential data `ρ.z`.
    pub data: Vec<u8>,
    /// Deadline duration `ρ.d` in rounds.
    pub deadline: u64,
    /// Destination set `ρ.D`.
    pub dest: IdSet,
}

/// Input injected at a [`CongosNode`](crate::CongosNode).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CongosInput {
    /// Workload id.
    pub wid: u64,
    /// Confidential payload.
    pub data: Vec<u8>,
    /// Deadline duration in rounds.
    pub deadline: u64,
    /// Destination processes.
    pub dest: Vec<ProcessId>,
}

impl From<RumorSpec> for CongosInput {
    fn from(spec: RumorSpec) -> Self {
        CongosInput {
            wid: spec.id,
            data: spec.data,
            deadline: spec.deadline,
            dest: spec.dest,
        }
    }
}

/// A rumor delivered (reassembled) at a destination.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeliveredRumor {
    /// Workload id of the rumor.
    pub wid: u64,
    /// Protocol identity of the rumor.
    pub rid: CongosRumorId,
    /// The reconstructed data `ρ.z`.
    pub data: Vec<u8>,
    /// How the rumor arrived (pipeline reassembly or fallback).
    pub via: DeliveryPath,
}

/// How a rumor reached a destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryPath {
    /// Reassembled from fragments delivered by the CONGOS pipeline.
    Fragments,
    /// Received whole via the source's deadline fallback ("shoot").
    Fallback,
    /// The source itself is a destination (local delivery at injection).
    Local,
    /// Sent directly because the deadline was too short for the pipeline
    /// (or `τ ≥ n/log²n` in the collusion-tolerant variant).
    Direct,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rumor_id_debug() {
        let id = CongosRumorId {
            source: ProcessId::new(2),
            birth: Round(7),
            seq: 0,
        };
        assert_eq!(format!("{id:?}"), "ρ(p2@r7#0)");
    }

    #[test]
    fn input_from_spec() {
        let spec = RumorSpec::new(5, vec![1, 2], 64, vec![ProcessId::new(1)]);
        let input = CongosInput::from(spec);
        assert_eq!(input.wid, 5);
        assert_eq!(input.deadline, 64);
        assert_eq!(input.dest, vec![ProcessId::new(1)]);
    }
}
