//! Process partitions.
//!
//! CONGOS distributes each fragment of a rumor to one *group* of a
//! *partition* of the processes:
//!
//! * the base algorithm uses `⌈log n⌉` **bit partitions** — partition `ℓ`
//!   splits processes by the `ℓ`-th bit of their id. Lemma 5: any two
//!   distinct processes are separated by some bit partition, so as long as
//!   the source and one destination survive, some partition still "works";
//! * the collusion-tolerant variant (Section 6.2) uses `c·τ·log n` **random
//!   partitions** of `τ+1` groups each, satisfying
//!   *Partition-Property 1* (every group non-empty) and
//!   *Partition-Property 2* (for every set `S` of `≥ 2c'τ log n` processes,
//!   some partition has a member of `S` in every group). Lemma 13 proves
//!   such partitions exist by the probabilistic method; the paper leaves a
//!   deterministic poly-time construction open, so we construct them the way
//!   the proof does — sample uniformly and verify — resampling until
//!   Property 1 holds exactly (Property 2 then holds w.h.p. and is
//!   spot-checked by randomized tests; see DESIGN.md §3.4).
//!
//! All processes must agree on the partition set, so it is derived
//! deterministically from configuration (`n`, `τ`, a shared seed) — "given
//! as part of the input of the algorithm", as the paper puts it.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use congos_sim::{IdSet, ProcessId};

/// One partition of `[n]` into `k` disjoint, exhaustive, non-empty groups.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    assignment: Vec<u8>,
    groups: Vec<IdSet>,
}

impl Partition {
    /// Builds a partition from a group assignment (`assignment[p] = group`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `k > 256`, or some entry is `≥ k`.
    pub fn from_assignment(assignment: Vec<u8>, k: usize) -> Self {
        assert!((1..=256).contains(&k), "group count must be in 1..=256");
        let n = assignment.len();
        let mut groups = vec![IdSet::empty(n); k];
        for (i, g) in assignment.iter().enumerate() {
            assert!((*g as usize) < k, "assignment out of range");
            groups[*g as usize].insert(ProcessId::new(i));
        }
        Partition { assignment, groups }
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The group index of process `p`.
    pub fn group_of(&self, p: ProcessId) -> u8 {
        self.assignment[p.as_usize()]
    }

    /// Members of group `g`.
    pub fn group(&self, g: u8) -> &IdSet {
        &self.groups[g as usize]
    }

    /// `true` if every group is non-empty (Partition-Property 1).
    pub fn well_formed(&self) -> bool {
        self.groups.iter().all(|g| !g.is_empty())
    }

    /// `true` if every group contains a member of `survivors`
    /// (the per-partition condition of Partition-Property 2).
    pub fn covers(&self, survivors: &IdSet) -> bool {
        self.groups.iter().all(|g| !g.is_disjoint_from(survivors))
    }
}

/// The agreed-upon set of partitions used by one protocol configuration.
///
/// ```
/// use congos::PartitionSet;
/// use congos_sim::ProcessId;
///
/// let ps = PartitionSet::bits(16);
/// // Lemma 5: some partition separates any two distinct processes.
/// assert!(ps.separating(ProcessId::new(3), ProcessId::new(11)).is_some());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionSet {
    partitions: Vec<Partition>,
    k: usize,
    n: usize,
}

impl PartitionSet {
    /// The base algorithm's `⌈log₂ n⌉` bit partitions of 2 groups each
    /// (partition `ℓ` groups processes by bit `ℓ` of their id).
    ///
    /// For `n = 1` the set is empty — a single process needs no partitions
    /// (every rumor destination is the source itself).
    pub fn bits(n: usize) -> Self {
        let ell_max = if n <= 1 {
            0
        } else {
            usize::BITS - (n - 1).leading_zeros()
        };
        let partitions = (0..ell_max)
            .map(|ell| {
                let assignment = (0..n).map(|i| ProcessId::new(i).bit(ell)).collect();
                Partition::from_assignment(assignment, 2)
            })
            .filter(Partition::well_formed)
            .collect();
        PartitionSet {
            partitions,
            k: 2,
            n,
        }
    }

    /// The collusion-tolerant variant's `⌈c·τ·log₂ n⌉` random partitions of
    /// `τ+1` groups each, sampled as in the proof of Lemma 13 and resampled
    /// until Partition-Property 1 holds.
    ///
    /// # Panics
    ///
    /// Panics if `tau + 1 > n` (groups could never all be non-empty) or
    /// `tau == 0` is fine (reduces to 1 group... ) — `tau ≥ 1` is required.
    pub fn random(n: usize, tau: usize, c: f64, seed: u64) -> Self {
        assert!(tau >= 1, "collusion tolerance τ must be ≥ 1");
        let k = tau + 1;
        assert!(k <= n, "cannot split {n} processes into {k} non-empty groups");
        let lg = (n.max(2) as f64).log2();
        let count = (c * tau as f64 * lg).ceil().max(1.0) as usize;
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9a47_1710);
        let partitions = (0..count)
            .map(|_| loop {
                let assignment: Vec<u8> = (0..n).map(|_| rng.gen_range(0..k) as u8).collect();
                let p = Partition::from_assignment(assignment, k);
                if p.well_formed() {
                    break p;
                }
            })
            .collect();
        PartitionSet { partitions, k, n }
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// `true` if there are no partitions (only for `n = 1`).
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// Groups per partition (`2` for bit partitions, `τ+1` for random).
    pub fn groups_per_partition(&self) -> usize {
        self.k
    }

    /// Universe size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The `ℓ`-th partition.
    ///
    /// # Panics
    ///
    /// Panics if `ell` is out of range.
    pub fn partition(&self, ell: usize) -> &Partition {
        &self.partitions[ell]
    }

    /// Iterates `(ℓ, partition)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Partition)> {
        self.partitions.iter().enumerate()
    }

    /// Returns some partition index separating `a` and `b` into different
    /// groups, if one exists (Lemma 5 guarantees one for bit partitions
    /// whenever `a ≠ b`).
    pub fn separating(&self, a: ProcessId, b: ProcessId) -> Option<usize> {
        self.iter()
            .find(|(_, p)| p.group_of(a) != p.group_of(b))
            .map(|(ell, _)| ell)
    }

    /// Returns some partition index where every group intersects
    /// `survivors` (the partition Property 2 promises for large survivor
    /// sets).
    pub fn covering(&self, survivors: &IdSet) -> Option<usize> {
        self.iter()
            .find(|(_, p)| p.covers(survivors))
            .map(|(ell, _)| ell)
    }
}
impl PartitionSet {
    /// Keeps only the first `cap` partitions (ablation support; the full
    /// set is required for the paper's adaptive-adversary guarantees).
    pub fn truncate(&mut self, cap: usize) {
        self.partitions.truncate(cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_partitions_are_well_formed() {
        for n in [2usize, 3, 5, 8, 17, 64, 100, 128] {
            let ps = PartitionSet::bits(n);
            assert!(!ps.is_empty(), "n={n}");
            for (_, p) in ps.iter() {
                assert!(p.well_formed(), "n={n}");
                assert_eq!(p.group(0).len() + p.group(1).len(), n);
                assert!(p.group(0).is_disjoint_from(p.group(1)));
            }
        }
    }

    #[test]
    fn lemma5_some_partition_separates_any_pair() {
        for n in [2usize, 7, 32, 100] {
            let ps = PartitionSet::bits(n);
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    assert!(
                        ps.separating(ProcessId::new(a), ProcessId::new(b))
                            .is_some(),
                        "n={n}: no partition separates {a} and {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_process_has_no_partitions() {
        assert!(PartitionSet::bits(1).is_empty());
    }

    #[test]
    fn random_partitions_satisfy_property_1() {
        let ps = PartitionSet::random(64, 3, 2.0, 7);
        assert_eq!(ps.groups_per_partition(), 4);
        assert_eq!(ps.len(), (2.0 * 3.0 * 6.0_f64).ceil() as usize);
        for (_, p) in ps.iter() {
            assert!(p.well_formed());
            let total: usize = (0..4).map(|g| p.group(g).len()).sum();
            assert_eq!(total, 64);
        }
    }

    #[test]
    fn random_partitions_property_2_spot_check() {
        // Lemma 13's Property 2: for every survivor set of size ≥ 2c'τ log n
        // some partition has a survivor in each group. Exhaustive checking is
        // exponential; we spot-check many random survivor sets.
        let n = 64;
        let tau = 3;
        let ps = PartitionSet::random(n, tau, 4.0, 11);
        let s_size = (2.0 * tau as f64 * (n as f64).log2()).ceil() as usize; // c'=1
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..200 {
            let mut survivors = IdSet::empty(n);
            while survivors.len() < s_size.min(n) {
                survivors.insert(ProcessId::new(rng.gen_range(0..n)));
            }
            assert!(
                ps.covering(&survivors).is_some(),
                "no covering partition for {survivors:?}"
            );
        }
    }

    #[test]
    fn partitions_are_deterministic_for_a_seed() {
        let a = PartitionSet::random(32, 2, 2.0, 5);
        let b = PartitionSet::random(32, 2, 2.0, 5);
        assert_eq!(a, b, "all processes must derive identical partitions");
        let c = PartitionSet::random(32, 2, 2.0, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn group_of_matches_groups() {
        let ps = PartitionSet::random(20, 2, 2.0, 1);
        for (_, p) in ps.iter() {
            for i in 0..20 {
                let pid = ProcessId::new(i);
                let g = p.group_of(pid);
                assert!(p.group(g).contains(pid));
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn too_many_groups_panics() {
        let _ = PartitionSet::random(3, 5, 1.0, 0);
    }
}
