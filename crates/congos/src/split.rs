//! XOR rumor splitting — the paper's "very simple coding scheme".
//!
//! Section 4.1: *"let `ρ₀.z` be a random binary string, and let
//! `ρ₁.z = ρ.z xor ρ₀.z`"*; Section 6.2 generalizes to `τ+1` fragments:
//! `ρ₀…ρ_{τ−1}` random, `ρ_τ = ρ xor ρ₀ xor … xor ρ_{τ−1}`. This is the
//! simplest instantiation of cryptographic secret sharing (Shamir [34]):
//! any proper subset of the fragments is a uniformly random string carrying
//! **zero information** about the rumor (information-theoretic hiding), yet
//! all fragments together reconstruct it exactly.
//!
//! Each partition uses an *independent* split (fresh pads), so fragments
//! from different partitions never combine — the auditor in [`crate::audit`]
//! checks reconstruction per `(rumor, partition)` pair accordingly.

use rand::rngs::SmallRng;
use rand::Rng;

/// Splits `data` into `k ≥ 1` fragments such that the XOR of all fragments
/// equals `data`, and any `k−1` of them are independent uniform randomness.
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let fragments = congos::split::split(&mut rng, b"secret", 3);
/// let refs: Vec<&[u8]> = fragments.iter().map(|f| f.as_slice()).collect();
/// assert_eq!(congos::split::merge(&refs), Some(b"secret".to_vec()));
/// ```
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn split(rng: &mut SmallRng, data: &[u8], k: usize) -> Vec<Vec<u8>> {
    assert!(k >= 1, "need at least one fragment");
    let mut fragments: Vec<Vec<u8>> = Vec::with_capacity(k);
    let mut acc: Vec<u8> = data.to_vec();
    for _ in 0..k - 1 {
        let pad: Vec<u8> = (0..data.len()).map(|_| rng.gen()).collect();
        for (a, p) in acc.iter_mut().zip(&pad) {
            *a ^= p;
        }
        fragments.push(pad);
    }
    fragments.push(acc);
    fragments
}

/// [`split`], interned: each fragment's bytes go straight into `store` so
/// every downstream copy (gossip batches, proxy buffers, GD partials)
/// shares one allocation per fragment.
pub fn split_interned(
    rng: &mut SmallRng,
    data: &[u8],
    k: usize,
    store: &crate::fragstore::FragStore,
) -> Vec<crate::fragstore::FragBytes> {
    split(rng, data, k)
        .into_iter()
        .map(|f| store.intern_bytes(&f))
        .collect()
}

/// Reassembles a rumor from all of its fragments (XOR of the set).
///
/// Returns `None` if `fragments` is empty or the fragments disagree in
/// length (they cannot all come from one [`split`]).
pub fn merge(fragments: &[&[u8]]) -> Option<Vec<u8>> {
    let first = fragments.first()?;
    if fragments.iter().any(|f| f.len() != first.len()) {
        return None;
    }
    let mut out = first.to_vec();
    for f in &fragments[1..] {
        for (o, b) in out.iter_mut().zip(f.iter()) {
            *o ^= b;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn split_then_merge_round_trips() {
        let mut rng = SmallRng::seed_from_u64(1);
        for k in 1..=6 {
            for len in [0usize, 1, 7, 64] {
                let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
                let frags = split(&mut rng, &data, k);
                assert_eq!(frags.len(), k);
                assert!(frags.iter().all(|f| f.len() == len));
                let refs: Vec<&[u8]> = frags.iter().map(|f| f.as_slice()).collect();
                assert_eq!(merge(&refs).unwrap(), data, "k={k}, len={len}");
            }
        }
    }

    #[test]
    fn any_proper_subset_reveals_nothing() {
        // Hiding is information-theoretic: for fixed pads, flipping any bit
        // of the rumor leaves every proper subset of fragments unchanged
        // except the last fragment — i.e. the first k−1 fragments are
        // independent of the data; and the last fragment alone is the data
        // XOR a uniform pad, itself uniform. We verify the structural part:
        // first k−1 fragments are identical across different rumors when the
        // RNG stream is replayed.
        let data_a = vec![0u8; 32];
        let data_b = vec![0xFFu8; 32];
        let frags_a = split(&mut SmallRng::seed_from_u64(9), &data_a, 4);
        let frags_b = split(&mut SmallRng::seed_from_u64(9), &data_b, 4);
        for i in 0..3 {
            assert_eq!(frags_a[i], frags_b[i], "pad {i} is data-independent");
        }
        assert_ne!(frags_a[3], frags_b[3]);
    }

    #[test]
    fn last_fragment_is_masked_by_pads() {
        // With k ≥ 2 the data-dependent fragment is XOR-masked: it differs
        // from the raw data whenever the combined pad is non-zero.
        let mut rng = SmallRng::seed_from_u64(2);
        let data = vec![0u8; 64];
        let frags = split(&mut rng, &data, 2);
        // Pad of 64 random bytes is all-zero with probability 2^-512.
        assert_ne!(frags[1], data);
        // And it equals the XOR of data with the pad.
        let refs: Vec<&[u8]> = frags.iter().map(|f| f.as_slice()).collect();
        assert_eq!(merge(&refs).unwrap(), data);
    }

    #[test]
    fn merge_rejects_mismatched_or_empty() {
        assert_eq!(merge(&[]), None);
        let a = [1u8, 2];
        let b = [1u8, 2, 3];
        assert_eq!(merge(&[&a, &b]), None);
    }

    #[test]
    fn k_equals_one_is_identity() {
        let mut rng = SmallRng::seed_from_u64(3);
        let data = vec![5u8, 6, 7];
        let frags = split(&mut rng, &data, 1);
        assert_eq!(frags, vec![data]);
    }

    #[test]
    #[should_panic(expected = "at least one fragment")]
    fn zero_fragments_panics() {
        let mut rng = SmallRng::seed_from_u64(4);
        let _ = split(&mut rng, &[1], 0);
    }
}
