//! # congos — Confidential Continuous Gossip
//!
//! A production-quality implementation of **CONGOS**, the confidential
//! continuous-gossip algorithm of Georgiou, Gilbert & Kowalski
//! (*Confidential Gossip*, ICDCS 2011 / Distributed Computing). The problem:
//! rumors `ρ = ⟨z, d, D⟩` are injected continuously at arbitrary processes,
//! each must reach its destination set `ρ.D` within deadline `ρ.d`
//! (*Quality of Delivery*), and — the confidential part — **no process
//! outside `ρ.D` may ever learn `ρ.z`** (Definition 2), even though the
//! whole system collaborates in dissemination and an adaptive adversary
//! crashes and restarts processes at will.
//!
//! The algorithm reconciles collaboration with confidentiality by XOR
//! secret splitting ([`split`]): each rumor is split, independently per
//! partition, into fragments that individually carry zero information; each
//! fragment is confined to one group of a partition of the processes
//! ([`partition`]); groups spread their fragment internally with a filtered
//! continuous-gossip service, hand fragments across group boundaries
//! through sampled *proxies* (`Proxy[ℓ]`), and deliver fragments to final
//! destinations with `GroupDistribution[ℓ]` — which also publishes
//! *sanitized* hit-sets so sources can confirm delivery without content
//! ever crossing a group boundary. Unconfirmed rumors are "shot" directly
//! to their destinations as the deadline expires, making Quality of
//! Delivery hold with probability 1.
//!
//! Collusion (Section 6) is handled by the same machinery with `τ+1`-way
//! splits over `Θ(τ log n)` random partitions
//! ([`CongosConfig::collusion_tolerant`]).
//!
//! ## Quickstart
//!
//! ```
//! use congos::{CongosNode, CongosConfig};
//! use congos_adversary::{CrriAdversary, NoFailures, OneShot, RumorSpec};
//! use congos_sim::{Engine, EngineConfig, ProcessId, Round};
//!
//! let n = 16;
//! let secret = b"the launch code".to_vec();
//! let dest = vec![ProcessId::new(3), ProcessId::new(8)];
//! let rumor = RumorSpec::new(0, secret.clone(), 64, dest.clone());
//! let mut adv = CrriAdversary::new(
//!     NoFailures,
//!     OneShot::new(Round(0), vec![(ProcessId::new(0), rumor)]),
//! );
//! let mut engine = Engine::<CongosNode>::new(EngineConfig::new(n).seed(7));
//! engine.run(65, &mut adv);
//!
//! // Both destinations — and only destinations — learned the secret.
//! let receivers: Vec<ProcessId> =
//!     engine.outputs().iter().map(|o| o.process).collect();
//! assert_eq!(receivers.len(), 2);
//! assert!(dest.iter().all(|d| receivers.contains(d)));
//! assert!(engine.outputs().iter().all(|o| o.value.data == secret));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod config;
pub mod fragstore;
pub mod messages;
pub mod node;
pub mod oneshot;
pub mod partition;
pub mod rumor;
pub mod services;
pub mod split;

pub use audit::{AuditReport, ConfidentialityAuditor};
pub use fragstore::{DestRef, FragBytes, FragStore, FragStoreStats};
pub use config::{CongosConfig, CoverTrafficConfig, PartitionScheme};
pub use messages::{tag_by_name, CongosMsg, Fragment, GossipPayload, TAG_ALL_GOSSIP, TAG_GD,
    TAG_GROUP_GOSSIP, TAG_PROXY, TAG_SHOOT};
pub use node::{CongosNode, NodeStats};
pub use partition::{Partition, PartitionSet};
pub use rumor::{CongosInput, CongosRumorId, DeliveredRumor, DeliveryPath, Rumor};
