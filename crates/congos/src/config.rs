//! Protocol configuration.

use congos_gossip::{FanoutParams, GossipStrategy};
use congos_sim::clock::deadline_cap;

/// Which partition scheme a configuration uses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PartitionScheme {
    /// `⌈log n⌉` bit partitions of 2 groups (base CONGOS, Section 4).
    Bits,
    /// `⌈c·τ·log n⌉` random partitions of `τ+1` groups
    /// (collusion-tolerant CONGOS, Section 6.2), derived from a shared seed.
    Random {
        /// Partition-count constant `c`.
        c: f64,
        /// Shared derivation seed (same at every process).
        seed: u64,
    },
}

/// Configuration of a CONGOS deployment. All processes must use identical
/// configuration — it plays the role of the "algorithm and `[n]`" a process
/// retains across restarts.
///
/// ```
/// use congos::CongosConfig;
///
/// let cfg = CongosConfig::collusion_tolerant(3, 42).without_degenerate_shortcut();
/// assert_eq!(cfg.tau, 3);
/// assert!(cfg.validate(64).is_ok());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CongosConfig {
    /// Collusion tolerance `τ`: rumors are split into `τ+1` fragments and
    /// confidentiality holds against coalitions of up to `τ` curious
    /// processes. `τ = 1` with [`PartitionScheme::Bits`] is the base
    /// algorithm (a process "colluding with itself", as Section 6.2 puts
    /// it).
    pub tau: usize,
    /// Partition scheme.
    pub scheme: PartitionScheme,
    /// Fanout parameters for the Proxy and GroupDistribution services
    /// (paper: `Θ(n^{1+48/√dline} log n / |collaborators|)`).
    pub service_fanout: FanoutParams,
    /// Fanout parameters for the GroupGossip/AllGossip substrate instances
    /// (paper: `Θ(n^{1+6/∛dline} polylog n)` collectively).
    pub gossip_fanout: FanoutParams,
    /// Substrate target selection: randomized epidemic (default) or the
    /// deterministic expander schedule — the de-randomized construction of
    /// [13], which the paper's substrate actually uses.
    pub gossip_strategy: GossipStrategy,
    /// Deadline cap constant `c` in `c·log⁶ n` (Section 4.2 trims longer
    /// deadlines to this; it does not change asymptotic complexity).
    pub deadline_cap_c: f64,
    /// Deadline classes shorter than this bypass the pipeline and are sent
    /// directly by the source (the paper assumes `dline > 48`; below that
    /// the desired bound "can be trivially met simply by sending rumors
    /// directly", Section 5).
    pub direct_threshold: u64,
    /// Ablation hook: cap the number of partitions used (the paper needs
    /// all `log n` of them against adaptive group-killing adversaries —
    /// experiment E9 measures what a single partition costs in fallbacks).
    pub max_partitions: Option<usize>,
    /// Apply Section 6.2's shortcut "if τ ≥ n/log²n send everything
    /// directly". The threshold is asymptotic: at laptop scale it triggers
    /// already at τ = 2, which would make the collusion pipeline
    /// unmeasurable — experiments that study the pipeline itself disable
    /// the shortcut (`false`). Defaults to `true` (the paper's rule).
    pub degenerate_shortcut: bool,
    /// Section 7 extension: hide each rumor's destination set. The source
    /// expands every injected rumor into `n` singleton-destination rumors —
    /// real content for actual destinations, uniform noise for everyone
    /// else — all the same size. A one-byte marker *inside the
    /// secret-shared payload* (so only a legitimate reassembler can read
    /// it) tells recipients whether their copy is real; observers see `n`
    /// indistinguishable singleton rumors. The paper: message complexity
    /// unchanged, message size significantly increased — experiment E10
    /// measures both.
    pub hide_destinations: bool,
    /// Section 7 extension: hide the *existence* of rumors by continual
    /// injection of content-free decoys.
    pub cover_traffic: Option<CoverTrafficConfig>,
    /// Memory-lean service metadata, for large-`n` deployments:
    ///
    /// * `ProxyMeta` collaborator beacons and `GdShare` hit-set shares are
    ///   injected as *best-effort* gossip rumors — epidemic forwarding and
    ///   delivery as usual, but no per-member acknowledgment and no
    ///   deadline fallback. Metadata consumers need only eventual
    ///   delivery; the guaranteed-delivery machinery charges
    ///   `Θ(|group|)` acks/fallbacks per metadata rumor, an `n²`-per-
    ///   iteration steady-state term (every process beacons every
    ///   iteration).
    /// * The block-end sanitized hit-set (`Distribution`) is published by
    ///   one designated member per group (the lowest id) instead of every
    ///   member — the redundant copies are pure fault-tolerance slack, and
    ///   with each copy staying active for a whole block in every
    ///   process's forwarding set they are the single largest term of the
    ///   resident footprint (`Θ(n² log n)` bytes system-wide).
    ///
    /// Rumor Quality-of-Delivery is unaffected either way (worst case a
    /// missed confirmation, which the source's deadline fallback covers).
    /// Default `false`: the redundant paths, preserving bit-identical
    /// traces with prior releases. The memory sweeps (E3m) enable it to
    /// keep large-`n` points tractable.
    pub lean_metadata: bool,
}

/// Configuration of the cover-traffic extension.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoverTrafficConfig {
    /// Per-process, per-round probability of injecting a decoy.
    pub rate: f64,
    /// Decoy payload length (should match typical real rumor sizes).
    pub data_len: usize,
    /// Decoy deadline in rounds.
    pub deadline: u64,
}

impl CongosConfig {
    /// The base (no-collusion) configuration from Section 4, with
    /// laptop-scale fanout constants (see `FanoutParams` docs — the paper's
    /// asymptotic constants saturate the per-group cap at small `n`).
    pub fn base() -> Self {
        CongosConfig {
            tau: 1,
            scheme: PartitionScheme::Bits,
            service_fanout: FanoutParams {
                alpha: 2.0,
                gamma: 4.0,
                root: 2,
            },
            gossip_fanout: FanoutParams {
                alpha: 1.0,
                gamma: 2.0,
                root: 3,
            },
            gossip_strategy: GossipStrategy::Random,
            deadline_cap_c: 1.0,
            direct_threshold: 32,
            max_partitions: None,
            degenerate_shortcut: true,
            hide_destinations: false,
            cover_traffic: None,
            lean_metadata: false,
        }
    }

    /// The paper's literal asymptotic constants (`γ = 48` for services,
    /// `γ = 6` for gossip). At laptop scale these saturate the fanout cap —
    /// useful for the saturation-crossover ablation (experiment E9).
    pub fn paper_constants() -> Self {
        CongosConfig {
            service_fanout: FanoutParams::proxy(),
            gossip_fanout: FanoutParams::continuous_gossip(),
            ..Self::base()
        }
    }

    /// Collusion-tolerant configuration for tolerance `τ` (Section 6.2):
    /// `τ+1`-way splits over `⌈c·τ·log n⌉` random partitions.
    ///
    /// # Panics
    ///
    /// Panics if `tau == 0`.
    pub fn collusion_tolerant(tau: usize, seed: u64) -> Self {
        assert!(tau >= 1, "τ must be at least 1");
        CongosConfig {
            tau,
            scheme: PartitionScheme::Random { c: 2.0, seed },
            ..Self::base()
        }
    }

    /// Overrides the service fanout.
    pub fn service_fanout(mut self, params: FanoutParams) -> Self {
        self.service_fanout = params;
        self
    }

    /// Overrides the gossip fanout.
    pub fn gossip_fanout(mut self, params: FanoutParams) -> Self {
        self.gossip_fanout = params;
        self
    }

    /// Caps the number of partitions (ablation only; see `max_partitions`).
    pub fn max_partitions(mut self, cap: usize) -> Self {
        self.max_partitions = Some(cap);
        self
    }

    /// Selects the substrate's target-selection strategy.
    pub fn gossip_strategy(mut self, strategy: GossipStrategy) -> Self {
        self.gossip_strategy = strategy;
        self
    }

    /// Enables memory-lean service metadata (see `lean_metadata`).
    pub fn lean_metadata(mut self, enabled: bool) -> Self {
        self.lean_metadata = enabled;
        self
    }

    /// Disables the degenerate-collusion direct-send shortcut (see
    /// `degenerate_shortcut`).
    pub fn without_degenerate_shortcut(mut self) -> Self {
        self.degenerate_shortcut = false;
        self
    }

    /// Enables the destination-hiding extension (see `hide_destinations`).
    pub fn hide_destinations(mut self) -> Self {
        self.hide_destinations = true;
        self
    }

    /// Enables the cover-traffic extension (see `cover_traffic`).
    pub fn cover_traffic(mut self, cfg: CoverTrafficConfig) -> Self {
        self.cover_traffic = Some(cfg);
        self
    }

    /// `true` when payloads carry the real/decoy marker byte (needed by
    /// either Section 7 extension).
    pub fn framing_enabled(&self) -> bool {
        self.hide_destinations || self.cover_traffic.is_some()
    }

    /// The deadline cap `c·log⁶ n` in rounds for system size `n`.
    pub fn deadline_cap(&self, n: usize) -> u64 {
        deadline_cap(n, self.deadline_cap_c)
    }

    /// `true` when the collusion-tolerant variant must abandon the pipeline
    /// entirely (`τ ≥ n/log²n`, Section 6.2: "all rumors are sent directly
    /// to their destinations").
    pub fn degenerate_collusion(&self, n: usize) -> bool {
        if self.tau <= 1 || !self.degenerate_shortcut {
            return false;
        }
        let lg = (n.max(2) as f64).log2();
        (self.tau as f64) >= n as f64 / (lg * lg)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        if self.tau == 0 {
            return Err("τ must be ≥ 1".into());
        }
        // n ≤ 1 needs no partitions at all (everything is local), so the
        // group-count constraint does not bind there.
        if self.tau + 1 > n && n > 1 && !self.degenerate_collusion(n) {
            return Err(format!("τ+1 = {} groups exceed n = {n}", self.tau + 1));
        }
        if matches!(self.scheme, PartitionScheme::Bits) && self.tau != 1 {
            return Err("bit partitions support only τ = 1".into());
        }
        if self.direct_threshold < 32 {
            return Err("direct_threshold below 32 leaves blocks with no whole iteration".into());
        }
        Ok(())
    }
}

impl Default for CongosConfig {
    fn default() -> Self {
        Self::base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_config_is_valid() {
        assert_eq!(CongosConfig::base().validate(16), Ok(()));
        assert_eq!(CongosConfig::default(), CongosConfig::base());
    }

    #[test]
    fn collusion_config_checks_group_count() {
        let cfg = CongosConfig::collusion_tolerant(5, 1);
        // n=4 with τ=5 is the degenerate regime (τ ≥ n/log²n): valid, all
        // rumors go direct, so the group-count constraint does not bind.
        assert!(cfg.degenerate_collusion(4));
        assert_eq!(cfg.validate(4), Ok(()));
        assert_eq!(cfg.validate(64), Ok(()));
        // A non-degenerate configuration whose groups cannot fit is invalid.
        let tight = CongosConfig::collusion_tolerant(5, 1);
        assert!(!tight.degenerate_collusion(1 << 12));
        assert_eq!(tight.validate(1 << 12), Ok(()));
    }

    #[test]
    fn bits_scheme_requires_tau_one() {
        let cfg = CongosConfig {
            tau: 2,
            ..CongosConfig::base()
        };
        assert!(cfg.validate(64).is_err());
    }

    #[test]
    fn degenerate_collusion_threshold() {
        // n = 64, log²n = 36, n/log²n ≈ 1.78 ⇒ τ=2 is degenerate.
        let cfg = CongosConfig::collusion_tolerant(2, 0);
        assert!(cfg.degenerate_collusion(64));
        // Large n: τ=2 is comfortably below n/log²n.
        assert!(!cfg.degenerate_collusion(1 << 14));
        // The base algorithm never degenerates.
        assert!(!CongosConfig::base().degenerate_collusion(4));
    }

    #[test]
    fn paper_constants_match() {
        let cfg = CongosConfig::paper_constants();
        assert_eq!(cfg.service_fanout.gamma, 48.0);
        assert_eq!(cfg.gossip_fanout.gamma, 6.0);
    }
}
