//! Wire types: fragments and the multiplexed CONGOS message.

use std::sync::Arc;

use congos_gossip::GossipWire;
use congos_sim::{ProcessId, Tag};

use crate::fragstore::{DestRef, FragBytes};
use crate::rumor::{CongosRumorId, Rumor};

/// One fragment of a split rumor, for one partition.
///
/// The `bytes` carry no information about the rumor on their own (XOR
/// secret sharing, [`crate::split`]); everything else is the metadata the
/// paper deliberately attaches to fragments — destination set, deadline
/// class, identity — which the protocol needs for routing and confirmation
/// and which the confidentiality definition permits to circulate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fragment {
    /// Identity of the original rumor.
    pub rid: CongosRumorId,
    /// Workload id (experiment correlation only).
    pub wid: u64,
    /// Partition index `ℓ` this split belongs to.
    pub partition: u16,
    /// Group index of this fragment within partition `ℓ` (fragment `g` is
    /// confined to group `g`).
    pub group: u8,
    /// Total fragments in this split (`τ+1`).
    pub k: u8,
    /// The fragment bytes (a uniform pad, or the XOR-masked residue),
    /// interned in the [`crate::fragstore::FragStore`]: every copy of this
    /// fragment shares one allocation.
    pub bytes: FragBytes,
    /// The rumor's destination set `ρ.D` (metadata), interned: all `k·p`
    /// fragments of one rumor share one allocation.
    pub dest: DestRef,
    /// Trimmed deadline class of the rumor (selects the protocol instance).
    pub dline: u64,
}

impl Fragment {
    /// Key identifying the split this fragment belongs to.
    pub fn split_key(&self) -> (CongosRumorId, u16) {
        (self.rid, self.partition)
    }

    /// Exact wire size in bytes — what the codec's fragment encoder emits:
    /// rumor id (16) + wid (8) + partition (2) + group (1) + k (1) +
    /// length-prefixed payload (4 + len) + destination bitmap
    /// (4 + ⌈universe/8⌉) + deadline (8). The round-trip test in
    /// `congos-net` pins this against the encoder byte-for-byte.
    pub fn wire_size(&self) -> u64 {
        44 + self.bytes.len() as u64 + self.dest.universe().div_ceil(8) as u64
    }
}

/// Payload carried inside GroupGossip/AllGossip instances.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GossipPayload {
    /// Rumor fragments spreading within their group (the source's own-group
    /// injection, and proxies re-sharing fragments received from other
    /// groups).
    Fragments(Vec<Fragment>),
    /// Proxy-service iteration metadata shared within a group: processes the
    /// sender has learned are failed proxies, plus an "I am an active
    /// collaborator" beacon (Figure 9's `⟨proxy-buffer, failed-proxies, i⟩`;
    /// the buffer fragments ride separately as [`GossipPayload::Fragments`]).
    ProxyMeta {
        /// Failed proxies learned this block.
        failed_proxies: Vec<ProcessId>,
    },
    /// GroupDistribution iteration metadata shared within a group:
    /// the sender's hit-set (Figure 10's `⟨share, hitSet, i⟩`). The group is
    /// implicit — shares never leave the group that produced them.
    GdShare {
        /// `(target, rumor id)` pairs already served.
        hits: Vec<(ProcessId, CongosRumorId)>,
    },
    /// Sanitized distribution metadata broadcast via AllGossip at block end
    /// (Figure 10's `⟨distribution, i, ℓ, hitSet⟩`): which fragments were
    /// sent to which processes — identities only, no fragment bytes.
    Distribution {
        /// Partition the hits belong to.
        partition: u16,
        /// Group of the *sender* in that partition (whose fragment was
        /// distributed).
        group: u8,
        /// `(target, rumor id)` pairs served.
        hits: Vec<(ProcessId, CongosRumorId)>,
    },
}

impl GossipPayload {
    /// Estimated wire size in bytes.
    pub fn wire_size(&self) -> u64 {
        match self {
            GossipPayload::Fragments(frags) => {
                frags.iter().map(Fragment::wire_size).sum::<u64>() + 4
            }
            GossipPayload::ProxyMeta { failed_proxies } => {
                4 * failed_proxies.len() as u64 + 8
            }
            GossipPayload::GdShare { hits } => 20 * hits.len() as u64 + 8,
            GossipPayload::Distribution { hits, .. } => 20 * hits.len() as u64 + 12,
        }
    }
}

/// Identifies one gossip endpoint within a process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GossipLane {
    /// `GroupGossip[ℓ]` of a deadline class (the filtered instance for the
    /// sender's group in partition `ℓ`).
    Group {
        /// Deadline class.
        dline: u64,
        /// Partition index.
        ell: u16,
    },
    /// The unfiltered `AllGossip` of a deadline class.
    All {
        /// Deadline class.
        dline: u64,
    },
}

/// The multiplexed message type of a CONGOS process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CongosMsg {
    /// Traffic of a gossip endpoint. Payloads are `Arc`-shared: epidemic
    /// push clones a batch per target every round, and the payloads are the
    /// bulk of the bytes.
    Gossip {
        /// Which endpoint.
        lane: GossipLane,
        /// The gossip wire message.
        wire: Box<GossipWire<Arc<GossipPayload>>>,
    },
    /// A proxy request (Figure 9, round 1 of an iteration): fragments the
    /// receiver is asked to spread in its own group.
    ProxyRequest {
        /// Deadline class.
        dline: u64,
        /// Partition index.
        ell: u16,
        /// Fragments belonging to the receiver's group.
        fragments: Vec<Fragment>,
    },
    /// Acknowledgment that proxying succeeded (Figure 9, last round).
    ProxyAck {
        /// Deadline class.
        dline: u64,
        /// Partition index.
        ell: u16,
    },
    /// GroupDistribution delivery (Figure 10, round 2): fragments whose
    /// destination set contains the receiver.
    Partials {
        /// Deadline class.
        dline: u64,
        /// Partition index.
        ell: u16,
        /// The "appropriate" fragments for this receiver.
        fragments: Vec<Fragment>,
    },
    /// The deadline fallback: the whole rumor, sent directly to a
    /// destination (Figure 8's `⟨shoot, r⟩`). Also used for deadlines too
    /// short for the pipeline (`direct = true`).
    Shoot {
        /// The rumor (receiver is guaranteed to be in `rumor.dest`).
        rumor: Rumor,
        /// Identity, for delivery dedup.
        rid: CongosRumorId,
        /// `true` when sent eagerly (short deadline / degenerate collusion)
        /// rather than as an expiring-deadline fallback.
        direct: bool,
    },
}

impl CongosMsg {
    /// Estimated wire size in bytes — the basis for the communication-
    /// complexity metrics (Section 7 of the paper).
    pub fn wire_size(&self) -> u64 {
        match self {
            CongosMsg::Gossip { wire, .. } => {
                8 + match wire.as_ref() {
                    congos_gossip::GossipWire::Push(rumors) => rumors
                        .iter()
                        .map(|r| {
                            r.payload.wire_size()
                                + r.dest.universe().div_ceil(8) as u64
                                + 32
                        })
                        .sum::<u64>(),
                    congos_gossip::GossipWire::Ack(ids) => 16 * ids.len() as u64,
                }
            }
            CongosMsg::ProxyRequest { fragments, .. }
            | CongosMsg::Partials { fragments, .. } => {
                fragments.iter().map(Fragment::wire_size).sum::<u64>() + 12
            }
            CongosMsg::ProxyAck { .. } => 12,
            CongosMsg::Shoot { rumor, .. } => {
                rumor.data.len() as u64 + rumor.dest.universe().div_ceil(8) as u64 + 32
            }
        }
    }
}

/// Tag for Proxy service traffic (requests + acks), metered per Lemma 7.
pub const TAG_PROXY: Tag = Tag("proxy");
/// Tag for GroupDistribution service traffic, metered per Lemma 7.
pub const TAG_GD: Tag = Tag("group_dist");
/// Tag for the filtered GroupGossip substrate instances.
pub const TAG_GROUP_GOSSIP: Tag = Tag("group_gossip");
/// Tag for the unfiltered AllGossip substrate instance.
pub const TAG_ALL_GOSSIP: Tag = Tag("all_gossip");
/// Tag for deadline-fallback and short-deadline direct sends.
pub const TAG_SHOOT: Tag = Tag("shoot");

/// Resolves a CONGOS tag by its wire name (used by network runtimes that
/// transmit tag names as strings).
pub fn tag_by_name(name: &str) -> Option<Tag> {
    match name {
        "proxy" => Some(TAG_PROXY),
        "group_dist" => Some(TAG_GD),
        "group_gossip" => Some(TAG_GROUP_GOSSIP),
        "all_gossip" => Some(TAG_ALL_GOSSIP),
        "shoot" => Some(TAG_SHOOT),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congos_sim::Round;

    #[test]
    fn split_key_groups_fragments_of_one_split() {
        let rid = CongosRumorId {
            source: ProcessId::new(0),
            birth: Round(3),
            seq: 0,
        };
        let f = |group: u8, partition: u16| Fragment {
            rid,
            wid: 0,
            partition,
            group,
            k: 2,
            bytes: vec![].into(),
            dest: congos_sim::IdSet::empty(4).into(),
            dline: 64,
        };
        assert_eq!(f(0, 1).split_key(), f(1, 1).split_key());
        assert_ne!(f(0, 1).split_key(), f(0, 2).split_key());
    }
}
