//! The confidentiality auditor.
//!
//! An omniscient observer (it sees every delivered message) that tracks,
//! for every process, every rumor fragment the process has *ever* received
//! — exactly the knowledge an honest-but-curious process could hoard — and
//! checks the paper's guarantees on-line:
//!
//! * **Confidentiality (Definition 2 / Lemma 3 / Lemma 14):** no process
//!   outside `ρ.D ∪ {source}` ever collects all `k` fragments of any single
//!   `(rumor, partition)` split, nor receives the whole rumor; with
//!   registered coalitions (the `CRRI(τ)` adversary of Section 6), the
//!   *pooled* knowledge of each coalition is checked the same way.
//! * **Delivery integrity:** every value a protocol delivers matches the
//!   injected data and lands only at destination processes.
//!
//! Fragments from different partitions use independent pads, so
//! reconstruction is only possible within one `(rumor, partition)` pair —
//! which is what the auditor checks (XOR-combining fragments across
//! partitions yields uniform noise; see [`crate::split`]).
//!
//! The auditor is topology-agnostic by construction: every verdict is
//! driven by messages that were *actually delivered* (`on_deliver` /
//! `on_output`), never by the assumption that a sent message arrives. On a
//! sparse or churning topology the engine simply delivers fewer envelopes
//! and the auditor sees exactly that smaller set — confidentiality
//! verdicts need no connectivity gate, and dropped links can only ever
//! *shrink* what a curious process or coalition learns.

use std::collections::{HashMap, HashSet};

use congos_sim::{EnvelopeRef, IdSet, Observer, OutputRecord, ProcessId, Round};

use crate::messages::{CongosMsg, Fragment, GossipPayload};
use crate::node::CongosNode;
use crate::rumor::{CongosInput, CongosRumorId, DeliveredRumor};
use crate::services::hit_history::ExpiryRing;

/// A violation the auditor detected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A process outside `ρ.D ∪ {source}` collected a full fragment set.
    NonDestinationReconstructed {
        /// The offending process.
        process: ProcessId,
        /// The rumor it can reconstruct.
        rid: CongosRumorId,
        /// The partition whose fragments completed.
        partition: u16,
    },
    /// A coalition of curious processes pooled a full fragment set.
    CoalitionReconstructed {
        /// Index of the coalition (in registration order).
        coalition: usize,
        /// The rumor it can reconstruct.
        rid: CongosRumorId,
        /// The partition whose fragments completed.
        partition: u16,
    },
    /// A whole rumor was sent to a process outside its destination set.
    WholeRumorLeaked {
        /// The receiving process.
        process: ProcessId,
        /// The leaked rumor.
        rid: CongosRumorId,
    },
    /// A delivery fired at a non-destination process.
    WrongDelivery {
        /// The delivering process.
        process: ProcessId,
        /// The rumor.
        rid: CongosRumorId,
    },
    /// A delivered value did not match the injected data.
    CorruptDelivery {
        /// The delivering process.
        process: ProcessId,
        /// The rumor.
        rid: CongosRumorId,
    },
}

#[derive(Clone, Debug)]
struct RumorMeta {
    source: ProcessId,
    dest: IdSet,
    data: Option<Vec<u8>>,
}

/// Summary of an audited execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Violations found (empty = the execution was confidential & correct).
    pub violations: Vec<Violation>,
    /// Distinct rumors observed.
    pub rumors: usize,
    /// Fragment receipts recorded.
    pub fragment_receipts: u64,
    /// Deliveries checked.
    pub deliveries: u64,
}

/// The auditor; implement as an [`Observer`] over a CONGOS engine run:
///
/// ```no_run
/// # use congos::{CongosNode, ConfidentialityAuditor};
/// # use congos_sim::{Engine, EngineConfig, NullAdversary};
/// let mut engine = Engine::<CongosNode>::new(EngineConfig::new(8));
/// let mut audit = ConfidentialityAuditor::new(8);
/// engine.run_observed(100, &mut NullAdversary, &mut audit);
/// audit.assert_clean();
/// ```
#[derive(Clone, Debug)]
pub struct ConfidentialityAuditor {
    n: usize,
    rumors: HashMap<CongosRumorId, RumorMeta>,
    /// Per process: fragments ever held, as `(rid, partition, group)`.
    holdings: Vec<HashSet<(CongosRumorId, u16, u8)>>,
    /// Per process: rumors held whole (injection or shoot).
    whole: Vec<HashSet<CongosRumorId>>,
    /// Registered coalitions of curious processes.
    coalitions: Vec<IdSet>,
    /// Fragment count `k` per (rumor, partition) split.
    split_k: HashMap<(CongosRumorId, u16), u8>,
    /// Expiry index bounding `holdings` / `split_k`: every retained entry is
    /// filed at its split's admissibility horizon `birth + 2·dline`.
    expiry: ExpiryRing<(ProcessId, CongosRumorId, u16, u8)>,
    /// Latest round observed; drives eviction.
    now: Round,
    report: AuditReport,
}

impl ConfidentialityAuditor {
    /// Creates an auditor for `n` processes, with no coalitions.
    pub fn new(n: usize) -> Self {
        ConfidentialityAuditor {
            n,
            rumors: HashMap::new(),
            holdings: vec![HashSet::new(); n],
            whole: vec![HashSet::new(); n],
            coalitions: Vec::new(),
            split_k: HashMap::new(),
            expiry: ExpiryRing::new(128),
            now: Round(0),
            report: AuditReport::default(),
        }
    }

    /// Registers a coalition: its members pool everything they ever learn.
    /// (Members that are in a rumor's destination set legitimately know the
    /// rumor; coalitions are only reported for rumors none of their members
    /// may learn.)
    pub fn add_coalition(&mut self, members: IdSet) {
        assert_eq!(members.universe(), self.n, "coalition universe mismatch");
        self.coalitions.push(members);
    }

    /// The audit findings so far.
    pub fn report(&self) -> &AuditReport {
        &self.report
    }

    /// Panics with a description of the first violation, if any.
    ///
    /// # Panics
    ///
    /// Panics if the audited execution violated confidentiality or delivery
    /// integrity.
    pub fn assert_clean(&self) {
        assert!(
            self.report.violations.is_empty(),
            "confidentiality audit failed: {:?} (of {} violations)",
            self.report.violations[0],
            self.report.violations.len()
        );
    }

    fn meta_entry(&mut self, rid: CongosRumorId, dest: &IdSet) -> &mut RumorMeta {
        self.report.rumors = self.rumors.len() + 1; // updated below if new
        let entry = self.rumors.entry(rid).or_insert_with(|| RumorMeta {
            source: rid.source,
            dest: dest.clone(),
            data: None,
        });
        entry
    }

    fn record_fragment(&mut self, holder: ProcessId, f: &Fragment) {
        self.report.fragment_receipts += 1;
        self.meta_entry(f.rid, &f.dest);
        self.report.rumors = self.rumors.len();
        self.split_k.insert((f.rid, f.partition), f.k);
        let newly = self.holdings[holder.as_usize()].insert((f.rid, f.partition, f.group));
        if !newly {
            return;
        }
        // Nothing in the protocol circulates a fragment past its split's
        // admissibility horizon, so holdings evicted at the horizon can
        // never be referenced by a later receipt — verdicts are unaffected.
        let expire = f.rid.birth.as_u64() + 2 * f.dline;
        debug_assert!(
            self.now.as_u64() <= expire,
            "fragment received past its admissibility horizon (round {}, horizon {})",
            self.now.as_u64(),
            expire
        );
        self.expiry.insert(expire, (holder, f.rid, f.partition, f.group));
        self.check_process(holder, f.rid, f.partition);
        // Coalition pooling: check every coalition containing the holder.
        for ci in 0..self.coalitions.len() {
            if self.coalitions[ci].contains(holder) {
                self.check_coalition(ci, f.rid, f.partition);
            }
        }
    }

    fn record_whole(&mut self, holder: ProcessId, rid: CongosRumorId, dest: &IdSet) {
        self.meta_entry(rid, dest);
        self.report.rumors = self.rumors.len();
        self.whole[holder.as_usize()].insert(rid);
        let meta = &self.rumors[&rid];
        if !meta.dest.contains(holder) && meta.source != holder {
            self.report.violations.push(Violation::WholeRumorLeaked {
                process: holder,
                rid,
            });
        }
    }

    fn is_entitled(&self, p: ProcessId, rid: CongosRumorId) -> bool {
        self.rumors
            .get(&rid)
            .is_some_and(|m| m.dest.contains(p) || m.source == p)
    }

    fn check_process(&mut self, p: ProcessId, rid: CongosRumorId, partition: u16) {
        if self.is_entitled(p, rid) {
            return;
        }
        let Some(&k) = self.split_k.get(&(rid, partition)) else {
            return;
        };
        let held = (0..k)
            .all(|g| self.holdings[p.as_usize()].contains(&(rid, partition, g)));
        if held {
            self.report
                .violations
                .push(Violation::NonDestinationReconstructed {
                    process: p,
                    rid,
                    partition,
                });
        }
    }

    fn check_coalition(&mut self, ci: usize, rid: CongosRumorId, partition: u16) {
        let coalition = &self.coalitions[ci];
        // A coalition containing an entitled member knows the rumor
        // legitimately.
        if coalition.iter().any(|p| self.is_entitled(p, rid)) {
            return;
        }
        let Some(&k) = self.split_k.get(&(rid, partition)) else {
            return;
        };
        let pooled_all = (0..k).all(|g| {
            coalition
                .iter()
                .any(|p| self.holdings[p.as_usize()].contains(&(rid, partition, g)))
        });
        if pooled_all {
            self.report
                .violations
                .push(Violation::CoalitionReconstructed {
                    coalition: ci,
                    rid,
                    partition,
                });
        }
    }

    /// Drops holdings whose split's admissibility horizon has passed. By
    /// the `record_fragment` assertion no admissible receipt can reference
    /// an evicted entry again, so every confidentiality verdict the full
    /// history would have produced has already been produced.
    fn evict_expired(&mut self) {
        for (p, rid, partition, group) in self.expiry.drain_expired(self.now.as_u64()) {
            self.holdings[p.as_usize()].remove(&(rid, partition, group));
            self.split_k.remove(&(rid, partition));
        }
    }

    fn record_payload(&mut self, holder: ProcessId, payload: &GossipPayload) {
        if let GossipPayload::Fragments(frags) = payload {
            for f in frags {
                self.record_fragment(holder, f);
            }
        }
        // ProxyMeta / GdShare / Distribution carry identities only — the
        // type system guarantees no fragment bytes ride along.
    }
}

impl Observer<CongosNode> for ConfidentialityAuditor {
    fn on_deliver(&mut self, env: EnvelopeRef<'_, CongosMsg>) {
        self.now = self.now.max(env.round);
        match env.payload {
            CongosMsg::Gossip { wire, .. } => {
                if let congos_gossip::GossipWire::Push(rumors) = wire.as_ref() {
                    for r in rumors.iter() {
                        self.record_payload(env.dst, r.payload.as_ref());
                    }
                }
            }
            CongosMsg::ProxyRequest { fragments, .. }
            | CongosMsg::Partials { fragments, .. } => {
                for f in fragments {
                    self.record_fragment(env.dst, f);
                }
            }
            CongosMsg::Shoot { rumor, rid, .. } => {
                // Note: the shoot payload is NOT recorded as ground truth —
                // with the Section 7 extensions payloads are framed with a
                // marker byte, and only `on_inject` sees the caller's
                // original bytes.
                self.record_whole(env.dst, *rid, &rumor.dest);
            }
            CongosMsg::ProxyAck { .. } => {}
        }
    }

    fn on_inject(&mut self, round: Round, process: ProcessId, input: &CongosInput) {
        let rid = CongosRumorId {
            source: process,
            birth: round,
            seq: 0,
        };
        let dest = IdSet::from_iter(self.n, input.dest.iter().copied());
        let meta = self.meta_entry(rid, &dest);
        meta.data = Some(input.data.clone());
        self.report.rumors = self.rumors.len();
        self.whole[process.as_usize()].insert(rid);
    }

    fn on_output(&mut self, rec: &OutputRecord<DeliveredRumor>) {
        self.report.deliveries += 1;
        let rid = rec.value.rid;
        match self.rumors.get(&rid) {
            Some(meta) => {
                if !meta.dest.contains(rec.process) {
                    self.report.violations.push(Violation::WrongDelivery {
                        process: rec.process,
                        rid,
                    });
                }
                if let Some(data) = &meta.data {
                    if *data != rec.value.data {
                        self.report.violations.push(Violation::CorruptDelivery {
                            process: rec.process,
                            rid,
                        });
                    }
                }
            }
            None => {
                // A delivery for a rumor never injected: corrupt by
                // definition.
                self.report.violations.push(Violation::CorruptDelivery {
                    process: rec.process,
                    rid,
                });
            }
        }
    }

    fn on_round_end(&mut self, round: Round) {
        self.now = self.now.max(round);
        self.evict_expired();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congos_sim::Round;

    fn rid(src: usize, birth: u64) -> CongosRumorId {
        CongosRumorId {
            source: ProcessId::new(src),
            birth: Round(birth),
            seq: 0,
        }
    }

    fn frag(n: usize, src: usize, partition: u16, group: u8, k: u8, dest: &[usize]) -> Fragment {
        Fragment {
            rid: rid(src, 0),
            wid: 0,
            partition,
            group,
            k,
            bytes: vec![1].into(),
            dest: IdSet::from_iter(n, dest.iter().map(|i| ProcessId::new(*i))).into(),
            dline: 64,
        }
    }

    #[test]
    fn partial_fragments_are_fine() {
        let mut a = ConfidentialityAuditor::new(8);
        a.record_fragment(ProcessId::new(5), &frag(8, 0, 0, 0, 2, &[1]));
        assert!(a.report().violations.is_empty());
        // Same rumor, *different partition*: still fine — independent pads.
        a.record_fragment(ProcessId::new(5), &frag(8, 0, 1, 1, 2, &[1]));
        assert!(a.report().violations.is_empty());
    }

    #[test]
    fn completing_a_split_outside_dest_is_a_violation() {
        let mut a = ConfidentialityAuditor::new(8);
        a.record_fragment(ProcessId::new(5), &frag(8, 0, 0, 0, 2, &[1]));
        a.record_fragment(ProcessId::new(5), &frag(8, 0, 0, 1, 2, &[1]));
        assert_eq!(a.report().violations.len(), 1);
        assert!(matches!(
            a.report().violations[0],
            Violation::NonDestinationReconstructed { partition: 0, .. }
        ));
    }

    #[test]
    fn destinations_and_source_may_complete_splits() {
        let mut a = ConfidentialityAuditor::new(8);
        // p1 is a destination.
        a.record_fragment(ProcessId::new(1), &frag(8, 0, 0, 0, 2, &[1]));
        a.record_fragment(ProcessId::new(1), &frag(8, 0, 0, 1, 2, &[1]));
        // p0 is the source.
        a.record_fragment(ProcessId::new(0), &frag(8, 0, 0, 0, 2, &[1]));
        a.record_fragment(ProcessId::new(0), &frag(8, 0, 0, 1, 2, &[1]));
        a.assert_clean();
    }

    #[test]
    fn coalition_pooling_is_detected() {
        let mut a = ConfidentialityAuditor::new(8);
        a.add_coalition(IdSet::from_iter(8, [ProcessId::new(5), ProcessId::new(6)]));
        a.record_fragment(ProcessId::new(5), &frag(8, 0, 0, 0, 3, &[1]));
        a.record_fragment(ProcessId::new(6), &frag(8, 0, 0, 1, 3, &[1]));
        assert!(a.report().violations.is_empty(), "2 of 3 fragments pooled");
        a.record_fragment(ProcessId::new(6), &frag(8, 0, 0, 2, 3, &[1]));
        assert_eq!(a.report().violations.len(), 1);
        assert!(matches!(
            a.report().violations[0],
            Violation::CoalitionReconstructed { coalition: 0, .. }
        ));
    }

    #[test]
    fn coalition_with_entitled_member_is_legitimate() {
        let mut a = ConfidentialityAuditor::new(8);
        // p1 is in the destination set and in the coalition.
        a.add_coalition(IdSet::from_iter(8, [ProcessId::new(1), ProcessId::new(6)]));
        a.record_fragment(ProcessId::new(1), &frag(8, 0, 0, 0, 2, &[1]));
        a.record_fragment(ProcessId::new(6), &frag(8, 0, 0, 1, 2, &[1]));
        a.assert_clean();
    }

    #[test]
    fn whole_rumor_to_non_destination_is_a_leak() {
        let mut a = ConfidentialityAuditor::new(4);
        let dest = IdSet::from_iter(4, [ProcessId::new(1)]);
        a.record_whole(ProcessId::new(2), rid(0, 0), &dest);
        assert_eq!(a.report().violations.len(), 1);
        assert!(matches!(
            a.report().violations[0],
            Violation::WholeRumorLeaked { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "confidentiality audit failed")]
    fn assert_clean_panics_on_violation() {
        let mut a = ConfidentialityAuditor::new(4);
        let dest = IdSet::from_iter(4, [ProcessId::new(1)]);
        a.record_whole(ProcessId::new(2), rid(0, 0), &dest);
        a.assert_clean();
    }
}

#[cfg(test)]
mod output_tests {
    use super::*;
    use crate::rumor::{DeliveredRumor, DeliveryPath};
    use congos_sim::{OutputRecord, Round};

    fn rid(src: usize) -> CongosRumorId {
        CongosRumorId {
            source: ProcessId::new(src),
            birth: Round(0),
            seq: 0,
        }
    }

    fn inject(a: &mut ConfidentialityAuditor, src: usize, data: &[u8], dest: &[usize]) {
        let input = CongosInput {
            wid: 0,
            data: data.to_vec(),
            deadline: 64,
            dest: dest.iter().map(|i| ProcessId::new(*i)).collect(),
        };
        Observer::<crate::node::CongosNode>::on_inject(a, Round(0), ProcessId::new(src), &input);
    }

    fn output(a: &mut ConfidentialityAuditor, at: usize, src: usize, data: &[u8]) {
        let rec = OutputRecord {
            round: Round(5),
            process: ProcessId::new(at),
            value: DeliveredRumor {
                wid: 0,
                rid: rid(src),
                data: data.to_vec(),
                via: DeliveryPath::Fragments,
            },
        };
        Observer::<crate::node::CongosNode>::on_output(a, &rec);
    }

    #[test]
    fn correct_delivery_is_clean() {
        let mut a = ConfidentialityAuditor::new(4);
        inject(&mut a, 0, b"data", &[2]);
        output(&mut a, 2, 0, b"data");
        a.assert_clean();
        assert_eq!(a.report().deliveries, 1);
    }

    #[test]
    fn wrong_destination_is_flagged() {
        let mut a = ConfidentialityAuditor::new(4);
        inject(&mut a, 0, b"data", &[2]);
        output(&mut a, 3, 0, b"data");
        assert!(matches!(
            a.report().violations[0],
            Violation::WrongDelivery { .. }
        ));
    }

    #[test]
    fn corrupted_payload_is_flagged() {
        let mut a = ConfidentialityAuditor::new(4);
        inject(&mut a, 0, b"data", &[2]);
        output(&mut a, 2, 0, b"wrong");
        assert!(matches!(
            a.report().violations[0],
            Violation::CorruptDelivery { .. }
        ));
    }

    #[test]
    fn delivery_of_unknown_rumor_is_corrupt() {
        let mut a = ConfidentialityAuditor::new(4);
        output(&mut a, 2, 0, b"ghost");
        assert!(matches!(
            a.report().violations[0],
            Violation::CorruptDelivery { .. }
        ));
    }
}
