//! # congos-net — a bulk-synchronous TCP runtime for CONGOS
//!
//! Runs real CONGOS nodes as OS threads or processes communicating over
//! **TCP sockets** with a length-prefixed hand-rolled binary wire format
//! (see [`codec`]) — the protocol logic from the `congos` crate, unchanged,
//! on an actual network stack. Rounds are bulk-synchronous supersteps: each
//! node sends its round's messages to its peers' sockets, follows with an
//! end-of-round marker, and blocks until it has received every peer's
//! marker before computing.
//!
//! The round loop itself lives in `congos_sim::transport` — a node here is
//! a [`congos_sim::transport::NodeDriver`] over a
//! [`transport::TcpTransport`], the same generic driver the simulator's
//! `MemTransport` path uses, so the two runtimes cannot drift apart.
//!
//! Like the in-process threaded runtime, this backend is failure-free (an
//! *adaptive* adversary is definitionally a lock-step construct — see
//! `congos_sim::threaded`); its purpose is deployment realism: the wire
//! types serialize, the rounds synchronize over sockets, and the
//! confidentiality properties don't depend on any simulator affordance.
//!
//! ```no_run
//! use congos_net::{NetConfig, run_cluster};
//! use congos_sim::ProcessId;
//!
//! let report = run_cluster(
//!     NetConfig::new(4, 18300).rounds(70).seed(7),
//!     vec![(0, ProcessId::new(0), congos::CongosInput {
//!         wid: 0,
//!         data: b"over real sockets".to_vec(),
//!         deadline: 64,
//!         dest: vec![ProcessId::new(2)],
//!     })],
//! ).expect("cluster run");
//! assert_eq!(report.deliveries.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod runtime;
pub mod transport;

pub use codec::{decode_frame, encode_frame, WireFrame};
pub use runtime::{run_cluster, run_node_process, NetConfig, NetReport, NodeReport};
pub use transport::TcpTransport;
