//! The bulk-synchronous TCP cluster runtime.

use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;

use congos::{tag_by_name, CongosConfig, CongosInput, CongosNode, DeliveredRumor};
use congos_sim::rng::{fork_rng, fork_seed};
use congos_sim::topology::{Topology, TopologySpec};
use congos_sim::{Context, Envelope, Inbox, OutputRecord, ProcessId, Protocol, Round, Tag};

use crate::codec::{decode_frame, encode_frame, WireFrame};

/// Configuration of a localhost CONGOS cluster.
#[derive(Clone, Debug)]
pub struct NetConfig {
    n: usize,
    base_port: u16,
    seed: u64,
    rounds: u64,
    congos: CongosConfig,
    topology: TopologySpec,
}

impl NetConfig {
    /// A cluster of `n` nodes listening on `base_port..base_port+n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the port range would overflow.
    pub fn new(n: usize, base_port: u16) -> Self {
        assert!(n > 0, "need at least one node");
        assert!(
            base_port.checked_add(n as u16).is_some(),
            "port range overflow"
        );
        NetConfig {
            n,
            base_port,
            seed: 0,
            rounds: 1,
            congos: CongosConfig::base(),
            topology: TopologySpec::Complete,
        }
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of rounds.
    pub fn rounds(mut self, rounds: u64) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the CONGOS protocol configuration.
    pub fn congos(mut self, cfg: CongosConfig) -> Self {
        self.congos = cfg;
        self
    }

    /// Sets the communication topology. Every node derives the same seeded
    /// edge set from `(topology, n, seed)` as the simulator, and drops
    /// outbound frames for links absent in the current round — the
    /// networked cluster and `sim::engine` deliver over identical graphs.
    ///
    /// # Panics
    ///
    /// Panics if the spec cannot be instantiated over `n` nodes.
    pub fn topology(mut self, topology: TopologySpec) -> Self {
        if let Err(e) = topology.validate(self.n) {
            panic!("invalid topology {topology} for n={}: {e}", self.n);
        }
        self.topology = topology;
        self
    }
}

/// Result of a cluster run.
#[derive(Debug)]
pub struct NetReport {
    /// Every delivered rumor, ordered by `(round, process)`.
    pub deliveries: Vec<OutputRecord<DeliveredRumor>>,
    /// Total protocol messages sent over sockets (excluding round markers
    /// and local self-deliveries).
    pub messages: u64,
    /// Outbound messages dropped at the sender because the topology had no
    /// link to the destination that round (0 on the complete topology).
    pub topology_drops: u64,
    /// Rounds executed.
    pub rounds: u64,
}

type Writers = Vec<Option<BufWriter<TcpStream>>>;

/// Runs a CONGOS cluster over localhost TCP to completion.
///
/// `injections` schedules rumors as `(round, process, input)`; at most one
/// injection per process per round (the model's rule).
///
/// # Errors
///
/// Returns any socket-level error (bind, connect, serialize) encountered
/// while running the cluster.
pub fn run_cluster(
    cfg: NetConfig,
    injections: Vec<(u64, ProcessId, CongosInput)>,
) -> io::Result<NetReport> {
    let n = cfg.n;

    // Bind all listeners up front so dialing cannot race the binds.
    let mut listeners = Vec::with_capacity(n);
    for i in 0..n {
        let l = TcpListener::bind(("127.0.0.1", cfg.base_port + i as u16))?;
        listeners.push(l);
    }

    let mut per_node_inj: Vec<Vec<(u64, CongosInput)>> = (0..n).map(|_| Vec::new()).collect();
    for (round, pid, input) in injections {
        per_node_inj[pid.as_usize()].push((round, input));
    }

    let outputs = Arc::new(Mutex::new(Vec::<OutputRecord<DeliveredRumor>>::new()));
    let counters = Arc::new(Mutex::new((0u64, 0u64))); // (sent, topology drops)
    let errors = Arc::new(Mutex::new(Vec::<io::Error>::new()));

    std::thread::scope(|scope| {
        for (i, (listener, mut my_inj)) in
            listeners.into_iter().zip(per_node_inj).enumerate()
        {
            my_inj.sort_by_key(|(r, _)| *r);
            let cfg = cfg.clone();
            let outputs = Arc::clone(&outputs);
            let counters = Arc::clone(&counters);
            let errors = Arc::clone(&errors);
            scope.spawn(move || {
                if let Err(e) = node_main(i, listener, cfg, my_inj, &outputs, &counters) {
                    errors.lock().expect("error sink").push(e);
                }
            });
        }
    });

    if let Some(e) = errors.lock().expect("error sink").pop() {
        return Err(e);
    }
    let mut outs = Arc::try_unwrap(outputs)
        .unwrap_or_else(|_| unreachable!("threads joined"))
        .into_inner()
        .expect("outputs lock");
    outs.sort_by_key(|o| (o.round, o.process));
    let (messages, topology_drops) = *counters.lock().expect("counters lock");
    Ok(NetReport {
        deliveries: outs,
        messages,
        topology_drops,
        rounds: cfg.rounds,
    })
}

/// Runs ONE node of a cluster in the calling process — the entry point for
/// true multi-process deployment (see the `congos-node` binary). Blocks
/// until `rounds` complete and returns this node's deliveries.
///
/// # Errors
///
/// Returns socket-level errors (bind/connect/serialize).
pub fn run_node_process(
    id: usize,
    n: usize,
    base_port: u16,
    rounds: u64,
    seed: u64,
    topology: TopologySpec,
    injections: Vec<(u64, CongosInput)>,
) -> io::Result<Vec<OutputRecord<DeliveredRumor>>> {
    let cfg = NetConfig::new(n, base_port)
        .rounds(rounds)
        .seed(seed)
        .topology(topology);
    let listener = TcpListener::bind(("127.0.0.1", base_port + id as u16))?;
    let outputs = Mutex::new(Vec::new());
    let counters = Mutex::new((0u64, 0u64));
    node_main(id, listener, cfg, injections, &outputs, &counters)?;
    let mut outs = outputs.into_inner().expect("outputs lock");
    outs.sort_by_key(|o| (o.round, o.process));
    Ok(outs)
}

fn node_main(
    i: usize,
    listener: TcpListener,
    cfg: NetConfig,
    mut my_inj: Vec<(u64, CongosInput)>,
    outputs: &Mutex<Vec<OutputRecord<DeliveredRumor>>>,
    counters: &Mutex<(u64, u64)>,
) -> io::Result<()> {
    let n = cfg.n;
    let me = ProcessId::new(i);

    // Inbound: accept n−1 peers; each gets a reader thread feeding one
    // channel of frames.
    let (frame_tx, frame_rx): (Sender<WireFrame>, Receiver<WireFrame>) = channel();
    if n > 1 {
        let accept_tx = frame_tx.clone();
        let accept_handle = std::thread::spawn(move || -> io::Result<Vec<_>> {
            let mut handles = Vec::new();
            for _ in 0..n - 1 {
                let (stream, _) = listener.accept()?;
                stream.set_nodelay(true).ok();
                let tx = accept_tx.clone();
                handles.push(std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream);
                    while let Ok(frame) = decode_frame(&mut reader) {
                        if tx.send(frame).is_err() {
                            break;
                        }
                    }
                }));
            }
            Ok(handles)
        });

        // Outbound: dial every peer (retrying while they come up).
        let mut writers: Writers = (0..n).map(|_| None).collect();
        for (j, slot) in writers.iter_mut().enumerate() {
            if j == i {
                continue;
            }
            let addr = ("127.0.0.1", cfg.base_port + j as u16);
            let stream = loop {
                match TcpStream::connect(addr) {
                    Ok(s) => break s,
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            };
            stream.set_nodelay(true).ok();
            *slot = Some(BufWriter::new(stream));
        }
        let mut reader_handles = accept_handle.join().expect("accept thread")?;

        return node_rounds(
            me,
            n,
            &cfg,
            &mut my_inj,
            writers,
            frame_rx,
            outputs,
            counters,
        )
        .map(|_| {
            drop(frame_tx);
            for h in reader_handles.drain(..) {
                let _ = h.join();
            }
        });
    }

    // Single-node cluster: no sockets at all.
    drop(frame_tx);
    node_rounds(
        me,
        n,
        &cfg,
        &mut my_inj,
        Vec::new(),
        frame_rx,
        outputs,
        counters,
    )
}

#[allow(clippy::too_many_arguments)]
fn node_rounds(
    me: ProcessId,
    n: usize,
    cfg: &NetConfig,
    my_inj: &mut Vec<(u64, CongosInput)>,
    mut writers: Writers,
    frame_rx: Receiver<WireFrame>,
    outputs: &Mutex<Vec<OutputRecord<DeliveredRumor>>>,
    counters: &Mutex<(u64, u64)>,
) -> io::Result<()> {
    let topo = Topology::build(cfg.topology, n, cfg.seed);
    let mut node = CongosNode::with_config(me, n, cfg.congos.clone());
    node.on_start(Round::ZERO);
    let mut rng = fork_rng(cfg.seed, me, 0);
    let _ = fork_seed(cfg.seed, me, 0);
    let mut pending: Vec<(ProcessId, congos::CongosMsg, Tag)> = Vec::new();
    let mut local_outputs: Vec<OutputRecord<DeliveredRumor>> = Vec::new();
    let mut carried: VecDeque<WireFrame> = VecDeque::new();
    let mut sent = 0u64;
    let mut dropped = 0u64;

    for r in 0..cfg.rounds {
        let round = Round(r);
        // Send phase.
        {
            let mut ctx = Context::<CongosNode>::for_runtime(
                me,
                n,
                round,
                &mut rng,
                &mut pending,
                &mut local_outputs,
            );
            node.send(&mut ctx);
        }
        let mut self_inbox: Vec<Envelope<congos::CongosMsg>> = Vec::new();
        for (dst, payload, tag) in pending.drain(..) {
            if dst == me {
                self_inbox.push(Envelope {
                    src: me,
                    dst,
                    round,
                    tag,
                    payload,
                });
                continue;
            }
            if !topo.connected(round, me, dst) {
                // The simulator's delivery phase would drop this envelope;
                // dropping at the sender keeps delivery sets identical and
                // saves the wire hop.
                dropped += 1;
                continue;
            }
            sent += 1;
            let frame = WireFrame::Msg {
                src: me,
                round: r,
                tag: tag.name().to_string(),
                payload,
            };
            let w = writers[dst.as_usize()]
                .as_mut()
                .expect("writer for peer exists");
            encode_frame(w, &frame)?;
        }
        for w in writers.iter_mut().flatten() {
            encode_frame(w, &WireFrame::EndOfRound { src: me, round: r })?;
            w.flush()?;
        }

        // Barrier: collect this round's frames until n−1 markers. Frames
        // from future rounds (peers may run one superstep ahead) are parked
        // in `carried`; the parked queue is scanned once per round — never
        // re-polled inside the same round, which would spin.
        let mut inbox = self_inbox;
        let mut eor = 0usize;
        let classify = |frame: WireFrame,
                            inbox: &mut Vec<Envelope<congos::CongosMsg>>,
                            eor: &mut usize|
         -> Option<WireFrame> {
            match frame {
                WireFrame::Msg {
                    src,
                    round: fr,
                    tag,
                    payload,
                } if fr == r => {
                    inbox.push(Envelope {
                        src,
                        dst: me,
                        round,
                        tag: tag_by_name(&tag).unwrap_or(Tag("remote")),
                        payload,
                    });
                    None
                }
                WireFrame::EndOfRound { round: fr, .. } if fr == r => {
                    *eor += 1;
                    None
                }
                future => Some(future),
            }
        };
        for frame in std::mem::take(&mut carried) {
            if let Some(f) = classify(frame, &mut inbox, &mut eor) {
                carried.push_back(f);
            }
        }
        while eor < n - 1 {
            let frame = frame_rx
                .recv()
                .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer gone"))?;
            if let Some(f) = classify(frame, &mut inbox, &mut eor) {
                carried.push_back(f);
            }
        }
        inbox.sort_by_key(|e| e.src);

        // Compute phase.
        let input = match my_inj.first() {
            Some((due, _)) if *due == r => Some(my_inj.remove(0).1),
            _ => None,
        };
        let mut ctx = Context::<CongosNode>::for_runtime(
            me,
            n,
            round,
            &mut rng,
            &mut pending,
            &mut local_outputs,
        );
        node.receive(&mut ctx, Inbox::from_slice(&inbox), input);
    }

    outputs.lock().expect("outputs lock").extend(local_outputs);
    let mut c = counters.lock().expect("counters lock");
    c.0 += sent;
    c.1 += dropped;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rumor_delivered_over_real_sockets() {
        let report = run_cluster(
            NetConfig::new(4, 18510).rounds(70).seed(3),
            vec![(
                0,
                ProcessId::new(0),
                CongosInput {
                    wid: 0,
                    data: b"tcp".to_vec(),
                    deadline: 64,
                    dest: vec![ProcessId::new(2), ProcessId::new(3)],
                },
            )],
        )
        .expect("cluster run");
        assert_eq!(report.deliveries.len(), 2);
        for d in &report.deliveries {
            assert_eq!(d.value.data, b"tcp".to_vec());
            assert!(d.round.as_u64() <= 64);
        }
        assert!(report.messages > 0);
    }

    #[test]
    fn multiple_sources_and_rounds() {
        let report = run_cluster(
            NetConfig::new(5, 18530).rounds(80).seed(4),
            vec![
                (
                    0,
                    ProcessId::new(0),
                    CongosInput {
                        wid: 0,
                        data: vec![1],
                        deadline: 64,
                        dest: vec![ProcessId::new(4)],
                    },
                ),
                (
                    5,
                    ProcessId::new(1),
                    CongosInput {
                        wid: 1,
                        data: vec![2],
                        deadline: 64,
                        dest: vec![ProcessId::new(3), ProcessId::new(4)],
                    },
                ),
            ],
        )
        .expect("cluster run");
        assert_eq!(report.deliveries.len(), 3);
        let w1: Vec<_> = report
            .deliveries
            .iter()
            .filter(|d| d.value.wid == 1)
            .collect();
        assert_eq!(w1.len(), 2);
        assert!(w1.iter().all(|d| d.round.as_u64() <= 5 + 64));
    }

    #[test]
    fn single_node_cluster() {
        let report = run_cluster(
            NetConfig::new(1, 18550).rounds(4),
            vec![(
                0,
                ProcessId::new(0),
                CongosInput {
                    wid: 0,
                    data: vec![7],
                    deadline: 16,
                    dest: vec![ProcessId::new(0)],
                },
            )],
        )
        .expect("cluster run");
        assert_eq!(report.deliveries.len(), 1);
        assert_eq!(report.messages, 0);
    }
}
